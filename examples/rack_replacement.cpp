/**
 * @file
 * Rack replacement (paper Sec. VII): the paper proposes replacing
 * a rack of Ethernet-connected leaf servers with one MCN-enabled
 * server whose leaf nodes are MCN DIMMs. This example sizes that
 * comparison: a distributed analytics job (BigDataBench wordcount)
 * on a 5-node 10GbE "mini rack" versus an 8-DIMM MCN server, with
 * runtime and energy side by side.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/bigdata.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;

int
main()
{
    auto job = bigdata::wordcount();
    job.iterations = 3;

    std::printf("job: %s (%d iterations of scan + shuffle)\n\n",
                job.name.c_str(), job.iterations);

    // The mini rack: 5 conventional nodes behind a ToR switch.
    double rack_secs = 0, rack_joules = 0;
    {
        sim::Simulation s;
        ClusterSystemParams p;
        p.numNodes = 5;
        ClusterSystem rack(s, p);
        auto model = energyModelFor(rack);
        auto placement = allCoresPlacement(rack);
        auto spec =
            job.scaledTo(static_cast<int>(placement.size()));
        spec.iterations = job.iterations;
        model.snapshot(s.curTick());
        auto rep = runMpiWorkload(s, rack, spec, placement,
                                  60 * sim::oneSec);
        rack_secs = sim::ticksToSeconds(rep.makespan);
        rack_joules = model.compute(s.curTick()).total();
        std::printf("10GbE rack   (5 nodes, 40 cores): %7.2f ms, "
                    "%7.2f J%s\n",
                    rack_secs * 1e3, rack_joules,
                    rep.completed ? "" : "  [DID NOT FINISH]");
    }

    // The MCN-enabled replacement: 8 DIMMs = 8 leaf nodes.
    {
        sim::Simulation s;
        McnSystemParams p;
        p.numDimms = 8;
        p.config = McnConfig::level(5);
        McnSystem server(s, p);
        auto model = energyModelFor(server);
        auto placement = allCoresPlacement(server);
        auto spec =
            job.scaledTo(static_cast<int>(placement.size()));
        spec.iterations = job.iterations;
        model.snapshot(s.curTick());
        auto rep = runMpiWorkload(s, server, spec, placement,
                                  60 * sim::oneSec);
        double secs = sim::ticksToSeconds(rep.makespan);
        double joules = model.compute(s.curTick()).total();
        std::printf("MCN server   (8 DIMMs, 40 cores) : %7.2f ms, "
                    "%7.2f J%s\n",
                    secs * 1e3, joules,
                    rep.completed ? "" : "  [DID NOT FINISH]");

        if (rack_secs > 0 && secs > 0)
            std::printf("\nthe MCN 'rack' finishes %.2fx %s and "
                        "uses %.1f%% %s energy -- leaf traffic "
                        "rides memory channels instead of the ToR "
                        "switch\n",
                        rack_secs / secs,
                        rack_secs > secs ? "faster" : "slower",
                        std::abs(1.0 - joules / rack_joules) *
                            100.0,
                        joules < rack_joules ? "less" : "more");
    }
    return 0;
}
