/**
 * @file
 * ConTutto proof-of-concept (paper Sec. VI-C / Fig. 12): one
 * experimental buffered DIMM whose MCN processor is a single slow
 * NIOS-II-class soft core, plugged into a host. We run an MPI
 * "hello world" across host and DIMM, mirroring the paper's
 * feasibility demo -- the point is that it *works*, not that it is
 * fast.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/mpi.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;

int
main()
{
    sim::Simulation s;

    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(0);   // the PoC driver: polling
    p.dimmKernel = niosKernelParams(); // 266 MHz soft core, DDR3
    McnSystem sys(s, p);

    std::printf("ConTutto-style PoC: host + 1 experimental DIMM "
                "(NIOS II @ 266 MHz, DDR3-1066)\n\n");

    // MPI hello world: every rank reports in to rank 0.
    MpiWorld world(s, {sys.node(0), sys.node(1)});
    world.launch([&](MpiRank &r) -> sim::Task<void> {
        if (r.rank() == 0) {
            std::printf("[rank 0 | host  %s] waiting for "
                        "workers...\n",
                        sys.hostAddr().str().c_str());
            co_await r.recv(1);
            std::printf("[rank 0 | host  %s] hello received from "
                        "the DIMM at t=%.2f ms\n",
                        sys.hostAddr().str().c_str(),
                        sim::ticksToSeconds(r.kernel().curTick()) *
                            1e3);
        } else {
            std::printf("[rank 1 | mcn0  %s] MPI up on the NIOS II "
                        "soft core; sending hello\n",
                        sys.dimmAddr(0).str().c_str());
            co_await r.send(0, 64);
        }
        co_await r.barrier();
    });
    world.runToCompletion(s, 10 * sim::oneSec);

    if (world.done())
        std::printf("\nMPI hello world completed over the memory "
                    "channel -- no application change, no "
                    "middleware change (cf. Fig. 12)\n");
    else
        std::printf("\nPoC run did not complete -- check driver "
                    "wiring\n");
    return world.done() ? 0 : 1;
}
