/**
 * @file
 * Quickstart: build an MCN-enabled server with two MCN DIMMs, ping
 * a DIMM from the host, then run a TCP transfer host -> DIMM --
 * the five-minute tour of the public API.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "net/icmp.hh"
#include "net/socket.hh"
#include "net/tcp.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;

int
main()
{
    // 1. One simulation, one MCN server: a host plus 2 MCN DIMMs
    //    at optimisation level mcn3 (Table I).
    sim::Simulation s;
    McnSystemParams params;
    params.numDimms = 2;
    params.config = McnConfig::level(3);
    McnSystem server(s, params);

    std::printf("built %zu-node MCN server: host %s + DIMMs %s, %s\n",
                server.nodeCount(), server.hostAddr().str().c_str(),
                server.dimmAddr(0).str().c_str(),
                params.config.describe().c_str());

    // 2. Ping DIMM 0 from the host (Fig. 8(b) style measurement).
    sim::Tick rtt = sim::maxTick;
    bool ping_done = false;
    auto ping = [&]() -> sim::Task<void> {
        rtt = co_await server.hostStack().icmp().ping(
            server.dimmAddr(0), 56);
        ping_done = true;
    };
    sim::spawnDetached(s.eventQueue(), ping());
    runUntil(s, [&] { return ping_done; },
             s.curTick() + sim::oneSec);
    std::printf("ping host -> mcn0: %.2f us over the memory "
                "channel (no Ethernet PHY)\n",
                sim::ticksToUs(rtt));

    // 3. A TCP transfer: server process on the DIMM, client on the
    //    host -- ordinary sockets, the MCN drivers are invisible.
    constexpr std::size_t bytes = 256 * 1024;
    std::size_t got = 0;
    bool xfer_done = false;
    auto dimm_server = [&]() -> sim::Task<void> {
        auto lst = tcpListen(server.dimm(0).stack(), 9000);
        auto conn = co_await lst->accept();
        got = co_await conn->recvDrain(bytes);
        xfer_done = true;
    };
    auto host_client = [&]() -> sim::Task<void> {
        co_await sim::delayFor(s.eventQueue(), 10 * sim::oneUs);
        auto sock = co_await tcpConnect(
            server.hostStack(), {server.dimmAddr(0), 9000});
        if (sock)
            co_await sock->sendPattern(bytes);
    };
    sim::spawnDetached(s.eventQueue(), dimm_server());
    sim::spawnDetached(s.eventQueue(), host_client());

    sim::Tick start = s.curTick();
    runUntil(s, [&] { return xfer_done; },
             s.curTick() + sim::oneSec);
    double secs = sim::ticksToSeconds(s.curTick() - start);
    std::printf("TCP host -> mcn0: %zu bytes in %.2f ms (%.2f "
                "Gbit/s)\n",
                got, secs * 1e3,
                static_cast<double>(got) * 8.0 / secs / 1e9);

    // 4. Inspect a few stats the simulator kept along the way.
    std::printf("host driver: %llu poll scans, %llu deliveries, "
                "%llu MCN->MCN forwards\n",
                static_cast<unsigned long long>(
                    server.driver().pollScans()),
                static_cast<unsigned long long>(
                    server.driver().deliveredToHost()),
                static_cast<unsigned long long>(
                    server.driver().forwardedMcnToMcn()));
    return 0;
}
