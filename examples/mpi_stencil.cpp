/**
 * @file
 * MPI stencil: a hand-written 1-D heat-diffusion stencil over
 * mini-MPI, run unchanged on a scale-up server and on an
 * MCN-enabled server -- the paper's application-transparency
 * pitch, with user-written MPI code rather than a canned workload
 * model.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/mpi.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;

namespace {

/** One rank of the stencil: compute row block, exchange halos. */
sim::Task<void>
stencilRank(MpiRank &r, int iters, std::uint64_t halo_bytes,
            std::uint64_t block_bytes)
{
    co_await r.barrier();
    int n = r.size();
    for (int it = 0; it < iters; ++it) {
        // Sweep over the local block: memory bound.
        co_await r.memStream(block_bytes, 8e9);
        co_await r.compute(block_bytes / 16); // flops per byte

        // Halo exchange with both neighbours (parity-ordered).
        int left = (r.rank() - 1 + n) % n;
        int right = (r.rank() + 1) % n;
        if (r.rank() % 2 == 0) {
            co_await r.send(right, halo_bytes);
            co_await r.recv(left);
            co_await r.send(left, halo_bytes);
            co_await r.recv(right);
        } else {
            co_await r.recv(left);
            co_await r.send(right, halo_bytes);
            co_await r.recv(right);
            co_await r.send(left, halo_bytes);
        }
        // Converged? A global residual reduction decides.
        co_await r.allreduce(64);
    }
    co_await r.barrier();
}

double
runOn(System &sys, sim::Simulation &s,
      const std::vector<std::size_t> &placement)
{
    std::vector<NodeRef> nodes;
    for (auto n : placement)
        nodes.push_back(sys.node(n));

    MpiWorld world(s, std::move(nodes));
    world.launch([](MpiRank &r) {
        return stencilRank(r, /*iters=*/5,
                           /*halo=*/64 * 1024,
                           /*block=*/8ull << 20);
    });
    sim::Tick start = s.curTick();
    world.runToCompletion(s, start + 30 * sim::oneSec);
    if (!world.done())
        return -1.0;
    return sim::ticksToSeconds(s.curTick() - start);
}

} // namespace

int
main()
{
    // 12 ranks on a 12-core scale-up server...
    double scale_up;
    {
        sim::Simulation s;
        ScaleUpSystem sys(s, 12);
        scale_up = runOn(sys, s,
                         std::vector<std::size_t>(12, 0));
        std::printf("scale-up (12 cores, shared channels): "
                    "%.2f ms\n",
                    scale_up * 1e3);
    }

    // ...and the same 12 ranks on an MCN server: 4-core host + 2
    // DIMMs x 4 cores, each DIMM with its own local channels.
    {
        sim::Simulation s;
        McnSystemParams p;
        p.numDimms = 2;
        p.config = McnConfig::level(5);
        p.host = hostKernelParams(2, 4);
        McnSystem sys(s, p);
        auto placement = allCoresPlacement(sys);
        double mcn = runOn(sys, s, placement);
        std::printf("MCN server (4+2x4 cores, isolated channels): "
                    "%.2f ms\n",
                    mcn * 1e3);
        if (scale_up > 0 && mcn > 0)
            std::printf("speedup from near-memory bandwidth: "
                        "%.2fx -- same MPI source, zero code "
                        "changes\n",
                        scale_up / mcn);
    }
    return 0;
}
