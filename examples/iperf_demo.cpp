/**
 * @file
 * iperf demo: the Fig. 8(a) experiment in miniature. Compares the
 * bandwidth of four concurrent iperf streams over a conventional
 * 10GbE cluster against the same streams over MCN DIMMs at two
 * optimisation levels.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/system_builder.hh"

using namespace mcnsim;
using namespace mcnsim::core;

int
main()
{
    const sim::Tick duration = 5 * sim::oneMs;

    // Baseline: 5 nodes on a 10GbE top-of-rack switch.
    double base;
    {
        sim::Simulation s;
        ClusterSystemParams p;
        p.numNodes = 5;
        ClusterSystem cluster(s, p);
        auto r = runIperf(s, cluster, 0, {1, 2, 3, 4}, duration);
        base = r.gbps;
        std::printf("10GbE cluster: %6.2f Gbit/s (%d client "
                    "connections)\n",
                    r.gbps, r.connections);
    }

    // The same experiment on an MCN server, twice.
    for (int level : {0, 5}) {
        sim::Simulation s;
        McnSystemParams p;
        p.numDimms = 4;
        p.config = McnConfig::level(level);
        McnSystem server(s, p);
        auto r = runIperf(s, server, 0, {1, 2, 3, 4}, duration);
        std::printf("mcn%d         : %6.2f Gbit/s (%.2fx the "
                    "10GbE baseline)\n",
                    level, r.gbps, base > 0 ? r.gbps / base : 0.0);
    }

    std::printf("\nthe MCN numbers ride the memory channel: no "
                "NIC, no switch, no Ethernet serialization.\n");
    return 0;
}
