# Empty compiler generated dependencies file for mcnsim_cli.
# This may be replaced when dependencies are built.
