file(REMOVE_RECURSE
  "CMakeFiles/mcnsim_cli.dir/mcnsim_cli.cc.o"
  "CMakeFiles/mcnsim_cli.dir/mcnsim_cli.cc.o.d"
  "mcnsim_cli"
  "mcnsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcnsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
