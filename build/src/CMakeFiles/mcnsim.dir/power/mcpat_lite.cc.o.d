src/CMakeFiles/mcnsim.dir/power/mcpat_lite.cc.o: \
 /root/repo/src/power/mcpat_lite.cc /usr/include/stdc-predef.h \
 /root/repo/src/power/mcpat_lite.hh
