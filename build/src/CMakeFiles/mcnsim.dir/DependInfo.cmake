
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/mcnsim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/mcn_config.cc" "src/CMakeFiles/mcnsim.dir/core/mcn_config.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/core/mcn_config.cc.o.d"
  "/root/repo/src/core/presets.cc" "src/CMakeFiles/mcnsim.dir/core/presets.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/core/presets.cc.o.d"
  "/root/repo/src/core/system_builder.cc" "src/CMakeFiles/mcnsim.dir/core/system_builder.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/core/system_builder.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/mcnsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/cost_model.cc" "src/CMakeFiles/mcnsim.dir/cpu/cost_model.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/cpu/cost_model.cc.o.d"
  "/root/repo/src/cpu/cpu_cluster.cc" "src/CMakeFiles/mcnsim.dir/cpu/cpu_cluster.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/cpu/cpu_cluster.cc.o.d"
  "/root/repo/src/dist/bigdata.cc" "src/CMakeFiles/mcnsim.dir/dist/bigdata.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/bigdata.cc.o.d"
  "/root/repo/src/dist/coral.cc" "src/CMakeFiles/mcnsim.dir/dist/coral.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/coral.cc.o.d"
  "/root/repo/src/dist/iperf.cc" "src/CMakeFiles/mcnsim.dir/dist/iperf.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/iperf.cc.o.d"
  "/root/repo/src/dist/mapreduce.cc" "src/CMakeFiles/mcnsim.dir/dist/mapreduce.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/mapreduce.cc.o.d"
  "/root/repo/src/dist/mpi.cc" "src/CMakeFiles/mcnsim.dir/dist/mpi.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/mpi.cc.o.d"
  "/root/repo/src/dist/npb.cc" "src/CMakeFiles/mcnsim.dir/dist/npb.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/npb.cc.o.d"
  "/root/repo/src/dist/ping.cc" "src/CMakeFiles/mcnsim.dir/dist/ping.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/ping.cc.o.d"
  "/root/repo/src/dist/workload.cc" "src/CMakeFiles/mcnsim.dir/dist/workload.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/dist/workload.cc.o.d"
  "/root/repo/src/mcn/alert_signal.cc" "src/CMakeFiles/mcnsim.dir/mcn/alert_signal.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/alert_signal.cc.o.d"
  "/root/repo/src/mcn/host_driver.cc" "src/CMakeFiles/mcnsim.dir/mcn/host_driver.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/host_driver.cc.o.d"
  "/root/repo/src/mcn/mcn_dimm.cc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_dimm.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_dimm.cc.o.d"
  "/root/repo/src/mcn/mcn_dma.cc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_dma.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_dma.cc.o.d"
  "/root/repo/src/mcn/mcn_driver.cc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_driver.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_driver.cc.o.d"
  "/root/repo/src/mcn/mcn_interface.cc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_interface.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/mcn_interface.cc.o.d"
  "/root/repo/src/mcn/sram_buffer.cc" "src/CMakeFiles/mcnsim.dir/mcn/sram_buffer.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mcn/sram_buffer.cc.o.d"
  "/root/repo/src/mem/bandwidth_arbiter.cc" "src/CMakeFiles/mcnsim.dir/mem/bandwidth_arbiter.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/bandwidth_arbiter.cc.o.d"
  "/root/repo/src/mem/dimm.cc" "src/CMakeFiles/mcnsim.dir/mem/dimm.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/dimm.cc.o.d"
  "/root/repo/src/mem/dram_device.cc" "src/CMakeFiles/mcnsim.dir/mem/dram_device.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/dram_device.cc.o.d"
  "/root/repo/src/mem/dram_timing.cc" "src/CMakeFiles/mcnsim.dir/mem/dram_timing.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/dram_timing.cc.o.d"
  "/root/repo/src/mem/interleave.cc" "src/CMakeFiles/mcnsim.dir/mem/interleave.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/interleave.cc.o.d"
  "/root/repo/src/mem/mem_controller.cc" "src/CMakeFiles/mcnsim.dir/mem/mem_controller.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/mem_controller.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/mcnsim.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/mem/memcpy_model.cc" "src/CMakeFiles/mcnsim.dir/mem/memcpy_model.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/mem/memcpy_model.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/CMakeFiles/mcnsim.dir/net/checksum.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/checksum.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/CMakeFiles/mcnsim.dir/net/ethernet.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/ethernet.cc.o.d"
  "/root/repo/src/net/icmp.cc" "src/CMakeFiles/mcnsim.dir/net/icmp.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/icmp.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/CMakeFiles/mcnsim.dir/net/ipv4.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/ipv4.cc.o.d"
  "/root/repo/src/net/net_stack.cc" "src/CMakeFiles/mcnsim.dir/net/net_stack.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/net_stack.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/mcnsim.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/packet.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/CMakeFiles/mcnsim.dir/net/socket.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/socket.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/mcnsim.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/CMakeFiles/mcnsim.dir/net/udp.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/net/udp.cc.o.d"
  "/root/repo/src/netdev/ethernet_link.cc" "src/CMakeFiles/mcnsim.dir/netdev/ethernet_link.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/netdev/ethernet_link.cc.o.d"
  "/root/repo/src/netdev/ethernet_switch.cc" "src/CMakeFiles/mcnsim.dir/netdev/ethernet_switch.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/netdev/ethernet_switch.cc.o.d"
  "/root/repo/src/netdev/loopback.cc" "src/CMakeFiles/mcnsim.dir/netdev/loopback.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/netdev/loopback.cc.o.d"
  "/root/repo/src/netdev/nic.cc" "src/CMakeFiles/mcnsim.dir/netdev/nic.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/netdev/nic.cc.o.d"
  "/root/repo/src/os/hrtimer.cc" "src/CMakeFiles/mcnsim.dir/os/hrtimer.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/os/hrtimer.cc.o.d"
  "/root/repo/src/os/interrupt.cc" "src/CMakeFiles/mcnsim.dir/os/interrupt.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/os/interrupt.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/mcnsim.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/net_device.cc" "src/CMakeFiles/mcnsim.dir/os/net_device.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/os/net_device.cc.o.d"
  "/root/repo/src/os/softirq.cc" "src/CMakeFiles/mcnsim.dir/os/softirq.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/os/softirq.cc.o.d"
  "/root/repo/src/power/energy_model.cc" "src/CMakeFiles/mcnsim.dir/power/energy_model.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/power/energy_model.cc.o.d"
  "/root/repo/src/power/mcpat_lite.cc" "src/CMakeFiles/mcnsim.dir/power/mcpat_lite.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/power/mcpat_lite.cc.o.d"
  "/root/repo/src/sim/clock_domain.cc" "src/CMakeFiles/mcnsim.dir/sim/clock_domain.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/clock_domain.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/mcnsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/mcnsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/mcnsim.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/mcnsim.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/mcnsim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/mcnsim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/task.cc" "src/CMakeFiles/mcnsim.dir/sim/task.cc.o" "gcc" "src/CMakeFiles/mcnsim.dir/sim/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
