# Empty compiler generated dependencies file for mcnsim.
# This may be replaced when dependencies are built.
