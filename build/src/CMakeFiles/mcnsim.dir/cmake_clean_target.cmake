file(REMOVE_RECURSE
  "libmcnsim.a"
)
