# Empty compiler generated dependencies file for test_netdev.
# This may be replaced when dependencies are built.
