file(REMOVE_RECURSE
  "CMakeFiles/test_netdev.dir/test_netdev.cc.o"
  "CMakeFiles/test_netdev.dir/test_netdev.cc.o.d"
  "test_netdev"
  "test_netdev.pdb"
  "test_netdev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
