# Empty compiler generated dependencies file for test_cpu_os.
# This may be replaced when dependencies are built.
