file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_os.dir/test_cpu_os.cc.o"
  "CMakeFiles/test_cpu_os.dir/test_cpu_os.cc.o.d"
  "test_cpu_os"
  "test_cpu_os.pdb"
  "test_cpu_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
