# Empty dependencies file for test_multiserver.
# This may be replaced when dependencies are built.
