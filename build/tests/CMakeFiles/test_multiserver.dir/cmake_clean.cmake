file(REMOVE_RECURSE
  "CMakeFiles/test_multiserver.dir/test_multiserver.cc.o"
  "CMakeFiles/test_multiserver.dir/test_multiserver.cc.o.d"
  "test_multiserver"
  "test_multiserver.pdb"
  "test_multiserver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
