file(REMOVE_RECURSE
  "CMakeFiles/test_mcn.dir/test_mcn.cc.o"
  "CMakeFiles/test_mcn.dir/test_mcn.cc.o.d"
  "test_mcn"
  "test_mcn.pdb"
  "test_mcn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
