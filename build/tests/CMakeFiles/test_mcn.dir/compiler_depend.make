# Empty compiler generated dependencies file for test_mcn.
# This may be replaced when dependencies are built.
