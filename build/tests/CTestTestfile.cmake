# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_task[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_interleave[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mcn[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_os[1]_include.cmake")
include("/root/repo/build/tests/test_netdev[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_multiserver[1]_include.cmake")
include("/root/repo/build/tests/test_param_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_mapreduce[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
