file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_iperf.dir/bench_fig8a_iperf.cc.o"
  "CMakeFiles/bench_fig8a_iperf.dir/bench_fig8a_iperf.cc.o.d"
  "bench_fig8a_iperf"
  "bench_fig8a_iperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_iperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
