# Empty dependencies file for bench_fig8a_iperf.
# This may be replaced when dependencies are built.
