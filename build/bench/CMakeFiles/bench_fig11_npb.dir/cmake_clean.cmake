file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_npb.dir/bench_fig11_npb.cc.o"
  "CMakeFiles/bench_fig11_npb.dir/bench_fig11_npb.cc.o.d"
  "bench_fig11_npb"
  "bench_fig11_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
