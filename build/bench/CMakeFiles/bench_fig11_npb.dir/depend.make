# Empty dependencies file for bench_fig11_npb.
# This may be replaced when dependencies are built.
