# Empty dependencies file for bench_fig8bc_ping.
# This may be replaced when dependencies are built.
