file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8bc_ping.dir/bench_fig8bc_ping.cc.o"
  "CMakeFiles/bench_fig8bc_ping.dir/bench_fig8bc_ping.cc.o.d"
  "bench_fig8bc_ping"
  "bench_fig8bc_ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8bc_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
