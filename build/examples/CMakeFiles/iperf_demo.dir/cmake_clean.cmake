file(REMOVE_RECURSE
  "CMakeFiles/iperf_demo.dir/iperf_demo.cpp.o"
  "CMakeFiles/iperf_demo.dir/iperf_demo.cpp.o.d"
  "iperf_demo"
  "iperf_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iperf_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
