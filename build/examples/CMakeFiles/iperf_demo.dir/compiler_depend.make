# Empty compiler generated dependencies file for iperf_demo.
# This may be replaced when dependencies are built.
