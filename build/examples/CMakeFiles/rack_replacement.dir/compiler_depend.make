# Empty compiler generated dependencies file for rack_replacement.
# This may be replaced when dependencies are built.
