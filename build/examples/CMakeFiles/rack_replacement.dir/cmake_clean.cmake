file(REMOVE_RECURSE
  "CMakeFiles/rack_replacement.dir/rack_replacement.cpp.o"
  "CMakeFiles/rack_replacement.dir/rack_replacement.cpp.o.d"
  "rack_replacement"
  "rack_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
