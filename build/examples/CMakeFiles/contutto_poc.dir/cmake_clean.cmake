file(REMOVE_RECURSE
  "CMakeFiles/contutto_poc.dir/contutto_poc.cpp.o"
  "CMakeFiles/contutto_poc.dir/contutto_poc.cpp.o.d"
  "contutto_poc"
  "contutto_poc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contutto_poc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
