# Empty compiler generated dependencies file for contutto_poc.
# This may be replaced when dependencies are built.
