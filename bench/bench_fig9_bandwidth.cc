/**
 * @file
 * Fig. 9: aggregate memory bandwidth utilization of an MCN-enabled
 * server with 2/4/6/8 MCN DIMMs, normalized to the bandwidth the
 * same application achieves on a conventional server.
 *
 * Each workload runs once on the conventional server (all ranks on
 * the host's cores, all traffic through the host's two channels)
 * and once per DIMM count on the MCN server (ranks spread over the
 * host + every MCN processor, each DIMM streaming through its own
 * local channels).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/bigdata.hh"
#include "dist/coral.hh"
#include "dist/npb.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;

namespace {

/** Aggregate achieved bandwidth (GB/s) of one run. */
double
runAndMeasure(System &sys, sim::Simulation &s,
              const WorkloadSpec &base,
              const std::vector<std::size_t> &placement, int iters)
{
    auto spec =
        base.scaledTo(static_cast<int>(placement.size()));
    spec.iterations = iters;

    std::uint64_t before = 0;
    for (std::size_t n = 0; n < sys.nodeCount(); ++n)
        before += sys.node(n).kernel->mem().totalBytes();

    auto rep = runMpiWorkload(s, sys, spec, placement,
                              30 * sim::oneSec);
    if (!rep.completed || rep.makespan == 0)
        return 0.0;

    std::uint64_t after = 0;
    for (std::size_t n = 0; n < sys.nodeCount(); ++n)
        after += sys.node(n).kernel->mem().totalBytes();

    return static_cast<double>(after - before) /
           sim::ticksToSeconds(rep.makespan) / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    int iters = quick ? 2 : 6;
    const std::vector<std::size_t> dimm_counts = {2, 4, 6, 8};

    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("fig9_bandwidth", quick);
    rep.config("threads", threads ? threads : 1);
    rep.config("iterations", iters);
    rep.config("conv_cores", 8);

    std::printf("== Fig. 9: aggregate memory bandwidth of an "
                "MCN-enabled server, normalized to a conventional "
                "server (%s) ==\n\n",
                quick ? "quick" : "full");

    std::vector<WorkloadSpec> workloads;
    for (auto &w : dist::npb::suite())
        workloads.push_back(w);
    for (auto &w : dist::coral::suite())
        workloads.push_back(w);
    for (auto &w : dist::bigdata::suite())
        workloads.push_back(w);

    bench::Table t(
        {"workload", "conv GB/s", "2 dimms", "4 dimms", "6 dimms",
         "8 dimms"});

    std::vector<double> geo(dimm_counts.size(), 0.0);
    int counted = 0;

    for (const auto &w : workloads) {
        // Conventional server: every host core runs a rank.
        double conv;
        {
            sim::Simulation s;
            bench::applyThreads(s);
            ScaleUpSystem sys(s, 8);
            conv = runAndMeasure(sys, s, w,
                                 {0, 0, 0, 0, 0, 0, 0, 0}, iters);
        }
        std::vector<std::string> row = {
            w.name, bench::fmt("%.1f", conv)};

        for (std::size_t di = 0; di < dimm_counts.size(); ++di) {
            sim::Simulation s;
            bench::applyThreads(s);
            McnSystemParams p;
            p.numDimms = dimm_counts[di];
            p.config = McnConfig::level(5);
            McnSystem sys(s, p);
            auto placement = allCoresPlacement(sys);
            double mcn =
                runAndMeasure(sys, s, w, placement, iters);
            double ratio = conv > 0 ? mcn / conv : 0.0;
            row.push_back(bench::fmt("%.2fx", ratio));
            if (ratio > 0)
                geo[di] += std::log(ratio);
        }
        counted++;
        t.addRow(row);
    }

    // Geometric means across workloads.
    std::vector<std::string> mean_row = {"geomean", ""};
    for (std::size_t di = 0; di < dimm_counts.size(); ++di) {
        double g = std::exp(geo[di] / std::max(1, counted));
        mean_row.push_back(bench::fmt("%.2fx", g));
        rep.metric("geomean_" + std::to_string(dimm_counts[di]) +
                       "_dimms",
                   g);
    }
    t.addRow(mean_row);
    t.print();
    rep.metric("workloads_counted", counted);

    std::printf("\npaper shape: average 1.76x/2.6x/3.3x/3.9x for "
                "2/4/6/8 DIMMs, up to 8.17x for the most "
                "bandwidth-bound workloads; compute-bound ep stays "
                "near 1x\n");
    rep.target("geomean_2_dimms", 1.76);
    rep.target("geomean_4_dimms", 2.6);
    rep.target("geomean_6_dimms", 3.3);
    rep.target("geomean_8_dimms", 3.9);
    return bench::writeReport(rep, argc, argv);
}
