/**
 * @file
 * Fig. 11: normalized NPB execution time on a conventional
 * scale-up server (4/8/12/16 cores on one chip, fixed memory
 * channels) versus an MCN-enabled server (4-core host + 0/1/2/3
 * MCN DIMMs, matched core counts). x-axis positions 0..3 as in
 * the paper; everything normalized to the 4-core baseline.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/npb.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;

namespace {

double
scaleUpTime(const WorkloadSpec &w, std::uint32_t cores, int iters)
{
    sim::Simulation s;
    bench::applyThreads(s);
    ScaleUpSystem sys(s, cores);
    std::vector<std::size_t> placement(cores, 0);
    auto spec = w.scaledTo(static_cast<int>(cores));
    spec.iterations = iters;
    auto rep =
        runMpiWorkload(s, sys, spec, placement, 60 * sim::oneSec);
    return rep.completed ? sim::ticksToSeconds(rep.makespan) : 0.0;
}

double
mcnTime(const WorkloadSpec &w, std::size_t dimms, int iters)
{
    sim::Simulation s;
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = dimms;
    p.config = McnConfig::level(5);
    p.host = hostKernelParams(2, 4); // 4-core host in Fig. 11
    McnSystem sys(s, p);
    auto placement = allCoresPlacement(sys);
    auto spec = w.scaledTo(static_cast<int>(placement.size()));
    spec.iterations = iters;
    auto rep = runMpiWorkload(s, sys, spec, placement,
                              60 * sim::oneSec);
    return rep.completed ? sim::ticksToSeconds(rep.makespan) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    int iters = quick ? 2 : 6;

    bench::threadsArg(argc, argv);
    unsigned threads = bench::refuseThreads(
        "the MPI world shares coordinator state across nodes");
    bench::BenchReport rep("fig11_npb", quick);
    rep.config("threads", threads);
    rep.config("iterations", iters);
    rep.config("host_cores", 4);

    std::printf("== Fig. 11: NPB execution time, scale-up server "
                "vs MCN-enabled server (normalized to the 4-core "
                "baseline; lower is better; %s) ==\n\n",
                quick ? "quick" : "full");

    // x positions: 0..3 -> scale-up 4/8/12/16 cores vs
    // MCN host(4) + 0/1/2/3 DIMMs.
    const std::vector<std::uint32_t> su_cores = {4, 8, 12, 16};
    const std::vector<std::size_t> mcn_dimms = {0, 1, 2, 3};

    bench::Table t({"app", "x", "scale-up", "mcn", "mcn/scale-up"});
    std::vector<double> improve(su_cores.size(), 0.0);
    std::vector<int> counted(su_cores.size(), 0);

    for (const auto &w : npb::suite()) {
        double base = scaleUpTime(w, 4, iters);
        if (base <= 0) {
            std::printf("%s: baseline failed\n", w.name.c_str());
            continue;
        }
        for (std::size_t x = 0; x < su_cores.size(); ++x) {
            double su = scaleUpTime(w, su_cores[x], iters);
            double mc = x == 0
                            ? su // 0 DIMMs == the 4-core baseline
                            : mcnTime(w, mcn_dimms[x], iters);
            if (su <= 0 || mc <= 0)
                continue;
            t.addRow({w.name, std::to_string(x),
                      bench::fmt("%.3f", su / base),
                      bench::fmt("%.3f", mc / base),
                      bench::fmt("%.2f", mc / su)});
            if (x > 0) {
                improve[x] += (1.0 - mc / su) * 100.0;
                counted[x]++;
            }
        }
    }
    t.print();

    std::printf("\naverage MCN improvement over the equal-core "
                "scale-up server:");
    for (std::size_t x = 1; x < su_cores.size(); ++x) {
        double a = improve[x] / std::max(1, counted[x]);
        std::printf(" x=%zu: %.1f%%", x, a);
        rep.metric("avg_improvement_pct_" + std::to_string(x) +
                       "_dimms",
                   a);
    }
    std::printf("\npaper shape: averages 27.2%% / 42.9%% / 45.3%% "
                "for 1/2/3 DIMMs; ep does not benefit (compute "
                "bound); cg can regress at 1 DIMM (irregular "
                "communication crosses the host)\n");
    rep.target("avg_improvement_pct_1_dimms", 27.2);
    rep.target("avg_improvement_pct_2_dimms", 42.9);
    rep.target("avg_improvement_pct_3_dimms", 45.3);
    return bench::writeReport(rep, argc, argv);
}
