/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * event queue churn, internet checksum, SRAM message rings,
 * interleave address math, and hardware TSO segmentation. These
 * guard the simulator's own performance (a full Fig. 8(a) sweep
 * pushes tens of millions of events).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "mcn/sram_buffer.hh"
#include "mem/interleave.hh"
#include "net/checksum.hh"
#include "net/ethernet.hh"
#include "net/ipv4.hh"
#include "net/tcp.hh"
#include "netdev/ethernet_link.hh"
#include "netdev/ethernet_switch.hh"
#include "netdev/nic.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"
#include "sim/timer_wheel.hh"

using namespace mcnsim;

namespace {

/** Frame sink for the link/switch datapath benches. */
class NullEndpoint : public netdev::EtherEndpoint
{
  public:
    void receiveFrame(net::PacketPtr) override {}
};

} // namespace

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule([&] { sink++; }, q.curTick() + 100 + i);
        q.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_Checksum(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0xa5);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            net::checksum(data.data(), data.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Checksum)->Arg(64)->Arg(1500)->Arg(9000)->Arg(65536);

static void
BM_ManagedEventScheduleRun(benchmark::State &state)
{
    // Like BM_EventQueueScheduleRun, but half the events are
    // descheduled before the drain, exercising the lazy-deletion
    // stale path and the pooled-event recycle-on-deschedule path.
    sim::EventQueue q;
    std::uint64_t sink = 0;
    std::vector<sim::Event *> cancel;
    cancel.reserve(32);
    for (auto _ : state) {
        cancel.clear();
        for (int i = 0; i < 64; ++i) {
            auto *ev = q.schedule([&] { sink++; },
                                  q.curTick() + 100 + i, "bench.ev");
            if (i & 1)
                cancel.push_back(ev);
        }
        for (auto *ev : cancel)
            q.deschedule(ev);
        q.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ManagedEventScheduleRun);

static void
BM_PacketClone(benchmark::State &state)
{
    auto pkt = net::Packet::makePattern(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto c = pkt->clone();
        benchmark::DoNotOptimize(c);
    }
}
// Copy-on-write: all sizes should cost the same (no byte copies).
BENCHMARK(BM_PacketClone)->Arg(64)->Arg(1500)->Arg(9000);

static void
BM_PacketAlloc(benchmark::State &state)
{
    // Allocate-and-drop: steady state must run entirely from the
    // buffer pool's thread-local free lists (zero malloc/free).
    std::size_t n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto pkt = net::Packet::makePattern(n);
        benchmark::DoNotOptimize(pkt);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_PacketAlloc)->Arg(64)->Arg(1500)->Arg(9000);

static void
BM_SwitchForward(benchmark::State &state)
{
    // Learned unicast through a P-port switch: FIB lookup + egress
    // + link serialization, rotating the destination so the inline
    // flow cache sees realistic (imperfect) locality.
    using namespace netdev;
    std::uint32_t ports = static_cast<std::uint32_t>(state.range(0));
    sim::Simulation s;
    EthernetSwitch sw(s, "sw", ports);
    std::vector<std::unique_ptr<EthernetLink>> links;
    std::vector<std::unique_ptr<NullEndpoint>> hosts;
    for (std::uint32_t i = 0; i < ports; ++i) {
        links.push_back(std::make_unique<EthernetLink>(
            s, "l" + std::to_string(i), 100e9, 0));
        hosts.push_back(std::make_unique<NullEndpoint>());
        sw.attachLink(i, *links[i]);
        links[i]->attachB(hosts[i].get());
    }
    auto frame = [](net::MacAddr dst, net::MacAddr src) {
        auto pkt = net::Packet::makePattern(1500);
        net::EthernetHeader eh;
        eh.dst = dst;
        eh.src = src;
        eh.push(*pkt);
        return pkt;
    };
    // Teach the FIB every station before timing.
    for (std::uint32_t i = 0; i < ports; ++i) {
        links[i]->sendFrom(hosts[i].get(),
                           frame(net::MacAddr::broadcast(),
                                 net::MacAddr::fromId(i)));
        s.run();
    }
    std::uint32_t dst = 1;
    for (auto _ : state) {
        links[0]->sendFrom(hosts[0].get(),
                           frame(net::MacAddr::fromId(dst),
                                 net::MacAddr::fromId(0)));
        s.run();
        dst = (dst + 1 == ports) ? 1 : dst + 1;
    }
}
BENCHMARK(BM_SwitchForward)->Arg(2)->Arg(16)->Arg(64);

static void
BM_LinkBurst(benchmark::State &state)
{
    // 64 back-to-back frames pile onto one busy direction, then the
    // pump drains them: the heap holds one entry for the direction
    // instead of 64.
    sim::Simulation s;
    netdev::EthernetLink link(s, "l", 10e9, sim::oneUs);
    NullEndpoint a, b;
    link.attachA(&a);
    link.attachB(&b);
    auto pkt = net::Packet::makePattern(1500);
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            link.sendFrom(&a, pkt->clone());
        s.run();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64 * 1500);
}
BENCHMARK(BM_LinkBurst);

static void
BM_TcpTimerChurn(benchmark::State &state)
{
    // The RTO lifecycle: every node is armed, re-armed (each ACK
    // moves the deadline), and half are canceled before firing --
    // the arm/cancel-heavy mix the wheel exists for.
    sim::EventQueue q;
    sim::TimerWheel w(q, "bench.timer");
    constexpr int n = 64;
    sim::TimerNode nodes[n];
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < n; ++i)
            w.arm(nodes[i], q.curTick() + 1000 + i,
                  [&] { sink++; });
        for (int i = 0; i < n; ++i)
            w.arm(nodes[i], q.curTick() + 2000 + i,
                  [&] { sink++; });
        for (int i = 0; i < n; ++i)
            if (i & 1)
                nodes[i].cancel();
        q.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TcpTimerChurn);

static void
BM_MessageRingRoundTrip(benchmark::State &state)
{
    mcn::MessageRing ring(48 * 1024);
    std::vector<std::uint8_t> msg(
        static_cast<std::size_t>(state.range(0)), 7);
    for (auto _ : state) {
        ring.enqueue(msg.data(), msg.size());
        benchmark::DoNotOptimize(ring.dequeue());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_MessageRingRoundTrip)->Arg(1500)->Arg(9000);

static void
BM_InterleaveMath(benchmark::State &state)
{
    mem::InterleaveMap map(4);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (std::uint64_t k = 0; k < 64; ++k)
            sink += map.strideAddr(k & 3, 4096, k);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_InterleaveMath);

static void
BM_TsoSegmentation(benchmark::State &state)
{
    using namespace net;
    // Build a 40 KB TSO super-frame once per iteration batch.
    auto make_frame = [] {
        auto pkt = Packet::makePattern(40 * 1024);
        pkt->tsoMss = 1460;
        TcpHeader th;
        th.srcPort = 1;
        th.dstPort = 2;
        th.push(*pkt, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                true);
        Ipv4Header ih;
        ih.src = Ipv4Addr(1, 1, 1, 1);
        ih.dst = Ipv4Addr(2, 2, 2, 2);
        ih.totalLength = static_cast<std::uint16_t>(
            pkt->size() + Ipv4Header::size);
        ih.push(*pkt, true);
        EthernetHeader eh;
        eh.dst = MacAddr::fromId(2);
        eh.src = MacAddr::fromId(1);
        eh.push(*pkt);
        return pkt;
    };
    auto frame = make_frame();
    for (auto _ : state) {
        auto segs = netdev::Nic::segmentTso(frame, true);
        benchmark::DoNotOptimize(segs);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 40 * 1024);
}
BENCHMARK(BM_TsoSegmentation);

namespace {

/** Console output plus a captured (name, real time) per run, so
 *  the --json artifact can list every microbenchmark. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const auto &run : reports) {
            if (run.error_occurred ||
                run.run_type == Run::RT_Aggregate)
                continue;
            // Keep the fastest repetition per benchmark: on a shared
            // machine the minimum is the least-contended sample, so
            // the artifact tracks the code, not the neighbors.
            auto it = std::find_if(
                runs.begin(), runs.end(), [&](const auto &r) {
                    return r.first == run.benchmark_name();
                });
            double t = run.GetAdjustedRealTime();
            if (it == runs.end())
                runs.emplace_back(run.benchmark_name(), t);
            else
                it->second = std::min(it->second, t);
        }
        ConsoleReporter::ReportRuns(reports);
    }

    std::vector<std::pair<std::string, double>> runs;
};

/** JSON metric keys can't be arbitrary display names; flatten
 *  "BM_Checksum/1500" to "BM_Checksum_1500". */
std::string
metricKey(std::string name)
{
    std::replace(name.begin(), name.end(), '/', '_');
    return name;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mcnsim;
    bool quick = bench::quickMode(argc, argv);
    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("micro", quick);
    rep.config("threads", threads ? threads : 1);

    // Strip our flags before handing argv to google-benchmark,
    // which rejects unknown arguments.
    std::vector<char *> bench_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick" || a == "--full")
            continue;
        if (a == "--json") {
            ++i; // skip the path operand too
            continue;
        }
        if (a.rfind("--json=", 0) == 0)
            continue;
        bench_argv.push_back(argv[i]);
    }
    // Default to a few repetitions (artifact keeps the fastest; see
    // CaptureReporter) unless the caller picked a count themselves.
    static char default_reps[] = "--benchmark_repetitions=5";
    bool has_reps = false;
    for (char *a : bench_argv)
        if (std::string(a).rfind("--benchmark_repetitions", 0) == 0)
            has_reps = true;
    if (!has_reps)
        bench_argv.push_back(default_reps);

    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data()))
        return 1;

    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    for (const auto &[name, real_time] : reporter.runs)
        rep.metric(metricKey(name) + "_ns", real_time);
    return bench::writeReport(rep, argc, argv);
}
