/**
 * @file
 * Fig. 10: energy efficiency of an MCN-enabled server with
 * 2/4/6/8 MCN DIMMs versus a conventional 10GbE scale-out cluster
 * with 2/3/4/5 nodes -- core-count-matched pairs, as in the paper
 * (host 8 cores + 4 per DIMM vs 8 cores per cluster node).
 *
 * Each pair runs the same workload to completion; the energy model
 * integrates core busy time, DRAM traffic and NIC/switch traffic
 * over the makespan.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/bigdata.hh"
#include "dist/coral.hh"
#include "dist/npb.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;

namespace {

struct RunEnergy
{
    double joules = 0.0;
    bool ok = false;
};

RunEnergy
mcnRun(const WorkloadSpec &w, std::size_t dimms, int iters)
{
    sim::Simulation s;
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = dimms;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    auto model = energyModelFor(sys);
    auto placement = allCoresPlacement(sys);
    auto spec = w.scaledTo(static_cast<int>(placement.size()));
    spec.iterations = iters;

    model.snapshot(s.curTick());
    auto rep =
        runMpiWorkload(s, sys, spec, placement, 30 * sim::oneSec);
    RunEnergy e;
    e.ok = rep.completed;
    e.joules = model.compute(s.curTick()).total();
    return e;
}

RunEnergy
clusterRun(const WorkloadSpec &w, std::size_t nodes, int iters)
{
    sim::Simulation s;
    bench::applyThreads(s);
    ClusterSystemParams p;
    p.numNodes = nodes;
    ClusterSystem sys(s, p);

    auto model = energyModelFor(sys);
    auto placement = allCoresPlacement(sys);
    auto spec = w.scaledTo(static_cast<int>(placement.size()));
    spec.iterations = iters;

    model.snapshot(s.curTick());
    auto rep =
        runMpiWorkload(s, sys, spec, placement, 30 * sim::oneSec);
    RunEnergy e;
    e.ok = rep.completed;
    e.joules = model.compute(s.curTick()).total();
    return e;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    int iters = quick ? 2 : 6;

    // Core-count-matched pairs: (MCN DIMMs, cluster nodes).
    const std::vector<std::pair<std::size_t, std::size_t>> pairs =
        {{2, 2}, {4, 3}, {6, 4}, {8, 5}};

    bench::threadsArg(argc, argv);
    unsigned threads = bench::refuseThreads(
        "the MPI world shares coordinator state across nodes");
    bench::BenchReport rep("fig10_energy", quick);
    rep.config("threads", threads);
    rep.config("iterations", iters);

    std::printf("== Fig. 10: MCN server energy vs core-matched "
                "10GbE cluster (positive = MCN saves energy; %s) "
                "==\n\n",
                quick ? "quick" : "full");

    std::vector<WorkloadSpec> workloads;
    for (auto &w : dist::npb::suite())
        workloads.push_back(w);
    for (auto &w : dist::coral::suite())
        workloads.push_back(w);
    for (auto &w : dist::bigdata::suite())
        workloads.push_back(w);

    bench::Table t({"workload", "2d vs 2n", "4d vs 3n", "6d vs 4n",
                    "8d vs 5n"});
    std::vector<double> avg(pairs.size(), 0.0);
    std::vector<int> counted(pairs.size(), 0);

    for (const auto &w : workloads) {
        std::vector<std::string> row = {w.name};
        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
            auto mcn = mcnRun(w, pairs[pi].first, iters);
            auto clu = clusterRun(w, pairs[pi].second, iters);
            if (!mcn.ok || !clu.ok || clu.joules <= 0) {
                row.push_back("-");
                continue;
            }
            double savings =
                (1.0 - mcn.joules / clu.joules) * 100.0;
            row.push_back(bench::fmt("%+.1f%%", savings));
            avg[pi] += savings;
            counted[pi]++;
        }
        t.addRow(row);
    }

    std::vector<std::string> mean_row = {"average"};
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        double a = avg[pi] / std::max(1, counted[pi]);
        mean_row.push_back(bench::fmt("%+.1f%%", a));
        rep.metric("avg_savings_pct_" +
                       std::to_string(pairs[pi].first) + "d_vs_" +
                       std::to_string(pairs[pi].second) + "n",
                   a);
    }
    t.addRow(mean_row);
    t.print();

    std::printf("\npaper shape: average savings of 23.5%% / 37.7%% "
                "/ 45.5%% / 57.5%% vs 2/3/4/5-node clusters; not "
                "every benchmark saves energy (compute-bound codes "
                "favour the big cores)\n");
    rep.target("avg_savings_pct_2d_vs_2n", 23.5);
    rep.target("avg_savings_pct_4d_vs_3n", 37.7);
    rep.target("avg_savings_pct_6d_vs_4n", 45.5);
    rep.target("avg_savings_pct_8d_vs_5n", 57.5);
    return bench::writeReport(rep, argc, argv);
}
