/**
 * @file
 * Shared helpers for the benchmark/reproduction binaries: simple
 * fixed-width table printing and command-line knobs.
 */

#ifndef MCNSIM_BENCH_BENCH_UTIL_HH
#define MCNSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace mcnsim::bench {

/** Column-aligned table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0;
                 c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            std::printf("|");
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                const std::string &v =
                    c < cells.size() ? cells[c] : "";
                std::printf(" %-*s |",
                            static_cast<int>(width[c]), v.c_str());
            }
            std::printf("\n");
        };
        line(headers_);
        std::printf("|");
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::printf("-");
            std::printf("|");
        }
        std::printf("\n");
        for (const auto &r : rows_)
            line(r);
        std::fflush(stdout);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

/** True when --quick was passed (shorter windows for CI). */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    // Benches default to quick mode unless --full is given, so the
    // whole suite stays runnable on a laptop.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--full") == 0)
            return false;
    return true;
}

} // namespace mcnsim::bench

#endif // MCNSIM_BENCH_BENCH_UTIL_HH
