/**
 * @file
 * Shared helpers for the benchmark/reproduction binaries: simple
 * fixed-width table printing, command-line knobs, and the BENCH_*
 * JSON artifact writer every bench uses for `--json <path>`.
 *
 * Usage in a bench main():
 *
 *   bool quick = bench::quickMode(argc, argv);
 *   bench::BenchReport rep("fig8a_iperf", quick);
 *   rep.config("dimms", 4);
 *   rep.metric("mcn5_host_mcn_gbps", gbps);
 *   rep.target("mcn5_host_mcn_norm", 4.6);   // the paper's number
 *   return bench::writeReport(rep, argc, argv);
 *
 * The artifact schema is documented in README.md §Observability;
 * tools/run_benches.sh regenerates and validates all of them.
 */

#ifndef MCNSIM_BENCH_BENCH_UTIL_HH
#define MCNSIM_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/flow_stats.hh"
#include "sim/json.hh"
#include "sim/simulation.hh"

namespace mcnsim::bench {

/** Column-aligned table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0;
                 c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            std::printf("|");
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                const std::string &v =
                    c < cells.size() ? cells[c] : "";
                std::printf(" %-*s |",
                            static_cast<int>(width[c]), v.c_str());
            }
            std::printf("\n");
        };
        line(headers_);
        std::printf("|");
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::printf("-");
            std::printf("|");
        }
        std::printf("\n");
        for (const auto &r : rows_)
            line(r);
        std::fflush(stdout);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

/** True when --quick was passed (shorter windows for CI). */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    // Benches default to quick mode unless --full is given, so the
    // whole suite stays runnable on a laptop.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--full") == 0)
            return false;
    return true;
}

/** Worker count parsed from `--threads N` / `--threads=N`, kept in
 *  a process-wide slot so bench helpers that build their own
 *  Simulation can pick it up without threading a parameter through
 *  every call chain. 0 = flag absent = classic engine. */
inline unsigned benchThreads = 0;

/** Parse `--threads` (0 when absent) and remember it for
 *  applyThreads(). Record the result in the report's config block
 *  (`rep.config("threads", ...)`) so tools/check_perf.py can refuse
 *  to compare host-time metrics across differing worker counts. */
inline unsigned
threadsArg(int argc, char **argv)
{
    unsigned n = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            n = static_cast<unsigned>(
                std::max(1l, std::strtol(argv[i + 1], nullptr, 10)));
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            n = static_cast<unsigned>(
                std::max(1l, std::strtol(argv[i] + 10, nullptr, 10)));
    }
    benchThreads = n;
    return n;
}

/**
 * Switch @p s to the sharded parallel engine when `--threads` was
 * given. Call straight after constructing the Simulation, before
 * any system builder runs (sharding must be enabled while the
 * object list is still empty). Flag absent keeps the classic
 * single-queue engine, so default bench runs -- and the perf
 * baseline -- keep their exact event schedule. With the flag, the
 * modeled output is identical for every N (see DESIGN.md §9); only
 * wall clock changes.
 */
inline void
applyThreads(sim::Simulation &s)
{
    if (benchThreads == 0)
        return;
    s.enableSharding();
    s.setThreads(benchThreads);
}

/**
 * For benches whose workloads cannot shard (the MPI world of
 * fig10/fig11 shares coordinator state across all ranks' nodes):
 * drop a requested `--threads` with a note, mirroring the CLI's
 * shardable=false handling, and return the effective worker count
 * (always 1) for the report's config block.
 */
inline unsigned
refuseThreads(const char *why)
{
    if (benchThreads != 0) {
        std::fprintf(stderr,
                     "note: --threads ignored (%s; see DESIGN.md "
                     "section 9)\n",
                     why);
        benchThreads = 0;
    }
    return 1;
}

/** Path given via `--json <path>` or `--json=<path>`; "" if absent. */
inline std::string
jsonPath(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return argv[i] + 7;
    }
    return "";
}

/**
 * Machine-readable result artifact for one bench run. Collects the
 * configuration, the measured metrics and the paper's target values
 * while the bench runs, then serializes one BENCH_<name>.json
 * document (see README.md §Observability for the schema).
 */
class BenchReport
{
  public:
    BenchReport(std::string name, bool quick)
        : name_(std::move(name)), quick_(quick),
          start_(std::chrono::steady_clock::now())
    {}

    /** Record one configuration knob of this run. */
    void
    config(const std::string &key, double v)
    {
        config_.emplace_back(key, v);
    }

    /** Record one measured metric. */
    void
    metric(const std::string &key, double v)
    {
        metrics_.emplace_back(key, v);
    }

    /** Record the paper's value the metric is compared against. */
    void
    target(const std::string &key, double v)
    {
        targets_.emplace_back(key, v);
    }

    const std::string &name() const { return name_; }

    /** Serialize to @p os. */
    void
    write(std::ostream &os) const
    {
        using clock = std::chrono::steady_clock;
        double wall =
            std::chrono::duration<double>(clock::now() - start_)
                .count();

        sim::json::Writer w(os);
        w.beginObject();
        w.kv("bench", name_);
        w.kv("schema_version", std::uint64_t{1});
        w.kv("generator", "mcnsim");
        w.kv("mode", quick_ ? "quick" : "full");
        writeMap(w, "config", config_);
        writeMap(w, "metrics", metrics_);
        writeMap(w, "paper_targets", targets_);
        w.kv("wall_seconds", wall);
        w.endObject();
        os << "\n";
    }

    /** Write to @p path; complains on stderr and fails cleanly. */
    bool
    writeFile(const std::string &path) const
    {
        std::ofstream f(path);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        write(f);
        return f.good();
    }

  private:
    using Entries = std::vector<std::pair<std::string, double>>;

    static void
    writeMap(sim::json::Writer &w, const char *key,
             const Entries &entries)
    {
        w.key(key);
        w.beginObject();
        for (const auto &[k, v] : entries)
            w.kv(k, v);
        w.endObject();
    }

    std::string name_;
    bool quick_;
    std::chrono::steady_clock::time_point start_;
    Entries config_, metrics_, targets_;
};

/**
 * Fold the process-wide FlowTelemetry tables into @p rep: aggregate
 * end-to-end delivery-latency percentiles over every recorded flow
 * plus a per-hop path-latency breakdown, all in microseconds under
 * `<prefix>_` keys. Disables the telemetry gate. Pair with
 * `sim::FlowTelemetry::instance().enable()` immediately before the
 * one run the bench wants instrumented -- enable() resets the
 * tables, so each enable/collect pair scopes one run.
 */
inline void
collectFlowMetrics(BenchReport &rep, const std::string &prefix)
{
    auto &tel = sim::FlowTelemetry::instance();
    tel.disable();
    auto toUs = [](double ticks) {
        return ticks / static_cast<double>(sim::oneUs);
    };

    auto flows = tel.foldFlows();
    sim::LogBuckets e2e;
    for (const auto &[key, rec] : flows)
        e2e.merge(rec.latency);
    rep.metric(prefix + "_flows",
               static_cast<double>(flows.size()));
    if (e2e.count() > 0) {
        rep.metric(prefix + "_flow_p50_us",
                   toUs(e2e.percentile(50)));
        rep.metric(prefix + "_flow_p99_us",
                   toUs(e2e.percentile(99)));
        rep.metric(prefix + "_flow_p999_us",
                   toUs(e2e.percentile(99.9)));
    }
    for (const auto &[hop, rec] : tel.foldHops()) {
        if (rec.latency.count() == 0)
            continue;
        rep.metric(prefix + "_hop_" + hop + "_p50_us",
                   toUs(rec.latency.percentile(50)));
        rep.metric(prefix + "_hop_" + hop + "_p99_us",
                   toUs(rec.latency.percentile(99)));
    }
}

/** Standard bench epilogue: honour --json if present. Returns the
 *  process exit code. */
inline int
writeReport(const BenchReport &rep, int argc, char **argv)
{
    std::string path = jsonPath(argc, argv);
    if (path.empty())
        return 0;
    if (!rep.writeFile(path))
        return 1;
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
}

} // namespace mcnsim::bench

#endif // MCNSIM_BENCH_BENCH_UTIL_HH
