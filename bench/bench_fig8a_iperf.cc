/**
 * @file
 * Fig. 8(a): achieved iperf bandwidth of MCN at optimisation
 * levels mcn0..mcn5, for the host-mcn and mcn-mcn setups,
 * normalized to a conventional 10GbE network.
 *
 * Paper setup (Sec. V): one iperf server, four iperf clients
 * communicating simultaneously. Baseline: 5 conventional nodes on
 * 10GbE. host-mcn: server on the host, clients on 4 MCN DIMMs.
 * mcn-mcn: server on an MCN DIMM, clients on the host and the
 * remaining DIMMs.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "sim/flow_stats.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

double
baseline10GbE(sim::Tick duration)
{
    sim::Simulation s;
    bench::applyThreads(s);
    ClusterSystemParams p;
    p.numNodes = 5;
    ClusterSystem sys(s, p);
    auto r = runIperf(s, sys, 0, {1, 2, 3, 4}, duration);
    return r.gbps;
}

double
mcnRun(int level, bool host_server, sim::Tick duration)
{
    sim::Simulation s;
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = 4;
    p.config = McnConfig::level(level);
    McnSystem sys(s, p);

    std::size_t server;
    std::vector<std::size_t> clients;
    if (host_server) {
        server = 0;             // host
        clients = {1, 2, 3, 4}; // the four DIMMs
    } else {
        server = 1;             // first DIMM
        clients = {0, 2, 3, 4}; // host + remaining DIMMs
    }
    auto r = runIperf(s, sys, server, clients, duration);
    return r.gbps;
}

} // namespace

int
main(int argc, char **argv)
{
    using bench::fmt;
    bool quick = bench::quickMode(argc, argv);
    sim::Tick duration =
        quick ? 4 * sim::oneMs : 20 * sim::oneMs;

    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("fig8a_iperf", quick);
    rep.config("threads", threads ? threads : 1);
    rep.config("dimms", 4);
    rep.config("duration_ms",
               sim::ticksToSeconds(duration) * 1e3);

    std::printf("== Fig. 8(a): iperf bandwidth, normalized to "
                "10GbE (duration %.0f ms %s) ==\n",
                sim::ticksToSeconds(duration) * 1e3,
                quick ? "quick" : "full");

    double base = baseline10GbE(duration);
    std::printf("10GbE baseline: %.2f Gbit/s\n\n", base);
    rep.metric("baseline_10gbe_gbps", base);

    bench::Table t({"config", "host-mcn Gbps", "host-mcn norm",
                    "mcn-mcn Gbps", "mcn-mcn norm"});
    for (int level = 0; level <= 5; ++level) {
        // Instrument the headline configuration (mcn5 host-mcn)
        // with flow telemetry: the artifact then carries per-flow
        // delivery percentiles and the per-hop path breakdown next
        // to the bandwidth number. Telemetry only observes, so the
        // modeled Gbps is unchanged (the perf gate checks this).
        if (level == 5)
            sim::FlowTelemetry::instance().enable();
        double hm = mcnRun(level, true, duration);
        if (level == 5)
            bench::collectFlowMetrics(rep, "mcn5_host_mcn");
        double mm = mcnRun(level, false, duration);
        t.addRow({"mcn" + std::to_string(level),
                  fmt("%.2f", hm), fmt("%.2fx", hm / base),
                  fmt("%.2f", mm), fmt("%.2fx", mm / base)});
        std::string lv = std::to_string(level);
        rep.metric("mcn" + lv + "_host_mcn_gbps", hm);
        rep.metric("mcn" + lv + "_host_mcn_norm", hm / base);
        rep.metric("mcn" + lv + "_mcn_mcn_gbps", mm);
        rep.metric("mcn" + lv + "_mcn_mcn_norm", mm / base);
    }
    t.print();

    std::printf("\npaper shape: mcn0 ~1.3x (host-mcn); big jump at "
                "mcn3 (9KB MTU); mcn5 ~4.6x; mcn-mcn trails "
                "host-mcn by 10-20%%\n");
    rep.target("mcn0_host_mcn_norm", 1.3);
    rep.target("mcn5_host_mcn_norm", 4.6);
    return bench::writeReport(rep, argc, argv);
}
