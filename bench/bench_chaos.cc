/**
 * @file
 * Chaos soak: the iperf traffic mix (four MCN DIMMs streaming to
 * the host) run under each canned fault schedule, against a clean
 * run of the same setup. What this guards:
 *
 *  - the system *survives* sustained fault injection: every run is
 *    time-bounded, throughput stays nonzero, and the recovery
 *    machinery (ring-entry CRC, doorbell watchdogs, retransmit,
 *    degraded-node handling) is actually exercised;
 *  - fault injection is deterministic: with a fixed seed the fire
 *    counts and modeled outcomes are exact, so they live in the
 *    perf baseline like every other modeled metric;
 *  - the zero-cost gate holds: the clean run arms nothing, and its
 *    modeled result must match the plain iperf path bit-for-bit
 *    (the fig8a baseline catches drift there).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "sim/fault.hh"
#include "sim/flow_stats.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

constexpr std::uint64_t chaosSeed = 7;

struct Schedule
{
    const char *name;
    const char *specs; ///< ';'-separated fault specs; "" = clean
};

struct SoakResult
{
    double gbps = 0.0;
    std::uint64_t faultFires = 0;
    std::uint64_t ringCrcDrops = 0;
    std::uint64_t watchdogResyncs = 0;
    std::uint64_t dimmsDegraded = 0;
};

SoakResult
soak(const Schedule &sched, sim::Tick duration)
{
    auto &plan = sim::FaultPlan::instance();
    plan.clear();
    plan.setSeed(chaosSeed);
    std::string specs = sched.specs;
    std::size_t pos = 0;
    while (pos < specs.size()) {
        std::size_t semi = specs.find(';', pos);
        if (semi == std::string::npos)
            semi = specs.size();
        sim::FaultPlan::Spec sp;
        std::string err;
        if (!sim::FaultPlan::parseSpec(
                specs.substr(pos, semi - pos), &sp, &err))
            sim::fatal("bad fault spec in bench_chaos: ", err);
        plan.arm(sp);
        pos = semi + 1;
    }
    plan.resetRunState();

    sim::Simulation s(chaosSeed);
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = 4;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    // Per-schedule flow telemetry: the caller folds the tables into
    // the report right after soak() returns, so the artifact shows
    // how each schedule moves the delivery-latency tail and which
    // hop absorbs the damage. enable() resets the previous
    // schedule's tables. Observe-only: fires/drops/Gbps and the
    // fault RNG stream are identical with the gate off.
    sim::FlowTelemetry::instance().enable();
    auto r = runIperf(s, sys, 0, {1, 2, 3, 4}, duration);

    SoakResult out;
    out.gbps = r.gbps;
    out.faultFires = plan.totalFires();
    out.ringCrcDrops = sys.driver().ringCrcDrops();
    out.dimmsDegraded = sys.driver().dimmsDegraded();
    for (std::size_t i = 0; i < sys.dimmCount(); ++i) {
        out.ringCrcDrops += sys.dimm(i).driver().ringCrcDrops();
        out.watchdogResyncs +=
            sys.dimm(i).driver().watchdogResyncs();
    }
    plan.clear();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using bench::fmt;
    bool quick = bench::quickMode(argc, argv);
    sim::Tick duration = quick ? 4 * sim::oneMs : 20 * sim::oneMs;

    const std::vector<Schedule> schedules = {
        {"clean", ""},
        {"drop_heavy", "*.rx-irq-lost:p=0.05;*.alert-lost:p=0.05;"
                       "*.stall:p=0.01"},
        {"corrupt_heavy", "*.tx-corrupt:p=0.02"},
        {"crash_recover", "mcn1.hang:at=2ms,param=1ms"},
    };

    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("chaos", quick);
    rep.config("threads", threads ? threads : 1);
    rep.config("dimms", 4);
    rep.config("seed", static_cast<double>(chaosSeed));
    rep.config("duration_ms", sim::ticksToSeconds(duration) * 1e3);

    std::printf("== chaos soak: iperf under fault schedules "
                "(duration %.0f ms %s, seed %llu) ==\n",
                sim::ticksToSeconds(duration) * 1e3,
                quick ? "quick" : "full",
                static_cast<unsigned long long>(chaosSeed));

    bench::Table t({"schedule", "Gbps", "fires", "crcDrops",
                    "resyncs", "degraded"});
    int rc = 0;
    for (const auto &sched : schedules) {
        auto r = soak(sched, duration);
        bench::collectFlowMetrics(rep, sched.name);
        t.addRow({sched.name, fmt("%.2f", r.gbps),
                  std::to_string(r.faultFires),
                  std::to_string(r.ringCrcDrops),
                  std::to_string(r.watchdogResyncs),
                  std::to_string(r.dimmsDegraded)});
        std::string n = sched.name;
        rep.metric(n + "_gbps", r.gbps);
        rep.metric(n + "_fault_fires",
                   static_cast<double>(r.faultFires));
        rep.metric(n + "_ring_crc_drops",
                   static_cast<double>(r.ringCrcDrops));
        rep.metric(n + "_watchdog_resyncs",
                   static_cast<double>(r.watchdogResyncs));
        // Survival gates: chaos must degrade, not kill, the system.
        if (r.gbps <= 0.0) {
            std::fprintf(stderr,
                         "FAIL: schedule '%s' produced zero "
                         "throughput\n",
                         sched.name);
            rc = 1;
        }
        if (*sched.specs && r.faultFires == 0) {
            std::fprintf(stderr,
                         "FAIL: schedule '%s' armed but nothing "
                         "fired\n",
                         sched.name);
            rc = 1;
        }
    }
    t.print();

    std::printf("\nexpected shape: clean fastest; corrupt-heavy "
                "slowest (every corrupt costs a retransmit); all "
                "schedules complete and fire faults\n");
    if (rc)
        return rc;
    return bench::writeReport(rep, argc, argv);
}
