/**
 * @file
 * Chaos soak: the iperf traffic mix (four MCN DIMMs streaming to
 * the host) run under each canned fault schedule, against a clean
 * run of the same setup. What this guards:
 *
 *  - the system *survives* sustained fault injection: every run is
 *    time-bounded, throughput stays nonzero, and the recovery
 *    machinery (ring-entry CRC, doorbell watchdogs, retransmit,
 *    degraded-node handling) is actually exercised;
 *  - fault injection is deterministic: with a fixed seed the fire
 *    counts and modeled outcomes are exact, so they live in the
 *    perf baseline like every other modeled metric;
 *  - the zero-cost gate holds: the clean run arms nothing, and its
 *    modeled result must match the plain iperf path bit-for-bit
 *    (the fig8a baseline catches drift there).
 *
 * The second half is the rack-scale graceful-degradation gate
 * (DESIGN.md §12): the same traffic mix on multi-switch fabrics
 * (leaf-spine and fat-tree) under a spine kill and a rack
 * partition, with declared SLOs -- a goodput floor, a reconvergence
 * ceiling (worst liveness-detection lag <= one hello interval),
 * readmission on recovery (port-up events match port-down events),
 * fail-fast partition aborts only when the fabric is actually
 * partitioned, and zero post-recovery stragglers (a cross-rack ping
 * after the fault window must succeed).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "sim/fault.hh"
#include "sim/flow_stats.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

constexpr std::uint64_t chaosSeed = 7;

struct Schedule
{
    const char *name;
    const char *specs; ///< ';'-separated fault specs; "" = clean
};

struct SoakResult
{
    double gbps = 0.0;
    std::uint64_t faultFires = 0;
    std::uint64_t ringCrcDrops = 0;
    std::uint64_t watchdogResyncs = 0;
    std::uint64_t dimmsDegraded = 0;
};

void
armPlan(const char *raw)
{
    auto &plan = sim::FaultPlan::instance();
    plan.clear();
    plan.setSeed(chaosSeed);
    std::string specs = raw;
    std::size_t pos = 0;
    while (pos < specs.size()) {
        std::size_t semi = specs.find(';', pos);
        if (semi == std::string::npos)
            semi = specs.size();
        sim::FaultPlan::Spec sp;
        std::string err;
        if (!sim::FaultPlan::parseSpec(
                specs.substr(pos, semi - pos), &sp, &err))
            sim::fatal("bad fault spec in bench_chaos: ", err);
        plan.arm(sp);
        pos = semi + 1;
    }
    plan.resetRunState();
}

SoakResult
soak(const Schedule &sched, sim::Tick duration)
{
    auto &plan = sim::FaultPlan::instance();
    armPlan(sched.specs);

    sim::Simulation s(chaosSeed);
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = 4;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    // Per-schedule flow telemetry: the caller folds the tables into
    // the report right after soak() returns, so the artifact shows
    // how each schedule moves the delivery-latency tail and which
    // hop absorbs the damage. enable() resets the previous
    // schedule's tables. Observe-only: fires/drops/Gbps and the
    // fault RNG stream are identical with the gate off.
    sim::FlowTelemetry::instance().enable();
    auto r = runIperf(s, sys, 0, {1, 2, 3, 4}, duration);

    SoakResult out;
    out.gbps = r.gbps;
    out.faultFires = plan.totalFires();
    out.ringCrcDrops = sys.driver().ringCrcDrops();
    out.dimmsDegraded = sys.driver().dimmsDegraded();
    for (std::size_t i = 0; i < sys.dimmCount(); ++i) {
        out.ringCrcDrops += sys.dimm(i).driver().ringCrcDrops();
        out.watchdogResyncs +=
            sys.dimm(i).driver().watchdogResyncs();
    }
    plan.clear();
    return out;
}

// --- Rack-scale graceful-degradation gate (DESIGN.md §12) ----------

struct RackResult
{
    double gbps = 0.0;
    std::uint64_t faultFires = 0;
    /** TCP connections aborted by fabric partition notices, summed
     *  over every node. */
    std::uint64_t partitionAborts = 0;
    /** Port liveness edges, summed over every switch. */
    std::uint64_t portDown = 0;
    std::uint64_t portUp = 0;
    std::uint64_t unroutableDrops = 0;
    /** Worst liveness-detection lag over every switch. */
    sim::Tick worstLag = 0;
    /** Post-recovery cross-rack probes lost (straggler check). */
    int pingLost = 0;
    sim::Tick helloInterval = 0;
};

/**
 * One fabric soak: 2 racks x 2 nodes, 2 spines; node 0 (rack 0)
 * serves, nodes 1..3 stream to it, so client 1 is intra-rack and
 * clients 2, 3 cross the spines. After the traffic window a
 * cross-rack ping (node 2 -> node 0) probes for post-recovery
 * stragglers. Fault windows run 1 ms..2 ms inside a 4 ms soak, so
 * every run covers failure, degraded operation and readmission.
 */
RackResult
rackSoak(FabricTopology topo, const char *specs, sim::Tick duration)
{
    auto &plan = sim::FaultPlan::instance();
    armPlan(specs);

    sim::Simulation s(chaosSeed);
    bench::applyThreads(s);
    FabricSystemParams p;
    p.topology = topo;
    FabricSystem sys(s, p);

    sim::FlowTelemetry::instance().enable();
    auto r = runIperf(s, sys, 0, {1, 2, 3}, duration);

    RackResult out;
    out.gbps = r.gbps;
    out.faultFires = plan.totalFires();
    out.helloInterval = p.fabric.helloInterval;
    for (std::size_t i = 0; i < sys.nodeCount(); ++i)
        out.partitionAborts +=
            sys.node(i).stack->tcp().partitionAborts();
    auto fold = [&out](netdev::EthernetSwitch &sw) {
        out.portDown += sw.portDownEvents();
        out.portUp += sw.portUpEvents();
        out.unroutableDrops += sw.unroutableDrops();
        out.worstLag = std::max(out.worstLag, sw.worstDetectLag());
    };
    for (std::size_t i = 0; i < sys.leafCount(); ++i)
        fold(sys.leaf(i));
    for (std::size_t j = 0; j < sys.spineCount(); ++j)
        fold(sys.spine(j));

    // Straggler probe: by now every fault window is long over, so a
    // cross-rack ping must get through (sim::maxTick RTT = lost).
    auto pts = runPingSweep(s, sys, 2, 0, {56}, 3);
    out.pingLost = pts.empty() ? 3 : pts[0].lost;

    plan.clear();
    return out;
}

/** Declared SLOs for one rack scenario; returns nonzero on a miss
 *  and prints which SLO failed. */
int
checkRackSlo(const char *topo, const char *sched,
             const RackResult &r, double clean_gbps,
             bool expect_partition)
{
    int rc = 0;
    auto fail = [&](const char *msg) {
        std::fprintf(stderr, "FAIL: %s/%s: %s\n", topo, sched, msg);
        rc = 1;
    };
    if (r.faultFires == 0)
        fail("armed schedule never fired");
    // Goodput floor: the access links are the bottleneck, so ECMP
    // rerouting around a dead spine must hold >= half the clean
    // goodput; even a partition leaves the intra-rack client alive.
    if (expect_partition ? r.gbps <= 0.0
                         : r.gbps < 0.5 * clean_gbps)
        fail("goodput floor missed");
    // Reconvergence ceiling: the liveness sweep may trail an
    // observable failure by at most one hello interval.
    if (r.worstLag > r.helloInterval)
        fail("detection lag exceeded one hello interval");
    // Readmission: every port seen dead must be seen back alive.
    if (r.portDown == 0 || r.portDown != r.portUp)
        fail("port down/up events unbalanced (no readmission)");
    // Fail-fast is reserved for true partitions: a spine kill must
    // reroute without aborting anybody; a rack partition must abort
    // both cross-rack client connections.
    if (expect_partition ? r.partitionAborts < 2
                         : r.partitionAborts != 0)
        fail("partition-abort count out of spec");
    // Zero post-recovery stragglers.
    if (r.pingLost != 0)
        fail("post-recovery cross-rack ping lost probes");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    using bench::fmt;
    bool quick = bench::quickMode(argc, argv);
    sim::Tick duration = quick ? 4 * sim::oneMs : 20 * sim::oneMs;

    const std::vector<Schedule> schedules = {
        {"clean", ""},
        {"drop_heavy", "*.rx-irq-lost:p=0.05;*.alert-lost:p=0.05;"
                       "*.stall:p=0.01"},
        {"corrupt_heavy", "*.tx-corrupt:p=0.02"},
        {"crash_recover", "mcn1.hang:at=2ms,param=1ms"},
    };

    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("chaos", quick);
    rep.config("threads", threads ? threads : 1);
    rep.config("dimms", 4);
    rep.config("seed", static_cast<double>(chaosSeed));
    rep.config("duration_ms", sim::ticksToSeconds(duration) * 1e3);

    std::printf("== chaos soak: iperf under fault schedules "
                "(duration %.0f ms %s, seed %llu) ==\n",
                sim::ticksToSeconds(duration) * 1e3,
                quick ? "quick" : "full",
                static_cast<unsigned long long>(chaosSeed));

    bench::Table t({"schedule", "Gbps", "fires", "crcDrops",
                    "resyncs", "degraded"});
    int rc = 0;
    for (const auto &sched : schedules) {
        auto r = soak(sched, duration);
        bench::collectFlowMetrics(rep, sched.name);
        t.addRow({sched.name, fmt("%.2f", r.gbps),
                  std::to_string(r.faultFires),
                  std::to_string(r.ringCrcDrops),
                  std::to_string(r.watchdogResyncs),
                  std::to_string(r.dimmsDegraded)});
        std::string n = sched.name;
        rep.metric(n + "_gbps", r.gbps);
        rep.metric(n + "_fault_fires",
                   static_cast<double>(r.faultFires));
        rep.metric(n + "_ring_crc_drops",
                   static_cast<double>(r.ringCrcDrops));
        rep.metric(n + "_watchdog_resyncs",
                   static_cast<double>(r.watchdogResyncs));
        // Survival gates: chaos must degrade, not kill, the system.
        if (r.gbps <= 0.0) {
            std::fprintf(stderr,
                         "FAIL: schedule '%s' produced zero "
                         "throughput\n",
                         sched.name);
            rc = 1;
        }
        if (*sched.specs && r.faultFires == 0) {
            std::fprintf(stderr,
                         "FAIL: schedule '%s' armed but nothing "
                         "fired\n",
                         sched.name);
            rc = 1;
        }
    }
    t.print();

    std::printf("\nexpected shape: clean fastest; corrupt-heavy "
                "slowest (every corrupt costs a retransmit); all "
                "schedules complete and fire faults\n");

    // --- Rack-scale graceful degradation ---------------------------
    const sim::Tick rack_dur = 4 * sim::oneMs;
    const struct
    {
        const char *name;
        FabricTopology topo;
    } topos[] = {
        {"leafspine", FabricTopology::LeafSpine},
        {"fattree", FabricTopology::FatTree},
    };
    // 2 racks x 2 nodes, 2 spines: rack0's leaf uplinks are ports
    // 2 and 3 on both topologies (uplinksPerSpine = 1).
    const Schedule rack_scheds[] = {
        {"spine_kill", "spine0.crash:at=1ms,param=1ms"},
        {"rack_partition",
         "rack0.leaf.port2.down:at=1ms,param=1ms;"
         "rack0.leaf.port3.down:at=1ms,param=1ms"},
    };

    std::printf("\n== rack-scale degradation: fabric soaks with "
                "SLO gates (duration %.0f ms, seed %llu) ==\n",
                sim::ticksToSeconds(rack_dur) * 1e3,
                static_cast<unsigned long long>(chaosSeed));
    bench::Table rt({"topology", "scenario", "Gbps", "aborts",
                     "portDn", "portUp", "lag_us", "pingLost"});
    for (const auto &topo : topos) {
        auto clean = rackSoak(topo.topo, "", rack_dur);
        bench::collectFlowMetrics(
            rep, std::string(topo.name) + "_clean");
        rep.metric(std::string(topo.name) + "_clean_gbps",
                   clean.gbps);
        rt.addRow({topo.name, "clean", fmt("%.2f", clean.gbps), "0",
                   std::to_string(clean.portDown),
                   std::to_string(clean.portUp), "-", "0"});
        if (clean.gbps <= 0.0 || clean.partitionAborts != 0 ||
            clean.pingLost != 0) {
            std::fprintf(stderr,
                         "FAIL: %s/clean: fabric baseline "
                         "unhealthy\n",
                         topo.name);
            rc = 1;
        }
        for (const auto &sched : rack_scheds) {
            bool partition =
                std::string(sched.name) == "rack_partition";
            auto r = rackSoak(topo.topo, sched.specs, rack_dur);
            bench::collectFlowMetrics(
                rep,
                std::string(topo.name) + "_" + sched.name);
            std::string n =
                std::string(topo.name) + "_" + sched.name;
            rep.metric(n + "_gbps", r.gbps);
            rep.metric(n + "_fault_fires",
                       static_cast<double>(r.faultFires));
            rep.metric(n + "_partition_aborts",
                       static_cast<double>(r.partitionAborts));
            rep.metric(n + "_port_down_events",
                       static_cast<double>(r.portDown));
            rep.metric(n + "_port_up_events",
                       static_cast<double>(r.portUp));
            rep.metric(n + "_unroutable_drops",
                       static_cast<double>(r.unroutableDrops));
            rep.metric(n + "_worst_detect_lag_us",
                       sim::ticksToUs(r.worstLag));
            rt.addRow({topo.name, sched.name, fmt("%.2f", r.gbps),
                       std::to_string(r.partitionAborts),
                       std::to_string(r.portDown),
                       std::to_string(r.portUp),
                       fmt("%.1f", sim::ticksToUs(r.worstLag)),
                       std::to_string(r.pingLost)});
            rc |= checkRackSlo(topo.name, sched.name, r, clean.gbps,
                               partition);
        }
    }
    rt.print();
    std::printf("\nSLOs: goodput >= 0.5x clean on a spine kill "
                "(intra-rack survivors on a partition), detection "
                "lag <= one hello interval, port-up == port-down "
                "(readmission), fail-fast aborts only on true "
                "partitions, zero post-recovery stragglers\n");

    if (rc)
        return rc;
    return bench::writeReport(rep, argc, argv);
}
