/**
 * @file
 * Fig. 8(b)/(c): ping round-trip latency between host and an MCN
 * node (b) and between two MCN nodes (c), across payload sizes and
 * optimisation levels, normalized to the RTT of a 16-byte ping
 * between two 10GbE-connected hosts.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "sim/flow_stats.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

const std::vector<std::size_t> payloads = {16, 256, 1024, 4096,
                                           8192};

std::vector<dist::PingPoint>
baselinePing()
{
    sim::Simulation s;
    bench::applyThreads(s);
    ClusterSystemParams p;
    p.numNodes = 2;
    p.net.mtu = 9000; // so large pings are not fragmented
    ClusterSystem sys(s, p);
    return runPingSweep(s, sys, 0, 1, payloads, 5);
}

std::vector<dist::PingPoint>
mcnPing(int level, bool host_to_mcn)
{
    sim::Simulation s;
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(level);
    if (p.config.mtu < 9000)
        p.config.mtu = 9000; // match the baseline: no fragmentation
    McnSystem sys(s, p);
    if (host_to_mcn)
        return runPingSweep(s, sys, 0, 1, payloads, 5);
    return runPingSweep(s, sys, 1, 2, payloads, 5);
}

void
printSweep(const char *title, const char *prefix,
           const std::vector<dist::PingPoint> &base,
           bench::BenchReport &rep)
{
    using bench::fmt;
    double ref = static_cast<double>(base[0].avgRtt); // 16B 10GbE

    std::printf("\n== %s (normalized to 10GbE 16B RTT = %.2f us) "
                "==\n",
                title, sim::ticksToUs(base[0].avgRtt));
    bench::Table t({"config", "16B", "256B", "1KB", "4KB", "8KB"});

    std::vector<std::string> row = {"10GbE"};
    for (const auto &pt : base)
        row.push_back(
            fmt("%.2f", static_cast<double>(pt.avgRtt) / ref));
    t.addRow(row);

    bool host_side = std::string(title).find("(b)") !=
                     std::string::npos;
    for (int level = 0; level <= 5; ++level) {
        // Instrument the mcn5 sweep: echo flows give the artifact
        // per-flow RTT percentiles and a per-hop breakdown of where
        // the round trip goes (observe-only; RTTs are unchanged).
        if (level == 5)
            sim::FlowTelemetry::instance().enable();
        auto pts = mcnPing(level, host_side);
        if (level == 5)
            bench::collectFlowMetrics(
                rep, std::string(prefix) + "_mcn5");
        std::vector<std::string> r = {"mcn" +
                                      std::to_string(level)};
        for (const auto &pt : pts)
            r.push_back(fmt(
                "%.2f", static_cast<double>(pt.avgRtt) / ref));
        t.addRow(r);
        std::string key = std::string(prefix) + "_mcn" +
                          std::to_string(level);
        rep.metric(key + "_16B_norm",
                   static_cast<double>(pts.front().avgRtt) / ref);
        rep.metric(key + "_8KB_norm",
                   static_cast<double>(pts.back().avgRtt) / ref);
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("fig8bc_ping",
                           bench::quickMode(argc, argv));
    rep.config("threads", threads ? threads : 1);
    rep.config("dimms", 2);
    rep.config("pings_per_size", 5);

    auto base = baselinePing();
    rep.metric("baseline_16B_rtt_us",
               sim::ticksToUs(base[0].avgRtt));

    printSweep("Fig. 8(b): host <-> MCN node RTT", "fig8b", base,
               rep);
    printSweep("Fig. 8(c): MCN node <-> MCN node RTT", "fig8c",
               base, rep);

    std::printf("\npaper shape: mcn0 cuts 62-75%% of the 10GbE RTT "
                "(no PHY/switch); optimized levels always beat "
                "10GbE; mcn-mcn slightly worse than host-mcn "
                "(two ring crossings)\n");
    // The paper's mcn0 RTT is 25-38% of the 10GbE reference.
    rep.target("fig8b_mcn0_16B_norm", 0.38);
    return bench::writeReport(rep, argc, argv);
}
