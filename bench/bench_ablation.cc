/**
 * @file
 * Ablation studies for the design choices Secs. IV and VII call
 * out but do not plot:
 *
 *  1. HR-timer polling period sweep: RTT vs host CPU poll cost
 *     (the trade-off that motivates ALERT_N, Sec. IV-B).
 *  2. SRAM buffer sizing: iperf bandwidth vs ring capacity.
 *  3. ACK overhead: fraction of TCP segments that are pure ACKs
 *     (Sec. VII reports ~25% overhead).
 *  4. Single-channel ceiling: an MCN DIMM cannot exceed one
 *     channel's bandwidth (12.8 GB/s claim in Sec. VII).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

void
pollPeriodSweep()
{
    std::printf("-- Ablation 1: polling period vs RTT and host "
                "poll overhead (mcn0) --\n");
    bench::Table t({"period us", "RTT us", "poll scans", "hits",
                    "hit rate"});
    for (sim::Tick period :
         {1 * sim::oneUs, 2 * sim::oneUs, 5 * sim::oneUs,
          10 * sim::oneUs, 20 * sim::oneUs}) {
        sim::Simulation s;
        bench::applyThreads(s);
        McnSystemParams p;
        p.numDimms = 2;
        p.config = McnConfig::level(0);
        p.config.pollPeriod = period;
        McnSystem sys(s, p);
        auto pts = runPingSweep(s, sys, 0, 1, {64}, 10);
        double scans =
            static_cast<double>(sys.driver().pollScans());
        double hits =
            static_cast<double>(sys.driver().pollHits());
        t.addRow({bench::fmt("%.0f", sim::ticksToUs(period)),
                  bench::fmt("%.2f",
                             sim::ticksToUs(pts[0].avgRtt)),
                  bench::fmt("%.0f", scans),
                  bench::fmt("%.0f", hits),
                  bench::fmt("%.4f",
                             scans > 0 ? hits / scans : 0.0)});
    }
    t.print();
    std::printf("shorter periods cut latency but burn host cycles "
                "on empty polls -- the motivation for mcn1's "
                "ALERT_N interrupt\n\n");
}

void
sramSizeSweep(bool quick)
{
    std::printf("-- Ablation 2: SRAM buffer size vs iperf "
                "bandwidth (mcn3) --\n");
    bench::Table t({"sram KB", "host-mcn Gbps"});
    sim::Tick duration = quick ? 3 * sim::oneMs : 10 * sim::oneMs;
    for (std::size_t kb : {32, 64, 96, 192}) {
        sim::Simulation s;
        bench::applyThreads(s);
        McnSystemParams p;
        p.numDimms = 1;
        p.config = McnConfig::level(3);
        p.config.sramBytes = kb * 1024;
        McnSystem sys(s, p);
        auto r = runIperf(s, sys, 0, {1}, duration);
        t.addRow({std::to_string(kb),
                  bench::fmt("%.2f", r.gbps)});
    }
    t.print();
    std::printf("the rings must cover the bandwidth-delay product; "
                "past that, bigger SRAM stops paying (the paper "
                "picked 96 KB)\n\n");
}

void
ackOverhead(bool quick, bench::BenchReport &rep)
{
    std::printf("-- Ablation 3: TCP pure-ACK overhead (Sec. VII) "
                "--\n");
    sim::Simulation s;
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(3);
    McnSystem sys(s, p);
    sim::Tick duration = quick ? 3 * sim::oneMs : 10 * sim::oneMs;
    runIperf(s, sys, 0, {1}, duration);

    auto &host_tcp = sys.hostStack().tcp();
    auto &mcn_tcp = sys.dimm(0).stack().tcp();
    double total = static_cast<double>(host_tcp.segmentsOut() +
                                       mcn_tcp.segmentsOut());
    double acks = static_cast<double>(host_tcp.pureAcksOut() +
                                      mcn_tcp.pureAcksOut());
    double pct = total > 0 ? acks / total * 100 : 0;
    std::printf("segments: %.0f, pure ACKs: %.0f (%.1f%% of all "
                "segments; paper reports up to ~25%% overhead)\n\n",
                total, acks, pct);
    rep.metric("tcp_segments", total);
    rep.metric("pure_ack_pct", pct);
}

void
channelCeiling(bench::BenchReport &rep)
{
    std::printf("-- Ablation 4: single-channel ceiling --\n");
    auto t = mem::DramTiming::ddr4_3200();
    rep.metric("channel_peak_gbytes_s", t.peakBandwidthBps() / 1e9);
    std::printf("one DDR4-3200 channel peaks at %.1f GB/s "
                "(> 100 Gbit/s, so the channel is never the MCN "
                "bottleneck; the paper quotes 12.8 GB/s for its "
                "DDR4-1600 assumption)\n",
                t.peakBandwidthBps() / 1e9);
    std::printf("aggregate scales with DIMM count: each MCN DIMM "
                "adds its own isolated local channels\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("ablation", quick);
    rep.config("threads", threads ? threads : 1);
    std::printf("== Ablations (Secs. IV & VII design choices; %s) "
                "==\n\n",
                quick ? "quick" : "full");
    pollPeriodSweep();
    sramSizeSweep(quick);
    ackOverhead(quick, rep);
    channelCeiling(rep);
    // Sec. VII: up to ~25% pure-ACK overhead; 12.8 GB/s channel.
    rep.target("pure_ack_pct", 25.0);
    rep.target("channel_peak_gbytes_s", 12.8);
    return bench::writeReport(rep, argc, argv);
}
