/**
 * @file
 * Table III: breakdown of the end-to-end latency of transmitting
 * and receiving a single TCP packet (1.5KB and 9KB) over 10GbE and
 * over MCN (mcn0), by hardware/software component:
 *
 *   Driver-TX | DMA-TX | PHY | DMA-RX | Driver-RX | Total
 *
 * All values are normalized to the 10GbE total for the same packet
 * size, as in the paper. The breakdown is *measured* from per-
 * packet LatencyTrace stamps, not estimated.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "net/socket.hh"
#include "net/tcp.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;

namespace {

struct Breakdown
{
    double driverTx = 0, dmaTx = 0, phy = 0, dmaRx = 0,
           driverRx = 0, total = 0;
    bool valid = false;
};

/** Send one TCP data packet of @p payload bytes and trace it. */
Breakdown
measureOnePacket(sim::Simulation &s, System &sys,
                 std::size_t from_node, std::size_t to_node,
                 std::size_t payload, TcpLayer &rx_layer)
{
    Breakdown bd;
    LatencyTrace trace;
    bool captured = false;
    rx_layer.setDeliveryHook([&](const Packet &pkt) {
        if (!captured && pkt.size() >= payload / 2) {
            trace = pkt.trace;
            captured = true;
        }
    });

    bool server_up = false;
    auto server = [&]() -> sim::Task<void> {
        auto lst = tcpListen(*sys.node(to_node).stack, 6000);
        server_up = true;
        auto conn = co_await lst->accept();
        co_await conn->recvDrain(payload);
    };
    auto client = [&]() -> sim::Task<void> {
        while (!server_up)
            co_await sim::delayFor(s.eventQueue(), sim::oneUs);
        auto sock = co_await tcpConnect(
            *sys.node(from_node).stack,
            {sys.node(to_node).addr, 6000});
        if (!sock)
            co_return;
        co_await sock->sendPattern(payload);
    };
    sim::spawnDetached(s.eventQueue(), server());
    sim::spawnDetached(s.eventQueue(), client());
    runUntil(
        s, [&] { return captured; },
        s.curTick() + sim::secondsToTicks(0.2));
    rx_layer.setDeliveryHook(nullptr);
    if (!captured)
        return bd;

    using St = Stage;
    auto span = [&](St a, St b) {
        return static_cast<double>(trace.span(a, b));
    };
    bd.driverTx = span(St::StackTx, St::DriverTx);
    bd.dmaTx = span(St::DriverTx, St::DmaTx);
    bd.phy = span(St::DmaTx, St::Phy);
    bd.dmaRx = span(St::Phy, St::DmaRx);
    // Driver-RX covers ring clean + push up to the stack through
    // delivery (matching the paper's definition).
    if (trace.reached(St::DmaRx))
        bd.driverRx = span(St::DmaRx, St::Delivered);
    else
        bd.driverRx = span(St::DriverTx, St::Delivered);
    bd.total = span(St::StackTx, St::Delivered);
    bd.valid = bd.total > 0;
    return bd;
}

Breakdown
run10GbE(std::size_t payload, std::uint32_t mtu)
{
    sim::Simulation s;
    bench::applyThreads(s);
    ClusterSystemParams p;
    p.numNodes = 2;
    p.net.mtu = mtu;
    ClusterSystem sys(s, p);
    return measureOnePacket(s, sys, 0, 1, payload,
                            sys.node(1).stack->tcp());
}

Breakdown
runMcn0(std::size_t payload, std::uint32_t mtu)
{
    sim::Simulation s;
    bench::applyThreads(s);
    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(0);
    p.config.mtu = mtu;
    McnSystem sys(s, p);
    return measureOnePacket(s, sys, 0, 1, payload,
                            sys.dimm(0).stack().tcp());
}

void
printRow(bench::Table &t, const char *size, const char *type,
         const Breakdown &bd, double ref_total)
{
    using bench::fmt;
    if (!bd.valid) {
        t.addRow({size, type, "-", "-", "-", "-", "-", "-"});
        return;
    }
    t.addRow({size, type, fmt("%.3f", bd.driverTx / ref_total),
              fmt("%.3f", bd.dmaTx / ref_total),
              fmt("%.3f", bd.phy / ref_total),
              fmt("%.3f", bd.dmaRx / ref_total),
              fmt("%.3f", bd.driverRx / ref_total),
              fmt("%.3f", bd.total / ref_total)});
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = bench::threadsArg(argc, argv);
    bench::BenchReport rep("table3_breakdown",
                           bench::quickMode(argc, argv));
    rep.config("threads", threads ? threads : 1);
    rep.config("payload_1p5kb", 1400);
    rep.config("payload_9kb", 8800);

    std::printf("== Table III: single TCP packet latency breakdown "
                "(normalized to the 10GbE total per size) ==\n\n");

    bench::Table t({"Size", "Type", "Driver-TX", "DMA-TX", "PHY",
                    "DMA-RX", "Driver-RX", "Total"});

    // 1.5KB packet: standard MTU everywhere.
    auto ge_15 = run10GbE(1400, 1500);
    auto mcn_15 = runMcn0(1400, 1500);
    double ref15 = ge_15.total;
    printRow(t, "1.5KB", "10GbE", ge_15, ref15);
    printRow(t, "1.5KB", "MCN-0", mcn_15, ref15);

    // 9KB packet: jumbo frames on both systems.
    auto ge_9k = run10GbE(8800, 9000);
    auto mcn_9k = runMcn0(8800, 9000);
    double ref9 = ge_9k.total;
    printRow(t, "9KB", "10GbE", ge_9k, ref9);
    printRow(t, "9KB", "MCN-0", mcn_9k, ref9);

    t.print();

    std::printf("\nabsolute totals: 10GbE 1.5KB %.2f us, MCN-0 "
                "1.5KB %.2f us, 10GbE 9KB %.2f us, MCN-0 9KB "
                "%.2f us\n",
                ge_15.total / 1e6, mcn_15.total / 1e6,
                ge_9k.total / 1e6, mcn_9k.total / 1e6);
    std::printf("paper shape: MCN has no DMA-TX/PHY/DMA-RX; "
                "removing the PHY dominates the reduction; MCN "
                "Driver-TX/RX exceed 10GbE's because the CPU does "
                "the copies (mcn0 has no DMA engine)\n");

    rep.metric("10gbe_1p5kb_total_us", ge_15.total / 1e6);
    rep.metric("mcn0_1p5kb_total_us", mcn_15.total / 1e6);
    rep.metric("10gbe_9kb_total_us", ge_9k.total / 1e6);
    rep.metric("mcn0_9kb_total_us", mcn_9k.total / 1e6);
    if (ref15 > 0) {
        rep.metric("mcn0_1p5kb_total_norm", mcn_15.total / ref15);
        rep.metric("mcn0_1p5kb_phy_norm", mcn_15.phy / ref15);
    }
    if (ref9 > 0)
        rep.metric("mcn0_9kb_total_norm", mcn_9k.total / ref9);
    // MCN removes the DMA engines and the PHY entirely.
    rep.target("mcn0_1p5kb_phy_norm", 0.0);
    return bench::writeReport(rep, argc, argv);
}
