/**
 * @file
 * Determinism regression tests: two runs of the same scenario with
 * the same seed must produce bit-identical modeled state.
 *
 * The digest is StatRegistry::dumpJson (every modeled counter,
 * histogram and average in the simulation -- and no host-time meta
 * header) plus the final tick and event count. Any nondeterminism
 * that touches modeled behaviour -- iteration over pointer-keyed
 * containers, uninitialised reads, wall-clock leakage into model
 * code -- diverges some stat or the event schedule and trips these
 * tests. The CLI's --selfcheck flag applies the same oracle from
 * the command line.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/system_builder.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

/** Modeled end-state digest; see the file comment. */
std::string
digestOf(sim::Simulation &s)
{
    std::ostringstream os;
    s.statRegistry().dumpJson(os);
    os << "tick=" << s.curTick()
       << " events=" << s.eventQueue().eventsProcessed();
    return os.str();
}

std::string
runIperfOnce(std::uint64_t seed, int level)
{
    sim::Simulation s(seed);
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(level);
    McnSystem sys(s, p);
    runIperf(s, sys, 0, {1, 2}, 500 * sim::oneUs);
    return digestOf(s);
}

std::string
runPingOnce(std::uint64_t seed)
{
    sim::Simulation s(seed);
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);
    runPingSweep(s, sys, 0, 1, {56, 1024}, 3);
    return digestOf(s);
}

} // namespace

TEST(Determinism, IperfSameSeedBitIdentical)
{
    std::string a = runIperfOnce(42, 5);
    std::string b = runIperfOnce(42, 5);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Determinism, IperfBaselineConfigSameSeedBitIdentical)
{
    std::string a = runIperfOnce(7, 0);
    std::string b = runIperfOnce(7, 0);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Determinism, PingSameSeedBitIdentical)
{
    std::string a = runPingOnce(1);
    std::string b = runPingOnce(1);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsActuallyReachTheRng)
{
    // Guard against the digest being insensitive: a different seed
    // must still produce a *valid* run. (Seeds may or may not change
    // modeled stats depending on how much randomness the scenario
    // consumes, so only identity across equal seeds is asserted.)
    std::string a = runIperfOnce(1, 5);
    std::string b = runIperfOnce(2, 5);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
}
