/**
 * @file
 * Unit tests for the CPU execution model and the OS service layer
 * (IRQs, softirqs, HR-timers, cost model).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/cpu_cluster.hh"
#include "os/hrtimer.hh"
#include "os/interrupt.hh"
#include "os/kernel.hh"
#include "os/softirq.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::cpu;
using namespace mcnsim::sim;

TEST(CoreTest, ChargesDurationAtClockRate)
{
    Simulation s;
    ClockDomain clk("clk", 1e9); // 1 GHz: 1 cycle = 1 ns
    Core core(s, "core", clk);

    Tick done_at = 0;
    core.execute(1000, [&](Tick at) { done_at = at; });
    s.run();
    EXPECT_EQ(done_at, 1000 * oneNs);
    EXPECT_EQ(core.busyTicks(), 1000 * oneNs);
}

TEST(CoreTest, WorkSerialisesFifo)
{
    Simulation s;
    ClockDomain clk("clk", 1e9);
    Core core(s, "core", clk);

    std::vector<int> order;
    core.execute(100, [&](Tick) { order.push_back(1); });
    core.execute(100, [&](Tick) { order.push_back(2); });
    core.execute(100, [&](Tick) { order.push_back(3); });
    EXPECT_FALSE(core.idle());
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.curTick(), 300 * oneNs);
    EXPECT_TRUE(core.idle());
}

TEST(CoreTest, IrqWorkJumpsQueueButNotRunningSlot)
{
    Simulation s;
    ClockDomain clk("clk", 1e9);
    Core core(s, "core", clk);

    std::vector<int> order;
    core.execute(100, [&](Tick) { order.push_back(1); }); // running
    core.execute(100, [&](Tick) { order.push_back(2); }); // queued
    core.execute(50, [&](Tick) { order.push_back(9); },
                 /*irq=*/true); // jumps ahead of 2
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 9, 2}));
}

TEST(CoreTest, BacklogAccountsAllQueuedWork)
{
    Simulation s;
    ClockDomain clk("clk", 1e9);
    Core core(s, "core", clk);
    core.execute(100, nullptr);
    core.execute(200, nullptr);
    EXPECT_EQ(core.backlogClearsAt(), 300 * oneNs);
    s.run();
    EXPECT_EQ(core.backlogClearsAt(), s.curTick());
}

TEST(CoreTest, CoroutineRunResumesAfterCharge)
{
    Simulation s;
    ClockDomain clk("clk", 2e9); // 0.5 ns per cycle
    Core core(s, "core", clk);
    Tick resumed = 0;
    auto t = [&]() -> Task<void> {
        co_await core.run(1000);
        resumed = s.curTick();
    };
    spawnDetached(s.eventQueue(), t());
    s.run();
    EXPECT_EQ(resumed, 500 * oneNs);
}

TEST(CpuClusterTest, LeastLoadedBalances)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 4, 1e9);
    // Queue 8 equal slots through the balancer: each core gets 2.
    for (int i = 0; i < 8; ++i)
        cpus.execute(100, nullptr);
    s.run();
    EXPECT_EQ(s.curTick(), 200 * oneNs); // 2 rounds in parallel
    EXPECT_EQ(cpus.totalBusyTicks(), 800 * oneNs);
}

TEST(CpuClusterTest, ZeroCoresRejected)
{
    Simulation s;
    EXPECT_THROW(CpuCluster(s, "bad", 0, 1e9), FatalError);
}

TEST(IrqTest, HandlerRunsAfterEntryCost)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::IrqController irq(s, "irq", cpus);

    Tick handled_at = 0;
    irq.request(7, [&] { handled_at = s.curTick(); });
    irq.raise(7);
    s.run();
    // interruptEntry cycles at 1 GHz.
    EXPECT_EQ(handled_at,
              cpus.costs().interruptEntry * oneNs);
    EXPECT_EQ(irq.raisedCount(), 1u);
}

TEST(IrqTest, UnknownIrqCountedSpurious)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::IrqController irq(s, "irq", cpus);
    irq.raise(99); // nobody registered
    s.run();
    EXPECT_EQ(irq.raisedCount(), 1u);
}

TEST(IrqTest, DynamicLinesArePerControllerNotPerProcess)
{
    // allocateLine() draws from a per-controller counter: a node's
    // line numbers are a pure function of its own device
    // construction order. A process-global counter here (the
    // shard-static analyzer's first real find) made them depend on
    // how many controllers the process had already built.
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::IrqController first(s, "irq0", cpus);
    EXPECT_EQ(first.allocateLine(), 100u);
    EXPECT_EQ(first.allocateLine(), 101u);

    os::IrqController second(s, "irq1", cpus);
    EXPECT_EQ(second.allocateLine(), 100u);
    EXPECT_EQ(first.allocateLine(), 102u);
}

TEST(SoftirqTest, TaskletsSerialise)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 2, 1e9);
    os::SoftirqEngine softirq(s, "softirq", cpus);

    std::vector<int> order;
    softirq.schedule([&] { order.push_back(1); });
    softirq.schedule([&] { order.push_back(2); });
    softirq.schedule([&] { order.push_back(3); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(softirq.executed(), 3u);
}

TEST(SoftirqTest, HandlerMayRescheduleItself)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::SoftirqEngine softirq(s, "softirq", cpus);
    int rounds = 0;
    std::function<void()> poll = [&] {
        if (++rounds < 5)
            softirq.schedule(poll);
    };
    softirq.schedule(poll);
    s.run();
    EXPECT_EQ(rounds, 5);
}

TEST(HrTimerTest, PeriodicFiresUntilCancelled)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::HrTimer timer(s, "timer", cpus);

    int fires = 0;
    timer.startPeriodic(10 * oneUs, [&] {
        if (++fires == 5)
            timer.cancel();
    });
    s.run(oneMs);
    EXPECT_EQ(fires, 5);
    EXPECT_FALSE(timer.active());
    EXPECT_EQ(timer.fires(), 5u);
}

TEST(HrTimerTest, OneShotFiresOnce)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::HrTimer timer(s, "timer", cpus);
    int fires = 0;
    timer.startOnce(5 * oneUs, [&] { fires++; });
    s.run(oneMs);
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(timer.active());
}

TEST(HrTimerTest, CancelBeforeFireSuppresses)
{
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::HrTimer timer(s, "timer", cpus);
    int fires = 0;
    timer.startOnce(5 * oneUs, [&] { fires++; });
    timer.cancel();
    s.run(oneMs);
    EXPECT_EQ(fires, 0);
}

TEST(HrTimerTest, PollingChargesCpu)
{
    // The mcn0 trade-off: periodic polling consumes host cycles
    // even with no traffic.
    Simulation s;
    CpuCluster cpus(s, "cpus", 1, 1e9);
    os::HrTimer timer(s, "timer", cpus);
    timer.startPeriodic(5 * oneUs, [] {});
    s.run(oneMs);
    timer.cancel();
    // ~200 fires x hrtimerFire cycles.
    EXPECT_GT(cpus.totalBusyTicks(), 100 * 500 * oneNs / 2);
}

TEST(CostModelTest, HelpersScaleWithBytes)
{
    CostModel c;
    EXPECT_EQ(c.checksum(1000),
              static_cast<Cycles>(1000 * c.checksumPerByte));
    EXPECT_GT(c.copy(64 * 1024), c.copy(1024));
    // 16 B per cycle for cached copies.
    EXPECT_NEAR(static_cast<double>(c.copy(16384)), 1024.0, 2.0);
}

TEST(KernelTest, BundlesServices)
{
    Simulation s;
    os::KernelParams p;
    p.cores = 2;
    p.coreFreqHz = 2e9;
    p.memChannels = 2;
    os::Kernel k(s, "node", 3, p);

    EXPECT_EQ(k.nodeId(), 3);
    EXPECT_EQ(k.cpus().coreCount(), 2u);
    EXPECT_EQ(k.mem().channelCount(), 2u);
    EXPECT_EQ(k.netStack(), nullptr); // wired by the builder

    bool ran = false;
    // Captureless with reference parameters: a capturing lambda
    // invoked as a temporary would leave the coroutine reading its
    // captures through a dead closure object (ASan finding).
    auto proc = [](os::Kernel &kern, bool &flag) -> Task<void> {
        co_await kern.sleepFor(10 * oneUs);
        flag = true;
    };
    k.spawnProcess(proc(k, ran));
    s.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(s.curTick(), 10 * oneUs);
}
