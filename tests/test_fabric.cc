/**
 * @file
 * Rack-scale fabric tests (DESIGN.md §12): FabricSystem wiring
 * (addresses, MACs, uplink port layout for both topologies), the
 * deterministic ECMP flow hash and its live-member filtering, the
 * partition fail-fast path from a dead uplink group down to the
 * endpoint sockets, and crash recovery readmitting trunk ports
 * within the reconvergence SLO.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "net/icmp.hh"
#include "net/tcp.hh"
#include "netdev/ethernet_switch.hh"
#include "sim/fault.hh"
#include "sim/flow_stats.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;
using namespace mcnsim::sim;

namespace {

/** Scope armed fault specs so later tests start disarmed. */
struct PlanGuard
{
    FaultPlan &plan = FaultPlan::instance();

    PlanGuard() { plan.clear(); }
    ~PlanGuard() { plan.clear(); }

    void
    armAll(std::uint64_t seed,
           const std::vector<std::string> &specs)
    {
        plan.setSeed(seed);
        for (const auto &t : specs) {
            FaultPlan::Spec sp;
            std::string err;
            ASSERT_TRUE(FaultPlan::parseSpec(t, &sp, &err))
                << t << ": " << err;
            plan.arm(sp);
        }
        plan.resetRunState();
    }
};

/** An IPv4/TCP frame with the 5-tuple the ECMP hash reads. */
PacketPtr
tupleFrame(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sp,
           std::uint16_t dp)
{
    auto pkt = Packet::makePattern(100);
    TcpHeader th;
    th.srcPort = sp;
    th.dstPort = dp;
    th.flags = tcpAck;
    th.window = 500;
    th.push(*pkt, src, dst, false);
    Ipv4Header ih;
    ih.src = src;
    ih.dst = dst;
    ih.protocol = protoTcp;
    ih.totalLength =
        static_cast<std::uint16_t>(pkt->size() + Ipv4Header::size);
    ih.push(*pkt, false);
    EthernetHeader eh;
    eh.dst = MacAddr::fromId(2);
    eh.src = MacAddr::fromId(1);
    eh.push(*pkt);
    return pkt;
}

/** Sum of partition-notice-driven connection aborts over all
 *  endpoint stacks. */
std::uint64_t
totalPartitionAborts(FabricSystem &sys)
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < sys.nodeCount(); ++i)
        n += sys.node(i).stack->tcp().partitionAborts();
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// Wiring
// ---------------------------------------------------------------------

TEST(FabricWiring, LeafSpineAddressesMacsAndUplinks)
{
    Simulation s;
    FabricSystemParams p; // 2 racks x 2 nodes x 2 spines
    FabricSystem sys(s, p);

    EXPECT_EQ(sys.nodeCount(), 4u);
    EXPECT_EQ(sys.leafCount(), 2u);
    EXPECT_EQ(sys.spineCount(), 2u);
    EXPECT_EQ(sys.uplinksPerSpine(), 1u);
    EXPECT_EQ(sys.uplinkPortBase(), 2u);
    EXPECT_EQ(sys.uplinkPortCount(), 2u);
    EXPECT_EQ(sys.diameterHops(), 10u);

    // Node i = rack (i / nodesPerRack), member (i % nodesPerRack):
    // addresses encode (rack, member), MACs are unique.
    EXPECT_EQ(sys.addrOf(0).str(), "10.32.0.1");
    EXPECT_EQ(sys.addrOf(1).str(), "10.32.0.2");
    EXPECT_EQ(sys.addrOf(2).str(), "10.32.1.1");
    EXPECT_EQ(sys.addrOf(3).str(), "10.32.1.2");
    for (std::size_t i = 0; i < sys.nodeCount(); ++i)
        for (std::size_t j = i + 1; j < sys.nodeCount(); ++j)
            EXPECT_FALSE(sys.macOf(i) == sys.macOf(j))
                << "duplicate MAC between nodes " << i << "/" << j;

    // Every switch runs the fabric control plane; leaves have
    // access + uplink ports, spines one port per (rack, uplink).
    for (std::size_t r = 0; r < sys.leafCount(); ++r) {
        EXPECT_TRUE(sys.leaf(r).fabricEnabled());
        EXPECT_EQ(sys.leaf(r).portCount(), 4u);
    }
    for (std::size_t j = 0; j < sys.spineCount(); ++j) {
        EXPECT_TRUE(sys.spine(j).fabricEnabled());
        EXPECT_EQ(sys.spine(j).portCount(), 2u);
    }
}

TEST(FabricWiring, FatTreeSpreadsUplinksOverSpines)
{
    Simulation s;
    FabricSystemParams p;
    p.topology = FabricTopology::FatTree;
    p.nodesPerRack = 4;
    FabricSystem sys(s, p);

    // ceil(4 / 2) = 2 parallel uplinks per (leaf, spine): full
    // bisection -- as many uplink ports as access ports.
    EXPECT_EQ(sys.uplinksPerSpine(), 2u);
    EXPECT_EQ(sys.uplinkPortBase(), 4u);
    EXPECT_EQ(sys.uplinkPortCount(), 4u);
    EXPECT_EQ(sys.leaf(0).portCount(), 8u);
    EXPECT_EQ(sys.spine(0).portCount(), 4u);
}

// ---------------------------------------------------------------------
// ECMP
// ---------------------------------------------------------------------

TEST(FabricEcmp, FlowHashIsDeterministicAndTupleSensitive)
{
    const Ipv4Addr a(10, 32, 0, 1), b(10, 32, 1, 1);

    // Same 5-tuple, same bytes -> same hash, every time.
    auto p1 = tupleFrame(a, b, 40000, 5201);
    auto p2 = tupleFrame(a, b, 40000, 5201);
    const std::uint32_t h =
        netdev::EthernetSwitch::flowHash(*p1);
    EXPECT_EQ(h, netdev::EthernetSwitch::flowHash(*p2));

    // Varying one tuple field moves flows across ECMP members:
    // 64 source ports must not all collapse onto one hash.
    std::set<std::uint32_t> hashes;
    for (std::uint16_t sp = 40000; sp < 40064; ++sp)
        hashes.insert(netdev::EthernetSwitch::flowHash(
            *tupleFrame(a, b, sp, 5201)));
    EXPECT_GT(hashes.size(), 8u)
        << "flow hash barely spreads across source ports";
}

TEST(FabricEcmp, LiveMembersFollowPortLiveness)
{
    PlanGuard g;
    Simulation s;
    FabricSystemParams p;
    FabricSystem sys(s, p);

    // Cross-rack routes on a leaf use the full uplink group while
    // everything is live.
    const MacAddr remote = sys.macOf(2); // rack1 from rack0's leaf
    auto live = sys.leaf(0).liveEcmpPorts(remote);
    EXPECT_EQ(live, (std::vector<std::uint32_t>{2, 3}));

    // Holding uplink port 2 down shrinks the group to the
    // survivor the instant the admin-down window opens.
    g.armAll(7, {"rack0.leaf.port2.down:at=100us,param=1ms"});
    s.run(200 * oneUs);
    EXPECT_FALSE(sys.leaf(0).portLive(2));
    EXPECT_TRUE(sys.leaf(0).portLive(3));
    EXPECT_EQ(sys.leaf(0).liveEcmpPorts(remote),
              (std::vector<std::uint32_t>{3}));

    // Access ports are not trunks: they stay live without hellos.
    EXPECT_TRUE(sys.leaf(0).portLive(0));
}

// ---------------------------------------------------------------------
// Traffic + partition fail-fast
// ---------------------------------------------------------------------

TEST(FabricTraffic, CrossRackIperfDeliversWithinDiameter)
{
    Simulation s;
    FabricSystemParams p;
    FabricSystem sys(s, p);
    auto &tel = FlowTelemetry::instance();
    tel.enable();

    auto rep = runIperf(s, sys, 0, {1, 2, 3}, 500 * oneUs);
    tel.disable();

    EXPECT_GT(rep.gbps, 1.0) << "fabric goodput collapsed";
    EXPECT_EQ(rep.connections, 3);

    // Path-hop telemetry: no delivered packet may carry more
    // stamps than the topology diameter -- a longer path is a
    // forwarding loop.
    const auto lens = tel.foldPathLens();
    std::uint64_t delivered = 0;
    for (std::size_t n = 0; n < FlowTelemetry::kMaxPathLen; ++n) {
        if (n > sys.diameterHops()) {
            EXPECT_EQ(lens[n], 0u)
                << lens[n] << " packet(s) took " << n
                << " hops, over the diameter";
        }
        delivered += lens[n];
    }
    EXPECT_GT(delivered, 0u) << "no path-hop samples recorded";
}

TEST(FabricPartition, DeadUplinkGroupFailsSocketsFast)
{
    PlanGuard g;
    Simulation s;
    FabricSystemParams p;
    FabricSystem sys(s, p);

    // Both of rack0's uplinks go admin-down at 1 ms for 1 ms: rack0
    // is partitioned from rack1. The leaf's unreachable notifier
    // must abort the established cross-rack connections on both
    // sides instead of leaving them to retransmit into the void.
    g.armAll(7, {"rack0.leaf.port2.down:at=1ms,param=1ms",
                 "rack0.leaf.port3.down:at=1ms,param=1ms"});

    auto rep = runIperf(s, sys, 0, {1, 2, 3}, 4 * oneMs);
    EXPECT_GT(rep.gbps, 0.0);
    EXPECT_GE(totalPartitionAborts(sys), 2u)
        << "partition notices did not abort the cut connections";

    std::uint64_t notices = 0;
    for (std::size_t i = 0; i < sys.nodeCount(); ++i)
        notices += sys.node(i).stack->icmp().partitionNotices();
    EXPECT_GE(notices, 2u);

    // The intra-rack flow (node 1 -> node 0) never crossed the cut
    // and must be untouched.
    EXPECT_EQ(sys.node(1).stack->tcp().partitionAborts(), 0u);

    // After the window closes the fabric heals: a fresh cross-rack
    // ping sails through.
    auto pts = runPingSweep(s, sys, 2, 0, {56}, 3);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].lost, 0);
}

// ---------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------

TEST(FabricRecovery, SpineCrashDetectedAndReadmittedWithinSlo)
{
    PlanGuard g;
    Simulation s;
    FabricSystemParams p;
    FabricSystem sys(s, p);

    // spine0 crashes at 1 ms for 1 ms (state loss: its hello
    // history clears). Each leaf must see its uplink to spine0 die
    // within a dead interval and readmit it after recovery; spine1
    // keeps the ECMP groups non-empty throughout, so nothing
    // aborts.
    g.armAll(7, {"spine0.crash:at=1ms,param=1ms"});

    auto rep = runIperf(s, sys, 0, {1, 2, 3}, 4 * oneMs);
    EXPECT_GT(rep.gbps, 1.0);
    EXPECT_EQ(totalPartitionAborts(sys), 0u)
        << "a single spine loss must degrade, not partition";

    for (std::size_t r = 0; r < sys.leafCount(); ++r) {
        auto &leaf = sys.leaf(r);
        EXPECT_GE(leaf.portDownEvents(), 1u)
            << "leaf " << r << " never noticed the dead spine";
        EXPECT_EQ(leaf.portUpEvents(), leaf.portDownEvents())
            << "leaf " << r << " did not readmit the revived spine";
        EXPECT_LE(leaf.worstDetectLag(),
                  p.fabric.helloInterval)
            << "leaf " << r << " blew the reconvergence SLO";
        // All uplinks are live again at the end.
        for (std::size_t u = 0; u < sys.uplinkPortCount(); ++u)
            EXPECT_TRUE(leaf.portLive(static_cast<std::uint32_t>(
                sys.uplinkPortBase() + u)));
    }
}
