/**
 * @file
 * Tests for the mini-MPI runtime and the workload models, on the
 * scale-up node (loopback), the 10 GbE cluster, and the MCN server
 * -- the same binary-level transparency the paper demonstrates.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/mpi.hh"
#include "dist/npb.hh"
#include "dist/workload.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;
using namespace mcnsim::sim;

TEST(MpiBasics, SendRecvOnCluster)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    MpiWorld world(s, {sys.node(0), sys.node(1)});
    std::uint64_t got = 0;
    world.launch([&](MpiRank &r) -> Task<void> {
        if (r.rank() == 0) {
            co_await r.send(1, 10'000);
        } else {
            got = co_await r.recv(0);
        }
    });
    world.runToCompletion(s, secondsToTicks(5.0));
    ASSERT_TRUE(world.done());
    EXPECT_EQ(got, 10'000u);
}

TEST(MpiBasics, SendRecvWithinOneNodeUsesLoopback)
{
    Simulation s;
    ScaleUpSystem sys(s, 4);

    // Two ranks on the same node.
    MpiWorld world(s, {sys.node(0), sys.node(0)});
    std::uint64_t got = 0;
    world.launch([&](MpiRank &r) -> Task<void> {
        if (r.rank() == 0)
            co_await r.send(1, 4096);
        else
            got = co_await r.recv(0);
    });
    world.runToCompletion(s, secondsToTicks(5.0));
    ASSERT_TRUE(world.done());
    EXPECT_EQ(got, 4096u);
}

TEST(MpiBasics, BarrierSynchronisesRanks)
{
    Simulation s;
    ScaleUpSystem sys(s, 4);
    MpiWorld world(s, {sys.node(0), sys.node(0), sys.node(0)});

    std::vector<Tick> after(3);
    Tick slow_done = 0;
    world.launch([&](MpiRank &r) -> Task<void> {
        if (r.rank() == 2) {
            co_await delayFor(r.kernel().eventQueue(), oneMs);
            slow_done = r.kernel().curTick();
        }
        co_await r.barrier();
        after[static_cast<std::size_t>(r.rank())] =
            r.kernel().curTick();
    });
    world.runToCompletion(s, secondsToTicks(5.0));
    ASSERT_TRUE(world.done());
    for (auto t : after)
        EXPECT_GE(t, slow_done); // nobody passes before the sleeper
}

TEST(MpiCollectives, BcastReachesEveryRank)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 3;
    ClusterSystem sys(s, p);
    MpiWorld world(s, {sys.node(0), sys.node(1), sys.node(2)});
    int received = 0;
    world.launch([&](MpiRank &r) -> Task<void> {
        co_await r.bcast(0, 100'000);
        if (r.rank() != 0)
            received++;
    });
    world.runToCompletion(s, secondsToTicks(10.0));
    ASSERT_TRUE(world.done());
    EXPECT_EQ(received, 2);
}

TEST(MpiCollectives, AllReduceAndAllToAllComplete)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 3;
    p.config = McnConfig::level(3);
    McnSystem sys(s, p);

    // Ranks: host + 3 DIMMs.
    MpiWorld world(s, {sys.node(0), sys.node(1), sys.node(2),
                       sys.node(3)});
    int finished = 0;
    world.launch([&](MpiRank &r) -> Task<void> {
        co_await r.allreduce(64 * 1024);
        co_await r.alltoall(32 * 1024);
        co_await r.barrier();
        finished++;
    });
    world.runToCompletion(s, secondsToTicks(10.0));
    ASSERT_TRUE(world.done());
    EXPECT_EQ(finished, 4);
    EXPECT_GT(world.bytesMoved(), 4u * (64 + 3 * 32) * 1024u / 2);
}

TEST(MpiWorkloads, NpbSuiteSpecsAreSane)
{
    for (const auto &w : npb::suite()) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_GT(w.iterations, 0);
        // Strong scaling shrinks per-rank work.
        auto scaled = w.scaledTo(16);
        EXPECT_LE(scaled.memBytesPerIter, w.memBytesPerIter);
        EXPECT_LE(scaled.computeCyclesPerIter,
                  w.computeCyclesPerIter);
    }
    // ep is compute-dominated; mg is memory-dominated.
    EXPECT_GT(npb::ep().computeCyclesPerIter,
              10 * npb::mg().computeCyclesPerIter);
    EXPECT_GT(npb::mg().memBytesPerIter,
              10 * npb::ep().memBytesPerIter);
}

TEST(MpiWorkloads, EpRunsOnScaleUpNode)
{
    Simulation s;
    ScaleUpSystem sys(s, 4);
    auto spec = npb::ep();
    spec.iterations = 2; // keep the test fast

    auto report = runMpiWorkload(
        s, sys, spec, {0, 0, 0, 0}, secondsToTicks(20.0));
    ASSERT_TRUE(report.completed);
    EXPECT_GT(report.makespan, 0u);
}

TEST(MpiWorkloads, MgRunsOnMcnServer)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    auto spec = npb::mg().scaledTo(3);
    spec.iterations = 2;
    auto report = runMpiWorkload(s, sys, spec, {0, 1, 2},
                                 secondsToTicks(20.0));
    ASSERT_TRUE(report.completed);
    EXPECT_GT(report.mpiBytes, 0u);
}

TEST(MpiWorkloads, SameWorkloadRunsUnchangedOnAllSystems)
{
    // The application-transparency claim: identical workload code
    // on scale-up, cluster, and MCN systems.
    auto spec = npb::cg().scaledTo(2);
    spec.iterations = 2;

    {
        Simulation s;
        ScaleUpSystem sys(s, 4);
        auto r = runMpiWorkload(s, sys, spec, {0, 0},
                                secondsToTicks(20.0));
        EXPECT_TRUE(r.completed) << "scale-up";
    }
    {
        Simulation s;
        ClusterSystemParams p;
        p.numNodes = 2;
        ClusterSystem sys(s, p);
        auto r = runMpiWorkload(s, sys, spec, {0, 1},
                                secondsToTicks(20.0));
        EXPECT_TRUE(r.completed) << "cluster";
    }
    {
        Simulation s;
        McnSystemParams p;
        p.numDimms = 1;
        p.config = McnConfig::level(0);
        McnSystem sys(s, p);
        auto r = runMpiWorkload(s, sys, spec, {0, 1},
                                secondsToTicks(20.0));
        EXPECT_TRUE(r.completed) << "mcn";
    }
}

TEST(Placement, AllCoresPlacementCoversEveryCore)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    McnSystem sys(s, p);
    auto placement = allCoresPlacement(sys);
    // host 8 cores + 2 DIMMs x 4 cores.
    EXPECT_EQ(placement.size(), 8u + 2u * 4u);
}
