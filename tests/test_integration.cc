/**
 * @file
 * End-to-end integration tests: ping and TCP across the baseline
 * 10 GbE cluster and across MCN systems at several optimisation
 * levels, exercising every layer from sockets down to DRAM.
 */

#include <gtest/gtest.h>

#include "core/system_builder.hh"
#include "net/icmp.hh"
#include "net/socket.hh"
#include "net/tcp.hh"
#include "net/udp.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;
using namespace mcnsim::sim;

namespace {

/** Run one ping and return the RTT (maxTick on failure). */
Tick
runPing(Simulation &s, NetStack &from, Ipv4Addr to,
        std::size_t payload)
{
    Tick rtt = maxTick;
    bool finished = false;
    auto task = [&]() -> Task<void> {
        rtt = co_await from.icmp().ping(to, payload);
        finished = true;
    };
    spawnDetached(s.eventQueue(), task());
    // Periodic MCN polling timers keep the queue busy forever; run
    // in slices and stop as soon as the ping resolves.
    Tick deadline = s.curTick() + secondsToTicks(0.5);
    while (!finished && s.curTick() < deadline)
        s.run(std::min(s.curTick() + 50 * oneUs, deadline));
    return rtt;
}

/** Bulk TCP transfer; returns bytes the server drained. */
std::size_t
runTcpTransfer(Simulation &s, NetStack &client_stack,
               NetStack &server_stack, Ipv4Addr server_addr,
               std::size_t bytes)
{
    std::size_t drained = 0;
    bool server_up = false;
    bool finished = false;

    auto server = [&]() -> Task<void> {
        auto listener = tcpListen(server_stack, 5001);
        server_up = true;
        auto conn = co_await listener->accept();
        drained = co_await conn->recvDrain(bytes);
        co_await conn->close();
        finished = true;
    };
    auto client = [&]() -> Task<void> {
        while (!server_up)
            co_await delayFor(s.eventQueue(), oneUs);
        auto sock = co_await tcpConnect(client_stack,
                                        {server_addr, 5001});
        EXPECT_TRUE(sock);
        if (!sock)
            co_return;
        co_await sock->sendPattern(bytes);
        co_await sock->close();
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), client());
    Tick deadline = s.curTick() + secondsToTicks(2.0);
    while (!finished && s.curTick() < deadline)
        s.run(std::min(s.curTick() + 200 * oneUs, deadline));
    return drained;
}

} // namespace

// ---------------------------------------------------------------------
// Baseline cluster
// ---------------------------------------------------------------------

TEST(ClusterIntegration, PingAcrossSwitch)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    Tick rtt = runPing(s, *sys.node(0).stack, sys.addrOf(1), 56);
    ASSERT_NE(rtt, maxTick) << "ping timed out";
    // Two 1 us links each way + switch + software: single-digit us
    // up to tens of us.
    EXPECT_GT(rtt, 4 * oneUs);
    EXPECT_LT(rtt, 100 * oneUs);
}

TEST(ClusterIntegration, PingRttGrowsWithPayload)
{
    Simulation s;
    ClusterSystemParams p;
    ClusterSystem sys(s, p);

    Tick small = runPing(s, *sys.node(0).stack, sys.addrOf(1), 16);
    Tick large = runPing(s, *sys.node(0).stack, sys.addrOf(1), 1400);
    ASSERT_NE(small, maxTick);
    ASSERT_NE(large, maxTick);
    EXPECT_GT(large, small);
}

TEST(ClusterIntegration, TcpBulkTransferDeliversAllBytes)
{
    Simulation s;
    ClusterSystemParams p;
    ClusterSystem sys(s, p);

    constexpr std::size_t bytes = 1 << 20;
    std::size_t drained =
        runTcpTransfer(s, *sys.node(0).stack, *sys.node(1).stack,
                       sys.addrOf(1), bytes);
    EXPECT_EQ(drained, bytes);
}

TEST(ClusterIntegration, TcpDataIntegrity)
{
    Simulation s;
    ClusterSystemParams p;
    ClusterSystem sys(s, p);

    std::vector<std::uint8_t> received;
    bool server_up = false;
    constexpr std::size_t n = 100'000;

    auto server = [&]() -> Task<void> {
        auto listener = tcpListen(*sys.node(1).stack, 5001);
        server_up = true;
        auto conn = co_await listener->accept();
        while (received.size() < n) {
            auto chunk = co_await conn->recv(65536);
            if (chunk.empty())
                break;
            received.insert(received.end(), chunk.begin(),
                            chunk.end());
        }
    };
    auto client = [&]() -> Task<void> {
        while (!server_up)
            co_await delayFor(s.eventQueue(), oneUs);
        auto sock = co_await tcpConnect(*sys.node(0).stack,
                                        {sys.addrOf(1), 5001});
        EXPECT_TRUE(sock);
        if (!sock)
            co_return;
        std::vector<std::uint8_t> data(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>((i * 7) & 0xff);
        co_await sock->send(std::move(data));
        co_await sock->close();
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), client());
    s.run(s.curTick() + secondsToTicks(2.0));

    ASSERT_EQ(received.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(received[i],
                  static_cast<std::uint8_t>((i * 7) & 0xff))
            << "at offset " << i;
}

TEST(ClusterIntegration, UdpDatagramAcrossSwitch)
{
    Simulation s;
    ClusterSystemParams p;
    ClusterSystem sys(s, p);

    std::vector<std::uint8_t> got;
    auto receiver = [&]() -> Task<void> {
        auto sock = sys.node(1).stack->udpSocket();
        sock->bind(9000);
        auto d = co_await sock->recvFrom();
        got = d.data;
    };
    auto sender = [&]() -> Task<void> {
        co_await delayFor(s.eventQueue(), 10 * oneUs);
        auto sock = sys.node(0).stack->udpSocket();
        sock->sendTo(sys.addrOf(1), 9000, {1, 2, 3, 4, 5});
    };
    spawnDetached(s.eventQueue(), receiver());
    spawnDetached(s.eventQueue(), sender());
    s.run(s.curTick() + secondsToTicks(0.1));
    EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------
// MCN system
// ---------------------------------------------------------------------

TEST(McnIntegration, HostPingsDimm)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    Tick rtt = runPing(s, sys.hostStack(), sys.dimmAddr(0), 56);
    ASSERT_NE(rtt, maxTick) << "host->mcn ping timed out";
    // No PHY: should be well under the 10GbE class RTT but gated by
    // the polling period.
    EXPECT_LT(rtt, 60 * oneUs);
    EXPECT_GT(rtt, oneUs / 2);
}

TEST(McnIntegration, DimmPingsHost)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    Tick rtt = runPing(s, sys.dimm(0).stack(), sys.hostAddr(), 56);
    ASSERT_NE(rtt, maxTick) << "mcn->host ping timed out";
    EXPECT_LT(rtt, 60 * oneUs);
}

TEST(McnIntegration, DimmPingsDimmThroughForwardingEngine)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    Tick rtt = runPing(s, sys.dimm(0).stack(), sys.dimmAddr(1), 56);
    ASSERT_NE(rtt, maxTick) << "mcn->mcn ping timed out";
    // The round trip crosses the host forwarding engine (F3) twice.
    EXPECT_GT(sys.driver().forwardedMcnToMcn(), 0u);
}

TEST(McnIntegration, AlertModeSkipsPeriodicPolling)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(1); // ALERT_N interrupts
    McnSystem sys(s, p);

    Tick rtt = runPing(s, sys.hostStack(), sys.dimmAddr(0), 56);
    ASSERT_NE(rtt, maxTick);
    // Interrupt-driven: no periodic poll scans should accumulate.
    EXPECT_EQ(sys.driver().pollScans(), 0u);
    EXPECT_GT(sys.dimm(0).iface().alertsRaised(), 0u);
}

TEST(McnIntegration, AlertLatencyBeatsPolling)
{
    auto rtt_at = [](int level) {
        Simulation s;
        McnSystemParams p;
        p.numDimms = 1;
        p.config = McnConfig::level(level);
        McnSystem sys(s, p);
        return runPing(s, sys.hostStack(), sys.dimmAddr(0), 56);
    };
    Tick poll = rtt_at(0);
    Tick alert = rtt_at(1);
    ASSERT_NE(poll, maxTick);
    ASSERT_NE(alert, maxTick);
    EXPECT_LT(alert, poll);
}

TEST(McnIntegration, TcpHostToDimm)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    constexpr std::size_t bytes = 512 * 1024;
    std::size_t drained = runTcpTransfer(
        s, sys.hostStack(), sys.dimm(0).stack(), sys.dimmAddr(0),
        bytes);
    EXPECT_EQ(drained, bytes);
}

TEST(McnIntegration, TcpDimmToDimm)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    constexpr std::size_t bytes = 256 * 1024;
    std::size_t drained = runTcpTransfer(
        s, sys.dimm(0).stack(), sys.dimm(1).stack(),
        sys.dimmAddr(1), bytes);
    EXPECT_EQ(drained, bytes);
}

TEST(McnIntegration, TcpWorksAtEveryOptimizationLevel)
{
    for (int level = 0; level <= 5; ++level) {
        Simulation s;
        McnSystemParams p;
        p.numDimms = 1;
        p.config = McnConfig::level(level);
        McnSystem sys(s, p);

        constexpr std::size_t bytes = 256 * 1024;
        std::size_t drained = runTcpTransfer(
            s, sys.hostStack(), sys.dimm(0).stack(),
            sys.dimmAddr(0), bytes);
        EXPECT_EQ(drained, bytes) << "at mcn" << level;
    }
}

TEST(McnIntegration, JumboMtuReducesSegmentCount)
{
    auto segments_at = [](int level) {
        Simulation s;
        McnSystemParams p;
        p.numDimms = 1;
        p.config = McnConfig::level(level);
        McnSystem sys(s, p);
        runTcpTransfer(s, sys.hostStack(), sys.dimm(0).stack(),
                       sys.dimmAddr(0), 512 * 1024);
        return sys.hostStack().tcp().segmentsOut();
    };
    auto small_mtu = segments_at(2); // 1.5 KB MTU
    auto jumbo = segments_at(3);     // 9 KB MTU
    EXPECT_GT(small_mtu, 3 * jumbo);
}

TEST(McnIntegration, BroadcastReachesAllDimms)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 3;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    // Broadcast a raw frame from DIMM 0 by sending to the
    // broadcast MAC through the driver's forwarding engine.
    auto task = [&]() -> Task<void> {
        auto pkt = Packet::makePattern(100);
        Ipv4Header ip;
        ip.src = sys.dimmAddr(0);
        ip.dst = Ipv4Addr(255, 255, 255, 255);
        ip.protocol = protoUdp;
        ip.totalLength =
            static_cast<std::uint16_t>(100 + Ipv4Header::size);
        ip.push(*pkt, true);
        EthernetHeader eth;
        eth.dst = MacAddr::broadcast();
        eth.src = sys.dimm(0).mac();
        eth.push(*pkt);
        sys.dimm(0).driver().xmit(pkt);
        co_return;
    };
    spawnDetached(s.eventQueue(), task());
    s.run(s.curTick() + secondsToTicks(0.05));

    // The other two DIMMs each received one copy.
    EXPECT_GE(sys.dimm(1).driver().rxMessages(), 1u);
    EXPECT_GE(sys.dimm(2).driver().rxMessages(), 1u);
}

TEST(McnIntegration, LatencyTraceHasNoPhyStage)
{
    // Table III: MCN has no DMA-TX/PHY/DMA-RX components.
    Simulation s;
    McnSystemParams p;
    p.numDimms = 1;
    p.config = McnConfig::level(0);
    McnSystem sys(s, p);

    runTcpTransfer(s, sys.hostStack(), sys.dimm(0).stack(),
                   sys.dimmAddr(0), 8 * 1024);
    // Indirectly verified via driver stats: messages crossed rings,
    // and no Ethernet device exists in the system.
    EXPECT_GT(sys.dimm(0).driver().rxMessages(), 0u);
}
