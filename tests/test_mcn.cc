/**
 * @file
 * Unit + property tests for the MCN hardware pieces: SRAM message
 * rings (Fig. 4), the MCN interface, ALERT_N coalescing, and the
 * Table I configuration levels.
 */

#include <gtest/gtest.h>

#include <deque>

#include "core/mcn_config.hh"
#include "mcn/alert_signal.hh"
#include "mcn/mcn_interface.hh"
#include "mcn/sram_buffer.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::mcn;
using mcnsim::sim::Rng;
using mcnsim::sim::Simulation;

namespace {

std::vector<std::uint8_t>
patterned(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i);
    return v;
}

} // namespace

TEST(MessageRingTest, FifoRoundTrip)
{
    MessageRing ring(16 * 1024);
    auto a = patterned(100, 1);
    auto b = patterned(2000, 2);
    EXPECT_TRUE(ring.enqueue(a.data(), a.size()));
    EXPECT_TRUE(ring.enqueue(b.data(), b.size()));
    EXPECT_EQ(ring.messagesEnqueued(), 2u);

    auto out_a = ring.dequeue();
    ASSERT_TRUE(out_a);
    EXPECT_EQ(out_a->bytes, a);
    auto out_b = ring.dequeue();
    ASSERT_TRUE(out_b);
    EXPECT_EQ(out_b->bytes, b);
    EXPECT_FALSE(ring.dequeue());
    EXPECT_TRUE(ring.empty());
}

TEST(MessageRingTest, RejectsWhenFull)
{
    MessageRing ring(4096);
    auto big = patterned(4096 - 3, 0); // footprint 4097 > 4096
    EXPECT_FALSE(ring.enqueue(big.data(), big.size()));

    auto fits = patterned(4092, 0); // footprint exactly 4096
    EXPECT_TRUE(ring.enqueue(fits.data(), fits.size()));
    EXPECT_EQ(ring.freeBytes(), 0u);
    auto one = patterned(1, 0);
    EXPECT_FALSE(ring.enqueue(one.data(), 1));
}

TEST(MessageRingTest, ZeroLengthRejected)
{
    MessageRing ring(4096);
    std::uint8_t dummy = 0;
    EXPECT_FALSE(ring.enqueue(&dummy, 0));
}

TEST(MessageRingTest, WrapsAroundCorrectly)
{
    MessageRing ring(4096);
    // Fill and drain repeatedly with sizes that force wrapping.
    for (int round = 0; round < 50; ++round) {
        auto msg = patterned(1500,
                             static_cast<std::uint8_t>(round));
        ASSERT_TRUE(ring.enqueue(msg.data(), msg.size()));
        auto out = ring.dequeue();
        ASSERT_TRUE(out);
        EXPECT_EQ(out->bytes, msg) << "round " << round;
    }
}

TEST(MessageRingTest, PropertyRandomOpsPreserveFifoAndBytes)
{
    Rng rng(1234);
    MessageRing ring(32 * 1024);
    std::deque<std::vector<std::uint8_t>> model;
    std::size_t model_bytes = 0;

    for (int op = 0; op < 5000; ++op) {
        if (rng.chance(0.55)) {
            std::size_t n = rng.uniformInt(1, 9000);
            auto msg = patterned(
                n, static_cast<std::uint8_t>(op & 0xff));
            bool fits = MessageRing::footprint(n) <=
                        ring.freeBytes();
            EXPECT_EQ(ring.enqueue(msg.data(), msg.size()), fits);
            if (fits) {
                model.push_back(std::move(msg));
                model_bytes += MessageRing::footprint(n);
            }
        } else {
            auto got = ring.dequeue();
            if (model.empty()) {
                EXPECT_FALSE(got);
            } else {
                ASSERT_TRUE(got);
                EXPECT_EQ(got->bytes, model.front());
                model_bytes -=
                    MessageRing::footprint(model.front().size());
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.usedBytes(), model_bytes);
        ASSERT_EQ(ring.empty(), model.empty());
    }
}

TEST(MessageRingTest, FrontLengthMatchesWithoutConsuming)
{
    MessageRing ring(8192);
    auto msg = patterned(777, 5);
    ring.enqueue(msg.data(), msg.size());
    auto len = ring.frontLength();
    ASSERT_TRUE(len);
    EXPECT_EQ(*len, 777u);
    EXPECT_EQ(ring.messagesDequeued(), 0u);
    auto out = ring.dequeue();
    ASSERT_TRUE(out);
    EXPECT_EQ(out->bytes.size(), 777u);
}

TEST(SramBufferTest, LayoutAndPollFlags)
{
    SramBuffer sram(96 * 1024);
    // Rings plus control fit inside the 96 KB budget.
    EXPECT_LE(sram.tx().capacityBytes() +
                  sram.rx().capacityBytes() +
                  SramBuffer::controlBytes,
              96u * 1024u);
    EXPECT_GE(sram.tx().capacityBytes(), 40u * 1024u);

    EXPECT_FALSE(sram.txPoll());
    sram.setTxPoll();
    EXPECT_TRUE(sram.txPoll());
    sram.clearTxPoll();
    EXPECT_FALSE(sram.txPoll());

    EXPECT_FALSE(sram.rxPoll());
    sram.setRxPoll();
    EXPECT_TRUE(sram.rxPoll());
}

TEST(SramBufferTest, TsoChunkFitsInRing)
{
    // Sec. IV-A: the drivers must guarantee space for the largest
    // chunk the stack can hand down.
    SramBuffer sram(96 * 1024);
    std::size_t tso_chunk = 40 * 1024 + 128; // chunk + headers
    EXPECT_GE(sram.tx().freeBytes(),
              MessageRing::footprint(tso_chunk));
    EXPECT_GE(sram.rx().freeBytes(),
              MessageRing::footprint(tso_chunk));
}

TEST(McnInterfaceTest, DepositSignalsFire)
{
    Simulation s;
    McnInterface iface(s, "iface", 96 * 1024);

    int rx_irqs = 0, alerts = 0;
    iface.setRxIrqHandler([&] { rx_irqs++; });
    iface.setAlertHandler([&] { alerts++; });

    iface.hostDepositedRx();
    EXPECT_EQ(rx_irqs, 1);
    EXPECT_TRUE(iface.sram().rxPoll());

    iface.mcnDepositedTx();
    EXPECT_EQ(alerts, 1);
    EXPECT_TRUE(iface.sram().txPoll());
}

TEST(McnInterfaceTest, NoAlertHandlerMeansNoAlertCount)
{
    Simulation s;
    McnInterface iface(s, "iface", 96 * 1024);
    iface.mcnDepositedTx();
    EXPECT_EQ(iface.alertsRaised(), 0u);
    EXPECT_TRUE(iface.sram().txPoll()); // flag still set for polling
}

TEST(AlertSignalTest, DeliversDimmIndexAfterIdentifyLatency)
{
    Simulation s;
    AlertSignal alert(s, "alert", 100 * sim::oneNs);
    std::vector<std::uint32_t> seen;
    std::vector<sim::Tick> when;
    alert.setHandler([&](std::uint32_t d) {
        seen.push_back(d);
        when.push_back(s.curTick());
    });

    alert.assertFrom(3);
    s.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 3u);
    EXPECT_EQ(when[0], 100 * sim::oneNs);
}

TEST(AlertSignalTest, CoalescesRepeatAssertionsWhileBusy)
{
    Simulation s;
    AlertSignal alert(s, "alert");
    int fired = 0;
    alert.setHandler([&](std::uint32_t) { fired++; });

    alert.assertFrom(0);
    alert.assertFrom(0); // same DIMM, still pending: coalesced
    alert.assertFrom(1); // different DIMM: queued
    s.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(alert.coalesced(), 1u);
    EXPECT_EQ(alert.assertions(), 3u);
}

TEST(McnConfigTest, TableOneLevelsAreCumulative)
{
    using mcnsim::core::McnConfig;
    auto l0 = McnConfig::level(0);
    EXPECT_FALSE(l0.alertInterrupt);
    EXPECT_FALSE(l0.checksumBypass);
    EXPECT_EQ(l0.mtu, 1500u);
    EXPECT_FALSE(l0.tso);
    EXPECT_FALSE(l0.dma);

    auto l1 = McnConfig::level(1);
    EXPECT_TRUE(l1.alertInterrupt);
    EXPECT_FALSE(l1.checksumBypass);

    auto l2 = McnConfig::level(2);
    EXPECT_TRUE(l2.checksumBypass);
    EXPECT_EQ(l2.mtu, 1500u);

    auto l3 = McnConfig::level(3);
    EXPECT_EQ(l3.mtu, 9000u);
    EXPECT_FALSE(l3.tso);

    auto l4 = McnConfig::level(4);
    EXPECT_TRUE(l4.tso);
    EXPECT_FALSE(l4.dma);

    auto l5 = McnConfig::level(5);
    EXPECT_TRUE(l5.alertInterrupt);
    EXPECT_TRUE(l5.checksumBypass);
    EXPECT_EQ(l5.mtu, 9000u);
    EXPECT_TRUE(l5.tso);
    EXPECT_TRUE(l5.dma);

    EXPECT_THROW(McnConfig::level(6), sim::FatalError);
    EXPECT_THROW(McnConfig::level(-1), sim::FatalError);
}

TEST(McnConfigTest, DescribeMentionsFeatures)
{
    using mcnsim::core::McnConfig;
    auto d = McnConfig::level(5).describe();
    EXPECT_NE(d.find("alert"), std::string::npos);
    EXPECT_NE(d.find("bypass"), std::string::npos);
    EXPECT_NE(d.find("9000"), std::string::npos);
    EXPECT_NE(d.find("tso"), std::string::npos);
    EXPECT_NE(d.find("dma"), std::string::npos);
}
