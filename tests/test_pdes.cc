/**
 * @file
 * Parallel-simulation (PDES) tests: the sharded engine's results
 * must be a pure function of the scenario, never of the worker
 * count, and its guard rails must fire loudly.
 *
 * The determinism oracle is the same modeled-state digest the
 * determinism suite and --selfcheck use: StatRegistry::dumpJson
 * (no host-time meta) plus final tick and event count. A sharded
 * run at N threads must byte-match the same run at 1 thread --
 * window boundaries and mailbox merge order depend only on queue
 * state, so thread scheduling can never reorder modeled events
 * (DESIGN.md §9).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "netdev/ethernet_link.hh"
#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

/** Modeled end-state digest (see file comment). */
std::string
digestOf(sim::Simulation &s)
{
    std::ostringstream os;
    s.prepareStatsDump();
    s.statRegistry().dumpJson(os);
    os << "tick=" << s.curTick() << " events=" << s.eventsProcessed();
    return os.str();
}

/** Cluster iperf, sharded per node, on @p threads workers. */
std::string
clusterIperfDigest(std::uint64_t seed, unsigned threads)
{
    sim::Simulation s(seed);
    s.enableSharding();
    s.setThreads(threads);
    ClusterSystemParams p;
    p.numNodes = 4;
    ClusterSystem sys(s, p);
    runIperf(s, sys, 0, {1, 2, 3}, 300 * sim::oneUs);
    return digestOf(s);
}

/** Multi-server MCN iperf, sharded per server. */
std::string
multiServerIperfDigest(std::uint64_t seed, unsigned threads)
{
    sim::Simulation s(seed);
    s.enableSharding();
    s.setThreads(threads);
    McnMultiServerParams p;
    p.numServers = 2;
    p.dimmsPerServer = 1;
    McnMultiServer sys(s, p);
    std::vector<std::size_t> clients;
    for (std::size_t i = 1; i < sys.nodeCount(); ++i)
        clients.push_back(i);
    runIperf(s, sys, 0, clients, 200 * sim::oneUs);
    return digestOf(s);
}

/** Cluster iperf on the classic single-queue engine. */
std::string
classicIperfDigest(std::uint64_t seed)
{
    sim::Simulation s(seed);
    ClusterSystemParams p;
    p.numNodes = 4;
    ClusterSystem sys(s, p);
    runIperf(s, sys, 0, {1, 2, 3}, 300 * sim::oneUs);
    return digestOf(s);
}

/** Multi-switch fabric iperf (ECMP + hello liveness), sharded per
 *  node and per switch. 0 threads = classic engine. */
std::string
fabricIperfDigest(std::uint64_t seed, unsigned threads,
                  FabricTopology topo = FabricTopology::LeafSpine)
{
    sim::Simulation s(seed);
    if (threads > 0) {
        s.enableSharding();
        s.setThreads(threads);
    }
    FabricSystemParams p;
    p.topology = topo;
    FabricSystem sys(s, p);
    runIperf(s, sys, 0, {1, 2, 3}, 300 * sim::oneUs);
    return digestOf(s);
}

/** Flow-telemetry artifact of a fabric iperf run (fixed meta, so
 *  classic and sharded engines must emit identical bytes). */
std::string
fabricFlowJson(std::uint64_t seed, unsigned threads)
{
    auto &tel = sim::FlowTelemetry::instance();
    sim::Simulation s(seed);
    if (threads > 0) {
        s.enableSharding();
        s.setThreads(threads);
    }
    FabricSystemParams p;
    FabricSystem sys(s, p);
    tel.enable();
    runIperf(s, sys, 0, {1, 2, 3}, 300 * sim::oneUs);
    tel.disable();
    std::ostringstream os;
    tel.exportJson(os, {{"scenario", "fabric-iperf"}});
    return os.str();
}

/** Restore the process-wide link burst default on scope exit. */
struct BurstDefaultGuard
{
    explicit BurstDefaultGuard(bool on)
    {
        netdev::EthernetLink::setBurstCoalescingDefault(on);
    }

    ~BurstDefaultGuard()
    {
        netdev::EthernetLink::setBurstCoalescingDefault(true);
    }
};

} // namespace

TEST(Pdes, BurstCoalescingInvisibleToModeledStateClassic)
{
    // The burst pump must not perturb the classic engine's modeled
    // state *or its event count*: the digest covers both.
    std::string off;
    {
        BurstDefaultGuard g(false);
        off = classicIperfDigest(42);
    }
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(classicIperfDigest(42), off);
}

TEST(Pdes, BurstCoalescingInvisibleToModeledStateSharded)
{
    // Same claim on the sharded engine, where same-shard links pump
    // and cross-shard links fall back to per-frame mailbox posts --
    // across worker counts on both sides of the toggle.
    std::string off1;
    {
        BurstDefaultGuard g(false);
        off1 = clusterIperfDigest(42, 1);
        ASSERT_FALSE(off1.empty());
        EXPECT_EQ(clusterIperfDigest(42, 4), off1);
    }
    EXPECT_EQ(clusterIperfDigest(42, 1), off1);
    EXPECT_EQ(clusterIperfDigest(42, 2), off1);
    EXPECT_EQ(clusterIperfDigest(42, 4), off1);
}

TEST(Pdes, RepeatedConstructionByteIdenticalAcrossThreadCounts)
{
    // The digest must be a pure function of (scenario, seed): a
    // second Simulation built in the same process -- at any worker
    // count -- must reproduce the first byte for byte. This is the
    // regression net for process-global construction-time state
    // (e.g. the NIC IRQ-line counter that moved into
    // os::IrqController::allocateLine).
    std::string first = clusterIperfDigest(42, 1);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(clusterIperfDigest(42, 1), first);
    EXPECT_EQ(clusterIperfDigest(42, 2), first);
    EXPECT_EQ(clusterIperfDigest(42, 4), first);
}

TEST(Pdes, ClusterIperfByteIdenticalAcrossThreadCounts)
{
    std::string one = clusterIperfDigest(42, 1);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, clusterIperfDigest(42, 2));
    EXPECT_EQ(one, clusterIperfDigest(42, 4));
}

TEST(Pdes, MultiServerIperfByteIdenticalAcrossThreadCounts)
{
    std::string one = multiServerIperfDigest(7, 1);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, multiServerIperfDigest(7, 2));
    EXPECT_EQ(one, multiServerIperfDigest(7, 4));
}

TEST(Pdes, FabricIperfByteIdenticalAcrossThreadCounts)
{
    // The multi-switch fabric (per-switch shards, hello control
    // plane, ECMP) is subject to the same oracle: worker count must
    // be invisible.
    std::string one = fabricIperfDigest(7, 1);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, fabricIperfDigest(7, 2));
    EXPECT_EQ(one, fabricIperfDigest(7, 4));

    std::string ft = fabricIperfDigest(7, 1, FabricTopology::FatTree);
    ASSERT_FALSE(ft.empty());
    EXPECT_EQ(ft, fabricIperfDigest(7, 2, FabricTopology::FatTree));
    EXPECT_EQ(ft, fabricIperfDigest(7, 4, FabricTopology::FatTree));
}

TEST(Pdes, FabricFlowTelemetryAgreesClassicVsSharded)
{
    // Event *counts* differ between the classic and sharded engines
    // (mailbox hops), so digests are not comparable -- but the
    // modeled traffic is: the flow-telemetry artifact (per-flow
    // bytes, RTTs, per-hop latency, path-length histogram) must be
    // byte-identical between the classic engine and a 4-worker
    // sharded run.
    std::string classic = fabricFlowJson(7, 0);
    ASSERT_FALSE(classic.empty());
    EXPECT_EQ(classic, fabricFlowJson(7, 4));
}

TEST(Pdes, FabricLookaheadDerivedFromAccessLinkLatency)
{
    sim::Simulation s;
    s.enableSharding();
    FabricSystemParams p; // 2 racks x 2 nodes + 2 leaves + 2 spines
    FabricSystem sys(s, p);
    // Default shard + one per switch (2 leaves, 2 spines) and one
    // per node (4).
    EXPECT_EQ(s.shardCount(), 9u);
    // The min edge is the lookahead; access and trunk links share
    // the default latency here.
    EXPECT_EQ(s.shardLookahead(),
              std::min(p.net.linkLatency, p.trunk.linkLatency));
}

TEST(Pdes, LookaheadDerivedFromLinkLatency)
{
    sim::Simulation s;
    s.enableSharding();
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);
    EXPECT_EQ(s.shardCount(), 3u); // switch shard + one per node
    EXPECT_EQ(s.shardLookahead(), p.net.linkLatency);
}

TEST(Pdes, UnshardedSimulationDegradesToNoOps)
{
    sim::Simulation s;
    EXPECT_FALSE(s.shardingEnabled());
    EXPECT_EQ(s.newShard(), 0u);
    EXPECT_EQ(s.shardCount(), 1u);
    EXPECT_EQ(s.shardLookahead(), sim::maxTick);
    // postCrossShard degrades to a plain schedule.
    int fired = 0;
    s.postCrossShard(0, 0, 10 * sim::oneNs,
                     sim::EventPriority::Default, "test.post",
                     [&] { fired++; });
    s.run(1 * sim::oneUs);
    EXPECT_EQ(fired, 1);
}

TEST(Pdes, CrossShardPostAtLookaheadExecutesOnTime)
{
    sim::Simulation s;
    s.enableSharding();
    std::size_t other = s.newShard();
    ASSERT_EQ(other, 1u);
    s.addShardEdge(0, other, 1 * sim::oneUs);

    sim::Tick fired = 0;
    s.shardQueue(0).schedule(
        [&] {
            sim::Tick when =
                s.shardQueue(0).curTick() + s.shardLookahead();
            s.postCrossShard(0, other, when,
                             sim::EventPriority::Default,
                             "test.cross", [&] {
                                 fired = s.shardQueue(other)
                                             .curTick();
                             });
        },
        100 * sim::oneNs, "test.src");
    s.run(10 * sim::oneUs);
    EXPECT_EQ(fired, 100 * sim::oneNs + 1 * sim::oneUs);
}

TEST(Pdes, CrossShardPostBelowHorizonPanics)
{
    sim::Simulation s;
    s.enableSharding();
    std::size_t other = s.newShard();
    s.addShardEdge(0, other, 1 * sim::oneUs);

    // An event that tries to deliver cross-shard *now*: below the
    // lookahead horizon, which the engine must refuse loudly (the
    // destination shard may already have run past this tick).
    s.shardQueue(0).schedule(
        [&] {
            s.postCrossShard(0, other, s.shardQueue(0).curTick(),
                             sim::EventPriority::Default,
                             "test.early", [] {});
        },
        100 * sim::oneNs, "test.src");
    try {
        s.run(10 * sim::oneUs);
        FAIL() << "expected a lookahead-violation panic";
    } catch (const sim::PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("lookahead horizon"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Pdes, ShardSetRunsWindowsAndAgreesOnFinalTick)
{
    sim::Simulation s;
    s.enableSharding();
    s.setThreads(2);
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);
    runPingSweep(s, sys, 0, 1, {56}, 2);
    ASSERT_NE(s.shardSet(), nullptr);
    EXPECT_GT(s.shardSet()->windowsRun(), 0u);
    // Every shard's clock agrees between run slices.
    for (std::size_t i = 0; i < s.shardCount(); ++i)
        EXPECT_EQ(s.shardQueue(i).curTick(), s.curTick());
}

#ifdef MCNSIM_CHECKED

TEST(PdesChecked, CrossShardDirectScheduleTrips)
{
    // The cross-shard lifetime rule (DESIGN.md §7, §9): while a
    // queue is dispatching, scheduling onto a *different* queue is
    // a shard-safety bug -- it must go through the mailbox API.
    sim::Simulation s;
    s.enableSharding();
    std::size_t other = s.newShard();
    s.addShardEdge(0, other, 1 * sim::oneUs);

    s.shardQueue(0).schedule(
        [&] {
            s.shardQueue(1).schedule([] {},
                                     s.curTick() + 2 * sim::oneUs,
                                     "test.direct");
        },
        100 * sim::oneNs, "test.src");
    try {
        s.run(10 * sim::oneUs);
        FAIL() << "expected a cross-shard schedule panic";
    } catch (const sim::PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("cross-shard"),
                  std::string::npos)
            << e.what();
    }
}

#endif // MCNSIM_CHECKED
