/**
 * @file
 * Unit tests for packet buffers, checksums, Ethernet/IPv4/ICMP/UDP
 * wire formats, and interface-table routing semantics.
 */

#include <gtest/gtest.h>

#include "net/checksum.hh"
#include "net/ethernet.hh"
#include "net/icmp.hh"
#include "net/ipv4.hh"
#include "net/packet.hh"
#include "net/tcp.hh"
#include "net/udp.hh"
#include "sim/random.hh"

using namespace mcnsim::net;
using mcnsim::sim::Rng;

TEST(PacketBuf, PushPullRoundTrip)
{
    auto pkt = Packet::makePattern(100, 7);
    EXPECT_EQ(pkt->size(), 100u);
    std::uint8_t *h = pkt->push(14);
    std::memset(h, 0xab, 14);
    EXPECT_EQ(pkt->size(), 114u);
    pkt->pull(14);
    EXPECT_EQ(pkt->size(), 100u);
    EXPECT_EQ(pkt->data()[0], 7);
}

TEST(PacketBuf, PushBeyondHeadroomGrows)
{
    auto pkt = Packet::makePattern(10, 0, /*headroom=*/4);
    pkt->push(100); // more than the 4-byte headroom
    EXPECT_EQ(pkt->size(), 110u);
}

TEST(PacketBuf, CloneIsDeep)
{
    auto pkt = Packet::makePattern(50, 1);
    auto copy = pkt->clone();
    copy->data()[0] = 0xff;
    EXPECT_NE(pkt->data()[0], copy->data()[0]);
    EXPECT_EQ(pkt->size(), copy->size());
}

TEST(PacketBuf, TrimShortens)
{
    auto pkt = Packet::makePattern(100);
    pkt->trim(40);
    EXPECT_EQ(pkt->size(), 40u);
}

TEST(PacketBuf, CloneIsCopyOnWrite)
{
    auto pkt = Packet::makePattern(1500, 3);
    auto c = pkt->clone();
    EXPECT_TRUE(pkt->sharesBufferWith(*c));
    // Read-only access keeps the buffer shared ...
    EXPECT_EQ(c->cdata()[0], 3);
    EXPECT_TRUE(pkt->sharesBufferWith(*c));
    // ... and the first write detaches the writer only.
    c->data()[0] = 0xee;
    EXPECT_FALSE(pkt->sharesBufferWith(*c));
    EXPECT_EQ(pkt->cdata()[0], 3);
    EXPECT_EQ(c->cdata()[0], 0xee);
}

TEST(PacketBuf, PullAndTrimKeepSharing)
{
    // View adjustments are not writes: a cloned packet can shed
    // headers (pull) or padding (trim) without copying bytes.
    auto pkt = Packet::makePattern(200, 9);
    auto c = pkt->clone();
    c->pull(14);
    c->trim(100);
    EXPECT_TRUE(pkt->sharesBufferWith(*c));
    EXPECT_EQ(c->size(), 100u);
    EXPECT_EQ(pkt->size(), 200u);
}

TEST(PacketBuf, PushOnSharedCloneLeavesSiblingIntact)
{
    auto pkt = Packet::makePattern(64, 5);
    auto c = pkt->clone();
    std::uint8_t *h = c->push(14);
    std::memset(h, 0xab, 14);
    EXPECT_FALSE(pkt->sharesBufferWith(*c));
    EXPECT_EQ(pkt->size(), 64u);
    EXPECT_EQ(pkt->cdata()[0], 5);
    EXPECT_EQ(c->size(), 78u);
    EXPECT_EQ(c->cdata()[14], 5);
}

TEST(PacketBuf, DetachCopiesLiveViewNotOriginalCapacity)
{
    // Regression: detach() used to size the private copy from the
    // *original* buffer, so a cloned jumbo frame that had pulled its
    // headers still paid a jumbo-sized copy on first write. The copy
    // must cover only [head, tail) plus standard slack.
    auto pkt = Packet::makePattern(8192, 3);
    auto c = pkt->clone();
    c->pull(8000); // live view is the 192-byte tail
    ASSERT_TRUE(pkt->sharesBufferWith(*c));
    c->data()[0] = 0xee; // CoW detach
    EXPECT_FALSE(pkt->sharesBufferWith(*c));
    // Initialised extent = headroom + live bytes, nowhere near the
    // 8 KB original (the class capacity may round up; len may not).
    EXPECT_LE(c->bufferLen(),
              Packet::defaultHeadroom + 192 + 64);
    EXPECT_GE(pkt->bufferLen(), 8192u);
    // Bytes survived the copy; the sibling is untouched.
    EXPECT_EQ(c->cdata()[0], 0xee);
    EXPECT_EQ(c->cdata()[1],
              static_cast<std::uint8_t>((8001 + 3) & 0xff));
    EXPECT_EQ(pkt->cdata()[8000],
              static_cast<std::uint8_t>((8000 + 3) & 0xff));
}

TEST(PacketBuf, PoolRecyclesBlocksAcrossPackets)
{
    auto classTotals = [] {
        std::uint64_t acquires = 0, carves = 0, recycles = 0;
        for (const auto &c : BufferPool::stats()) {
            acquires += c.acquires;
            carves += c.carves;
            recycles += c.recycles;
        }
        return std::array<std::uint64_t, 3>{acquires, carves,
                                            recycles};
    };

    auto before = classTotals();
    { auto p = Packet::makePattern(1500); }
    auto mid = classTotals();
    // The packet took at least one block (payload; the Packet object
    // itself rides in a class-0 block) and returned every one.
    EXPECT_GT(mid[0], before[0]);
    EXPECT_EQ(mid[2] - before[2], mid[0] - before[0]);

    // An identical allocation right after runs entirely from the
    // free lists: same classes were just recycled, so zero carves.
    { auto p = Packet::makePattern(1500); }
    auto fin = classTotals();
    EXPECT_GT(fin[0], mid[0]);
    EXPECT_EQ(fin[1], mid[1]) << "warm-cache alloc carved a block";
}

TEST(PacketBuf, PoolClassSelection)
{
    // Each traffic class lands in the intended size class: the
    // chosen capacity is the smallest class >= headroom + payload.
    auto cap = [](std::size_t payload) {
        return Packet::makePattern(payload)->bufferCapacity();
    };
    EXPECT_EQ(cap(64), 256u);
    EXPECT_EQ(cap(1500), 2048u);
    EXPECT_EQ(cap(9000), 10240u);
    // Beyond the largest class: exact heap block.
    EXPECT_EQ(cap(100000), 100000u + Packet::defaultHeadroom);
}

TEST(LatencyTraceTest, SpansComputed)
{
    LatencyTrace t;
    t.stamp(Stage::StackTx, 100);
    t.stamp(Stage::DriverTx, 250);
    t.stamp(Stage::Delivered, 900);
    EXPECT_EQ(t.span(Stage::StackTx, Stage::DriverTx), 150u);
    EXPECT_EQ(t.span(Stage::StackTx, Stage::Delivered), 800u);
    EXPECT_EQ(t.span(Stage::StackTx, Stage::Phy), 0u); // missing
    EXPECT_TRUE(t.reached(Stage::DriverTx));
    EXPECT_FALSE(t.reached(Stage::DmaRx));
}

TEST(LatencyTraceTest, TickZeroStampIsReached)
{
    // Tick 0 is a legal simulation time, not the "never reached"
    // sentinel (that is maxTick).
    LatencyTrace t;
    EXPECT_FALSE(t.reached(Stage::StackTx));
    t.stamp(Stage::StackTx, 0);
    t.stamp(Stage::Delivered, 50);
    EXPECT_TRUE(t.reached(Stage::StackTx));
    EXPECT_EQ(t.span(Stage::StackTx, Stage::Delivered), 50u);
}

TEST(Checksum, KnownVector)
{
    // RFC 1071 example-style check: verifying a checksummed buffer
    // yields zero.
    std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x73,
                                      0x00, 0x00, 0x40, 0x00,
                                      0x40, 0x11, 0x00, 0x00,
                                      0xc0, 0xa8, 0x00, 0x01,
                                      0xc0, 0xa8, 0x00, 0xc7};
    std::uint16_t c = checksum(data.data(), data.size());
    data[10] = static_cast<std::uint8_t>(c >> 8);
    data[11] = static_cast<std::uint8_t>(c & 0xff);
    EXPECT_EQ(checksum(data.data(), data.size()), 0);
}

TEST(Checksum, DetectsCorruption)
{
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> data(64);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        data[62] = data[63] = 0; // checksum field zeroed first
        std::uint16_t c = checksum(data.data(), data.size());
        data[62] = static_cast<std::uint8_t>(c >> 8);
        data[63] = static_cast<std::uint8_t>(c & 0xff);
        EXPECT_EQ(checksum(data.data(), data.size()), 0);
        // Flip one bit: checksum must not verify.
        std::size_t i = rng.uniformInt(0, 61);
        data[i] = static_cast<std::uint8_t>(
            data[i] ^ (1u << rng.uniformInt(0, 7)));
        EXPECT_NE(checksum(data.data(), data.size()), 0);
    }
}

TEST(Checksum, OddLengthHandled)
{
    std::vector<std::uint8_t> data = {1, 2, 3};
    EXPECT_NE(checksum(data.data(), data.size()), 0);
}

namespace {

/** Byte-pair RFC 1071 reference the optimized path must match. */
std::uint16_t
naiveChecksum(const std::uint8_t *p, std::size_t n,
              std::uint32_t seed)
{
    std::uint64_t sum = seed;
    for (std::size_t i = 0; i + 1 < n; i += 2)
        sum += (static_cast<std::uint32_t>(p[i]) << 8) | p[i + 1];
    if (n & 1)
        sum += static_cast<std::uint32_t>(p[n - 1]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

} // namespace

TEST(Checksum, MatchesNaiveReferenceAcrossLengthsAndOffsets)
{
    // The wide (64-bit, unrolled) checksum must agree with the naive
    // reference for every length class the unroll produces (0, odd
    // tails, each remainder bucket, jumbo) at aligned and unaligned
    // starting offsets, with and without a pseudo-header seed.
    Rng rng(2026);
    std::vector<std::uint8_t> buf(65536 + 8);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

    std::vector<std::size_t> lens = {0,  1,  2,  3,  4,    7,
                                     8,  9,  15, 16, 31,   32,
                                     33, 63, 64, 65, 1499, 1500,
                                     9000, 65536};
    for (int i = 0; i < 48; ++i)
        lens.push_back(rng.uniformInt(0, 65536));

    for (std::size_t len : lens) {
        std::size_t off = rng.uniformInt(0, 7);
        auto seed =
            static_cast<std::uint32_t>(rng.uniformInt(0, 0x1ffff));
        const std::uint8_t *p = buf.data() + off;
        EXPECT_EQ(checksumFold(checksumPartial(p, len, seed)),
                  naiveChecksum(p, len, seed))
            << "len=" << len << " off=" << off << " seed=" << seed;
    }
}

TEST(Mac, FormatAndBroadcast)
{
    auto m = MacAddr::fromId(0x123456);
    EXPECT_EQ(m.str(), "02:4d:43:12:34:56");
    EXPECT_FALSE(m.isBroadcast());
    EXPECT_TRUE(MacAddr::broadcast().isBroadcast());
    EXPECT_EQ(MacAddr::fromId(7), MacAddr::fromId(7));
}

TEST(Ethernet, HeaderRoundTrip)
{
    auto pkt = Packet::makePattern(60);
    EthernetHeader h;
    h.dst = MacAddr::fromId(1);
    h.src = MacAddr::fromId(2);
    h.type = ethTypeIpv4;
    h.push(*pkt);
    EXPECT_EQ(pkt->size(), 74u);

    auto parsed = EthernetHeader::pull(*pkt);
    EXPECT_EQ(parsed.dst, h.dst);
    EXPECT_EQ(parsed.src, h.src);
    EXPECT_EQ(parsed.type, ethTypeIpv4);
    EXPECT_EQ(pkt->size(), 60u);
}

TEST(Ipv4, AddrFormatting)
{
    Ipv4Addr a(10, 0, 0, 2);
    EXPECT_EQ(a.str(), "10.0.0.2");
    EXPECT_TRUE(Ipv4Addr(127, 0, 0, 1).isLoopback());
    EXPECT_TRUE(Ipv4Addr(127, 255, 1, 2).isLoopback());
    EXPECT_FALSE(a.isLoopback());
}

TEST(Ipv4, HeaderRoundTripWithChecksum)
{
    auto pkt = Packet::makePattern(100);
    Ipv4Header h;
    h.src = Ipv4Addr(10, 0, 0, 1);
    h.dst = Ipv4Addr(10, 0, 0, 2);
    h.protocol = protoTcp;
    h.totalLength = 120;
    h.id = 42;
    h.push(*pkt, true);

    auto parsed = Ipv4Header::pull(*pkt, true);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->src, h.src);
    EXPECT_EQ(parsed->dst, h.dst);
    EXPECT_EQ(parsed->protocol, protoTcp);
    EXPECT_EQ(parsed->totalLength, 120);
    EXPECT_EQ(parsed->id, 42);
}

TEST(Ipv4, CorruptHeaderRejectedUnlessBypassed)
{
    auto pkt = Packet::makePattern(10);
    Ipv4Header h;
    h.src = Ipv4Addr(1, 2, 3, 4);
    h.dst = Ipv4Addr(5, 6, 7, 8);
    h.totalLength = 30;
    h.push(*pkt, true);
    pkt->data()[12] ^= 0xff; // corrupt src address

    auto strict = Packet::make(pkt->bytes());
    EXPECT_FALSE(Ipv4Header::pull(*strict, true));

    // mcn2 semantics: bypassing the check accepts the header.
    auto bypass = Packet::make(pkt->bytes());
    EXPECT_TRUE(Ipv4Header::pull(*bypass, false));
}

TEST(Ipv4, ZeroChecksumHeaderAcceptedOnlyWhenBypassed)
{
    // mcn2 senders do not fill the checksum; a bypassing receiver
    // must accept, a strict one must reject.
    auto pkt = Packet::makePattern(10);
    Ipv4Header h;
    h.src = Ipv4Addr(1, 1, 1, 1);
    h.dst = Ipv4Addr(2, 2, 2, 2);
    h.totalLength = 30;
    h.push(*pkt, false);

    auto strict = Packet::make(pkt->bytes());
    EXPECT_FALSE(Ipv4Header::pull(*strict, true));
    auto bypass = Packet::make(pkt->bytes());
    EXPECT_TRUE(Ipv4Header::pull(*bypass, false));
}

TEST(InterfaceTableTest, PaperRoutingSemantics)
{
    // Host: own address + /32 point-to-point peer routes.
    InterfaceTable host;
    Ipv4Addr host_ip(10, 0, 0, 1);
    Ipv4Addr mcn0(10, 0, 0, 2), mcn1(10, 0, 0, 3);
    host.addOwn(host_ip);
    host.add(0, mcn0, SubnetMask::exact());
    host.add(1, mcn1, SubnetMask::exact());

    EXPECT_EQ(host.route(mcn0), 0);
    EXPECT_EQ(host.route(mcn1), 1);
    // Own address and loopback stay local.
    EXPECT_EQ(host.route(host_ip), InterfaceTable::loopbackIfindex);
    EXPECT_EQ(host.route(Ipv4Addr(127, 0, 0, 1)),
              InterfaceTable::loopbackIfindex);
    // Unknown destination: unroutable on the host.
    EXPECT_FALSE(host.route(Ipv4Addr(8, 8, 8, 8)));

    // MCN node: mask 0.0.0.0 forwards everything to the host...
    InterfaceTable mcn;
    mcn.addOwn(mcn0);
    mcn.add(0, mcn0, SubnetMask::any());
    EXPECT_EQ(mcn.route(host_ip), 0);
    EXPECT_EQ(mcn.route(mcn1), 0);
    EXPECT_EQ(mcn.route(Ipv4Addr(8, 8, 8, 8)), 0);
    // ...except loopback and its own address (Sec. III-B).
    EXPECT_EQ(mcn.route(Ipv4Addr(127, 0, 0, 1)),
              InterfaceTable::loopbackIfindex);
    EXPECT_EQ(mcn.route(mcn0), InterfaceTable::loopbackIfindex);
}

TEST(TcpWire, HeaderRoundTrip)
{
    Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
    auto pkt = Packet::makePattern(64);
    TcpHeader h;
    h.srcPort = 1234;
    h.dstPort = 5001;
    h.seq = 0xdeadbeef;
    h.ack = 0x12345678;
    h.flags = tcpAck | tcpPsh;
    h.window = 1000;
    h.push(*pkt, src, dst, true);

    auto parsed = TcpHeader::pull(*pkt, src, dst, true);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->srcPort, 1234);
    EXPECT_EQ(parsed->dstPort, 5001);
    EXPECT_EQ(parsed->seq, 0xdeadbeefu);
    EXPECT_EQ(parsed->ack, 0x12345678u);
    EXPECT_EQ(parsed->flags, tcpAck | tcpPsh);
    EXPECT_EQ(parsed->window, 1000);
    EXPECT_EQ(pkt->size(), 64u);
}

TEST(TcpWire, PayloadCorruptionCaughtByChecksum)
{
    Ipv4Addr src(1, 1, 1, 1), dst(2, 2, 2, 2);
    auto pkt = Packet::makePattern(32);
    TcpHeader h;
    h.srcPort = 1;
    h.dstPort = 2;
    h.push(*pkt, src, dst, true);
    pkt->data()[25] ^= 0x10; // corrupt payload

    EXPECT_FALSE(TcpHeader::pull(*pkt, src, dst, true));
}

TEST(TcpWire, WrongPseudoHeaderCaught)
{
    Ipv4Addr src(1, 1, 1, 1), dst(2, 2, 2, 2);
    auto pkt = Packet::makePattern(32);
    TcpHeader h;
    h.push(*pkt, src, dst, true);
    // Same bytes, different claimed addresses: must fail.
    EXPECT_FALSE(
        TcpHeader::pull(*pkt, Ipv4Addr(9, 9, 9, 9), dst, true));
}

TEST(TcpWire, ZeroChecksumMeansOffloadedAndIsAccepted)
{
    // A zero TCP checksum is the simulator's CHECKSUM_UNNECESSARY:
    // the sending device claimed a trusted medium (memory channel,
    // loopback) and skipped the fill. The receiver must accept it
    // even when asked to verify -- only *wrong* checksums drop.
    Ipv4Addr src(1, 1, 1, 1), dst(2, 2, 2, 2);
    auto pkt = Packet::makePattern(48);
    TcpHeader h;
    h.srcPort = 7;
    h.dstPort = 9;
    h.seq = 1234;
    h.flags = tcpAck;
    h.push(*pkt, src, dst, /*compute_checksum=*/false);

    auto parsed = TcpHeader::pull(*pkt, src, dst, true);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->checksum, 0);
    EXPECT_EQ(parsed->srcPort, 7);
    EXPECT_EQ(parsed->dstPort, 9);
    EXPECT_EQ(parsed->seq, 1234u);
    EXPECT_EQ(parsed->flags, tcpAck);
}

TEST(TcpWire, WindowFieldScalesAndSaturates)
{
    // The 16-bit window field carries units of windowScale bytes.
    // Both edges must survive the wire: a zero window (flow-control
    // stall, rescued by persist probes) and the saturated maximum,
    // which has to cover the socket's whole receive buffer or the
    // advertised window could never open fully.
    static_assert(std::uint64_t{0xffff} * TcpHeader::windowScale >=
                      TcpSocket::rcvBufCap,
                  "max advertisable window smaller than rcv buffer");

    Ipv4Addr src(1, 1, 1, 1), dst(2, 2, 2, 2);
    for (std::uint16_t w : {std::uint16_t{0}, std::uint16_t{0xffff}}) {
        auto pkt = Packet::makePattern(16);
        TcpHeader h;
        h.srcPort = 5;
        h.dstPort = 6;
        h.window = w;
        h.push(*pkt, src, dst, true);
        auto parsed = TcpHeader::pull(*pkt, src, dst, true);
        ASSERT_TRUE(parsed);
        EXPECT_EQ(parsed->window, w);
    }
}

TEST(UdpWire, HeaderRoundTrip)
{
    Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
    auto pkt = Packet::makePattern(200);
    UdpHeader h;
    h.srcPort = 7;
    h.dstPort = 9;
    h.push(*pkt, src, dst, true);

    auto parsed = UdpHeader::pull(*pkt, src, dst, true);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->srcPort, 7);
    EXPECT_EQ(parsed->dstPort, 9);
    EXPECT_EQ(parsed->length, 208);
    EXPECT_EQ(pkt->size(), 200u);
}

TEST(IcmpWire, EchoRoundTrip)
{
    auto pkt = Packet::makePattern(56);
    IcmpHeader h;
    h.type = icmpEchoRequest;
    h.id = 99;
    h.seqNo = 3;
    h.push(*pkt, true);

    auto parsed = IcmpHeader::pull(*pkt, true);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->type, icmpEchoRequest);
    EXPECT_EQ(parsed->id, 99);
    EXPECT_EQ(parsed->seqNo, 3);
}
