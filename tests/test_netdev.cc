/**
 * @file
 * Tests for the baseline network devices: links, the learning
 * switch, the NIC (rings, NAPI, interrupts) and hardware TSO
 * segmentation (the paper's O1-O4 steps on real bytes).
 */

#include <gtest/gtest.h>

#include "net/checksum.hh"
#include "net/tcp.hh"
#include "netdev/ethernet_link.hh"
#include "netdev/ethernet_switch.hh"
#include "netdev/loopback.hh"
#include "netdev/mac_fib.hh"
#include "netdev/nic.hh"
#include "os/kernel.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::net;
using namespace mcnsim::netdev;
using namespace mcnsim::sim;

namespace {

/** A link endpoint that records arrivals. */
class SinkEndpoint : public EtherEndpoint
{
  public:
    std::vector<PacketPtr> got;
    std::vector<Tick> when;
    Simulation *sim = nullptr;

    void
    receiveFrame(PacketPtr pkt) override
    {
        got.push_back(std::move(pkt));
        if (sim)
            when.push_back(sim->curTick());
    }
};

PacketPtr
framedPacket(std::size_t payload, MacAddr dst, MacAddr src)
{
    auto pkt = Packet::makePattern(payload);
    EthernetHeader eth;
    eth.dst = dst;
    eth.src = src;
    eth.push(*pkt);
    return pkt;
}

/** Build a TSO super-frame with full Ethernet+IP+TCP headers. */
PacketPtr
tsoFrame(std::size_t payload, std::uint32_t mss, bool checksummed)
{
    auto pkt = Packet::makePattern(payload);
    pkt->tsoMss = mss;
    TcpHeader th;
    th.srcPort = 10;
    th.dstPort = 20;
    th.seq = 1000;
    th.ack = 77;
    th.flags = tcpAck | tcpPsh;
    th.window = 500;
    th.push(*pkt, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
            checksummed);
    Ipv4Header ih;
    ih.src = Ipv4Addr(1, 1, 1, 1);
    ih.dst = Ipv4Addr(2, 2, 2, 2);
    ih.protocol = protoTcp;
    ih.id = 5;
    ih.totalLength =
        static_cast<std::uint16_t>(pkt->size() + Ipv4Header::size);
    ih.push(*pkt, checksummed);
    EthernetHeader eh;
    eh.dst = MacAddr::fromId(2);
    eh.src = MacAddr::fromId(1);
    eh.push(*pkt);
    return pkt;
}

} // namespace

TEST(LinkTest, SerializationPlusLatency)
{
    Simulation s;
    EthernetLink link(s, "link", 10e9, oneUs);
    SinkEndpoint a, b;
    b.sim = &s;
    link.attachA(&a);
    link.attachB(&b);

    auto pkt = Packet::makePattern(1250); // 1 us at 10 Gbps
    link.sendFrom(&a, pkt);
    s.run();
    ASSERT_EQ(b.got.size(), 1u);
    // 1 us serialization + 1 us propagation.
    EXPECT_EQ(b.when[0], 2 * oneUs);
    EXPECT_TRUE(b.got[0]->trace.reached(Stage::Phy));
}

TEST(LinkTest, FramesSerialiseFifo)
{
    Simulation s;
    EthernetLink link(s, "link", 10e9, 0);
    SinkEndpoint a, b;
    b.sim = &s;
    link.attachA(&a);
    link.attachB(&b);

    link.sendFrom(&a, Packet::makePattern(1250));
    link.sendFrom(&a, Packet::makePattern(1250));
    EXPECT_EQ(link.backlogBytes(&a), 2500u);
    s.run();
    ASSERT_EQ(b.got.size(), 2u);
    EXPECT_EQ(b.when[0], oneUs);
    EXPECT_EQ(b.when[1], 2 * oneUs); // back to back, no overlap
    EXPECT_EQ(link.backlogBytes(&a), 0u);
}

TEST(LinkTest, DirectionsAreIndependent)
{
    Simulation s;
    EthernetLink link(s, "link", 10e9, 0);
    SinkEndpoint a, b;
    a.sim = b.sim = &s;
    link.attachA(&a);
    link.attachB(&b);

    link.sendFrom(&a, Packet::makePattern(1250));
    link.sendFrom(&b, Packet::makePattern(1250));
    s.run();
    // Full duplex: both arrive at 1 us, not serialized together.
    ASSERT_EQ(a.got.size(), 1u);
    ASSERT_EQ(b.got.size(), 1u);
    EXPECT_EQ(a.when[0], oneUs);
    EXPECT_EQ(b.when[0], oneUs);
}

TEST(LinkTest, BurstPathMatchesSingletonDeliveries)
{
    // The burst pump must be an invisible optimisation: same
    // arrival ticks, same order, same bytes as the one-event-per-
    // frame path, across idle starts and busy pile-ups.
    struct Arrival
    {
        Tick when;
        std::size_t size;
        std::uint8_t first;

        bool
        operator==(const Arrival &o) const
        {
            return when == o.when && size == o.size &&
                   first == o.first;
        }
    };
    auto runOnce = [](bool burst) {
        Simulation s;
        EthernetLink link(s, "link", 10e9, oneUs);
        link.setBurstCoalescing(burst);
        SinkEndpoint a, b;
        b.sim = &s;
        link.attachA(&a);
        link.attachB(&b);
        // Staggered sends: bursts of 4 back-to-back frames (the
        // link is busy, arrivals queue) separated by idle gaps (the
        // pump has to re-arm from scratch).
        for (int g = 0; g < 5; ++g) {
            s.eventQueue().schedule(
                [&link, &a, g] {
                    for (int i = 0; i < 4; ++i)
                        link.sendFrom(
                            &a, Packet::makePattern(
                                    200 + 190 * i,
                                    static_cast<std::uint8_t>(g)));
                },
                static_cast<Tick>(g) * 3 * oneUs);
        }
        s.run();
        std::vector<Arrival> out;
        for (std::size_t i = 0; i < b.got.size(); ++i)
            out.push_back({b.when[i], b.got[i]->size(),
                           b.got[i]->cdata()[0]});
        return std::pair(out, link.burstDelivered());
    };

    auto [single, singlePumped] = runOnce(false);
    auto [burst, burstPumped] = runOnce(true);
    ASSERT_EQ(single.size(), 20u);
    EXPECT_EQ(singlePumped, 0u);
    EXPECT_EQ(burstPumped, 20u);
    ASSERT_EQ(burst.size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i)
        EXPECT_TRUE(burst[i] == single[i])
            << "delivery " << i << " diverged: tick "
            << burst[i].when << " vs " << single[i].when;
}

TEST(FibTest, LearnsLooksUpAndUpdates)
{
    MacFib fib(16);
    EXPECT_EQ(fib.lookup(42), MacFib::noPort);
    fib.learn(42, 3);
    fib.learn(77, 5);
    EXPECT_EQ(fib.size(), 2u);
    EXPECT_EQ(fib.lookup(42), 3u);
    EXPECT_EQ(fib.lookup(77), 5u);
    // A host moving ports updates in place, no growth.
    fib.learn(42, 9);
    EXPECT_EQ(fib.size(), 2u);
    EXPECT_EQ(fib.lookup(42), 9u);
    EXPECT_EQ(fib.evictions(), 0u);
}

TEST(FibTest, LastFlowCacheHitsAndStaysCoherent)
{
    MacFib fib(16);
    fib.learn(42, 3);
    EXPECT_EQ(fib.lookup(42), 3u); // miss: fills the cache
    std::uint64_t h0 = fib.cacheHits();
    EXPECT_EQ(fib.lookup(42), 3u); // back-to-back: cache hit
    EXPECT_EQ(fib.cacheHits(), h0 + 1);
    // learn() must keep the cached translation coherent.
    fib.learn(42, 7);
    EXPECT_EQ(fib.lookup(42), 7u);
}

TEST(FibTest, EvictionIsDeterministicAndRelearnable)
{
    // Flood a deliberately tiny table (hint 1 -> 64 slots) with far
    // more MACs than it can hold: learns must stay bounded, evict
    // deterministically, and evicted MACs must be relearnable.
    constexpr std::uint64_t population = 1000;
    auto flood = [] {
        MacFib fib(1);
        for (std::uint64_t k = 1; k <= population; ++k)
            fib.learn(k, static_cast<std::uint32_t>(k & 0xf));
        return fib;
    };
    MacFib fib = flood();
    EXPECT_LE(fib.size(), fib.capacity());
    EXPECT_GT(fib.evictions(), 0u);
    // size + evictions accounts for every learn of a new key.
    EXPECT_EQ(fib.size() + fib.evictions(), population);

    std::vector<std::uint64_t> lost;
    for (std::uint64_t k = 1; k <= population; ++k)
        if (fib.lookup(k) == MacFib::noPort)
            lost.push_back(k);
    EXPECT_EQ(lost.size(), fib.evictions());
    ASSERT_FALSE(lost.empty());

    // Determinism: an identical insertion sequence loses the exact
    // same set of keys.
    MacFib fib2 = flood();
    for (std::uint64_t k : lost)
        EXPECT_EQ(fib2.lookup(k), MacFib::noPort) << k;

    // Relearn: an evicted key becomes resolvable again.
    fib.learn(lost[0], 11);
    EXPECT_EQ(fib.lookup(lost[0]), 11u);
}

TEST(SwitchTest, FibRecordsLearnedStations)
{
    Simulation s;
    EthernetSwitch sw(s, "sw", 3);
    std::vector<std::unique_ptr<EthernetLink>> links;
    std::vector<std::unique_ptr<SinkEndpoint>> hosts;
    for (std::uint32_t i = 0; i < 3; ++i) {
        links.push_back(std::make_unique<EthernetLink>(
            s, "l" + std::to_string(i), 10e9, 0));
        hosts.push_back(std::make_unique<SinkEndpoint>());
        sw.attachLink(i, *links[i]);
        links[i]->attachB(hosts[i].get());
    }
    EXPECT_EQ(sw.fib().size(), 0u);
    for (std::uint32_t i = 0; i < 3; ++i) {
        links[i]->sendFrom(hosts[i].get(),
                           framedPacket(64, MacAddr::broadcast(),
                                        MacAddr::fromId(200 + i)));
        s.run();
    }
    EXPECT_EQ(sw.fib().size(), 3u);
    EXPECT_EQ(sw.fib().evictions(), 0u);
}

TEST(SwitchTest, LearnsAndForwards)
{
    Simulation s;
    EthernetSwitch sw(s, "sw", 3);
    std::vector<std::unique_ptr<EthernetLink>> links;
    std::vector<std::unique_ptr<SinkEndpoint>> hosts;
    for (std::uint32_t i = 0; i < 3; ++i) {
        links.push_back(std::make_unique<EthernetLink>(
            s, "l" + std::to_string(i), 10e9, 0));
        hosts.push_back(std::make_unique<SinkEndpoint>());
        sw.attachLink(i, *links[i]);
        links[i]->attachB(hosts[i].get());
    }

    auto mac = [](int i) { return MacAddr::fromId(100 + i); };

    // Unknown destination floods; the switch learns the source.
    links[0]->sendFrom(hosts[0].get(),
                       framedPacket(100, mac(1), mac(0)));
    s.run();
    EXPECT_EQ(hosts[1]->got.size(), 1u); // flooded
    EXPECT_EQ(hosts[2]->got.size(), 1u); // flooded

    // Now host1 replies: switch knows mac(0) is behind port 0.
    links[1]->sendFrom(hosts[1].get(),
                       framedPacket(100, mac(0), mac(1)));
    s.run();
    EXPECT_EQ(hosts[0]->got.size(), 1u);
    EXPECT_EQ(hosts[2]->got.size(), 1u); // no new frame at host2

    // Third exchange is fully learned: unicast only.
    links[0]->sendFrom(hosts[0].get(),
                       framedPacket(100, mac(1), mac(0)));
    s.run();
    EXPECT_EQ(hosts[1]->got.size(), 2u);
    EXPECT_EQ(hosts[2]->got.size(), 1u);
    EXPECT_GT(sw.forwarded(), 0u);
}

TEST(SwitchTest, BroadcastFloodsAllButSource)
{
    Simulation s;
    EthernetSwitch sw(s, "sw", 4);
    std::vector<std::unique_ptr<EthernetLink>> links;
    std::vector<std::unique_ptr<SinkEndpoint>> hosts;
    for (std::uint32_t i = 0; i < 4; ++i) {
        links.push_back(std::make_unique<EthernetLink>(
            s, "l" + std::to_string(i), 10e9, 0));
        hosts.push_back(std::make_unique<SinkEndpoint>());
        sw.attachLink(i, *links[i]);
        links[i]->attachB(hosts[i].get());
    }
    links[0]->sendFrom(
        hosts[0].get(),
        framedPacket(64, MacAddr::broadcast(), MacAddr::fromId(0)));
    s.run();
    EXPECT_EQ(hosts[0]->got.size(), 0u);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(hosts[i]->got.size(), 1u) << i;
}

TEST(SwitchTest, EgressQueueTailDrops)
{
    Simulation s;
    // Tiny egress cap: 2 KB.
    EthernetSwitch sw(s, "sw", 2, 600 * oneNs, 2048);
    EthernetLink l0(s, "l0", 10e9, 0), l1(s, "l1", 1e9, 0);
    SinkEndpoint h0, h1;
    sw.attachLink(0, l0);
    sw.attachLink(1, l1);
    l0.attachB(&h0);
    l1.attachB(&h1);

    // Teach the switch where h1 is.
    l1.sendFrom(&h1, framedPacket(64, MacAddr::fromId(0),
                                  MacAddr::fromId(1)));
    s.run();

    // Blast 10 x 1.5KB at a slow egress: most must drop.
    for (int i = 0; i < 10; ++i)
        l0.sendFrom(&h0, framedPacket(1500, MacAddr::fromId(1),
                                      MacAddr::fromId(0)));
    s.run();
    EXPECT_GT(sw.drops(), 0u);
    EXPECT_LT(h1.got.size(), 10u);
}

TEST(LoopbackTest, EchoesUp)
{
    Simulation s;
    LoopbackDevice lo(s, "lo");
    PacketPtr got;
    lo.setRxHandler([&](os::NetDevice &, PacketPtr p) {
        got = std::move(p);
    });
    lo.xmit(Packet::makePattern(50));
    s.run();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->size(), 50u);
    EXPECT_EQ(lo.txPackets(), 1u);
    EXPECT_EQ(lo.rxPackets(), 1u);
}

// ---------------------------------------------------------------------
// TSO segmentation: the paper's O1-O4 on real bytes
// ---------------------------------------------------------------------

TEST(TsoTest, SplitsIntoMssSizedSegments)
{
    auto frame = tsoFrame(10000, 1460, true);
    auto segs = Nic::segmentTso(frame, true);
    // ceil(10000 / 1460) = 7 segments.
    ASSERT_EQ(segs.size(), 7u);

    std::size_t total = 0;
    std::uint32_t expect_seq = 1000;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        auto seg = segs[i]->clone();
        auto eth = EthernetHeader::pull(*seg);
        EXPECT_EQ(eth.dst, MacAddr::fromId(2));
        auto ip = Ipv4Header::pull(*seg, true);
        ASSERT_TRUE(ip) << "segment " << i
                        << " has a bad IP checksum";
        auto tcp = TcpHeader::pull(*seg, ip->src, ip->dst, true);
        ASSERT_TRUE(tcp) << "segment " << i
                         << " has a bad TCP checksum";
        // O3: sequence numbers advance by the payload size.
        EXPECT_EQ(tcp->seq, expect_seq);
        expect_seq += static_cast<std::uint32_t>(seg->size());
        // Only the last segment keeps PSH.
        if (i + 1 < segs.size())
            EXPECT_FALSE(tcp->flags & tcpPsh);
        else
            EXPECT_TRUE(tcp->flags & tcpPsh);
        EXPECT_LE(seg->size(), 1460u);
        total += seg->size();
    }
    EXPECT_EQ(total, 10000u);
}

TEST(TsoTest, PayloadBytesPreservedInOrder)
{
    auto frame = tsoFrame(5000, 1000, true);
    auto segs = Nic::segmentTso(frame, true);
    std::vector<std::uint8_t> reassembled;
    for (auto &sp : segs) {
        auto seg = sp->clone();
        EthernetHeader::pull(*seg);
        auto ip = Ipv4Header::pull(*seg, false);
        ASSERT_TRUE(ip);
        TcpHeader::pull(*seg, ip->src, ip->dst, false);
        auto bytes = seg->bytes();
        reassembled.insert(reassembled.end(), bytes.begin(),
                           bytes.end());
    }
    ASSERT_EQ(reassembled.size(), 5000u);
    for (std::size_t i = 0; i < reassembled.size(); ++i)
        ASSERT_EQ(reassembled[i],
                  static_cast<std::uint8_t>(i & 0xff));
}

TEST(TsoTest, BypassedChecksumsStayAbsent)
{
    // mcn2+mcn4: the super-frame carries no checksums; segments
    // must not invent them.
    auto frame = tsoFrame(4000, 1460, false);
    auto segs = Nic::segmentTso(frame, true);
    for (auto &sp : segs) {
        auto seg = sp->clone();
        EthernetHeader::pull(*seg);
        auto ip = Ipv4Header::pull(*seg, false);
        ASSERT_TRUE(ip);
        auto tcp = TcpHeader::pull(*seg, ip->src, ip->dst, false);
        ASSERT_TRUE(tcp);
        EXPECT_EQ(tcp->checksum, 0);
    }
}

TEST(TsoTest, NonTsoPacketPassesThrough)
{
    auto pkt = Packet::makePattern(500);
    pkt->tsoMss = 0;
    auto segs = Nic::segmentTso(pkt, true);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].get(), pkt.get());
}

// ---------------------------------------------------------------------
// NIC datapath
// ---------------------------------------------------------------------

TEST(NicTest, TxTravelsLinkAndRxDeliversWithTrace)
{
    Simulation s;
    os::KernelParams kp;
    os::Kernel ka(s, "a", 0, kp), kb(s, "b", 1, kp);
    Nic nic_a(s, "nicA", MacAddr::fromId(1), ka);
    Nic nic_b(s, "nicB", MacAddr::fromId(2), kb);
    EthernetLink link(s, "link", 10e9, oneUs);
    nic_a.attachLink(link);
    link.attachA(&nic_b); // nic_b on the A side

    PacketPtr got;
    nic_b.setRxHandler([&](os::NetDevice &, PacketPtr p) {
        got = std::move(p);
    });

    auto frame =
        framedPacket(1000, MacAddr::fromId(2), MacAddr::fromId(1));
    EXPECT_EQ(nic_a.xmit(frame), os::TxResult::Ok);
    s.run();

    ASSERT_TRUE(got);
    EXPECT_TRUE(got->trace.reached(Stage::DriverTx));
    EXPECT_TRUE(got->trace.reached(Stage::DmaTx));
    EXPECT_TRUE(got->trace.reached(Stage::Phy));
    EXPECT_TRUE(got->trace.reached(Stage::DmaRx));
    EXPECT_TRUE(got->trace.reached(Stage::DriverRx));
    // Stages are causally ordered.
    EXPECT_LT(got->trace.at(Stage::DriverTx),
              got->trace.at(Stage::Phy));
    EXPECT_LT(got->trace.at(Stage::Phy),
              got->trace.at(Stage::DriverRx));
    EXPECT_EQ(nic_b.interrupts(), 1u);
}

TEST(NicTest, TxRingFullReturnsBusy)
{
    Simulation s;
    os::KernelParams kp;
    os::Kernel k(s, "k", 0, kp);
    NicParams np;
    np.txRingEntries = 2;
    Nic nic(s, "nic", MacAddr::fromId(1), k, np);
    // No link attached: descriptors DMA but frames go nowhere;
    // ring slots free after DMA, so fill faster than that.
    auto mk = [] {
        return framedPacket(1500, MacAddr::fromId(2),
                            MacAddr::fromId(1));
    };
    EXPECT_EQ(nic.xmit(mk()), os::TxResult::Ok);
    EXPECT_EQ(nic.xmit(mk()), os::TxResult::Ok);
    EXPECT_EQ(nic.xmit(mk()), os::TxResult::Busy);
}

TEST(NicTest, RxRingOverflowDrops)
{
    Simulation s;
    os::KernelParams kp;
    os::Kernel k(s, "k", 0, kp);
    NicParams np;
    np.rxRingEntries = 4;
    Nic nic(s, "nic", MacAddr::fromId(1), k, np);
    // Swallow deliveries slowly by never running the sim between
    // arrivals.
    for (int i = 0; i < 10; ++i)
        nic.receiveFrame(framedPacket(500, MacAddr::fromId(1),
                                      MacAddr::fromId(9)));
    s.run();
    EXPECT_GT(nic.rxDrops(), 0u);
}

// ---------------------------------------------------------------------
// Fabric liveness (DESIGN.md §12)
// ---------------------------------------------------------------------

namespace {

/** Scope armed fault specs so later tests start disarmed. */
struct FabricPlanGuard
{
    FaultPlan &plan = FaultPlan::instance();

    explicit FabricPlanGuard(const std::vector<std::string> &specs)
    {
        plan.clear();
        plan.setSeed(1);
        for (const auto &t : specs) {
            FaultPlan::Spec sp;
            std::string err;
            if (!FaultPlan::parseSpec(t, &sp, &err))
                ADD_FAILURE() << t << ": " << err;
            else
                plan.arm(sp);
        }
        plan.resetRunState();
    }

    ~FabricPlanGuard() { plan.clear(); }
};

} // namespace

TEST(FabricLiveness, ReconvergenceWindowBoundsDetectionLag)
{
    // Two fabric switches on one trunk. Holding b.port0 admin-down
    // (200..700 us) suppresses b's hellos, so a must declare the
    // trunk dead exactly one dead interval after the last hello it
    // heard -- and readmit it within a hello interval of recovery.
    FabricPlanGuard g({"b.port0.down:at=200us,param=500us"});
    Simulation s;
    EthernetSwitch a(s, "a", 1), b(s, "b", 1);
    FabricParams fp; // hello 50 us, dead 150 us
    a.enableFabric(fp);
    b.enableFabric(fp);
    a.markTrunk(0);
    b.markTrunk(0);
    EthernetLink trunk(s, "trunk", 10e9, oneUs);
    a.attachLink(0, trunk);
    b.attachLink(0, trunk, /*b_side=*/true);

    // Steady state: hellos keep both ends live.
    s.run(200 * oneUs);
    EXPECT_TRUE(a.portLive(0));
    EXPECT_EQ(a.portDownEvents(), 0u);

    // b's last hello lands just before 200 us; a's port must be
    // dead once the 150 us dead interval expires (and not before:
    // at 300 us the port is still within the window).
    s.run(300 * oneUs);
    EXPECT_TRUE(a.portLive(0));
    s.run(450 * oneUs);
    EXPECT_FALSE(a.portLive(0));
    EXPECT_EQ(a.portDownEvents(), 1u);
    EXPECT_EQ(a.portUpEvents(), 0u);

    // The admin-down window closes at 700 us; b's next hello
    // readmits the trunk, with the up edge swept within one hello
    // interval.
    s.run(850 * oneUs);
    EXPECT_TRUE(a.portLive(0));
    EXPECT_EQ(a.portUpEvents(), 1u);
    EXPECT_EQ(a.portDownEvents(), 1u);

    // The reconvergence SLO: the sweep acted on the failure within
    // one hello interval of it becoming observable.
    EXPECT_LE(a.worstDetectLag(), fp.helloInterval);
}

TEST(FabricLiveness, PlainSwitchIgnoresFabricMachinery)
{
    // A switch that never calls enableFabric() must not probe, not
    // time out, and route by MAC learning exactly as before.
    Simulation s;
    EthernetSwitch sw(s, "tor", 2);
    EXPECT_FALSE(sw.fabricEnabled());
    EXPECT_TRUE(sw.liveEcmpPorts(MacAddr::fromId(1)).empty());
    const auto before = s.eventsProcessed();
    s.run(oneMs);
    // No hello pump: an idle plain switch schedules nothing.
    EXPECT_EQ(s.eventsProcessed(), before);
    EXPECT_EQ(sw.portDownEvents(), 0u);
    EXPECT_EQ(sw.portUpEvents(), 0u);
}
