/**
 * @file
 * Tests for the mini-MapReduce framework: phase accounting, job
 * presets, combiner effect, and the framework-transparency claim
 * (same job on scale-up, cluster, and MCN systems).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/mapreduce.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::dist;
using namespace mcnsim::sim;

namespace {

MapReduceJob
tinyJob()
{
    MapReduceJob j;
    j.name = "tiny";
    j.inputBytesPerWorker = 4ull << 20;
    j.mapCyclesPerByte = 0.1;
    j.shuffleSelectivity = 0.2;
    j.reduceCyclesPerByte = 0.1;
    return j;
}

} // namespace

TEST(MapReduce, CompletesOnScaleUpNode)
{
    Simulation s;
    ScaleUpSystem sys(s, 4);
    auto rep = runMapReduce(s, sys, tinyJob(), {0, 0, 0, 0});
    ASSERT_TRUE(rep.completed);
    EXPECT_GT(rep.makespan, 0u);
    EXPECT_GT(rep.mapPhase, 0u);
    EXPECT_GT(rep.shufflePhase, 0u);
    // 4 workers x 4 MB x 20% selectivity shuffled.
    EXPECT_NEAR(static_cast<double>(rep.shuffledBytes),
                4.0 * 4e6 * 0.2, 4e6);
}

TEST(MapReduce, CompletesOnMcnServer)
{
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);
    auto rep = runMapReduce(s, sys, tinyJob(), {0, 1, 2});
    ASSERT_TRUE(rep.completed);
    EXPECT_GT(rep.shuffledBytes, 0u);
}

TEST(MapReduce, CompletesOnCluster)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);
    auto rep = runMapReduce(s, sys, tinyJob(), {0, 1});
    ASSERT_TRUE(rep.completed);
}

TEST(MapReduce, CombinerShrinksShuffle)
{
    auto base = tinyJob();
    auto combined = tinyJob();
    combined.combiner = true;

    auto shuffled = [](const MapReduceJob &j) {
        Simulation s;
        ScaleUpSystem sys(s, 4);
        return runMapReduce(s, sys, j, {0, 0, 0, 0})
            .shuffledBytes;
    };
    EXPECT_LT(shuffled(combined), shuffled(base) / 2);
}

TEST(MapReduce, SortShufflesEverythingGrepAlmostNothing)
{
    auto frac = [](const MapReduceJob &j) {
        Simulation s;
        ScaleUpSystem sys(s, 4);
        auto rep = runMapReduce(s, sys, j, {0, 0, 0, 0});
        return static_cast<double>(rep.shuffledBytes) /
               (4.0 *
                static_cast<double>(j.inputBytesPerWorker));
    };
    // Shrink inputs for test speed.
    auto sort = sortJob();
    sort.inputBytesPerWorker = 4ull << 20;
    auto grep = grepJob();
    grep.inputBytesPerWorker = 4ull << 20;

    EXPECT_NEAR(frac(sort), 1.0, 0.05);
    EXPECT_LT(frac(grep), 0.05);
}

TEST(MapReduce, JobPresetsAreSane)
{
    EXPECT_TRUE(wordcountJob().combiner);
    EXPECT_DOUBLE_EQ(sortJob().shuffleSelectivity, 1.0);
    EXPECT_LT(grepJob().shuffleSelectivity, 0.05);
}
