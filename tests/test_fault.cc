/**
 * @file
 * Fault-injection framework tests plus the TCP/MCN resilience
 * corners it enables:
 *
 *  - FaultPlan unit behaviour: spec grammar, glob matching,
 *    trigger/window/cap semantics, replay determinism;
 *  - TCP corner cases driven by deterministic faults: RTO backoff
 *    aborting with an explicit error, dup-ACK fast retransmit,
 *    out-of-window discard, zero-window persist probes rescuing a
 *    lost window update;
 *  - MCN recovery: injected ring corruption never reaches the
 *    application, a crashed DIMM is degraded by the host watchdog
 *    and open connections fail fast instead of hanging, and a
 *    MapReduce job survives a DIMM hang.
 */

#include <gtest/gtest.h>

#include "core/system_builder.hh"
#include "dist/mapreduce.hh"
#include "net/net_stack.hh"
#include "net/socket.hh"
#include "net/tcp.hh"
#include "netdev/ethernet_link.hh"
#include "os/kernel.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;
using namespace mcnsim::sim;

namespace {

/** The FaultPlan is process-wide state: every test that arms specs
 *  scopes them with this guard so later tests start disarmed. */
struct PlanGuard
{
    FaultPlan &plan = FaultPlan::instance();

    PlanGuard() { plan.clear(); }
    ~PlanGuard() { plan.clear(); }

    /** Parse-or-die convenience for arming one spec. */
    void
    arm(const std::string &text)
    {
        FaultPlan::Spec sp;
        std::string err;
        ASSERT_TRUE(FaultPlan::parseSpec(text, &sp, &err))
            << text << ": " << err;
        plan.arm(sp);
    }

    /** Seed + arm several specs, then rewind run state. */
    void
    armAll(std::uint64_t seed,
           const std::vector<std::string> &specs)
    {
        plan.setSeed(seed);
        for (const auto &t : specs)
            arm(t);
        plan.resetRunState();
    }
};

/** A SimObject carrying one injection site, for unit tests. */
struct Probe : public SimObject
{
    Probe(Simulation &s, const std::string &nm)
        : SimObject(s, nm)
    {}
    FaultSite site = FAULT_POINT("tick");
};

} // namespace

// ---------------------------------------------------------------------
// FaultPlan unit behaviour
// ---------------------------------------------------------------------

TEST(FaultPlanUnit, GlobMatchBasics)
{
    EXPECT_TRUE(FaultPlan::globMatch("a.b", "a.b"));
    EXPECT_FALSE(FaultPlan::globMatch("a.b", "a.c"));
    EXPECT_TRUE(FaultPlan::globMatch("*", "anything.at.all"));
    EXPECT_TRUE(FaultPlan::globMatch("*.drop", "node0.link.drop"));
    EXPECT_FALSE(FaultPlan::globMatch("*.drop", "node0.link.dup"));
    EXPECT_TRUE(FaultPlan::globMatch("mcn?.crash", "mcn1.crash"));
    EXPECT_FALSE(FaultPlan::globMatch("mcn?.crash", "mcn12.crash"));
    EXPECT_TRUE(FaultPlan::globMatch("mcn*.crash", "mcn12.crash"));
    EXPECT_TRUE(FaultPlan::globMatch("a*b*c", "a-x-b-y-c"));
    EXPECT_FALSE(FaultPlan::globMatch("a*b*c", "a-x-c"));
}

TEST(FaultPlanUnit, HierarchicalSwitchGlobs)
{
    // Multi-switch fabrics address sites through three-level names
    // ("rack0.leaf.port3.down", "spine1.crash"); globs must select
    // whole tiers without bleeding across site kinds.
    EXPECT_TRUE(FaultPlan::globMatch("rack*.leaf.port*.down",
                                     "rack0.leaf.port2.down"));
    EXPECT_TRUE(FaultPlan::globMatch("rack*.leaf.port*.down",
                                     "rack13.leaf.port10.down"));
    EXPECT_FALSE(FaultPlan::globMatch("rack*.leaf.port*.down",
                                      "spine0.crash"));
    EXPECT_FALSE(FaultPlan::globMatch("rack*.leaf.port*.down",
                                      "rack0.leaf.drop"));
    EXPECT_TRUE(FaultPlan::globMatch("spine?.crash",
                                     "spine1.crash"));
    EXPECT_FALSE(FaultPlan::globMatch("spine?.crash",
                                      "spine1.hang"));
    EXPECT_TRUE(FaultPlan::globMatch("rack0.*", "rack0.leaf.drop"));
    EXPECT_FALSE(FaultPlan::globMatch("rack0.*",
                                      "rack1.leaf.drop"));
}

TEST(FaultPlanUnit, OneGlobSchedulesManySwitches)
{
    PlanGuard g;
    // A single scheduled spec fans out to every matching site: both
    // leaves' port2 resolve the same "rack*..." glob, each spine
    // resolves the crash glob, and an unrelated switch sees nothing.
    g.armAll(1, {"rack*.leaf.port?.down:at=1ms,param=500us",
                 "spine*.crash:at=2ms"});

    for (const char *site : {"rack0.leaf.port2.down",
                             "rack1.leaf.port2.down",
                             "rack1.leaf.port3.down"}) {
        auto hits = g.plan.scheduledFor(site);
        ASSERT_EQ(hits.size(), 1u) << site;
        EXPECT_EQ(hits[0].at, 1 * oneMs) << site;
        EXPECT_EQ(hits[0].param, static_cast<std::uint64_t>(
            500 * oneUs)) << site;
    }
    ASSERT_EQ(g.plan.scheduledFor("spine0.crash").size(), 1u);
    ASSERT_EQ(g.plan.scheduledFor("spine1.crash").size(), 1u);
    EXPECT_TRUE(g.plan.scheduledFor("spine0.hang").empty());
    EXPECT_TRUE(g.plan.scheduledFor("tor.crash").empty());
}

TEST(FaultPlanUnit, PerSiteRngIndependentAcrossSwitches)
{
    PlanGuard g;
    Simulation s;
    // Two sites on different "switches" matched by the same
    // probabilistic spec: each draws from its own deterministic
    // stream, so one switch's faults never shift another's.
    Probe leaf0(s, "rack0.leaf");
    Probe leaf1(s, "rack1.leaf");
    g.armAll(99, {"rack*.leaf.tick:p=0.5"});

    auto collect = [](Probe &p) {
        std::vector<bool> v;
        for (int i = 0; i < 200; ++i)
            v.push_back(p.site.fires());
        return v;
    };
    auto a0 = collect(leaf0);
    auto b0 = collect(leaf1);
    EXPECT_NE(a0, b0)
        << "sites on different switches share an RNG stream";

    // Replay: rewinding run state reproduces both schedules
    // exactly, and the order the sites are queried in does not
    // leak between streams (query leaf1 first this time).
    g.plan.resetRunState();
    auto b1 = collect(leaf1);
    auto a1 = collect(leaf0);
    EXPECT_EQ(a0, a1);
    EXPECT_EQ(b0, b1);
}

TEST(FaultPlanUnit, ParseSpecFullGrammar)
{
    FaultPlan::Spec sp;
    std::string err;

    ASSERT_TRUE(FaultPlan::parseSpec("*.drop:p=0.25", &sp, &err))
        << err;
    EXPECT_EQ(sp.siteGlob, "*.drop");
    EXPECT_DOUBLE_EQ(sp.probability, 0.25);
    EXPECT_EQ(sp.every, 0u);
    EXPECT_FALSE(sp.scheduled);

    ASSERT_TRUE(FaultPlan::parseSpec(
        "x.y:n=7,max=3,from=10us,until=2ms,param=50us", &sp, &err))
        << err;
    EXPECT_EQ(sp.every, 7u);
    EXPECT_EQ(sp.maxFires, 3u);
    EXPECT_EQ(sp.windowStart, 10 * oneUs);
    EXPECT_EQ(sp.windowEnd, 2 * oneMs);
    EXPECT_EQ(sp.param, static_cast<std::uint64_t>(50 * oneUs));

    // at= marks the spec scheduled; times accept all suffixes and
    // bare ticks.
    ASSERT_TRUE(FaultPlan::parseSpec("mcn1.crash:at=2ms", &sp, &err))
        << err;
    EXPECT_TRUE(sp.scheduled);
    EXPECT_EQ(sp.at, 2 * oneMs);
    ASSERT_TRUE(FaultPlan::parseSpec("a.b:at=1s", &sp, &err));
    EXPECT_EQ(sp.at, oneSec);
    ASSERT_TRUE(FaultPlan::parseSpec("a.b:at=500ns", &sp, &err));
    EXPECT_EQ(sp.at, 500 * oneNs);
    ASSERT_TRUE(FaultPlan::parseSpec("a.b:at=1234", &sp, &err));
    EXPECT_EQ(sp.at, static_cast<Tick>(1234));
}

TEST(FaultPlanUnit, ParseSpecRejectsMalformed)
{
    FaultPlan::Spec sp;
    std::string err;
    const char *bad[] = {
        "",               // empty
        "no-colon",       // no trigger list
        ":p=1",           // empty glob
        "x:p",            // not key=value
        "x:boom=1",       // unknown key
        "x:p=2",          // probability out of range
        "x:p=abc",        // unparsable number
        "x:n=0",          // every-0th is meaningless
        "x:max=2",        // modifier without a trigger
        "x:at=5q",        // bad time suffix
    };
    for (const char *t : bad) {
        err.clear();
        EXPECT_FALSE(FaultPlan::parseSpec(t, &sp, &err))
            << "accepted malformed spec: '" << t << "'";
        EXPECT_FALSE(err.empty()) << t;
    }
}

TEST(FaultPlanUnit, EveryNthFiresOnSchedule)
{
    PlanGuard g;
    Simulation s;
    Probe p(s, "probe");
    g.armAll(1, {"probe.tick:n=3,param=42"});

    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(p.site.fires());
    std::vector<bool> expect = {false, false, true,  false, false,
                                true,  false, false, true};
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(g.plan.totalFires(), 3u);
    EXPECT_EQ(p.site.param(), 42u);
}

TEST(FaultPlanUnit, MaxFiresCapsAndWindowGates)
{
    PlanGuard g;
    Simulation s;
    Probe p(s, "probe");
    g.armAll(1, {"probe.tick:n=1,max=2"});
    for (int i = 0; i < 5; ++i)
        p.site.fires();
    EXPECT_EQ(g.plan.totalFires(), 2u) << "max= did not cap fires";

    // A window that has not opened yet (sim is at tick 0) gates the
    // trigger off entirely.
    g.plan.clear();
    g.armAll(1, {"probe.tick:n=1,from=1us"});
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(p.site.fires());
    EXPECT_EQ(g.plan.totalFires(), 0u);
}

TEST(FaultPlanUnit, ProbabilisticFiringReplaysAcrossReset)
{
    PlanGuard g;
    Simulation s;
    Probe p(s, "probe");
    g.armAll(12345, {"probe.tick:p=0.3"});

    auto collect = [&] {
        std::vector<bool> v;
        for (int i = 0; i < 300; ++i)
            v.push_back(p.site.fires());
        return v;
    };
    auto first = collect();
    std::uint64_t fires1 = g.plan.totalFires();
    EXPECT_GT(fires1, 0u);
    EXPECT_LT(fires1, 300u);

    g.plan.resetRunState();
    auto second = collect();
    EXPECT_EQ(first, second)
        << "resetRunState() must replay the identical schedule";
    EXPECT_EQ(g.plan.totalFires(), fires1);

    // A different seed draws a different schedule.
    g.plan.setSeed(54321);
    g.plan.resetRunState();
    EXPECT_NE(collect(), first);
}

TEST(FaultPlanUnit, ScheduledForMatchesAndSorts)
{
    PlanGuard g;
    g.armAll(1, {"mcn1.crash:at=5ms", "mcn*.crash:at=2ms,param=7",
                 "mcn2.hang:at=1ms"});

    auto hits = g.plan.scheduledFor("mcn1.crash");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].at, 2 * oneMs);
    EXPECT_EQ(hits[0].param, 7u);
    EXPECT_EQ(hits[1].at, 5 * oneMs);
    EXPECT_TRUE(g.plan.scheduledFor("mcn1.hang").empty());

    // recordFire folds scheduled hits into the same counters the
    // inline sites use.
    g.plan.recordFire("mcn1.crash");
    EXPECT_EQ(g.plan.totalFires(), 1u);
    auto counts = g.plan.fireCounts();
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0].first, "mcn1.crash");
    EXPECT_EQ(counts[0].second, 1u);
}

TEST(FaultPlanUnit, DisarmedSitesNeverFire)
{
    PlanGuard g;
    Simulation s;
    Probe p(s, "probe");
    EXPECT_FALSE(FaultPlan::active());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.site.fires());
    EXPECT_EQ(g.plan.totalFires(), 0u);

    // Armed specs that match nothing leave other sites silent too.
    g.armAll(1, {"some.other.site:n=1"});
    EXPECT_TRUE(FaultPlan::active());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.site.fires());
    EXPECT_EQ(g.plan.totalFires(), 0u);
}

// ---------------------------------------------------------------------
// TCP corner cases
// ---------------------------------------------------------------------

namespace {

/** A standalone node (kernel + stack) for loopback tests. */
struct LoneNode
{
    os::Kernel kernel;
    NetStack stack;

    explicit LoneNode(Simulation &s)
        : kernel(s, "lone", 0, os::KernelParams{}),
          stack(s, "lone.net", kernel)
    {
        stack.setNodeAddress(Ipv4Addr(10, 9, 9, 9));
    }
};

/** Drive @p s in @p step slices until @p done or @p deadline. */
template <typename Pred>
void
runUntil(Simulation &s, Pred done, Tick deadline, Tick step = oneMs)
{
    while (!done() && s.curTick() < deadline)
        s.run(std::min(s.curTick() + step, deadline));
}

} // namespace

TEST(TcpCorners, RtoBackoffAbortsWithExplicitTimeout)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    constexpr std::size_t bytes = 1 << 20;
    TcpSocketPtr client;
    bool up = false;
    std::size_t got = 0;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(1).stack, 9800);
        up = true;
        auto conn = co_await lst->accept();
        while (got < bytes) {
            auto chunk = co_await conn->recv(16384);
            if (chunk.empty())
                break;
            got += chunk.size();
        }
    };
    auto sender = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        client = co_await tcpConnect(*sys.node(0).stack,
                                     {sys.addrOf(1), 9800});
        if (client)
            co_await client->sendPattern(bytes);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());

    // Let the handshake finish and data start flowing, then cut the
    // wire completely while most of the megabyte is still queued.
    runUntil(s, [&] { return got > 0; }, secondsToTicks(1.0),
             20 * oneUs);
    ASSERT_LT(got, bytes) << "transfer finished before the cut";
    ASSERT_TRUE(client);
    ASSERT_EQ(client->state(), TcpState::Established);
    sys.link(0).setLossRate(1.0);
    const Tick cut = s.curTick();

    // The sender must not hang: maxRetransmits consecutive backoffs
    // end in an explicit per-socket error.
    runUntil(s, [&] { return client->error() != TcpError::None; },
             cut + secondsToTicks(30.0));
    EXPECT_EQ(client->error(), TcpError::TimedOut);
    EXPECT_EQ(client->state(), TcpState::Closed);
    EXPECT_GE(client->retransmits(),
              static_cast<std::uint64_t>(TcpSocket::maxRetransmits));
    // The schedule doubles from >= minRto (200 us): 8 consecutive
    // backoffs cannot complete faster than (2^8 - 1) * minRto.
    EXPECT_GE(s.curTick() - cut, 255 * 200 * oneUs);
}

TEST(TcpCorners, SingleDropRecoversViaDupAckFastRetransmit)
{
    PlanGuard g;
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    // Drop two consecutive frames mid-stream on the sender's link
    // (opportunities 60 and 61 -- deep in the bulk transfer, so at
    // least one is a data segment). The dup-ACK fast path must
    // recover without waiting for an RTO.
    g.armAll(11, {"node0.link.drop:n=60,max=1",
                  "node0.link.drop:n=61,max=1"});

    constexpr std::size_t bytes = 256 * 1024;
    TcpSocketPtr client;
    std::size_t got = 0;
    bool up = false;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(1).stack, 9801);
        up = true;
        auto conn = co_await lst->accept();
        got = co_await conn->recvDrain(bytes);
    };
    auto sender = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        client = co_await tcpConnect(*sys.node(0).stack,
                                     {sys.addrOf(1), 9801});
        if (client)
            co_await client->sendPattern(bytes);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());
    runUntil(s, [&] { return got == bytes; }, secondsToTicks(10.0));

    ASSERT_EQ(got, bytes) << "transfer starved after injected drop";
    ASSERT_TRUE(client);
    EXPECT_EQ(client->error(), TcpError::None);
    EXPECT_GE(g.plan.totalFires(), 1u);
    EXPECT_GE(client->fastRetransmits(), 1u)
        << "loss was not recovered through the dup-ACK fast path";
}

TEST(TcpCorners, OutOfWindowSegmentDiscardedNotBuffered)
{
    Simulation s;
    LoneNode node(s);

    auto listener = tcpListen(node.stack, 8002);
    TcpSocketPtr client, served;
    auto server = [&]() -> Task<void> {
        served = co_await listener->accept();
    };
    auto connect = [&]() -> Task<void> {
        client = node.stack.tcpSocket();
        co_await client->connect(Ipv4Addr(10, 9, 9, 9), 8002);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), connect());
    s.run(s.curTick() + secondsToTicks(0.1));
    ASSERT_TRUE(served);
    ASSERT_EQ(served->state(), TcpState::Established);

    // Craft a segment whose payload ends beyond rcvNxt + rcvBufCap:
    // a corrupt or hostile sequence number. It must be dropped and
    // counted, never buffered.
    const std::uint64_t before =
        node.stack.tcp().outOfWindowDrops();
    TcpHeader h;
    h.srcPort = served->tuple().remotePort;
    h.dstPort = served->tuple().localPort;
    h.seq = served->rcvNxt() + TcpSocket::rcvBufCap + 1000;
    h.ack = 0; // stale ack: ignored by processAck
    h.flags = tcpAck;
    h.window = 500;
    served->segmentArrived(h, served->tuple().remoteIp,
                           served->tuple().localIp,
                           Packet::makePattern(64));
    EXPECT_EQ(node.stack.tcp().outOfWindowDrops(), before + 1);
    EXPECT_EQ(served->bytesReceived(), 0u);

    // The connection survives: a normal transfer still goes through.
    std::size_t got = 0;
    auto reader = [&]() -> Task<void> {
        got = co_await served->recvDrain(5000);
    };
    auto writer = [&]() -> Task<void> {
        co_await client->sendPattern(5000);
    };
    spawnDetached(s.eventQueue(), reader());
    spawnDetached(s.eventQueue(), writer());
    runUntil(s, [&] { return got == 5000; }, secondsToTicks(1.0));
    EXPECT_EQ(got, 5000u);
    EXPECT_EQ(served->error(), TcpError::None);
}

TEST(TcpCorners, ZeroWindowPersistProbesRescueLostWindowUpdate)
{
    PlanGuard g;
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    // The receiver's application stalls until t = 200 ms, so the
    // sender fills the 1 MB receive buffer and hits a zero window.
    // When the app finally drains, every window-update ACK it sends
    // is eaten by a 100% drop window on its link (199..215 ms) --
    // without persist probes the connection would deadlock forever.
    g.armAll(11, {"node1.link.drop:p=1,from=199ms,until=215ms"});

    constexpr std::size_t bytes =
        TcpSocket::rcvBufCap + 256 * 1024;
    TcpSocketPtr client;
    std::size_t got = 0;
    bool up = false;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(1).stack, 9802);
        up = true;
        auto conn = co_await lst->accept();
        co_await delayFor(s.eventQueue(), 200 * oneMs);
        got = co_await conn->recvDrain(bytes);
    };
    auto sender = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        client = co_await tcpConnect(*sys.node(0).stack,
                                     {sys.addrOf(1), 9802});
        if (client)
            co_await client->sendPattern(bytes);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());
    runUntil(s, [&] { return got == bytes; }, secondsToTicks(5.0));

    ASSERT_EQ(got, bytes)
        << "zero-window deadlock: persist probes did not rescue "
           "the lost window update";
    ASSERT_TRUE(client);
    EXPECT_EQ(client->error(), TcpError::None);
    EXPECT_GE(client->persistProbes(), 3u)
        << "the sender never probed the zero window";
}

// ---------------------------------------------------------------------
// MCN recovery end to end
// ---------------------------------------------------------------------

TEST(McnRecovery, InjectedRingCorruptionNeverReachesApplication)
{
    PlanGuard g;
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    // Corrupt ~5% of ring messages in SRAM, after the producer's
    // checksum was computed (tx-corrupt flips a payload byte in
    // place). The ring-entry CRC must catch every one; TCP
    // retransmits the dropped segments.
    g.armAll(11, {"*.tx-corrupt:p=0.05"});

    constexpr std::size_t bytes = 256 * 1024;
    std::vector<std::uint8_t> rx;
    TcpSocketPtr client;
    bool up = false;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(sys.hostStack(), 9803);
        up = true;
        auto conn = co_await lst->accept();
        while (rx.size() < bytes) {
            auto chunk = co_await conn->recv(65536);
            if (chunk.empty())
                break;
            rx.insert(rx.end(), chunk.begin(), chunk.end());
        }
    };
    auto sender = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        client = co_await tcpConnect(*sys.node(1).stack,
                                     {sys.hostAddr(), 9803});
        if (!client)
            co_return;
        std::vector<std::uint8_t> data(bytes);
        for (std::size_t i = 0; i < bytes; ++i)
            data[i] = static_cast<std::uint8_t>((i * 31) & 0xff);
        co_await client->send(std::move(data));
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());
    runUntil(s, [&] { return rx.size() == bytes; },
             secondsToTicks(10.0));

    ASSERT_EQ(rx.size(), bytes)
        << "transfer starved under ring corruption";
    std::uint64_t crc_drops = sys.driver().ringCrcDrops();
    for (std::size_t i = 0; i < sys.dimmCount(); ++i)
        crc_drops += sys.dimm(i).driver().ringCrcDrops();
    EXPECT_GT(g.plan.totalFires(), 0u);
    EXPECT_GT(crc_drops, 0u)
        << "no corruption was caught by the ring-entry CRC";
    for (std::size_t i = 0; i < rx.size(); ++i)
        ASSERT_EQ(rx[i], static_cast<std::uint8_t>((i * 31) & 0xff))
            << "corruption reached the application at offset " << i;
}

TEST(McnRecovery, CrashedDimmDegradesAndConnectionsFailFast)
{
    PlanGuard g;
    Simulation s;
    McnSystemParams p;
    p.numDimms = 2;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    // DIMM "mcn1" (index 1) dies 3 ms in, mid-transfer. Pre-fault-
    // framework this scenario hung forever: the host kept relaying
    // into a ring nobody drains and the sender retried unboundedly.
    // Now the host watchdog degrades the DIMM and the sender's
    // connection aborts with an explicit error.
    g.armAll(11, {"mcn1.crash:at=3ms"});

    TcpSocketPtr client;
    bool up = false;
    std::size_t got = 0;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(2).stack, 9804);
        up = true;
        auto conn = co_await lst->accept();
        got = co_await conn->recvDrain(8 << 20);
    };
    auto sender = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        client = co_await tcpConnect(sys.hostStack(),
                                     {sys.dimmAddr(1), 9804});
        if (client)
            co_await client->sendPattern(8 << 20);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());

    runUntil(s, [&] {
        return client && client->error() != TcpError::None;
    }, secondsToTicks(30.0));

    ASSERT_TRUE(client);
    EXPECT_NE(client->error(), TcpError::None)
        << "connection toward the dead DIMM hung instead of failing";
    EXPECT_EQ(client->state(), TcpState::Closed);
    EXPECT_GE(sys.driver().dimmsDegraded(), 1u);
    EXPECT_EQ(sys.driver().dimmHealth(1),
              mcn::McnHostDriver::Health::Degraded);
    EXPECT_EQ(g.plan.totalFires(), 1u); // the scheduled crash
}

TEST(McnRecovery, MapReduceSurvivesDimmHang)
{
    PlanGuard g;
    Simulation s;
    McnSystemParams p;
    p.numDimms = 4;
    p.config = McnConfig::level(5);
    McnSystem sys(s, p);

    // One worker DIMM goes dark for 500 us early in the job (the
    // whole job runs well under 1 ms of simulated time); the
    // revived node drains its backlog and TCP retransmission covers
    // the gap, so the job completes -- degraded, not dead.
    g.armAll(11, {"mcn1.hang:at=100us,param=500us"});

    dist::MapReduceJob job = dist::wordcountJob();
    job.inputBytesPerWorker = 1 << 20;
    auto rep = dist::runMapReduce(s, sys, job, {1, 2, 3, 4},
                                  30 * oneSec);

    EXPECT_TRUE(rep.completed)
        << "MapReduce did not survive a transient DIMM hang";
    EXPECT_GE(g.plan.totalFires(), 1u); // the scheduled hang
}
