/**
 * @file
 * Checked-build detector tests: prove each invariant checker
 * actually trips -- deterministically, with a panic -- when its
 * contract is violated, and that violations are tolerated (or
 * compiled away entirely) in normal builds.
 *
 * Compiled into every build: under -DMCNSIM_CHECKED=ON the negative
 * tests run, otherwise they GTEST_SKIP so the suite documents which
 * configuration it verified. The "free when off" direction is
 * covered two ways: the WhenOff tests pin the tolerate-don't-crash
 * behaviour, and the release perf gate (tools/check_perf.py) pins
 * the zero-cost claim.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "mcn/sram_buffer.hh"
#include "net/packet.hh"
#include "sim/checked.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/task.hh"

using namespace mcnsim;

#ifdef MCNSIM_CHECKED

TEST(Checked, DescheduleOfFiredManagedEventPanics)
{
    sim::EventQueue q;
    sim::Event *ev = q.scheduleIn([] {}, 10, "victim");
    q.run(20); // fires; the pointer died and the slot is poisoned
    EXPECT_THROW(q.deschedule(ev), sim::PanicError);
}

TEST(Checked, ScheduleOfFiredManagedEventPanics)
{
    sim::EventQueue q;
    sim::Event *ev = q.scheduleIn([] {}, 10, "victim");
    q.run(20);
    EXPECT_THROW(q.schedule(ev, q.curTick() + 5), sim::PanicError);
}

TEST(Checked, DoubleDescheduleOfManagedEventPanics)
{
    sim::EventQueue q;
    sim::Event *ev = q.scheduleIn([] {}, 10, "victim");
    q.deschedule(ev); // legal; the pointer dies here
    EXPECT_THROW(q.deschedule(ev), sim::PanicError);
}

TEST(Checked, PoisonReportsLastLiveName)
{
    sim::EventQueue q;
    sim::Event *ev = q.scheduleIn([] {}, 10, "tcp.rto");
    q.run(20);
    try {
        q.deschedule(ev);
        FAIL() << "expected panic";
    } catch (const sim::PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("tcp.rto"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checked, StaleCowViewWritePanicsAtNextAudit)
{
    auto pkt = net::Packet::makePattern(256);
    auto clone = pkt->clone(); // block shared; both views sealed
    // A write that bypasses copy-on-write: through a const_cast (a
    // cached pointer from before clone() behaves identically).
    const_cast<std::uint8_t *>(pkt->cdata())[7] ^= 0xff;
    EXPECT_THROW(clone->cdata(), sim::PanicError);
}

TEST(Checked, LegalCowWriteDoesNotPanic)
{
    auto pkt = net::Packet::makePattern(256);
    auto clone = pkt->clone();
    pkt->data()[7] ^= 0xff; // mutable data(): detaches first
    EXPECT_NO_THROW(clone->cdata());
    EXPECT_NO_THROW(pkt->cdata());
    EXPECT_FALSE(pkt->sharesBufferWith(*clone));
}

TEST(Checked, SealFollowsThePacketThroughPullAndTrim)
{
    auto pkt = net::Packet::makePattern(256);
    auto clone = pkt->clone();
    clone->pull(14); // header processing reseals the narrowed view
    clone->trim(128);
    const_cast<std::uint8_t *>(pkt->cdata())[64] ^= 0x01;
    EXPECT_THROW(clone->cdata(), sim::PanicError);
}

TEST(Checked, PacketUseAfterRecyclePanics)
{
    // Pool poisoning: once a block returns to a free list, any view
    // still holding it must panic at the next byte access instead of
    // silently reading whatever packet reuses the block.
    auto pkt = net::Packet::makePattern(256);
    EXPECT_NO_THROW(pkt->cdata());
    pkt->forceRecycleForTest();
    EXPECT_THROW(pkt->cdata(), sim::PanicError);
    EXPECT_THROW(pkt->data(), sim::PanicError);
    EXPECT_THROW(pkt->bytes(), sim::PanicError);
}

TEST(Checked, RecycledBlockReacquiresClean)
{
    // The poison is an allocator state, not a permanent scar: the
    // same storage handed back out by acquire() audits live again.
    auto pkt = net::Packet::makePattern(256);
    pkt->forceRecycleForTest();
    pkt.reset(); // dangling release absorbed by the hook's extra ref
    auto fresh = net::Packet::makePattern(256, 9);
    EXPECT_NO_THROW(fresh->cdata());
    EXPECT_EQ(fresh->cdata()[0], 9);
}

TEST(Checked, RingCorruptionPanicsOnNextOperation)
{
    mcn::MessageRing ring(4096);
    std::vector<std::uint8_t> msg(64, 0xab);
    ASSERT_TRUE(ring.enqueue(msg.data(), msg.size()));
    ring.corruptForTest();
    EXPECT_THROW(ring.dequeue(), sim::PanicError);
}

TEST(Checked, HealthyRingPassesItsAudits)
{
    mcn::MessageRing ring(4096);
    std::vector<std::uint8_t> msg(100, 0x5a);
    // Wrap the ring several times so the modular invariants are
    // audited across the seam.
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(ring.enqueue(msg.data(), msg.size()));
        auto out = ring.dequeue();
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->bytes, msg);
    }
}

#else // !MCNSIM_CHECKED

TEST(CheckedWhenOff, DeadManagedPointerOpsAreToleratedNoOps)
{
    // Without the checkers the queue must not crash on the same
    // misuse; deschedule of a dead pointer is a silent no-op.
    sim::EventQueue q;
    sim::Event *ev = q.scheduleIn([] {}, 10, "victim");
    q.run(20);
    EXPECT_NO_THROW(q.deschedule(ev));
}

TEST(CheckedWhenOff, NegativeDetectorTestsRequireCheckedBuild)
{
    GTEST_SKIP() << "detectors compiled out "
                 << "(configure with -DMCNSIM_CHECKED=ON)";
}

#endif // MCNSIM_CHECKED

TEST(Checked, BuildFlagMatchesCompileConfiguration)
{
#ifdef MCNSIM_CHECKED
    EXPECT_TRUE(sim::checkedBuild);
#else
    EXPECT_FALSE(sim::checkedBuild);
#endif
}

// Lifetime plumbing shared by every build ---------------------------

TEST(Lifetime, CallerOwnedEventDyingWhileScheduledDetaches)
{
    sim::EventQueue q;
    bool fired = false;
    {
        sim::CallbackEvent ev("scoped", [&] { fired = true; });
        q.schedule(&ev, 10);
    } // destroyed while scheduled: implicit detach
    q.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(Lifetime, CallerOwnedEventDyingAfterDescheduleDetaches)
{
    sim::EventQueue q;
    {
        sim::CallbackEvent ev("scoped", [] {});
        q.schedule(&ev, 10);
        q.deschedule(&ev); // lazy: stale heap entry remains
    } // dies with a stale entry outstanding
    q.run();
    SUCCEED();
}

TEST(Lifetime, SuspendedDetachedFrameIsReapedAtQueueTeardown)
{
    auto q = std::make_unique<sim::EventQueue>();
    sim::Condition cv(*q);
    bool done = false;
    auto body = [](sim::Condition &c, bool &d) -> sim::Task<void> {
        co_await c.wait();
        d = true;
    };
    sim::spawnDetached(*q, body(cv, done));
    q->run();
    EXPECT_EQ(q->detachedFramesLive(), 1u);
    // Teardown with the frame still suspended: the registry reaps it
    // (LeakSanitizer in tools/run_sanitizers.sh pins the no-leak
    // claim; this pins the bookkeeping).
    q.reset();
    EXPECT_FALSE(done);
}

TEST(Lifetime, CompletedDetachedFrameLeavesTheRegistry)
{
    sim::EventQueue q;
    auto body = []() -> sim::Task<void> { co_return; };
    sim::spawnDetached(q, body());
    EXPECT_EQ(q.detachedFramesLive(), 1u);
    q.run();
    EXPECT_EQ(q.detachedFramesLive(), 0u);
}
