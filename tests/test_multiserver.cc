/**
 * @file
 * Multi-server MCN tests (Sec. III-B last paragraph): MCN nodes on
 * different hosts talk through both hosts' forwarding engines and
 * the conventional 10GbE fabric, with no application change.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/mpi.hh"
#include "dist/npb.hh"
#include "net/icmp.hh"
#include "net/socket.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::sim;

namespace {

Tick
pingBetween(Simulation &s, McnMultiServer &sys, std::size_t from,
            std::size_t to)
{
    Tick rtt = maxTick;
    bool done = false;
    auto t = [&]() -> Task<void> {
        rtt = co_await sys.node(from).stack->icmp().ping(
            sys.node(to).addr, 56);
        done = true;
    };
    spawnDetached(s.eventQueue(), t());
    runUntil(s, [&] { return done; }, s.curTick() + oneSec);
    return rtt;
}

} // namespace

TEST(MultiServer, HostsReachEachOtherOverFabric)
{
    Simulation s;
    McnMultiServerParams p;
    McnMultiServer sys(s, p);

    // host0 (node 0) -> host1 (node 3 with 2 DIMMs/server).
    Tick rtt = pingBetween(s, sys, 0, 3);
    ASSERT_NE(rtt, maxTick) << "host-to-host ping failed";
    // Crosses two 1 us links + switch: 10GbE-class RTT.
    EXPECT_GT(rtt, 4 * oneUs);
}

TEST(MultiServer, DimmReachesRemoteHost)
{
    Simulation s;
    McnMultiServerParams p;
    McnMultiServer sys(s, p);

    // server0 DIMM0 (node 1) -> host1 (node 3): memory channel,
    // then forwarding engine + NIC + fabric.
    Tick rtt = pingBetween(s, sys, 1, 3);
    ASSERT_NE(rtt, maxTick) << "dimm-to-remote-host ping failed";
}

TEST(MultiServer, DimmReachesRemoteDimm)
{
    Simulation s;
    McnMultiServerParams p;
    McnMultiServer sys(s, p);

    // server0 DIMM0 (node 1) -> server1 DIMM1 (node 5): the full
    // path crosses two memory channels and the Ethernet fabric.
    std::size_t remote = sys.dimmNode(1, 1);
    Tick local_rtt = pingBetween(s, sys, 1, 2); // same server
    Tick remote_rtt = pingBetween(s, sys, 1, remote);
    ASSERT_NE(remote_rtt, maxTick)
        << "dimm-to-remote-dimm ping failed";
    // The remote path includes the 10GbE fabric: strictly slower
    // than the in-server MCN-to-MCN path.
    ASSERT_NE(local_rtt, maxTick);
    EXPECT_GT(remote_rtt, local_rtt);
}

TEST(MultiServer, TcpAcrossServers)
{
    Simulation s;
    McnMultiServerParams p;
    McnMultiServer sys(s, p);

    constexpr std::size_t bytes = 128 * 1024;
    std::size_t drained = 0;
    bool up = false, done = false;
    std::size_t remote = sys.dimmNode(1, 0);

    auto server = [&]() -> Task<void> {
        auto lst =
            net::tcpListen(*sys.node(remote).stack, 7100);
        up = true;
        auto conn = co_await lst->accept();
        drained = co_await conn->recvDrain(bytes);
        done = true;
    };
    auto client = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        auto sock = co_await net::tcpConnect(
            *sys.node(1).stack,
            {sys.node(remote).addr, 7100});
        EXPECT_TRUE(sock);
        if (sock)
            co_await sock->sendPattern(bytes);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), client());
    runUntil(s, [&] { return done; },
             s.curTick() + secondsToTicks(5.0));
    EXPECT_EQ(drained, bytes);
}

TEST(MultiServer, MpiSpansServers)
{
    // The paper's headline: MPI across racks of MCN DIMMs with
    // zero application change -- here 2 servers x (host + 2 DIMMs).
    Simulation s;
    McnMultiServerParams p;
    p.config = McnConfig::level(3);
    McnMultiServer sys(s, p);

    std::vector<std::size_t> placement;
    for (std::size_t i = 0; i < sys.nodeCount(); ++i)
        placement.push_back(i);

    auto spec = dist::npb::is().scaledTo(
        static_cast<int>(placement.size()));
    spec.iterations = 2;
    auto rep = runMpiWorkload(s, sys, spec, placement,
                              30 * oneSec);
    EXPECT_TRUE(rep.completed);
    EXPECT_GT(rep.mpiBytes, 0u);
}
