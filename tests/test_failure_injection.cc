/**
 * @file
 * Failure injection: transient loss and bit errors on Ethernet
 * links. Verifies TCP's loss recovery, verifies software checksums
 * catch wire corruption, and verifies the paper's Sec. IV-A
 * argument is enforced per hop: checksum bypass (mcn2) is honored
 * only across trusted hops (the ECC/CRC-protected memory channel);
 * on an untrusted lossy wire the stack keeps verifying, so
 * corruption is retransmitted instead of reaching the application.
 */

#include <gtest/gtest.h>

#include "core/system_builder.hh"
#include "net/socket.hh"
#include "net/tcp.hh"
#include "netdev/ethernet_link.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;
using namespace mcnsim::sim;

namespace {

struct TransferResult
{
    std::vector<std::uint8_t> received;
    std::uint64_t retransmits = 0;
    std::uint64_t csumDrops = 0;
    TcpError clientError = TcpError::None;
    bool complete = false;
};

/** One 128 KB patterned transfer over a 2-node cluster whose
 *  node0->switch link has the given fault rates. */
TransferResult
lossyTransfer(double loss, double corrupt, bool checksum_bypass)
{
    constexpr std::size_t bytes = 128 * 1024;
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    // Faults on the sender-side link: data segments are exposed on
    // their way toward the switch.
    sys.link(0).setLossRate(loss);
    sys.link(0).setCorruptRate(corrupt);

    TransferResult r;
    if (checksum_bypass) {
        sys.node(0).stack->setChecksumBypass(true);
        sys.node(1).stack->setChecksumBypass(true);
    }

    TcpSocketPtr client;
    bool up = false;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(1).stack, 9700);
        up = true;
        auto conn = co_await lst->accept();
        while (r.received.size() < bytes) {
            auto chunk = co_await conn->recv(65536);
            if (chunk.empty())
                break;
            r.received.insert(r.received.end(), chunk.begin(),
                              chunk.end());
        }
    };
    auto sender = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        SockAddr dst{sys.addrOf(1), 9700};
        client = co_await tcpConnect(*sys.node(0).stack, dst);
        if (!client)
            co_return;
        std::vector<std::uint8_t> data(bytes);
        for (std::size_t i = 0; i < bytes; ++i)
            data[i] = static_cast<std::uint8_t>((i * 17) & 0xff);
        co_await client->send(std::move(data));
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());

    Tick deadline = s.curTick() + secondsToTicks(10.0);
    while (r.received.size() < bytes && s.curTick() < deadline)
        s.run(std::min(s.curTick() + oneMs, deadline));

    r.complete = r.received.size() == bytes;
    if (client) {
        r.retransmits = client->retransmits();
        r.clientError = client->error();
    }
    r.csumDrops = sys.node(1).stack->tcp().rxCsumDrops();
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Direct link-level fault behaviour
// ---------------------------------------------------------------------

namespace {

class CountingSink : public netdev::EtherEndpoint
{
  public:
    std::vector<PacketPtr> got;

    void
    receiveFrame(PacketPtr pkt) override
    {
        got.push_back(std::move(pkt));
    }
};

} // namespace

TEST(FaultInjection, LossDropsApproximatelyTheConfiguredFraction)
{
    Simulation s;
    netdev::EthernetLink link(s, "l", 10e9, 0);
    CountingSink a, b;
    link.attachA(&a);
    link.attachB(&b);
    link.setLossRate(0.2);

    constexpr int n = 2000;
    for (int i = 0; i < n; ++i)
        link.sendFrom(&a, Packet::makePattern(200));
    s.run();

    EXPECT_EQ(b.got.size() + link.framesDropped(),
              static_cast<std::size_t>(n));
    double loss = static_cast<double>(link.framesDropped()) / n;
    EXPECT_NEAR(loss, 0.2, 0.04);
}

TEST(FaultInjection, CorruptionFlipsExactlyOneByte)
{
    Simulation s;
    netdev::EthernetLink link(s, "l", 10e9, 0);
    CountingSink a, b;
    link.attachA(&a);
    link.attachB(&b);
    link.setCorruptRate(1.0);

    auto original = Packet::makePattern(500, 9);
    auto reference = original->bytes();
    link.sendFrom(&a, original);
    s.run();

    ASSERT_EQ(b.got.size(), 1u);
    auto received = b.got[0]->bytes();
    ASSERT_EQ(received.size(), reference.size());
    int diffs = 0;
    for (std::size_t i = 0; i < reference.size(); ++i)
        if (received[i] != reference[i]) {
            diffs++;
            EXPECT_GE(i, 54u); // headers untouched
        }
    EXPECT_EQ(diffs, 1);
    EXPECT_EQ(link.framesCorrupted(), 1u);
}

TEST(FaultInjection, ZeroRatesAreTransparent)
{
    Simulation s;
    netdev::EthernetLink link(s, "l", 10e9, 0);
    CountingSink a, b;
    link.attachA(&a);
    link.attachB(&b);
    for (int i = 0; i < 100; ++i)
        link.sendFrom(&a, Packet::makePattern(100));
    s.run();
    EXPECT_EQ(b.got.size(), 100u);
    EXPECT_EQ(link.framesDropped(), 0u);
    EXPECT_EQ(link.framesCorrupted(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end: TCP on a clean path still works under the harness
// ---------------------------------------------------------------------

TEST(FaultInjection, CleanPathBaselineDeliversEverything)
{
    auto r = lossyTransfer(0.0, 0.0, false);
    ASSERT_TRUE(r.complete);
    for (std::size_t i = 0; i < r.received.size(); ++i)
        ASSERT_EQ(r.received[i],
                  static_cast<std::uint8_t>((i * 17) & 0xff));
}

TEST(FaultInjection, TcpRecoversFromLinkLoss)
{
    // 5% loss over ~90 data segments: >= 1 drop with probability
    // 1 - 0.95^90 ~ 0.99; the deterministic seed makes it certain.
    auto r = lossyTransfer(0.05, 0.0, false);
    ASSERT_TRUE(r.complete) << "transfer starved under loss";
    EXPECT_GT(r.retransmits, 0u);
    // Recovered data is still byte-perfect and in order.
    for (std::size_t i = 0; i < r.received.size(); ++i)
        ASSERT_EQ(r.received[i],
                  static_cast<std::uint8_t>((i * 17) & 0xff))
            << "offset " << i;
}

TEST(FaultInjection, ChecksumsCatchWireCorruption)
{
    // With software checksums on, corrupted segments are dropped
    // and retransmitted: the application still sees perfect data.
    auto r = lossyTransfer(0.0, 0.05, false);
    ASSERT_TRUE(r.complete);
    EXPECT_GT(r.retransmits, 0u)
        << "corruption should have forced retransmissions";
    for (std::size_t i = 0; i < r.received.size(); ++i)
        ASSERT_EQ(r.received[i],
                  static_cast<std::uint8_t>((i * 17) & 0xff))
            << "offset " << i;
}

TEST(FaultInjection, ChecksumBypassOnLossyWireStaysSafe)
{
    // The paper's Sec. IV-A argument, enforced per hop: mcn2's
    // checksum bypass is only honored across trusted hops, because
    // the memory channel is ECC/CRC protected. A cluster NIC is
    // untrusted, so bypass does NOT disable checksums here --
    // corruption is caught at RX and retransmitted rather than
    // delivered to the application.
    auto r = lossyTransfer(0.0, 0.2, true);
    ASSERT_TRUE(r.complete)
        << "transfer starved under corruption (client error: "
        << to_string(r.clientError) << ")";
    EXPECT_GT(r.retransmits, 0u)
        << "corruption should have forced retransmissions";
    EXPECT_GT(r.csumDrops, 0u)
        << "corrupt segments should be dropped on checksum";
    for (std::size_t i = 0; i < r.received.size(); ++i)
        ASSERT_EQ(r.received[i],
                  static_cast<std::uint8_t>((i * 17) & 0xff))
            << "corruption reached the application at offset " << i;
}
