/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hh"
#include "sim/stats.hh"

using namespace mcnsim::sim;

namespace {

/** Serialize one stat and parse the result back. */
json::Value
roundTrip(const StatBase &s)
{
    std::ostringstream os;
    json::Writer w(os);
    s.toJson(w);
    return json::parse(os.str());
}

} // namespace

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s("bytes", "bytes moved");
    s += 10;
    s += 5.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 16.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, MeanOverSamples)
{
    Average a("lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 49.5);
    EXPECT_DOUBLE_EQ(h.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 99.0);
    // p50 should land near the middle bucket
    EXPECT_NEAR(h.percentile(50), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(99), 95.0, 10.0);
}

TEST(Histogram, OutOfRangeSamplesTracked)
{
    Histogram h("h", "test", 10.0, 20.0, 5);
    h.sample(-5.0);
    h.sample(100.0);
    h.sample(15.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.minSample(), -5.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 100.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h("h", "test", 0.0, 10.0, 5);
    h.sample(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, PrintsAllMembers)
{
    StatGroup g("node0.nic");
    Scalar s1("txBytes", "transmitted bytes");
    Scalar s2("rxBytes", "received bytes");
    g.add(&s1);
    g.add(&s2);
    s1 += 100;
    s2 += 200;

    std::ostringstream os;
    g.print(os);
    auto out = os.str();
    EXPECT_NE(out.find("node0.nic.txBytes"), std::string::npos);
    EXPECT_NE(out.find("node0.nic.rxBytes"), std::string::npos);
    EXPECT_NE(out.find("transmitted bytes"), std::string::npos);
}

TEST(StatRegistry, DumpAndResetAll)
{
    StatRegistry reg;
    StatGroup g1("a"), g2("b");
    Scalar s1("x", "x"), s2("y", "y");
    g1.add(&s1);
    g2.add(&s2);
    reg.add(&g1);
    reg.add(&g2);
    s1 += 5;
    s2 += 7;

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.x"), std::string::npos);
    EXPECT_NE(os.str().find("b.y"), std::string::npos);

    reg.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_DOUBLE_EQ(s2.value(), 0.0);
}

TEST(Histogram, PercentileEdgeCases)
{
    // Empty histogram: every percentile is 0.
    Histogram empty("h", "test", 0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(99), 0.0);

    // Single bucket: interpolation walks the bucket but the result
    // is clamped to the observed extremes -- two samples cannot
    // produce a value no sample ever had.
    Histogram one("h", "test", 0.0, 10.0, 1);
    one.sample(2.0);
    one.sample(9.0);
    EXPECT_DOUBLE_EQ(one.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(one.percentile(99), 9.0); // clamped to max
    EXPECT_DOUBLE_EQ(one.percentile(99.9), 9.0);

    // All samples below the range: the observed extreme wins over
    // the range edge (samples were <= 0, so p50 must not report 10).
    Histogram under("h", "test", 10.0, 20.0, 5);
    under.sample(-5.0);
    under.sample(0.0);
    EXPECT_EQ(under.underflow(), 2u);
    EXPECT_DOUBLE_EQ(under.percentile(50), 0.0);

    // All samples above the range: percentile reports the exact max.
    Histogram over("h", "test", 10.0, 20.0, 5);
    over.sample(100.0);
    over.sample(250.0);
    EXPECT_EQ(over.overflow(), 2u);
    EXPECT_DOUBLE_EQ(over.percentile(50), 250.0);

    // p999 with fewer than 1000 samples: lands in the top bucket,
    // clamped to the true maximum rather than the bucket edge.
    Histogram few("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        few.sample(10.0 * i + 5.0);
    EXPECT_DOUBLE_EQ(few.percentile(99.9), 95.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket)
{
    // 100 uniform samples over [0,100) in 10 buckets: interpolation
    // should track the true quantile to within one sample step,
    // where midpoint snapping was off by up to half a bucket.
    Histogram h("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(90), 90.0, 1.0);
    EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
    // Monotone in p.
    EXPECT_LE(h.percentile(50), h.percentile(90));
    EXPECT_LE(h.percentile(90), h.percentile(99));
    EXPECT_LE(h.percentile(99), h.percentile(99.9));
}

TEST(LogBuckets, BucketMathCoversTheRange)
{
    // Below kSubBuckets: unit-width buckets, index == value.
    for (std::uint64_t v : {0ull, 1ull, 15ull}) {
        EXPECT_EQ(LogBuckets::bucketIndex(v), v);
        EXPECT_EQ(LogBuckets::bucketLow(v), v);
        EXPECT_EQ(LogBuckets::bucketHigh(v), v + 1);
    }
    // At and above: each power-of-two range splits into kSubBuckets
    // linear subbuckets; every value lands in [low, high).
    const std::uint64_t probes[] = {16, 17, 31, 32, 1000,
                                    std::uint64_t{1} << 20,
                                    (std::uint64_t{1} << 40) + 12345,
                                    ~std::uint64_t{0} >> 1};
    for (std::uint64_t v : probes) {
        std::size_t idx = LogBuckets::bucketIndex(v);
        EXPECT_LE(LogBuckets::bucketLow(idx), v) << v;
        EXPECT_GT(LogBuckets::bucketHigh(idx), v) << v;
        // Relative bucket width stays under 1/kSubBuckets.
        double width = static_cast<double>(
            LogBuckets::bucketHigh(idx) - LogBuckets::bucketLow(idx));
        EXPECT_LE(width / static_cast<double>(v),
                  1.0 / LogBuckets::kSubBuckets + 1e-12)
            << v;
    }
    // Bucket indices are monotone in the value.
    EXPECT_LT(LogBuckets::bucketIndex(16), LogBuckets::bucketIndex(32));
    EXPECT_LT(LogBuckets::bucketIndex(100),
              LogBuckets::bucketIndex(1000));
}

TEST(LogBuckets, MergeIsOrderIndependent)
{
    // The sharded fold relies on commutative merges: A+B == B+A,
    // bit for bit, including percentiles.
    LogBuckets a, b, ab, ba;
    for (std::uint64_t v : {3ull, 700ull, 1ull << 30})
        a.sample(v);
    for (std::uint64_t v : {5ull, 5ull, 90000ull})
        b.sample(v);
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.count(), 6u);
    EXPECT_EQ(ab.count(), ba.count());
    EXPECT_EQ(ab.sum(), ba.sum());
    EXPECT_EQ(ab.minSample(), 3u);
    EXPECT_EQ(ab.maxSample(), std::uint64_t{1} << 30);
    EXPECT_EQ(ab.nonzero(), ba.nonzero());
    for (double p : {50.0, 90.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(ab.percentile(p), ba.percentile(p));
}

TEST(LogBuckets, PercentilesClampToObservedExtremes)
{
    LogBuckets lb;
    EXPECT_DOUBLE_EQ(lb.percentile(50), 0.0); // empty
    lb.sample(1000);
    EXPECT_DOUBLE_EQ(lb.percentile(50), 1000.0);
    EXPECT_DOUBLE_EQ(lb.percentile(99.9), 1000.0);
    for (int i = 0; i < 99; ++i)
        lb.sample(10);
    // 99 fast samples, 1 slow: the tail percentile must surface the
    // outlier, the median must stay inside the fast samples' unit
    // bucket [10, 11).
    EXPECT_GE(lb.percentile(50), 10.0);
    EXPECT_LT(lb.percentile(50), 11.0);
    EXPECT_DOUBLE_EQ(lb.percentile(99.9), 1000.0);
}

TEST(QueueStat, TimeWeightedAverageAndPeak)
{
    QueueStat q("q.depth", "test queue");
    // Level 4 over [0,10), level 10 over [10,15), level 0 after.
    q.update(0, 4);
    q.update(10, 10);
    q.update(15, 0);
    q.update(20, 0);
    // area = 10*4 + 5*10 + 5*0 = 90 over 20 ticks.
    EXPECT_DOUBLE_EQ(q.timeWeightedMean(), 90.0 / 20.0);
    EXPECT_EQ(q.peak(), 10u);
    EXPECT_EQ(q.updates(), 4u);
    EXPECT_EQ(q.lastLevel(), 0u);
    EXPECT_EQ(q.lastTick(), 20u);

    auto v = roundTrip(q);
    EXPECT_EQ(v["type"].asString(), "queue");
    EXPECT_DOUBLE_EQ(v["twa"].asNumber(), 4.5);
    EXPECT_DOUBLE_EQ(v["peak"].asNumber(), 10.0);

    q.reset();
    EXPECT_DOUBLE_EQ(q.timeWeightedMean(), 0.0);
    EXPECT_EQ(q.peak(), 0u);
}

TEST(JsonStats, ScalarRoundTrips)
{
    Scalar s("txBytes", "transmitted bytes");
    s += 16.5;
    auto v = roundTrip(s);
    EXPECT_EQ(v["name"].asString(), "txBytes");
    EXPECT_EQ(v["type"].asString(), "scalar");
    EXPECT_EQ(v["desc"].asString(), "transmitted bytes");
    EXPECT_DOUBLE_EQ(v["value"].asNumber(), 16.5);
}

TEST(JsonStats, AverageRoundTrips)
{
    Average a("lat", "latency");
    a.sample(10);
    a.sample(30);
    auto v = roundTrip(a);
    EXPECT_EQ(v["type"].asString(), "average");
    EXPECT_DOUBLE_EQ(v["count"].asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(v["sum"].asNumber(), 40.0);
    EXPECT_DOUBLE_EQ(v["mean"].asNumber(), 20.0);
}

TEST(JsonStats, HistogramRoundTrips)
{
    Histogram h("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    h.sample(-1.0);
    h.sample(500.0);

    auto v = roundTrip(h);
    EXPECT_EQ(v["type"].asString(), "histogram");
    EXPECT_DOUBLE_EQ(v["count"].asNumber(), 102.0);
    EXPECT_DOUBLE_EQ(v["min"].asNumber(), -1.0);
    EXPECT_DOUBLE_EQ(v["max"].asNumber(), 500.0);
    EXPECT_DOUBLE_EQ(v["lo"].asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(v["hi"].asNumber(), 100.0);
    EXPECT_DOUBLE_EQ(v["underflow"].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(v["overflow"].asNumber(), 1.0);
    ASSERT_EQ(v["buckets"].size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(v["buckets"][i].asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(v["percentiles"]["p50"].asNumber(),
                     h.percentile(50));
    EXPECT_DOUBLE_EQ(v["percentiles"]["p99"].asNumber(),
                     h.percentile(99));
}

TEST(JsonStats, RegistryDumpJsonParses)
{
    StatRegistry reg;
    StatGroup g1("node0.nic"), g2("node1.nic");
    Scalar s1("tx", "tx bytes");
    Average a1("lat", "latency");
    Histogram h1("q", "queue depth", 0.0, 16.0, 4);
    g1.add(&s1);
    g1.add(&a1);
    g2.add(&h1);
    reg.add(&g1);
    reg.add(&g2);
    s1 += 99;
    a1.sample(7);
    h1.sample(3);

    std::ostringstream os;
    reg.dumpJson(os);
    auto v = json::parse(os.str());
    EXPECT_DOUBLE_EQ(v["schema_version"].asNumber(), 1.0);
    ASSERT_EQ(v["groups"].size(), 2u);
    EXPECT_EQ(v["groups"][0]["name"].asString(), "node0.nic");
    EXPECT_EQ(v["groups"][0]["stats"].size(), 2u);
    EXPECT_DOUBLE_EQ(
        v["groups"][0]["stats"][0]["value"].asNumber(), 99.0);
    EXPECT_EQ(
        v["groups"][1]["stats"][0]["type"].asString(), "histogram");
}

TEST(RateHelpers, GbpsAndGBps)
{
    // 1.25 GB over 1 simulated second = 10 Gbit/s.
    EXPECT_DOUBLE_EQ(toGbps(1.25e9, oneSec), 10.0);
    EXPECT_DOUBLE_EQ(toGBps(1.25e9, oneSec), 1.25);
    EXPECT_DOUBLE_EQ(toGbps(100, 0), 0.0);
}
