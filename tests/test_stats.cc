/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hh"
#include "sim/stats.hh"

using namespace mcnsim::sim;

namespace {

/** Serialize one stat and parse the result back. */
json::Value
roundTrip(const StatBase &s)
{
    std::ostringstream os;
    json::Writer w(os);
    s.toJson(w);
    return json::parse(os.str());
}

} // namespace

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s("bytes", "bytes moved");
    s += 10;
    s += 5.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 16.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, MeanOverSamples)
{
    Average a("lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 49.5);
    EXPECT_DOUBLE_EQ(h.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 99.0);
    // p50 should land near the middle bucket
    EXPECT_NEAR(h.percentile(50), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(99), 95.0, 10.0);
}

TEST(Histogram, OutOfRangeSamplesTracked)
{
    Histogram h("h", "test", 10.0, 20.0, 5);
    h.sample(-5.0);
    h.sample(100.0);
    h.sample(15.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.minSample(), -5.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 100.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h("h", "test", 0.0, 10.0, 5);
    h.sample(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, PrintsAllMembers)
{
    StatGroup g("node0.nic");
    Scalar s1("txBytes", "transmitted bytes");
    Scalar s2("rxBytes", "received bytes");
    g.add(&s1);
    g.add(&s2);
    s1 += 100;
    s2 += 200;

    std::ostringstream os;
    g.print(os);
    auto out = os.str();
    EXPECT_NE(out.find("node0.nic.txBytes"), std::string::npos);
    EXPECT_NE(out.find("node0.nic.rxBytes"), std::string::npos);
    EXPECT_NE(out.find("transmitted bytes"), std::string::npos);
}

TEST(StatRegistry, DumpAndResetAll)
{
    StatRegistry reg;
    StatGroup g1("a"), g2("b");
    Scalar s1("x", "x"), s2("y", "y");
    g1.add(&s1);
    g2.add(&s2);
    reg.add(&g1);
    reg.add(&g2);
    s1 += 5;
    s2 += 7;

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.x"), std::string::npos);
    EXPECT_NE(os.str().find("b.y"), std::string::npos);

    reg.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_DOUBLE_EQ(s2.value(), 0.0);
}

TEST(Histogram, PercentileEdgeCases)
{
    // Empty histogram: every percentile is 0.
    Histogram empty("h", "test", 0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(99), 0.0);

    // Single bucket: every sample lands at its midpoint.
    Histogram one("h", "test", 0.0, 10.0, 1);
    one.sample(2.0);
    one.sample(9.0);
    EXPECT_DOUBLE_EQ(one.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(one.percentile(99), 5.0);

    // All samples below the range: percentile clamps to lo.
    Histogram under("h", "test", 10.0, 20.0, 5);
    under.sample(-5.0);
    under.sample(0.0);
    EXPECT_EQ(under.underflow(), 2u);
    EXPECT_DOUBLE_EQ(under.percentile(50), 10.0);

    // All samples above the range: percentile reports the exact max.
    Histogram over("h", "test", 10.0, 20.0, 5);
    over.sample(100.0);
    over.sample(250.0);
    EXPECT_EQ(over.overflow(), 2u);
    EXPECT_DOUBLE_EQ(over.percentile(50), 250.0);
}

TEST(JsonStats, ScalarRoundTrips)
{
    Scalar s("txBytes", "transmitted bytes");
    s += 16.5;
    auto v = roundTrip(s);
    EXPECT_EQ(v["name"].asString(), "txBytes");
    EXPECT_EQ(v["type"].asString(), "scalar");
    EXPECT_EQ(v["desc"].asString(), "transmitted bytes");
    EXPECT_DOUBLE_EQ(v["value"].asNumber(), 16.5);
}

TEST(JsonStats, AverageRoundTrips)
{
    Average a("lat", "latency");
    a.sample(10);
    a.sample(30);
    auto v = roundTrip(a);
    EXPECT_EQ(v["type"].asString(), "average");
    EXPECT_DOUBLE_EQ(v["count"].asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(v["sum"].asNumber(), 40.0);
    EXPECT_DOUBLE_EQ(v["mean"].asNumber(), 20.0);
}

TEST(JsonStats, HistogramRoundTrips)
{
    Histogram h("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    h.sample(-1.0);
    h.sample(500.0);

    auto v = roundTrip(h);
    EXPECT_EQ(v["type"].asString(), "histogram");
    EXPECT_DOUBLE_EQ(v["count"].asNumber(), 102.0);
    EXPECT_DOUBLE_EQ(v["min"].asNumber(), -1.0);
    EXPECT_DOUBLE_EQ(v["max"].asNumber(), 500.0);
    EXPECT_DOUBLE_EQ(v["lo"].asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(v["hi"].asNumber(), 100.0);
    EXPECT_DOUBLE_EQ(v["underflow"].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(v["overflow"].asNumber(), 1.0);
    ASSERT_EQ(v["buckets"].size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(v["buckets"][i].asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(v["percentiles"]["p50"].asNumber(),
                     h.percentile(50));
    EXPECT_DOUBLE_EQ(v["percentiles"]["p99"].asNumber(),
                     h.percentile(99));
}

TEST(JsonStats, RegistryDumpJsonParses)
{
    StatRegistry reg;
    StatGroup g1("node0.nic"), g2("node1.nic");
    Scalar s1("tx", "tx bytes");
    Average a1("lat", "latency");
    Histogram h1("q", "queue depth", 0.0, 16.0, 4);
    g1.add(&s1);
    g1.add(&a1);
    g2.add(&h1);
    reg.add(&g1);
    reg.add(&g2);
    s1 += 99;
    a1.sample(7);
    h1.sample(3);

    std::ostringstream os;
    reg.dumpJson(os);
    auto v = json::parse(os.str());
    EXPECT_DOUBLE_EQ(v["schema_version"].asNumber(), 1.0);
    ASSERT_EQ(v["groups"].size(), 2u);
    EXPECT_EQ(v["groups"][0]["name"].asString(), "node0.nic");
    EXPECT_EQ(v["groups"][0]["stats"].size(), 2u);
    EXPECT_DOUBLE_EQ(
        v["groups"][0]["stats"][0]["value"].asNumber(), 99.0);
    EXPECT_EQ(
        v["groups"][1]["stats"][0]["type"].asString(), "histogram");
}

TEST(RateHelpers, GbpsAndGBps)
{
    // 1.25 GB over 1 simulated second = 10 Gbit/s.
    EXPECT_DOUBLE_EQ(toGbps(1.25e9, oneSec), 10.0);
    EXPECT_DOUBLE_EQ(toGBps(1.25e9, oneSec), 1.25);
    EXPECT_DOUBLE_EQ(toGbps(100, 0), 0.0);
}
