/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace mcnsim::sim;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s("bytes", "bytes moved");
    s += 10;
    s += 5.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 16.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, MeanOverSamples)
{
    Average a("lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h("h", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 49.5);
    EXPECT_DOUBLE_EQ(h.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 99.0);
    // p50 should land near the middle bucket
    EXPECT_NEAR(h.percentile(50), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(99), 95.0, 10.0);
}

TEST(Histogram, OutOfRangeSamplesTracked)
{
    Histogram h("h", "test", 10.0, 20.0, 5);
    h.sample(-5.0);
    h.sample(100.0);
    h.sample(15.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.minSample(), -5.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 100.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h("h", "test", 0.0, 10.0, 5);
    h.sample(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, PrintsAllMembers)
{
    StatGroup g("node0.nic");
    Scalar s1("txBytes", "transmitted bytes");
    Scalar s2("rxBytes", "received bytes");
    g.add(&s1);
    g.add(&s2);
    s1 += 100;
    s2 += 200;

    std::ostringstream os;
    g.print(os);
    auto out = os.str();
    EXPECT_NE(out.find("node0.nic.txBytes"), std::string::npos);
    EXPECT_NE(out.find("node0.nic.rxBytes"), std::string::npos);
    EXPECT_NE(out.find("transmitted bytes"), std::string::npos);
}

TEST(StatRegistry, DumpAndResetAll)
{
    StatRegistry reg;
    StatGroup g1("a"), g2("b");
    Scalar s1("x", "x"), s2("y", "y");
    g1.add(&s1);
    g2.add(&s2);
    reg.add(&g1);
    reg.add(&g2);
    s1 += 5;
    s2 += 7;

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.x"), std::string::npos);
    EXPECT_NE(os.str().find("b.y"), std::string::npos);

    reg.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_DOUBLE_EQ(s2.value(), 0.0);
}

TEST(RateHelpers, GbpsAndGBps)
{
    // 1.25 GB over 1 simulated second = 10 Gbit/s.
    EXPECT_DOUBLE_EQ(toGbps(1.25e9, oneSec), 10.0);
    EXPECT_DOUBLE_EQ(toGBps(1.25e9, oneSec), 1.25);
    EXPECT_DOUBLE_EQ(toGbps(100, 0), 0.0);
}
