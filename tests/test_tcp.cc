/**
 * @file
 * TCP behaviour tests: handshake state machine, loopback transfer,
 * congestion-window growth, loss recovery through a congested
 * switch, and close semantics.
 */

#include <gtest/gtest.h>

#include "core/system_builder.hh"
#include "net/net_stack.hh"
#include "net/socket.hh"
#include "net/tcp.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::core;
using namespace mcnsim::net;
using namespace mcnsim::sim;

namespace {

/** A standalone node (kernel + stack) for loopback tests. */
struct LoneNode
{
    os::Kernel kernel;
    NetStack stack;

    explicit LoneNode(Simulation &s)
        : kernel(s, "lone", 0, os::KernelParams{}),
          stack(s, "lone.net", kernel)
    {
        stack.setNodeAddress(Ipv4Addr(10, 9, 9, 9));
    }
};

} // namespace

TEST(TcpStates, HandshakeOverLoopback)
{
    Simulation s;
    LoneNode node(s);

    auto listener = tcpListen(node.stack, 8000);
    EXPECT_EQ(listener->state(), TcpState::Listen);

    TcpSocketPtr client, served;
    auto server = [&]() -> Task<void> {
        served = co_await listener->accept();
    };
    auto connect = [&]() -> Task<void> {
        client = node.stack.tcpSocket();
        bool ok = co_await client->connect(
            Ipv4Addr(10, 9, 9, 9), 8000);
        EXPECT_TRUE(ok);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), connect());
    s.run(s.curTick() + secondsToTicks(0.5));

    ASSERT_TRUE(client);
    ASSERT_TRUE(served);
    EXPECT_EQ(client->state(), TcpState::Established);
    EXPECT_EQ(served->state(), TcpState::Established);
    // Initial congestion window: 10 segments.
    EXPECT_GE(client->cwnd(), 10 * 1400u);
}

TEST(TcpStates, ConnectToClosedPortFails)
{
    Simulation s;
    LoneNode node(s);
    bool result = true;
    bool finished = false;
    auto t = [&]() -> Task<void> {
        auto sock = node.stack.tcpSocket();
        // No listener: the SYN is dropped and retried until the
        // caller's retry budget is spent.
        result = co_await sock->connect(Ipv4Addr(10, 9, 9, 9),
                                        9999);
        finished = true;
    };
    spawnDetached(s.eventQueue(), t());
    // SYN retransmission backs off; give it a bounded window only.
    s.run(s.curTick() + secondsToTicks(0.05));
    EXPECT_FALSE(finished && result);
}

TEST(TcpTransfer, LoopbackDeliversInOrder)
{
    Simulation s;
    LoneNode node(s);

    std::vector<std::uint8_t> rx;
    constexpr std::size_t n = 50'000;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(node.stack, 8001);
        auto conn = co_await lst->accept();
        while (rx.size() < n) {
            auto chunk = co_await conn->recv(8192);
            if (chunk.empty())
                break;
            rx.insert(rx.end(), chunk.begin(), chunk.end());
        }
    };
    auto client = [&]() -> Task<void> {
        SockAddr dst{Ipv4Addr(10, 9, 9, 9), 8001};
        auto sock = co_await tcpConnect(node.stack, dst);
        if (!sock)
            co_return;
        std::vector<std::uint8_t> data(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>(i * 13);
        co_await sock->send(std::move(data));
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), client());
    s.run(s.curTick() + secondsToTicks(1.0));

    ASSERT_EQ(rx.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(rx[i], static_cast<std::uint8_t>(i * 13))
            << "offset " << i;
}

TEST(TcpCongestion, WindowGrowsDuringBulkTransfer)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 2;
    ClusterSystem sys(s, p);

    TcpSocketPtr client;
    bool done = false;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(1).stack, 8002);
        auto conn = co_await lst->accept();
        co_await conn->recvDrain(512 * 1024);
        done = true;
    };
    auto sender = [&]() -> Task<void> {
        client = co_await tcpConnect(*sys.node(0).stack,
                                     {sys.addrOf(1), 8002});
        if (!client)
            co_return;
        co_await client->sendPattern(512 * 1024);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender());
    s.run(s.curTick() + secondsToTicks(2.0));

    ASSERT_TRUE(done);
    ASSERT_TRUE(client);
    // Slow start must have grown cwnd well past the initial 10 MSS.
    EXPECT_GT(client->cwnd(), 20 * 1400u);
    EXPECT_GT(client->srtt(), 0u); // RTT estimator ran
}

TEST(TcpLoss, RecoversThroughCongestedSwitch)
{
    Simulation s;
    ClusterSystemParams p;
    p.numNodes = 3;
    ClusterSystem sys(s, p);

    // Two senders blast one receiver: the shared egress queue
    // overflows and drops; both transfers must still complete.
    constexpr std::size_t bytes = 256 * 1024;
    std::size_t got0 = 0, got1 = 0;
    TcpSocketPtr c0, c1;

    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(*sys.node(2).stack, 8003);
        auto handle = [&](TcpSocketPtr conn,
                          std::size_t *sink) -> Task<void> {
            *sink = co_await conn->recvDrain(bytes);
        };
        auto a = co_await lst->accept();
        spawnDetached(s.eventQueue(), handle(a, &got0));
        auto b = co_await lst->accept();
        spawnDetached(s.eventQueue(), handle(b, &got1));
    };
    auto sender = [&](std::size_t from,
                      TcpSocketPtr *out) -> Task<void> {
        auto sock = co_await tcpConnect(*sys.node(from).stack,
                                        {sys.addrOf(2), 8003});
        if (!sock)
            co_return;
        *out = sock;
        co_await sock->sendPattern(bytes);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), sender(0, &c0));
    spawnDetached(s.eventQueue(), sender(1, &c1));

    Tick deadline = s.curTick() + secondsToTicks(5.0);
    while ((got0 < bytes || got1 < bytes) &&
           s.curTick() < deadline)
        s.run(std::min(s.curTick() + oneMs, deadline));

    EXPECT_EQ(got0, bytes);
    EXPECT_EQ(got1, bytes);
}

TEST(TcpClose, OrderlyFinHandshake)
{
    Simulation s;
    LoneNode node(s);

    TcpSocketPtr client, served;
    bool closed = false;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(node.stack, 8004);
        served = co_await lst->accept();
        auto data = co_await served->recv(100);
        EXPECT_EQ(data.size(), 5u);
        // Peer closes; our next recv returns empty (EOF).
        auto eof = co_await served->recv(100);
        EXPECT_TRUE(eof.empty());
        co_await served->close();
    };
    auto cl = [&]() -> Task<void> {
        SockAddr dst{Ipv4Addr(10, 9, 9, 9), 8004};
        client = co_await tcpConnect(node.stack, dst);
        if (!client)
            co_return;
        // (initializer lists inside coroutines trip GCC 12; build
        // the payload without one)
        std::vector<std::uint8_t> payload(5);
        for (std::size_t i = 0; i < payload.size(); ++i)
            payload[i] = static_cast<std::uint8_t>(i + 1);
        co_await client->send(std::move(payload));
        co_await client->close();
        closed = true;
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), cl());
    s.run(s.curTick() + secondsToTicks(1.0));

    EXPECT_TRUE(closed);
    ASSERT_TRUE(client);
    // Client ends in TimeWait/FinWait2/Closed depending on timing,
    // but never Established.
    EXPECT_NE(client->state(), TcpState::Established);
}

TEST(TcpMisc, StateNamesComplete)
{
    EXPECT_STREQ(to_string(TcpState::Closed), "Closed");
    EXPECT_STREQ(to_string(TcpState::Listen), "Listen");
    EXPECT_STREQ(to_string(TcpState::SynSent), "SynSent");
    EXPECT_STREQ(to_string(TcpState::SynRcvd), "SynRcvd");
    EXPECT_STREQ(to_string(TcpState::Established), "Established");
    EXPECT_STREQ(to_string(TcpState::FinWait1), "FinWait1");
    EXPECT_STREQ(to_string(TcpState::FinWait2), "FinWait2");
    EXPECT_STREQ(to_string(TcpState::CloseWait), "CloseWait");
    EXPECT_STREQ(to_string(TcpState::LastAck), "LastAck");
    EXPECT_STREQ(to_string(TcpState::TimeWait), "TimeWait");
}

TEST(TcpMisc, ByteCountersMatchTransfer)
{
    Simulation s;
    LoneNode node(s);
    TcpSocketPtr client, served;
    auto server = [&]() -> Task<void> {
        auto lst = tcpListen(node.stack, 8005);
        served = co_await lst->accept();
        co_await served->recvDrain(10'000);
    };
    auto cl = [&]() -> Task<void> {
        SockAddr dst{Ipv4Addr(10, 9, 9, 9), 8005};
        client = co_await tcpConnect(node.stack, dst);
        if (client)
            co_await client->sendPattern(10'000);
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), cl());
    s.run(s.curTick() + secondsToTicks(1.0));
    ASSERT_TRUE(client && served);
    EXPECT_EQ(client->bytesSent(), 10'000u);
    EXPECT_EQ(served->bytesReceived(), 10'000u);
}
