/**
 * @file
 * Tests for the McPAT-lite presets and the energy integration.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "cpu/cpu_cluster.hh"
#include "power/energy_model.hh"
#include "power/mcpat_lite.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::power;
using namespace mcnsim::sim;

TEST(McpatLiteTest, PresetsOrdering)
{
    // Server cores burn far more than mobile cores; DIMM buffer
    // devices are small; LPDDR is cheaper per byte than DDR4.
    EXPECT_GT(McpatLite::hostCore().activeW,
              5 * McpatLite::mcnCore().activeW);
    EXPECT_GT(McpatLite::hostUncore().staticW,
              McpatLite::mcnBufferDevice().staticW);
    EXPECT_GT(McpatLite::ddr4().energyPerByte,
              McpatLite::lpddr4().energyPerByte);
    EXPECT_GT(McpatLite::nic10g().idleW, 0.0);
}

TEST(EnergyModelTest, IdleSystemBurnsOnlyStatic)
{
    Simulation s;
    cpu::CpuCluster cpus(s, "cpus", 4, 1e9);
    EnergyModel m;
    m.addCores(cpus, McpatLite::hostCore());
    m.addUncore(McpatLite::hostUncore());

    m.snapshot(s.curTick());
    s.run(secondsToTicks(1.0));
    auto e = m.compute(s.curTick());

    EXPECT_DOUBLE_EQ(e.coreDynamic, 0.0);
    // 4 cores x idle W x 1 s + uncore.
    EXPECT_NEAR(e.coreStatic, 4 * McpatLite::hostCore().idleW,
                1e-9);
    EXPECT_NEAR(e.uncore, McpatLite::hostUncore().staticW, 1e-9);
    EXPECT_DOUBLE_EQ(e.dram, 0.0);
}

TEST(EnergyModelTest, BusyCoreAddsDynamicEnergy)
{
    Simulation s;
    cpu::CpuCluster cpus(s, "cpus", 1, 1e9);
    EnergyModel m;
    m.addCores(cpus, CorePower{10.0, 2.0});
    m.snapshot(s.curTick());

    // Busy for half of a 1 ms window.
    cpus.execute(500'000, nullptr); // 0.5 ms at 1 GHz
    s.run(secondsToTicks(1e-3));
    auto e = m.compute(s.curTick());

    // Dynamic: 0.5 ms x (10-2) W = 4 mJ; static: 1 ms x 2 W = 2 mJ.
    EXPECT_NEAR(e.coreDynamic, 4e-3, 1e-5);
    EXPECT_NEAR(e.coreStatic, 2e-3, 1e-5);
}

TEST(EnergyModelTest, DramEnergyTracksBytes)
{
    Simulation s;
    os::KernelParams kp;
    kp.memChannels = 1;
    os::Kernel k(s, "k", 0, kp);
    EnergyModel m;
    m.addMem(k.mem(), DramPower{0.0, 1e-9}, 0.0); // 1 nJ/B, no bg
    m.snapshot(s.curTick());

    bool done = false;
    k.mem().bulkInterleaved(1'000'000, [&](Tick) { done = true; });
    core::runUntil(s, [&] { return done; },
                   s.curTick() + oneSec);
    auto e = m.compute(s.curTick());
    EXPECT_NEAR(e.dram, 1e-3, 1e-4); // 1 MB x 1 nJ/B
}

TEST(EnergyModelTest, SnapshotExcludesWarmup)
{
    Simulation s;
    cpu::CpuCluster cpus(s, "cpus", 1, 1e9);
    EnergyModel m;
    m.addCores(cpus, CorePower{10.0, 0.0});

    // Warmup activity before the snapshot must not count.
    cpus.execute(1'000'000, nullptr);
    s.run();
    m.snapshot(s.curTick());
    s.run(s.curTick() + secondsToTicks(1e-3));
    auto e = m.compute(s.curTick());
    EXPECT_NEAR(e.coreDynamic, 0.0, 1e-9);
}

TEST(EnergyModelTest, McnServerModelCoversAllComponents)
{
    Simulation s;
    core::McnSystemParams p;
    p.numDimms = 2;
    core::McnSystem sys(s, p);
    auto m = core::energyModelFor(sys);
    m.snapshot(s.curTick());
    s.run(s.curTick() + secondsToTicks(1e-3));
    auto e = m.compute(s.curTick());
    // Static floors of host + 2 DIMMs are present.
    EXPECT_GT(e.coreStatic, 0.0);
    EXPECT_GT(e.uncore, 0.0);
    EXPECT_GT(e.dram, 0.0); // background power
    EXPECT_DOUBLE_EQ(e.network, 0.0); // no NIC in an MCN server
}

TEST(EnergyModelTest, ClusterModelIncludesNetwork)
{
    Simulation s;
    core::ClusterSystemParams p;
    p.numNodes = 2;
    core::ClusterSystem sys(s, p);
    auto m = core::energyModelFor(sys);
    m.snapshot(s.curTick());
    s.run(s.curTick() + secondsToTicks(1e-3));
    auto e = m.compute(s.curTick());
    EXPECT_GT(e.network, 0.0); // NIC + switch port idle power
}

TEST(EnergyFig10Shape, IdleMcnServerBeatsIdleCluster)
{
    // The core-matched comparison's static floor: an MCN server
    // (1 host + mobile cores) idles below N full server nodes.
    Simulation s1;
    core::McnSystemParams mp;
    mp.numDimms = 4; // 8 + 16 cores
    core::McnSystem mcn(s1, mp);
    auto m1 = core::energyModelFor(mcn);
    m1.snapshot(s1.curTick());
    s1.run(s1.curTick() + secondsToTicks(1e-3));
    double mcn_j = m1.compute(s1.curTick()).total();

    Simulation s2;
    core::ClusterSystemParams cp;
    cp.numNodes = 3; // 24 cores
    core::ClusterSystem cluster(s2, cp);
    auto m2 = core::energyModelFor(cluster);
    m2.snapshot(s2.curTick());
    s2.run(s2.curTick() + secondsToTicks(1e-3));
    double cluster_j = m2.compute(s2.curTick()).total();

    EXPECT_LT(mcn_j, cluster_j);
}
