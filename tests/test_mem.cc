/**
 * @file
 * Tests for the DRAM bank model, the memory controller, the
 * bandwidth arbiter and the copy model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/bandwidth_arbiter.hh"
#include "mem/dram_device.hh"
#include "mem/mem_controller.hh"
#include "mem/mem_system.hh"
#include "mem/memcpy_model.hh"
#include "sim/simulation.hh"

using namespace mcnsim::mem;
using namespace mcnsim::sim;

namespace {

MemRequest
readReq(Addr a, std::function<void(Tick)> cb)
{
    MemRequest r;
    r.kind = MemRequest::Kind::Read;
    r.addr = a;
    r.size = 64;
    r.onComplete = std::move(cb);
    return r;
}

MemRequest
writeReq(Addr a, std::function<void(Tick)> cb = nullptr)
{
    MemRequest r;
    r.kind = MemRequest::Kind::Write;
    r.addr = a;
    r.size = 64;
    r.onComplete = std::move(cb);
    return r;
}

} // namespace

TEST(Bank, ClosedBankPaysActPlusCas)
{
    auto t = DramTiming::ddr4_3200();
    Bank b;
    auto plan = b.plan(0, 7, t);
    EXPECT_FALSE(plan.rowHit);
    EXPECT_FALSE(plan.rowMiss);
    EXPECT_EQ(plan.startAt, t.tRCD);
}

TEST(Bank, RowHitStartsImmediately)
{
    auto t = DramTiming::ddr4_3200();
    Bank b;
    b.commit(t.tRCD, 0, 7, false, t);
    auto plan = b.plan(t.tRCD + t.tBURST, 7, t);
    EXPECT_TRUE(plan.rowHit);
    EXPECT_EQ(plan.startAt, t.tRCD + t.tBURST);
}

TEST(Bank, RowConflictPaysPrechargePath)
{
    auto t = DramTiming::ddr4_3200();
    Bank b;
    b.commit(t.tRCD, 0, 7, false, t);
    Tick now = t.tRAS + t.tRP; // comfortably past tRAS
    auto plan = b.plan(now, 9, t);
    EXPECT_TRUE(plan.rowMiss);
    EXPECT_EQ(plan.startAt, now + t.tRP + t.tRCD);
}

TEST(Bank, WriteRecoveryDelaysPrecharge)
{
    auto t = DramTiming::ddr4_3200();
    Bank read_b, write_b;
    read_b.commit(t.tRCD, 0, 1, false, t);
    write_b.commit(t.tRCD, 0, 1, true, t);
    Tick later = 2 * t.tRAS;
    // Conflicting access after a write starts no earlier than after
    // a read (write recovery window).
    auto after_read = read_b.plan(later, 2, t);
    auto after_write = write_b.plan(later, 2, t);
    EXPECT_GE(after_write.startAt, after_read.startAt);
}

TEST(Rank, FawLimitsActivateBursts)
{
    auto t = DramTiming::ddr4_3200();
    Rank r(t.banksPerRank, t);
    Tick at = 0;
    for (int i = 0; i < 4; ++i) {
        at = r.nextActivateAllowed(at);
        r.recordActivate(at);
        at += 1; // immediately try the next one
    }
    // The fifth activate must wait for the tFAW window.
    Tick fifth = r.nextActivateAllowed(at);
    EXPECT_GE(fifth, t.tFAW);
}

TEST(MemController, SingleReadLatencyIsActRcdClBurst)
{
    Simulation s;
    MemController mc(s, "mc", DramTiming::ddr4_3200());
    auto t = mc.timing();
    Tick done = 0;
    mc.access(readReq(0, [&](Tick at) { done = at; }));
    s.run();
    // Closed bank: tRCD + tCL + tBURST.
    EXPECT_EQ(done, t.tRCD + t.tCL + t.tBURST);
}

TEST(MemController, RowHitStreamIsBurstLimited)
{
    Simulation s;
    MemController mc(s, "mc", DramTiming::ddr4_3200());
    auto t = mc.timing();
    std::vector<Tick> done;
    constexpr int n = 16;
    for (int i = 0; i < n; ++i)
        mc.access(readReq(static_cast<Addr>(i) * 64,
                          [&](Tick at) { done.push_back(at); }));
    s.run();
    ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
    // After the first access the stream is row-hit: one burst apart.
    for (int i = 2; i < n; ++i)
        EXPECT_EQ(done[i] - done[i - 1], t.tBURST) << "i=" << i;
    EXPECT_GT(mc.rowHitRate(), 0.8);
}

TEST(MemController, WritesArePostedAndCombined)
{
    Simulation s;
    MemController mc(s, "mc", DramTiming::ddr4_3200());
    int completed = 0;
    // Two writes to the same line combine; completions are posted
    // at acceptance time.
    mc.access(writeReq(0, [&](Tick) { completed++; }));
    mc.access(writeReq(32, [&](Tick) { completed++; }));
    EXPECT_EQ(completed, 2); // posted immediately
    s.run();
    EXPECT_DOUBLE_EQ(mc.rowHitRate(), 0.0); // only 1 DRAM write done
}

TEST(MemController, MmioRegionBypassesDram)
{
    Simulation s;
    MemController mc(s, "mc", DramTiming::ddr4_3200());
    auto t = mc.timing();

    int observed = 0;
    MmioRegion r;
    r.base = 1 << 20;
    r.size = 96 * 1024;
    r.readLatency = 50 * oneNs;
    r.writeLatency = 10 * oneNs;
    r.onAccess = [&](const MemRequest &, Tick) { observed++; };
    mc.addMmioRegion(r);

    Tick rd = 0, wr = 0;
    mc.access(readReq(r.base + 128, [&](Tick at) { rd = at; }));
    s.run();
    mc.access(writeReq(r.base + 256, [&](Tick at) { wr = at; }));
    s.run();

    EXPECT_EQ(rd, t.tBURST + 50 * oneNs);
    EXPECT_GT(wr, rd);
    EXPECT_EQ(observed, 2);
}

TEST(MemController, ReadsOverlapAcrossBanks)
{
    Simulation s;
    MemController mc(s, "mc", DramTiming::ddr4_3200());
    auto t = mc.timing();
    // Requests to different banks: total time far less than serial.
    std::vector<Tick> done;
    constexpr int n = 8;
    for (int i = 0; i < n; ++i) {
        Addr a = static_cast<Addr>(i) * t.rowBufferBytes *
                 t.ranks; // different bank each time
        mc.access(readReq(a, [&](Tick at) { done.push_back(at); }));
    }
    s.run();
    ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
    Tick serial = static_cast<Tick>(n) * (t.tRCD + t.tCL + t.tBURST);
    EXPECT_LT(done.back(), serial);
}

TEST(BandwidthArbiter, SingleFlowGetsFullRate)
{
    Simulation s;
    BandwidthArbiter arb(s, "arb", 10e9, 1.0);
    Tick done = 0;
    arb.startTransfer(10'000'000, [&](Tick at) { done = at; });
    s.run();
    // 10 MB at 10 GB/s = 1 ms.
    EXPECT_NEAR(ticksToSeconds(done), 1e-3, 1e-5);
}

TEST(BandwidthArbiter, TwoFlowsShareEqually)
{
    Simulation s;
    BandwidthArbiter arb(s, "arb", 10e9, 1.0);
    Tick d1 = 0, d2 = 0;
    arb.startTransfer(10'000'000, [&](Tick at) { d1 = at; });
    arb.startTransfer(10'000'000, [&](Tick at) { d2 = at; });
    s.run();
    // Both ~2 ms (each sees 5 GB/s).
    EXPECT_NEAR(ticksToSeconds(d1), 2e-3, 1e-4);
    EXPECT_NEAR(ticksToSeconds(d2), 2e-3, 1e-4);
}

TEST(BandwidthArbiter, CapLimitsFlowAndSurplusGoesToOthers)
{
    Simulation s;
    BandwidthArbiter arb(s, "arb", 10e9, 1.0);
    Tick capped = 0, open = 0;
    arb.startTransfer(1'000'000, [&](Tick at) { capped = at; }, 1e9);
    arb.startTransfer(9'000'000, [&](Tick at) { open = at; });
    s.run();
    // Capped: 1 MB at 1 GB/s = 1 ms. Open flow gets 9 GB/s while
    // the capped flow is live, finishing in about 1 ms too.
    EXPECT_NEAR(ticksToSeconds(capped), 1e-3, 1e-4);
    EXPECT_NEAR(ticksToSeconds(open), 1e-3, 2e-4);
}

TEST(BandwidthArbiter, LateArrivalSlowsFirstFlow)
{
    Simulation s;
    BandwidthArbiter arb(s, "arb", 10e9, 1.0);
    Tick d1 = 0;
    arb.startTransfer(10'000'000, [&](Tick at) { d1 = at; });
    s.eventQueue().schedule(
        [&] { arb.startTransfer(50'000'000, [](Tick) {}); },
        secondsToTicks(0.5e-3));
    s.run();
    // First half ms at 10 GB/s moves 5 MB; the rest shares 5 GB/s:
    // total = 0.5 ms + 1 ms = 1.5 ms.
    EXPECT_NEAR(ticksToSeconds(d1), 1.5e-3, 1e-4);
}

TEST(BandwidthArbiter, BackgroundLoadReducesRate)
{
    Simulation s;
    BandwidthArbiter arb(s, "arb", 10e9, 1.0);
    arb.setBackgroundLoad(0.5);
    Tick done = 0;
    arb.startTransfer(5'000'000, [&](Tick at) { done = at; });
    s.run();
    // Effective 5 GB/s -> 1 ms.
    EXPECT_NEAR(ticksToSeconds(done), 1e-3, 1e-4);
}

TEST(BandwidthArbiter, CancelSuppressesCallback)
{
    Simulation s;
    BandwidthArbiter arb(s, "arb", 10e9, 1.0);
    bool fired = false;
    auto id = arb.startTransfer(1'000'000, [&](Tick) { fired = true; });
    arb.cancel(id);
    s.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(arb.activeFlows(), 0u);
}

TEST(MemSystem, RoutesByChannel)
{
    Simulation s;
    MemSystem ms(s, "mem", 2, DramTiming::ddr4_3200());
    Tick d0 = 0, d1 = 0;
    ms.access(readReq(0, [&](Tick at) { d0 = at; }));   // ch 0
    ms.access(readReq(64, [&](Tick at) { d1 = at; }));  // ch 1
    s.run();
    // Both channels idle: identical independent latencies.
    EXPECT_EQ(d0, d1);
    EXPECT_GT(d0, 0u);
}

TEST(MemSystem, InterleavedBulkUsesAllChannels)
{
    Simulation s;
    MemSystem ms(s, "mem", 4, DramTiming::ddr4_3200());
    Tick done = 0;
    // 40 MB across 4 channels at 25.6 GB/s * 0.8 each.
    ms.bulkInterleaved(40'000'000, [&](Tick at) { done = at; });
    s.run();
    double expect = 10e6 / (25.6e9 * 0.8);
    EXPECT_NEAR(ticksToSeconds(done), expect, expect * 0.05);
    EXPECT_GT(ms.totalBytes(), 39'000'000u);
}

TEST(CopyEngine, ModesHaveDistinctRates)
{
    Simulation s;
    MemController mc(s, "mc", DramTiming::ddr4_3200());
    CopyEngine eng(s, "copy", mc);

    auto timeOf = [&](CopyMode mode) {
        Tick start = s.curTick();
        Tick done = 0;
        eng.copy(1'000'000, mode, [&](Tick at) { done = at; });
        s.run();
        return done - start;
    };

    Tick wc = timeOf(CopyMode::WriteCombined);
    Tick uc = timeOf(CopyMode::UncachedWord);
    Tick ca = timeOf(CopyMode::CacheableRead);
    Tick dma = timeOf(CopyMode::DmaBurst);

    // Sec. III-B: uncached double-word copies are far slower than
    // write-combined ones; DMA is the fastest path.
    EXPECT_GT(uc, 10 * wc);
    EXPECT_GT(uc, 10 * ca);
    EXPECT_LE(dma, wc);
    EXPECT_EQ(eng.bytesCopied(), 4'000'000u);
}
