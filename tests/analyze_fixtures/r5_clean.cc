/**
 * @file
 * Analyzer fixture: R5 clean counterpart. Every operation names its
 * memory order; one deliberate seq-cst op carries a justification.
 */

#include <atomic>
#include <cstdint>

namespace mcnsim::fixture {

struct Engine
{
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> stopFlag{false};
    std::atomic<bool> initDone{false};

    void
    publish()
    {
        generation.store(1, std::memory_order_release);
    }

    std::uint64_t
    observe() const
    {
        return generation.load(std::memory_order_acquire);
    }

    void
    rmw()
    {
        generation.fetch_add(1, std::memory_order_acq_rel);
        std::uint64_t expect = 2;
        generation.compare_exchange_strong(
            expect, 3, std::memory_order_acq_rel,
            std::memory_order_acquire);
    }

    void
    oneShot()
    {
        // analyze-ok: atomic-memory-order (one-shot init flag)
        initDone.store(true);
    }
};

} // namespace mcnsim::fixture
