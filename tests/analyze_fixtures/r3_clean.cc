/**
 * @file
 * Analyzer fixture: R3 clean counterpart. Modeled jitter draws from
 * the seeded simulation RNG; timestamps come from the event queue.
 * Mentions of rand()/steady_clock in comments and strings must not
 * trip the rule.
 */

#include <cstdint>

namespace mcnsim::fixture {

struct Rng
{
    // Deterministic engine seeded per Simulation -- stands in for
    // sim::Random. Never calls rand() or std::random_device (the
    // analyzer strips this comment before matching).
    std::uint64_t state = 1;

    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }
};

int
jitteredBackoff(Rng &rng, int base)
{
    return base + static_cast<int>(rng.next() % 7);
}

const char *
helpText()
{
    return "never use rand() or steady_clock::now() in model code";
}

} // namespace mcnsim::fixture
