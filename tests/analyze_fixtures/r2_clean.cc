/**
 * @file
 * Analyzer fixture: R2 clean counterpart. Ordered containers,
 * value-keyed unordered containers, and a justified suppression.
 */

#include <cstdint>
#include <map>
#include <unordered_map>

namespace mcnsim::fixture {

struct Conn;

struct FlowTableOrdered
{
    // Ordered by a stable value key: iteration order is a pure
    // function of the modeled flow IDs.
    std::map<std::uint64_t, std::uint64_t> byFlowId;
    // Unordered is fine when the key is a value, not an address.
    std::unordered_map<std::uint32_t, std::uint64_t> byNodeId;
    std::unordered_map<Conn *, std::uint64_t> scratch;

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &[id, n] : byFlowId)
            sum += n;
        for (const auto &[id, n] : byNodeId)
            sum += n;
        // analyze-ok: ptr-unordered-iter (order-independent sum)
        for (const auto &[c, n] : scratch)
            sum += n;
        return sum;
    }
};

} // namespace mcnsim::fixture
