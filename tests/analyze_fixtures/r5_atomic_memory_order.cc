/**
 * @file
 * Analyzer fixture: R5 atomic-memory-order violations. Default
 * (seq-cst) atomic operations hide the intended ordering contract
 * and cost fences the barrier protocol avoids on ARM.
 */

#include <atomic>
#include <cstdint>

namespace mcnsim::fixture {

struct Engine
{
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> stopFlag{false};

    void
    publish()
    {
        generation.store(1); // expect: atomic-memory-order
    }

    std::uint64_t
    observe() const
    {
        return generation.load(); // expect: atomic-memory-order
    }

    void
    operatorForms()
    {
        ++generation; // expect: atomic-memory-order
        stopFlag = true; // expect: atomic-memory-order
    }

    void
    rmw()
    {
        generation.fetch_add(1); // expect: atomic-memory-order
    }
};

} // namespace mcnsim::fixture
