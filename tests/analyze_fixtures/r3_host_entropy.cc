/**
 * @file
 * Analyzer fixture: R3 host-entropy violations. Host randomness and
 * host wall-clock reads make modeled behaviour a function of the
 * machine the simulation runs on.
 */

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace mcnsim::fixture {

int
jitteredBackoff(int base)
{
    return base + rand() % 7; // expect: host-entropy
}

unsigned
seedFromHardware()
{
    std::random_device rd; // expect: host-entropy
    srand(rd()); // expect: host-entropy
    return 0;
}

long
wrongTimestamp()
{
    auto t0 = std::chrono::steady_clock::now(); // expect: host-entropy
    (void)t0;
    long stamp = std::time(nullptr); // expect: host-entropy
    return stamp;
}

} // namespace mcnsim::fixture
