/**
 * @file
 * Analyzer fixture: R4 clean counterpart. Cross-shard work rides
 * the mailbox; same-shard work schedules on the caller's own queue.
 */

#include <cstddef>

namespace mcnsim::fixture {

struct Simulation; // stands in for sim::Simulation
struct EventQueue;

EventQueue &ownQueue();

void
rightMailbox(Simulation &simu, std::size_t peer)
{
    // The mailbox merges by (tick, priority, srcShard, seq), so
    // delivery order is deterministic regardless of worker timing.
    simu.postCrossShard(peer, nullptr, 10);
}

void
rightOwnQueue()
{
    // Scheduling on the queue this code executes on is the normal,
    // race-free path.
    ownQueue().scheduleIn(nullptr, 10, "fixture.evt");
}

void
rightInspection(Simulation &simu, std::size_t peer)
{
    // Reading a peer queue's clock is fine; only mutation races.
    (void)simu.shardQueue(peer).curTick();
}

} // namespace mcnsim::fixture
