/**
 * @file
 * Analyzer fixture: R1 shard-static violations. Every line carrying
 * an expect-tag comment must be flagged by tools/mcnsim_analyze.py
 * --self-test; every other line must stay clean. These files are
 * classified only, never compiled.
 */

#include <cstdint>
#include <string>

namespace mcnsim::fixture {

// Namespace-scope mutable state: the classic determinism leak.
std::uint64_t packetsSeen = 0; // expect: shard-static

// `static` at namespace scope is still process-global.
static int retryBudget = 3; // expect: shard-static

// Header-style inline variable: one object per process.
inline bool warmedUp = false; // expect: shard-static

// thread_local is per-*worker*, not per-shard: a shard migrating
// between workers reads a different copy.
thread_local int lastShardHint = -1; // expect: shard-static

// Multi-line declaration: flagged at its first line.
static std::string // expect: shard-static
    lastErrorText;

int
nextSequence()
{
    // Function-local static: survives across calls and across
    // Simulations in one process.
    static std::uint32_t seq = 0; // expect: shard-static
    return static_cast<int>(++seq);
}

} // namespace mcnsim::fixture
