/**
 * @file
 * Analyzer fixture: R4 cross-shard-schedule violations. Directly
 * scheduling on another shard's queue races with that shard's
 * worker; the mailbox (Simulation::postCrossShard) is the only safe
 * cross-shard edge.
 */

#include <cstddef>

namespace mcnsim::fixture {

struct Simulation; // stands in for sim::Simulation

void
wrongDirectSchedule(Simulation &simu, std::size_t peer)
{
    simu.shardQueue(peer).schedule(nullptr); // expect: cross-shard-schedule
}

void
wrongAliasedSchedule(Simulation &simu, std::size_t peer)
{
    auto &q = simu.shardQueue(peer);
    q.scheduleIn(nullptr, 10, "fixture.evt"); // expect: cross-shard-schedule
}

void
wrongTypedAlias(Simulation &simu, std::size_t peer)
{
    EventQueue &dst = simu.shardQueue(peer);
    dst.reschedule(nullptr, 20); // expect: cross-shard-schedule
}

} // namespace mcnsim::fixture
