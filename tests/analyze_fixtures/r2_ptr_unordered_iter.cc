/**
 * @file
 * Analyzer fixture: R2 ptr-unordered-iter violations. Iterating an
 * unordered container keyed on pointers visits entries in allocator
 * -address order, i.e. in thread-scheduling order.
 */

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace mcnsim::fixture {

struct Conn;

struct FlowTable
{
    std::unordered_map<Conn *, std::uint64_t> bytesByConn;
    std::unordered_set<const Conn *> active;

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &[c, n] : bytesByConn) // expect: ptr-unordered-iter
            sum += n;
        return sum;
    }

    std::size_t
    walkActive() const
    {
        std::size_t hops = 0;
        for (auto it = active.begin(); it != active.end(); ++it) // expect: ptr-unordered-iter
            ++hops;
        return hops;
    }
};

} // namespace mcnsim::fixture
