/**
 * @file
 * Analyzer fixture: R1 shard-static clean counterpart. Nothing in
 * this file may be flagged -- it exercises every shape the rule
 * must NOT fire on, including both suppression forms.
 */

#include <cstdint>
#include <string>

#include "sim/annotate.hh"

namespace mcnsim::fixture {

// Immutable state is fine at any scope.
constexpr int kMaxRetries = 3;
const std::string kBannerText = "mcnsim";
static constexpr double kAlpha = 0.125;

// extern declarations are not definitions.
extern int definedElsewhere;

// Function declarations are not variables.
int helperFunction(int x);
static int fileLocalHelper();

// An annotated mutable static: tracked, not flagged.
MCNSIM_SHARD_SAFE("fixture: single-writer, set by the test harness "
                  "before any event loop runs");
static bool fixtureConfigured = false;

struct Widget
{
    // Non-static members are per-object: fine.
    std::uint64_t count = 0;
    std::string label;
};

int
perCallState()
{
    // Plain locals are per-invocation: fine.
    int scratch = 0;

    // analyze-ok: shard-static (fixture: memoized pure constant,
    // same value on every thread)
    static const int cachedAnswer = 42;
    return scratch + cachedAnswer;
}

} // namespace mcnsim::fixture
