/**
 * @file
 * Unit tests for the flight-recorder trace ring: bounded capacity,
 * wraparound ordering, Trace::emit integration, and the dump that
 * panic()/fatal() trigger.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/trace_ring.hh"

using namespace mcnsim::sim;

namespace {

/** Leave the global tracing state clean between tests. */
struct TraceStateGuard
{
    TraceStateGuard()
    {
        TraceRing::instance().setCapacity(TraceRing::defaultCapacity);
        Trace::setEcho(false);
    }
    ~TraceStateGuard()
    {
        TraceRing::instance().setCapacity(TraceRing::defaultCapacity);
        Trace::setFlag("TestFlag", false);
        Trace::setEcho(true);
    }
};

} // namespace

TEST(TraceRing, RecordsUpToCapacity)
{
    TraceRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 0u);
    ring.record(10, "A", "first");
    ring.record(20, "A", "second");
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.recorded(), 2u);

    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].when, 10u);
    EXPECT_EQ(snap[0].msg, "first");
    EXPECT_EQ(snap[1].when, 20u);
}

TEST(TraceRing, WrapsAroundOldestFirst)
{
    TraceRing ring(3);
    for (Tick t = 1; t <= 7; ++t)
        ring.record(t * 100, "F", "event " + std::to_string(t));

    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.recorded(), 7u);

    // Only the newest three survive, oldest first.
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].msg, "event 5");
    EXPECT_EQ(snap[1].msg, "event 6");
    EXPECT_EQ(snap[2].msg, "event 7");
}

TEST(TraceRing, SetCapacityClearsAndClearKeepsCapacity)
{
    TraceRing ring(2);
    ring.record(1, "F", "x");
    ring.setCapacity(5);
    EXPECT_EQ(ring.capacity(), 5u);
    EXPECT_EQ(ring.size(), 0u);

    ring.record(2, "F", "y");
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.capacity(), 5u);
}

TEST(TraceRing, DumpListsEntriesAndIsEmptySilent)
{
    TraceRing ring(4);
    std::ostringstream empty;
    ring.dump(empty);
    EXPECT_TRUE(empty.str().empty());

    ring.record(1234, "NIC", "xmit 98B");
    std::ostringstream os;
    ring.dump(os);
    EXPECT_NE(os.str().find("flight recorder"), std::string::npos);
    EXPECT_NE(os.str().find("NIC"), std::string::npos);
    EXPECT_NE(os.str().find("xmit 98B"), std::string::npos);
}

TEST(TraceRing, EmitFeedsGlobalRing)
{
    TraceStateGuard guard;
    auto &ring = TraceRing::instance();
    std::uint64_t before = ring.recorded();

    Trace::emit(42, "TestFlag", "hello ring");
    EXPECT_EQ(ring.recorded(), before + 1);
    auto snap = ring.snapshot();
    ASSERT_FALSE(snap.empty());
    EXPECT_EQ(snap.back().when, 42u);
    EXPECT_EQ(snap.back().flag, "TestFlag");
    EXPECT_EQ(snap.back().msg, "hello ring");
}

TEST(TraceRing, DprintfRecordsOnlyWhenFlagEnabled)
{
    TraceStateGuard guard;
    auto &ring = TraceRing::instance();

    Trace::setFlag("TestFlag", false);
    std::uint64_t before = ring.recorded();
    mcnsim::sim::dprintf(1, "TestFlag", "must not record");
    EXPECT_EQ(ring.recorded(), before);

    Trace::setFlag("TestFlag", true);
    EXPECT_TRUE(Trace::anyActive());
    mcnsim::sim::dprintf(2, "TestFlag", "bytes=", 123);
    EXPECT_EQ(ring.recorded(), before + 1);
    EXPECT_EQ(ring.snapshot().back().msg, "bytes=123");
}

TEST(TraceRing, GlobalRingWrapsAtConfiguredCapacity)
{
    // The CLI's --trace-ring flag resizes the process-wide ring via
    // setCapacity; wraparound must hold at non-default sizes.
    TraceStateGuard guard;
    for (std::size_t cap : {5u, 17u, 300u}) {
        auto &ring = TraceRing::instance();
        ring.setCapacity(cap);
        ASSERT_EQ(ring.capacity(), cap);
        const std::size_t total = cap * 2 + 3;
        for (std::size_t i = 0; i < total; ++i)
            Trace::emit(i, "TestFlag",
                        "msg " + std::to_string(i));
        EXPECT_EQ(ring.size(), cap);
        auto snap = ring.snapshot();
        ASSERT_EQ(snap.size(), cap);
        // Newest `cap` entries survive, oldest first.
        for (std::size_t i = 0; i < cap; ++i)
            EXPECT_EQ(snap[i].when, total - cap + i);
    }
}

TEST(TraceRing, PanicDumpsFlightRecorder)
{
    TraceStateGuard guard;
    Trace::setFlag("TestFlag", true);
    TraceRing::instance().clear();
    mcnsim::sim::dprintf(7, "TestFlag", "last thing before the crash");

    testing::internal::CaptureStderr();
    EXPECT_THROW(panic("boom"), PanicError);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("panic() raised"), std::string::npos);
    EXPECT_NE(err.find("flight recorder"), std::string::npos);
    EXPECT_NE(err.find("last thing before the crash"),
              std::string::npos);
}

TEST(TraceRing, FatalWithEmptyRingDumpsNothing)
{
    TraceStateGuard guard;
    TraceRing::instance().clear();

    testing::internal::CaptureStderr();
    EXPECT_THROW(fatal("bad config"), FatalError);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("flight recorder"), std::string::npos);
}
