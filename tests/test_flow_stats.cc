/**
 * @file
 * Unit tests for the flow telemetry subsystem: the FlowTelemetry
 * tables and shard fold, PathTrace recording/truncation and its
 * per-packet lifecycle, the hop-attribution fold, and the exported
 * artifact -- plus an end-to-end run asserting the tables populate
 * deterministically on a real system.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "net/packet.hh"
#include "sim/flow_stats.hh"
#include "sim/json.hh"

using namespace mcnsim;
using sim::FlowTelemetry;
using sim::Tick;

namespace {

FlowTelemetry::FlowKey
key(std::uint32_t src, std::uint32_t dst, std::uint16_t sp,
    std::uint16_t dp, std::uint8_t proto = 6)
{
    FlowTelemetry::FlowKey k;
    k.srcIp = src;
    k.dstIp = dst;
    k.srcPort = sp;
    k.dstPort = dp;
    k.proto = proto;
    return k;
}

} // namespace

TEST(FlowTelemetry, GateTogglesAndEnableResetsTables)
{
    auto &tel = FlowTelemetry::instance();
    tel.disable();
    EXPECT_FALSE(FlowTelemetry::active());

    tel.enable();
    EXPECT_TRUE(FlowTelemetry::active());
    tel.recordTx(0, key(1, 2, 10, 20), 100, 5);
    EXPECT_TRUE(tel.hasData());

    // enable() scopes a fresh run: tables reset, gate on.
    tel.enable();
    EXPECT_FALSE(tel.hasData());
    tel.disable();
    EXPECT_FALSE(FlowTelemetry::active());
}

TEST(FlowTelemetry, FoldMergesShardsPerFlow)
{
    auto &tel = FlowTelemetry::instance();
    tel.enable();
    auto k = key(0x0a000001, 0x0a000002, 1000, 2000);

    // The same flow recorded from two shards (tx side on shard 1,
    // delivery on shard 2), plus a second flow on shard 0.
    tel.recordTx(1, k, 1500, 10);
    tel.recordTx(1, k, 1500, 20);
    tel.recordRx(2, k, 1500, 30, 25);
    tel.recordRx(2, k, 1500, 40, 35);
    tel.recordRetransmit(1, k);
    tel.recordRtt(1, k, 50);
    tel.recordRtt(1, k, 70);
    tel.recordTx(0, key(0x0a000002, 0x0a000001, 2000, 1000), 40, 15);

    auto flows = tel.foldFlows();
    ASSERT_EQ(flows.size(), 2u);
    const auto &r = flows.at(k);
    EXPECT_EQ(r.txBytes, 3000u);
    EXPECT_EQ(r.txPackets, 2u);
    EXPECT_EQ(r.rxBytes, 3000u);
    EXPECT_EQ(r.rxPackets, 2u);
    EXPECT_EQ(r.retransmits, 1u);
    EXPECT_EQ(r.rttSamples, 2u);
    EXPECT_EQ(r.rttSumTicks, 120u);
    EXPECT_EQ(r.rttMinTicks, 50u);
    EXPECT_EQ(r.rttMaxTicks, 70u);
    EXPECT_EQ(r.firstTick, 10u);
    EXPECT_EQ(r.lastTick, 40u);
    EXPECT_EQ(r.latency.count(), 2u);
    EXPECT_EQ(r.latency.sum(), 60u);
    tel.disable();
}

TEST(FlowTelemetry, HopsMergeByNameAcrossShards)
{
    auto &tel = FlowTelemetry::instance();
    tel.enable();
    // Distinct pointers with equal content must land in one record:
    // the table compares by string content, not pointer identity.
    std::string a1 = "node0.nic", a2 = "node0.nic";
    tel.recordHop(0, a1.c_str(), 10);
    tel.recordHop(3, a2.c_str(), 30);
    tel.recordHop(0, "tor", 7);

    auto hops = tel.foldHops();
    ASSERT_EQ(hops.size(), 2u);
    EXPECT_EQ(hops.at("node0.nic").latency.count(), 2u);
    EXPECT_EQ(hops.at("node0.nic").latency.sum(), 40u);
    EXPECT_EQ(hops.at("tor").latency.sum(), 7u);
    tel.disable();
}

TEST(PathTrace, RecordsInOrderAndTruncatesAtCapacity)
{
    net::PathTrace p;
    EXPECT_EQ(p.size(), 0u);
    EXPECT_FALSE(p.truncated());
    for (std::size_t i = 0; i < net::PathTrace::kMaxHops; ++i)
        p.record("hop", static_cast<Tick>(i * 10));
    EXPECT_EQ(p.size(), net::PathTrace::kMaxHops);
    EXPECT_FALSE(p.truncated());
    EXPECT_EQ(p.at(3).t, 30u);

    // One past capacity: dropped, flagged, size unchanged.
    p.record("late", 999);
    EXPECT_EQ(p.size(), net::PathTrace::kMaxHops);
    EXPECT_TRUE(p.truncated());
}

TEST(PathTrace, PacketAllocatesLazilyAndClonesDeeply)
{
    auto pkt = net::Packet::makePattern(64);
    EXPECT_EQ(pkt->path, nullptr); // no telemetry, no allocation

    pkt->pathHop("a", 5);
    pkt->pathHop("b", 9);
    ASSERT_NE(pkt->path, nullptr);
    EXPECT_EQ(pkt->path->size(), 2u);

    auto copy = pkt->clone();
    ASSERT_NE(copy->path, nullptr);
    EXPECT_NE(copy->path.get(), pkt->path.get()); // deep copy
    copy->pathHop("c", 12);
    EXPECT_EQ(copy->path->size(), 3u);
    EXPECT_EQ(pkt->path->size(), 2u); // original untouched
}

TEST(PathTrace, FoldAttributesDeltasToTheLaterHop)
{
    auto &tel = FlowTelemetry::instance();
    tel.enable();

    auto pkt = net::Packet::makePattern(64);
    pkt->pathHop("a", 10);
    pkt->pathHop("b", 25);
    pkt->pathHop("c", 40);
    net::foldPathLatency(*pkt, 0, "sink", 60);

    auto hops = tel.foldHops();
    // "a" is the first stamp: no predecessor, nothing attributed.
    EXPECT_EQ(hops.count("a"), 0u);
    EXPECT_EQ(hops.at("b").latency.sum(), 15u); // 25 - 10
    EXPECT_EQ(hops.at("c").latency.sum(), 15u); // 40 - 25
    EXPECT_EQ(hops.at("sink").latency.sum(), 20u); // 60 - 40

    // A packet without a trace is a no-op.
    auto bare = net::Packet::makePattern(8);
    net::foldPathLatency(*bare, 0, "sink", 100);
    EXPECT_EQ(tel.foldHops().at("sink").latency.count(), 1u);
    tel.disable();
}

TEST(FlowTelemetry, ExportJsonCarriesFlowsAndHops)
{
    auto &tel = FlowTelemetry::instance();
    tel.enable();
    auto k = key(0x01020304, 0x05060708, 42, 4242, 17);
    tel.recordTx(0, k, 512, 100);
    tel.recordRx(0, k, 512, 200, 100);
    tel.recordHop(0, "node0.nic", 33);

    std::ostringstream os;
    tel.exportJson(os, {{"command", "unit-test"}});
    auto doc = sim::json::parse(os.str());

    EXPECT_EQ(doc["schema_version"].asNumber(), 1.0);
    EXPECT_EQ(doc["kind"].asString(), "mcnsim-flow-stats");
    EXPECT_EQ(doc["meta"]["command"].asString(), "unit-test");
    ASSERT_EQ(doc["flows"].size(), 1u);
    const auto &f = doc["flows"][std::size_t{0}];
    EXPECT_EQ(f["src_ip"].asString(), "1.2.3.4");
    EXPECT_EQ(f["dst_ip"].asString(), "5.6.7.8");
    EXPECT_EQ(f["proto"].asString(), "udp");
    EXPECT_EQ(f["tx_bytes"].asNumber(), 512.0);
    EXPECT_EQ(f["rx_bytes"].asNumber(), 512.0);
    EXPECT_EQ(f["latency"]["count"].asNumber(), 1.0);
    ASSERT_EQ(doc["path_latency"].size(), 1u);
    EXPECT_EQ(doc["path_latency"][std::size_t{0}]["hop"].asString(),
              "node0.nic");
    tel.disable();
}

TEST(FlowTelemetry, EndToEndIperfPopulatesTablesDeterministically)
{
    auto run = [] {
        FlowTelemetry::instance().enable();
        sim::Simulation s(7);
        core::ClusterSystemParams p;
        p.numNodes = 3;
        core::ClusterSystem sys(s, p);
        runIperf(s, sys, 0, {1, 2}, sim::oneMs);
        FlowTelemetry::instance().disable();
        std::ostringstream os;
        FlowTelemetry::instance().exportJson(
            os, {{"command", "test"}});
        return os.str();
    };

    std::string first = run();
    auto doc = sim::json::parse(first);
    // Two client->server data flows plus the reverse ack flows.
    EXPECT_GE(doc["flows"].size(), 2u);
    bool delivered = false;
    for (std::size_t i = 0; i < doc["flows"].size(); ++i)
        if (doc["flows"][i]["rx_packets"].asNumber() > 0)
            delivered = true;
    EXPECT_TRUE(delivered);
    EXPECT_GE(doc["path_latency"].size(), 2u);
    for (std::size_t i = 0; i < doc["path_latency"].size(); ++i)
        EXPECT_GT(
            doc["path_latency"][i]["latency"]["count"].asNumber(),
            0.0);

    // The artifact is a modeled result: byte-identical on rerun.
    EXPECT_EQ(first, run());
}
