/**
 * @file
 * Unit tests for the minimal JSON writer/parser pair: escaping,
 * number formatting, writer structure, parser errors, and full
 * write -> parse round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

using namespace mcnsim::sim;

TEST(JsonQuote, EscapesSpecials)
{
    EXPECT_EQ(json::quote("plain"), "\"plain\"");
    EXPECT_EQ(json::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json::quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(json::quote("a\nb\tc"), "\"a\\nb\\tc\"");
    EXPECT_EQ(json::quote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonNumber, RoundTripFormatting)
{
    EXPECT_EQ(json::formatNumber(0.0), "0");
    EXPECT_EQ(json::formatNumber(42.0), "42");
    EXPECT_EQ(json::formatNumber(-7.0), "-7");
    EXPECT_EQ(json::formatNumber(16.5), "16.5");
    // Non-finite values have no JSON spelling.
    EXPECT_EQ(json::formatNumber(std::nan("")), "null");
    EXPECT_EQ(json::formatNumber(INFINITY), "null");
    // Round-trip: parse(format(v)) == v bit-for-bit.
    for (double v : {0.1, 1.0 / 3.0, 9.533517425605533, 1e-300}) {
        double back = json::parse(json::formatNumber(v)).asNumber();
        EXPECT_EQ(back, v);
    }
}

TEST(JsonWriter, NestedStructure)
{
    std::ostringstream os;
    json::Writer w(os, 0);
    w.beginObject();
    w.kv("name", "x");
    w.key("list");
    w.beginArray();
    w.value(1);
    w.value(true);
    w.null();
    w.endArray();
    w.kv("n", 2.5);
    w.endObject();

    auto v = json::parse(os.str());
    EXPECT_EQ(v["name"].asString(), "x");
    EXPECT_EQ(v["list"].size(), 3u);
    EXPECT_DOUBLE_EQ(v["list"][0].asNumber(), 1.0);
    EXPECT_TRUE(v["list"][1].asBool());
    EXPECT_TRUE(v["list"][2].isNull());
    EXPECT_DOUBLE_EQ(v["n"].asNumber(), 2.5);
}

TEST(JsonParse, AcceptsWhitespaceAndUnicodeEscapes)
{
    auto v = json::parse("  { \"k\" : [ 1 , 2 ] , \"s\" : "
                         "\"\\u0041\\u00e9\" }  ");
    EXPECT_EQ(v["k"].size(), 2u);
    EXPECT_EQ(v["s"].asString(), "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(json::parse(""), FatalError);
    EXPECT_THROW(json::parse("{"), FatalError);
    EXPECT_THROW(json::parse("[1,]"), FatalError);
    EXPECT_THROW(json::parse("{\"a\":1,}"), FatalError);
    EXPECT_THROW(json::parse("nul"), FatalError);
    EXPECT_THROW(json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(json::parse("1 2"), FatalError);
}

TEST(JsonValue, LookupAndTypeErrors)
{
    auto v = json::parse("{\"a\": 1, \"b\": \"s\"}");
    EXPECT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v["missing"], FatalError);
    EXPECT_THROW(v["b"].asNumber(), FatalError);
    EXPECT_THROW(v["a"].asArray(), FatalError);
}

TEST(JsonRoundTrip, WriterOutputParsesBack)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.kv("bench", "fig8a_iperf");
    w.kv("schema_version", std::uint64_t{1});
    w.key("metrics");
    w.beginObject();
    w.kv("gbps", 5.57);
    w.kv("quoted \"name\"", -0.25);
    w.endObject();
    w.key("empty");
    w.beginArray();
    w.endArray();
    w.endObject();

    auto v = json::parse(os.str());
    EXPECT_EQ(v["bench"].asString(), "fig8a_iperf");
    EXPECT_DOUBLE_EQ(v["schema_version"].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(v["metrics"]["gbps"].asNumber(), 5.57);
    EXPECT_DOUBLE_EQ(v["metrics"]["quoted \"name\""].asNumber(),
                     -0.25);
    EXPECT_EQ(v["empty"].size(), 0u);
}
