/**
 * @file
 * Unit tests for the discrete-event engine: ordering, priorities,
 * (de|re)scheduling, managed callback events, clock domains, RNG
 * determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/timer_wheel.hh"

using namespace mcnsim::sim;

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule([&] { order.push_back(3); }, 300);
    q.schedule([&] { order.push_back(1); }, 100);
    q.schedule([&] { order.push_back(2); }, 200);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule([&] { order.push_back(2); }, 50, "a",
               EventPriority::Default);
    q.schedule([&] { order.push_back(3); }, 50, "b",
               EventPriority::Default);
    q.schedule([&] { order.push_back(1); }, 50, "irq",
               EventPriority::HardwareIrq);
    q.schedule([&] { order.push_back(4); }, 50, "proc",
               EventPriority::Process);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, SchedulingInThePastThrows)
{
    EventQueue q;
    q.schedule([] {}, 100);
    q.run();
    EXPECT_THROW(q.schedule([] {}, 50), std::logic_error);
}

TEST(EventQueue, DoubleScheduleThrows)
{
    EventQueue q;
    CallbackEvent ev("e", [] {});
    q.schedule(&ev, 10);
    EXPECT_THROW(q.schedule(&ev, 20), std::logic_error);
    q.deschedule(&ev);
}

TEST(EventQueue, DescheduledEventDoesNotRun)
{
    EventQueue q;
    bool ran = false;
    CallbackEvent ev("e", [&] { ran = true; });
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired = 0;
    CallbackEvent ev("e", [&] { fired = q.curTick(); });
    q.schedule(&ev, 10);
    q.reschedule(&ev, 500);
    q.run();
    EXPECT_EQ(fired, 500u);
    EXPECT_EQ(q.eventsProcessed(), 1u);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleIn(chain, 10);
    };
    q.schedule(chain, 0);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule([&] { count++; }, 100);
    q.schedule([&] { count++; }, 200);
    q.run(150);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.curTick(), 150u);
    q.run(250);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunEventsExecutesExactCount)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule([&] { count++; }, 10 * (i + 1));
    EXPECT_EQ(q.runEvents(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(q.pendingEvents(), 6u);
}

TEST(EventQueue, PeriodicMemberEvent)
{
    struct Ticker
    {
        EventQueue &q;
        int fires = 0;
        MemberEvent<Ticker> ev{"tick", this, &Ticker::fire};

        explicit Ticker(EventQueue &queue) : q(queue) {}

        void
        fire()
        {
            if (++fires < 3)
                q.schedule(&ev, q.curTick() + 100);
        }
    };

    EventQueue q;
    Ticker t(q);
    q.schedule(&t.ev, 0);
    q.run();
    EXPECT_EQ(t.fires, 3);
    EXPECT_EQ(q.curTick(), 200u);
}

TEST(EventQueue, PooledEventsRecycledAfterDrain)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 200; ++i)
        q.schedule([&] { fired++; }, 10 + i);
    EXPECT_GT(q.poolOutstanding(), 0u);
    q.run();
    EXPECT_EQ(fired, 200);
    EXPECT_EQ(q.poolOutstanding(), 0u);

    // A second burst of the same size reuses the recycled slots
    // instead of carving new slabs.
    std::size_t carved = q.poolCarved();
    for (int i = 0; i < 200; ++i)
        q.schedule([&] { fired++; }, q.curTick() + 1 + i);
    q.run();
    EXPECT_EQ(q.poolCarved(), carved);
    EXPECT_EQ(q.poolOutstanding(), 0u);
}

TEST(EventQueue, DescheduledManagedEventIsRecycled)
{
    EventQueue q;
    bool ran = false;
    Event *ev = q.scheduleIn([&] { ran = true; }, 100, "doomed");
    EXPECT_EQ(q.poolOutstanding(), 1u);
    q.deschedule(ev);
    EXPECT_EQ(q.pendingEvents(), 0u);
    EXPECT_TRUE(q.empty());
    q.run(); // pops the stale entry, releasing the pooled slot
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.poolOutstanding(), 0u);
}

TEST(EventQueue, RepeatedRescheduleCompactsStaleEntries)
{
    EventQueue q;
    CallbackEvent ev("timer", [] {});
    q.schedule(&ev, 1'000'000);
    for (int i = 1; i <= 10'000; ++i)
        q.reschedule(&ev, 1'000'000 + i);
    // Lazy deletion leaves stale entries behind, but threshold
    // compaction keeps the heap bounded instead of 10k deep.
    EXPECT_LT(q.internalEntries(), 200u);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(q.internalEntries(), 0u);
    EXPECT_EQ(q.staleEntries(), 0u);
}

TEST(EventQueue, DynamicNamesAreInterned)
{
    const char *p1 = internEventName(std::string("dyn.name"));
    const char *p2 = internEventName(std::string("dyn.name"));
    EXPECT_EQ(p1, p2);
    EventQueue q;
    Event *ev = q.scheduleIn([] {}, 5, std::string("dyn.name"));
    EXPECT_EQ(ev->name(), p1); // same pooled storage, no copy
    q.run();
}

TEST(EventQueue, RandomizedStressKeepsDispatchOrderAndPool)
{
    // Property test: random schedule/deschedule churn (driven from
    // inside callbacks, so it interleaves with dispatch) must still
    // fire events in (tick, priority, schedule-order) order, and a
    // full drain must return every pooled event.
    Rng rng(20260806);
    EventQueue q;

    struct Fired
    {
        Tick when;
        int prio;
        std::uint64_t stamp;
        /** nextStamp at fire time: events with a smaller stamp were
         *  already scheduled when this one ran. */
        std::uint64_t watermark;
    };
    std::vector<Fired> fired;
    std::unordered_map<std::uint64_t, Event *> pending;
    std::uint64_t nextStamp = 0;
    int budget = 2500;

    std::function<void(int)> spawn = [&](int count) {
        for (int k = 0; k < count && budget > 0; ++k) {
            --budget;
            Tick when = q.curTick() + rng.uniformInt(0, 50);
            static const EventPriority prios[] = {
                EventPriority::HardwareIrq, EventPriority::Default,
                EventPriority::Process};
            EventPriority prio = prios[rng.uniformInt(0, 2)];
            std::uint64_t stamp = nextStamp++;
            Event *ev = q.schedule(
                [&, when, prio, stamp] {
                    pending.erase(stamp);
                    fired.push_back({when, static_cast<int>(prio),
                                     stamp, nextStamp});
                    spawn(static_cast<int>(rng.uniformInt(0, 2)));
                    // Occasionally cancel a still-pending event; the
                    // map only holds events that have not fired, so
                    // the pointers are alive.
                    if (!pending.empty() && rng.chance(0.15)) {
                        auto it = pending.begin();
                        q.deschedule(it->second);
                        pending.erase(it);
                    }
                },
                when, "stress", prio);
            pending.emplace(stamp, ev);
        }
    };
    spawn(64);
    q.run();

    ASSERT_GT(fired.size(), 100u);
    // Time never runs backward.
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1].when, fired[i].when) << "at " << i;
    // Ordering is guaranteed between events that were pending
    // simultaneously: if b was already scheduled when a fired (and b
    // fired later), the queue must have ranked a strictly before b
    // in (tick, priority, schedule-order).
    for (std::size_t i = 0; i < fired.size(); ++i) {
        for (std::size_t j = i + 1; j < fired.size(); ++j) {
            const Fired &a = fired[i];
            const Fired &b = fired[j];
            if (b.stamp >= a.watermark)
                continue; // b not yet scheduled when a ran
            bool ordered =
                a.when < b.when ||
                (a.when == b.when &&
                 (a.prio < b.prio ||
                  (a.prio == b.prio && a.stamp < b.stamp)));
            ASSERT_TRUE(ordered)
                << "dispatch order violated: (" << a.when << ","
                << a.prio << "," << a.stamp << ") fired before ("
                << b.when << "," << b.prio << "," << b.stamp << ")";
        }
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingEvents(), 0u);
    EXPECT_EQ(q.staleEntries(), 0u);
    EXPECT_EQ(q.poolOutstanding(), 0u) << "pooled-event leak";
}

// ---------------------------------------------------------------------
// TimerWheel: O(1) protocol timers with event-queue determinism
// ---------------------------------------------------------------------

TEST(TimerWheel, FiresAtExactDeadlines)
{
    EventQueue q;
    TimerWheel w(q, "test.timer");
    TimerNode t1, t2, t3;
    std::vector<std::pair<int, Tick>> fired;
    w.arm(t2, 500, [&] { fired.emplace_back(2, q.curTick()); });
    w.arm(t1, 100, [&] { fired.emplace_back(1, q.curTick()); });
    w.arm(t3, 90'000, [&] { fired.emplace_back(3, q.curTick()); });
    EXPECT_EQ(w.armedCount(), 3u);
    EXPECT_EQ(w.nextDeadline(), 100u);
    q.run();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], (std::pair<int, Tick>{1, 100}));
    EXPECT_EQ(fired[1], (std::pair<int, Tick>{2, 500}));
    EXPECT_EQ(fired[2], (std::pair<int, Tick>{3, 90'000}));
    EXPECT_EQ(w.armedCount(), 0u);
    EXPECT_EQ(w.fires(), 3u);
    // 90'000 files above level 0, so reaching it cascaded.
    EXPECT_GT(w.cascades(), 0u);
}

TEST(TimerWheel, SameTickTimersFireInArmOrder)
{
    EventQueue q;
    TimerWheel w(q, "test.timer");
    TimerNode a, b, c;
    std::vector<char> order;
    // Arm out of alphabetical order; firing must follow *arm* order.
    w.arm(b, 200, [&] { order.push_back('b'); });
    w.arm(c, 200, [&] { order.push_back('c'); });
    w.arm(a, 200, [&] { order.push_back('a'); });
    q.run();
    EXPECT_EQ(order, (std::vector<char>{'b', 'c', 'a'}));
}

TEST(TimerWheel, InterleavesWithPlainEventsByScheduleOrder)
{
    // The wheel's determinism contract: a timer armed between two
    // plain schedule() calls fires between them at a shared tick,
    // exactly as a per-timer event would have.
    EventQueue q;
    TimerWheel w(q, "test.timer");
    TimerNode t;
    std::vector<int> order;
    q.schedule([&] { order.push_back(1); }, 300);
    w.arm(t, 300, [&] { order.push_back(2); });
    q.schedule([&] { order.push_back(3); }, 300);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, CancelAndRearm)
{
    EventQueue q;
    TimerWheel w(q, "test.timer");
    TimerNode t, u;
    int tFired = 0, uFired = 0;
    Tick uAt = 0;
    w.arm(t, 100, [&] { tFired++; });
    w.arm(u, 100, [&] { uFired++; });
    t.cancel();
    EXPECT_FALSE(t.armed());
    EXPECT_TRUE(u.armed());
    EXPECT_EQ(w.armedCount(), 1u);
    // Re-arming an armed node moves it: only the new deadline runs.
    w.arm(u, 700, [&] {
        uFired++;
        uAt = q.curTick();
    });
    EXPECT_EQ(w.armedCount(), 1u);
    q.run();
    EXPECT_EQ(tFired, 0);
    EXPECT_EQ(uFired, 1);
    EXPECT_EQ(uAt, 700u);
    EXPECT_EQ(q.curTick(), 700u); // canceled deadlines leave no event
}

TEST(TimerWheel, RearmFromInsideCallbackChains)
{
    // The RTO pattern: each fire re-arms the same node. Crossing
    // many 64-tick slot boundaries exercises the cascade path.
    EventQueue q;
    TimerWheel w(q, "test.timer");
    TimerNode t;
    std::vector<Tick> at;
    std::function<void()> tick = [&] {
        at.push_back(q.curTick());
        if (at.size() < 5)
            w.arm(t, q.curTick() + 1000, tick);
    };
    w.arm(t, 1000, tick);
    q.run();
    EXPECT_EQ(at, (std::vector<Tick>{1000, 2000, 3000, 4000, 5000}));
    EXPECT_EQ(w.armedCount(), 0u);
}

TEST(TimerWheel, CancelFromInsideAnotherCallback)
{
    // A firing timer may cancel a same-tick sibling; the sibling
    // must not run even though it was already due.
    EventQueue q;
    TimerWheel w(q, "test.timer");
    TimerNode killer, victim, bystander;
    std::vector<char> order;
    w.arm(killer, 50, [&] {
        order.push_back('k');
        victim.cancel();
    });
    w.arm(victim, 50, [&] { order.push_back('v'); });
    w.arm(bystander, 50, [&] { order.push_back('b'); });
    q.run();
    EXPECT_EQ(order, (std::vector<char>{'k', 'b'}));
}

TEST(TimerWheel, WheelTeardownDropsArmedTimers)
{
    // A layer dying with protocol timers outstanding (node removal,
    // end of run) must not fire them or leak their captures.
    EventQueue q;
    TimerNode t1, t2;
    int fired = 0;
    {
        TimerWheel w(q, "test.timer");
        w.arm(t1, 100, [&] { fired++; });
        w.arm(t2, 99'999, [&] { fired++; });
    }
    EXPECT_FALSE(t1.armed());
    EXPECT_FALSE(t2.armed());
    q.run();
    EXPECT_EQ(fired, 0);
    // Canceling against the dead wheel is a safe no-op.
    t1.cancel();
}

TEST(TimerWheel, FarDeadlinesSurviveManyCascades)
{
    // Deadlines spread across several wheel levels all land exactly,
    // including ones re-filed multiple times on the way down.
    EventQueue q;
    TimerWheel w(q, "test.timer");
    constexpr int n = 32;
    TimerNode nodes[n];
    std::vector<Tick> want, got;
    for (int i = 0; i < n; ++i) {
        // Spread: 3^i mod a big range, covering levels 0..4.
        Tick d = 1 + (static_cast<Tick>(i) * 2'654'435'761u) %
                         10'000'000u;
        want.push_back(d);
        w.arm(nodes[i], d, [&got, &q] { got.push_back(q.curTick()); });
    }
    std::sort(want.begin(), want.end());
    q.run();
    EXPECT_EQ(got, want);
    EXPECT_EQ(w.fires(), static_cast<std::uint64_t>(n));
}

TEST(ClockDomain, PeriodAndConversions)
{
    ClockDomain ghz("cpu", 1e9);
    EXPECT_EQ(ghz.period(), 1000u);
    EXPECT_EQ(ghz.cyclesToTicks(5), 5000u);
    EXPECT_EQ(ghz.ticksToCycles(5000), 5u);
    EXPECT_EQ(ghz.ticksToCycles(5001), 6u); // partial cycle rounds up
    EXPECT_EQ(ghz.nextEdge(1500), 2000u);
    EXPECT_EQ(ghz.nextEdge(2000), 2000u);
}

TEST(ClockDomain, HighFrequencyClamps)
{
    ClockDomain fast("f", 2e12); // would be 0.5 ps
    EXPECT_GE(fast.period(), 1u);
}

TEST(ClockDomain, BadFrequencyFatal)
{
    EXPECT_THROW(ClockDomain("bad", 0.0), FatalError);
}

TEST(Rng, DeterministicWithSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1'000'000),
                  b.uniformInt(0, 1'000'000));
}

TEST(Rng, RangesRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
        auto d = r.uniformReal(1.0, 2.0);
        EXPECT_GE(d, 1.0);
        EXPECT_LT(d, 2.0);
        EXPECT_GE(r.normalNonNeg(0.0, 1.0), 0.0);
    }
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Simulation, RunForAdvancesTime)
{
    Simulation sim;
    int fired = 0;
    sim.eventQueue().schedule([&] { fired++; }, oneUs);
    sim.runFor(2 * oneUs);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.curTick(), 2 * oneUs);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(secondsToTicks(1e-6), oneUs);
    EXPECT_DOUBLE_EQ(ticksToSeconds(oneMs), 1e-3);
    EXPECT_DOUBLE_EQ(ticksToUs(oneMs), 1000.0);
}
