/**
 * @file
 * Unit tests for the coroutine task layer: lazy start, value return,
 * nesting, delays, conditions, semaphores, mailboxes, task groups,
 * and exception propagation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/task.hh"

using namespace mcnsim::sim;

namespace {

Task<int>
answer()
{
    co_return 42;
}

Task<int>
addDelayed(EventQueue &q, int a, int b)
{
    co_await delayFor(q, 100);
    co_return a + b;
}

Task<void>
outerTask(EventQueue &q, std::vector<std::string> &log)
{
    log.push_back("outer-start");
    int v = co_await addDelayed(q, 20, 22);
    log.push_back("got-" + std::to_string(v));
}

} // namespace

TEST(Task, LazyStart)
{
    EventQueue q;
    bool ran = false;
    auto make = [&]() -> Task<void> {
        ran = true;
        co_return;
    };
    Task<void> t = make();
    EXPECT_FALSE(ran); // not started until awaited/spawned
    spawnDetached(q, std::move(t));
    EXPECT_FALSE(ran); // starts via the event queue, not inline
    q.run();
    EXPECT_TRUE(ran);
}

TEST(Task, NestedAwaitReturnsValue)
{
    EventQueue q;
    std::vector<std::string> log;
    spawnDetached(q, outerTask(q, log));
    q.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], "outer-start");
    EXPECT_EQ(log[1], "got-42");
    EXPECT_EQ(q.curTick(), 100u);
}

TEST(Task, ImmediateValueTask)
{
    EventQueue q;
    int got = 0;
    auto outer = [&]() -> Task<void> {
        got = co_await answer();
    };
    spawnDetached(q, outer());
    q.run();
    EXPECT_EQ(got, 42);
}

TEST(Task, DelaysAccumulate)
{
    EventQueue q;
    Tick end = 0;
    auto t = [&]() -> Task<void> {
        co_await delayFor(q, 10);
        co_await delayFor(q, 20);
        co_await delayFor(q, 30);
        end = q.curTick();
    };
    spawnDetached(q, t());
    q.run();
    EXPECT_EQ(end, 60u);
}

TEST(Task, ExceptionPropagatesToAwaiter)
{
    EventQueue q;
    bool caught = false;
    auto thrower = []() -> Task<void> {
        throw std::runtime_error("boom");
        co_return;
    };
    auto outer = [&]() -> Task<void> {
        try {
            co_await thrower();
        } catch (const std::runtime_error &e) {
            caught = std::string(e.what()) == "boom";
        }
    };
    spawnDetached(q, outer());
    q.run();
    EXPECT_TRUE(caught);
}

TEST(Condition, NotifyAllWakesAllWaiters)
{
    EventQueue q;
    Condition cv(q);
    int woke = 0;
    auto waiter = [&]() -> Task<void> {
        co_await cv.wait();
        woke++;
    };
    for (int i = 0; i < 3; ++i)
        spawnDetached(q, waiter());
    q.run();
    EXPECT_EQ(woke, 0);
    EXPECT_EQ(cv.waiterCount(), 3u);
    cv.notifyAll();
    q.run();
    EXPECT_EQ(woke, 3);
}

TEST(Condition, NotifyOneWakesFifo)
{
    EventQueue q;
    Condition cv(q);
    std::vector<int> order;
    auto waiter = [&](int id) -> Task<void> {
        co_await cv.wait();
        order.push_back(id);
    };
    spawnDetached(q, waiter(1));
    spawnDetached(q, waiter(2));
    q.run();
    cv.notifyOne();
    q.run();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 1);
    cv.notifyOne();
    q.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 2);
}

TEST(Condition, ReWaitLandsInNextRound)
{
    EventQueue q;
    Condition cv(q);
    int wakes = 0;
    auto waiter = [&]() -> Task<void> {
        co_await cv.wait();
        wakes++;
        co_await cv.wait();
        wakes++;
    };
    spawnDetached(q, waiter());
    q.run();
    cv.notifyAll();
    q.run();
    EXPECT_EQ(wakes, 1); // second wait needs a second notify
    cv.notifyAll();
    q.run();
    EXPECT_EQ(wakes, 2);
}

TEST(Semaphore, BlocksUntilRelease)
{
    EventQueue q;
    SimSemaphore sem(q, 1);
    std::vector<int> order;
    auto user = [&](int id) -> Task<void> {
        co_await sem.acquire();
        order.push_back(id);
        co_await delayFor(q, 100);
        sem.release();
    };
    spawnDetached(q, user(1));
    spawnDetached(q, user(2));
    q.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(q.curTick(), 200u);
    EXPECT_EQ(sem.available(), 1);
}

TEST(Mailbox, FifoDelivery)
{
    EventQueue q;
    Mailbox<int> mb(q);
    std::vector<int> got;
    auto consumer = [&]() -> Task<void> {
        for (int i = 0; i < 3; ++i)
            got.push_back(co_await mb.pop());
    };
    spawnDetached(q, consumer());
    q.run();
    mb.push(10);
    mb.push(20);
    q.run();
    mb.push(30);
    q.run();
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
    EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, PopBeforePushSuspends)
{
    EventQueue q;
    Mailbox<std::string> mb(q);
    std::string got;
    auto consumer = [&]() -> Task<void> {
        got = co_await mb.pop();
    };
    spawnDetached(q, consumer());
    q.run();
    EXPECT_TRUE(got.empty());
    mb.push("hello");
    q.run();
    EXPECT_EQ(got, "hello");
}

TEST(TaskGroup, TracksCompletion)
{
    EventQueue q;
    TaskGroup group(q);
    auto worker = [&](Tick d) -> Task<void> {
        co_await delayFor(q, d);
    };
    group.spawn(worker(100));
    group.spawn(worker(300));
    group.spawn(worker(200));
    EXPECT_EQ(group.liveCount(), 3);
    EXPECT_FALSE(group.allDone());
    q.run();
    EXPECT_TRUE(group.allDone());
    EXPECT_EQ(q.curTick(), 300u);
}

TEST(TaskGroup, WaitResumesAfterAllFinish)
{
    EventQueue q;
    TaskGroup group(q);
    Tick wait_done = 0;
    auto worker = [&](Tick d) -> Task<void> {
        co_await delayFor(q, d);
    };
    group.spawn(worker(500));
    group.spawn(worker(100));
    auto waiter = [&]() -> Task<void> {
        co_await group.wait();
        wait_done = q.curTick();
    };
    spawnDetached(q, waiter());
    q.run();
    EXPECT_EQ(wait_done, 500u);
}
