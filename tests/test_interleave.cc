/**
 * @file
 * Unit + property tests for channel interleaving and DRAM address
 * decoding, including the Fig. 6 stride rule that memcpy_to_mcn
 * relies on.
 */

#include <gtest/gtest.h>

#include "mem/dram_timing.hh"
#include "mem/interleave.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

using namespace mcnsim::mem;
using mcnsim::sim::FatalError;
using mcnsim::sim::Rng;

TEST(Interleave, TwoChannelRoundRobin)
{
    InterleaveMap m(2);
    // Fig. 6: successive 64B lines alternate channels.
    EXPECT_EQ(m.channelOf(0), 0u);
    EXPECT_EQ(m.channelOf(64), 1u);
    EXPECT_EQ(m.channelOf(128), 0u);
    EXPECT_EQ(m.channelOf(192), 1u);
    // Bytes within a line stay on the line's channel.
    EXPECT_EQ(m.channelOf(63), 0u);
    EXPECT_EQ(m.channelOf(127), 1u);
}

TEST(Interleave, ChannelOffsetCompacts)
{
    InterleaveMap m(2);
    // Channel-local offsets are dense per channel.
    EXPECT_EQ(m.channelOffset(0), 0u);
    EXPECT_EQ(m.channelOffset(64), 0u);   // first line of ch1
    EXPECT_EQ(m.channelOffset(128), 64u); // second line of ch0
    EXPECT_EQ(m.channelOffset(192), 64u); // second line of ch1
    EXPECT_EQ(m.channelOffset(130), 66u);
}

TEST(Interleave, HostAddrInvertsChannelOffset)
{
    for (std::uint32_t chans : {1u, 2u, 4u, 8u}) {
        InterleaveMap m(chans);
        Rng rng(17);
        for (int i = 0; i < 2000; ++i) {
            Addr a = rng.uniformInt(0, (1ull << 34));
            auto ch = m.channelOf(a);
            auto off = m.channelOffset(a);
            EXPECT_EQ(m.hostAddr(ch, off), a)
                << "channels=" << chans << " addr=" << a;
        }
    }
}

TEST(Interleave, StrideAddrStaysOnChannel)
{
    // The memcpy_to_mcn rule: consecutive lines of one MCN DIMM's
    // buffer map to host addresses strided by 64 * channels.
    InterleaveMap m(4);
    for (std::uint32_t ch = 0; ch < 4; ++ch) {
        Addr base_off = 4096;
        Addr prev = 0;
        for (std::uint64_t k = 0; k < 64; ++k) {
            Addr host = m.strideAddr(ch, base_off, k);
            EXPECT_EQ(m.channelOf(host), ch);
            EXPECT_EQ(m.channelOffset(host), base_off + k * 64);
            if (k > 0) {
                EXPECT_EQ(host - prev, 64u * 4u); // Fig. 6 stride
            }
            prev = host;
        }
    }
}

TEST(Interleave, SingleChannelIsIdentity)
{
    InterleaveMap m(1);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        Addr a = rng.uniformInt(0, 1ull << 30);
        EXPECT_EQ(m.channelOf(a), 0u);
        EXPECT_EQ(m.channelOffset(a), a);
    }
}

TEST(Interleave, BadConfigRejected)
{
    EXPECT_THROW(InterleaveMap(0), FatalError);
    EXPECT_THROW(InterleaveMap(2, 48), FatalError); // not pow2
}

TEST(Decode, CoordinatesWithinGeometry)
{
    InterleaveMap m(1);
    auto t = DramTiming::ddr4_3200();
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.uniformInt(0, t.capacityBytes() - 1);
        DramCoord c = m.decode(a, t);
        EXPECT_LT(c.rank, t.ranks);
        EXPECT_LT(c.bank, t.banksPerRank);
        EXPECT_LT(c.row, t.rowsPerBank);
        EXPECT_LT(c.column, t.rowBufferBytes);
    }
}

TEST(Decode, SequentialLinesShareRowUntilBoundary)
{
    InterleaveMap m(1);
    auto t = DramTiming::ddr4_3200();
    // Within one row buffer all lines decode to the same (rank,
    // bank, row): streaming accesses are row hits.
    DramCoord first = m.decode(0, t);
    for (Addr a = 0; a < t.rowBufferBytes; a += 64) {
        DramCoord c = m.decode(a, t);
        EXPECT_EQ(c.rank, first.rank);
        EXPECT_EQ(c.bank, first.bank);
        EXPECT_EQ(c.row, first.row);
        EXPECT_EQ(c.column, a);
    }
    // The next line moves somewhere else.
    DramCoord next = m.decode(t.rowBufferBytes, t);
    EXPECT_TRUE(next.rank != first.rank || next.bank != first.bank ||
                next.row != first.row);
}

TEST(DramTiming, PresetSanity)
{
    for (auto t : {DramTiming::ddr4_3200(), DramTiming::lpddr4_1866(),
                   DramTiming::ddr3_1066()}) {
        EXPECT_GT(t.peakBandwidthBps(), 0.0) << t.name;
        EXPECT_EQ(t.burstBytes(), 64u) << t.name;
        EXPECT_GT(t.tRAS, t.tRCD) << t.name;
        EXPECT_GT(t.tRFC, 0u) << t.name;
        EXPECT_GT(t.tREFI, t.tRFC) << t.name;
        EXPECT_GE(t.capacityBytes(), 1ull << 30) << t.name;
    }
    // DDR4-3200 x64: 25.6 GB/s peak.
    EXPECT_NEAR(DramTiming::ddr4_3200().peakBandwidthBps(), 25.6e9,
                1e6);
}
