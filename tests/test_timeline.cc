/**
 * @file
 * Tests for the timeline observability layer: the Perfetto/Chrome
 * trace-event recorder (sim/timeline.hh), the periodic stats
 * sampler (sim/stat_sampler.hh), the host-time event profiler in
 * EventQueue, and the self-describing Simulation::dumpStatsJson
 * metadata header.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <utility>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stat_sampler.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

using namespace mcnsim::sim;

namespace {

/** Leave the process-wide timeline off and empty between tests. */
struct TimelineGuard
{
    TimelineGuard()
    {
        Timeline::instance().enable(false);
        Timeline::instance().clear();
    }
    ~TimelineGuard()
    {
        Timeline::instance().enable(false);
        Timeline::instance().clear();
        Timeline::instance().setCapacity(Timeline::defaultCapacity);
    }
};

/** A SimObject exposing the protected timeline helpers. */
struct Component : SimObject
{
    using SimObject::SimObject;

    void
    emitAll()
    {
        tlSpan("work", curTick(), curTick() + 100);
        tlCounter("depth", 3.0);
        tlInstant("kick");
    }
};

} // namespace

// ---------------------------------------------------------------------
// Timeline recorder
// ---------------------------------------------------------------------

TEST(Timeline, TrackForSplitsProcessAndThread)
{
    Timeline tl;
    auto a = tl.trackFor("host.mcndrv");
    auto b = tl.trackFor("host.mem.mc0");
    auto c = tl.trackFor("mcn0.eth0");
    auto d = tl.trackFor("tor");

    EXPECT_EQ(tl.tracks()[a].process, "host");
    EXPECT_EQ(tl.tracks()[a].thread, "host.mcndrv");
    EXPECT_EQ(tl.tracks()[b].process, "host");
    EXPECT_EQ(tl.tracks()[c].process, "mcn0");
    EXPECT_EQ(tl.tracks()[d].process, "tor");
    EXPECT_EQ(tl.tracks()[d].thread, "tor");

    // Same process -> same pid, distinct tids.
    EXPECT_EQ(tl.tracks()[a].pid, tl.tracks()[b].pid);
    EXPECT_NE(tl.tracks()[a].tid, tl.tracks()[b].tid);
    EXPECT_NE(tl.tracks()[a].pid, tl.tracks()[c].pid);

    // Idempotent registration.
    EXPECT_EQ(tl.trackFor("host.mcndrv"), a);
    EXPECT_EQ(tl.trackCount(), 4u);
}

TEST(Timeline, RecordsOnlyWhenEnabledAndClampsBackwardSpans)
{
    Timeline tl;
    auto t = tl.trackFor("host");

    tl.span(t, "ignored", 0, 10); // not enabled yet
    EXPECT_EQ(tl.eventCount(), 0u);

    tl.enable(true);
    tl.span(t, "s", 100, 250);
    tl.counter(t, "c", 120, 7.5);
    tl.instant(t, "i", 130);
    tl.span(t, "backwards", 500, 400); // clamped to zero length
    ASSERT_EQ(tl.eventCount(), 4u);
    EXPECT_EQ(tl.records()[3].end, tl.records()[3].start);

    tl.enable(false);
    tl.span(t, "late", 600, 700);
    EXPECT_EQ(tl.eventCount(), 4u);
}

TEST(Timeline, CapacityBoundDropsAndCounts)
{
    Timeline tl(3);
    tl.enable(true);
    auto t = tl.trackFor("host");
    for (Tick i = 0; i < 10; ++i)
        tl.instant(t, "e", i);
    EXPECT_EQ(tl.eventCount(), 3u);
    EXPECT_EQ(tl.dropped(), 7u);

    // Shrinking the bound truncates and counts the loss.
    tl.setCapacity(1);
    EXPECT_EQ(tl.eventCount(), 1u);
    EXPECT_EQ(tl.dropped(), 9u);

    tl.clear();
    EXPECT_EQ(tl.eventCount(), 0u);
    EXPECT_EQ(tl.dropped(), 0u);
    EXPECT_EQ(tl.trackCount(), 1u); // tracks survive clear()
}

TEST(Timeline, ExportIsValidChromeTraceJson)
{
    Timeline tl;
    tl.enable(true);
    auto drv = tl.trackFor("host.mcndrv");
    auto eth = tl.trackFor("mcn0.eth0");
    tl.span(drv, "poll", 2 * oneUs, 3 * oneUs);
    tl.span(drv, "drain", 5 * oneUs, 9 * oneUs);
    tl.counter(eth, "ring", 4 * oneUs, 1536.0);
    tl.instant(eth, "irq", 6 * oneUs);
    // Recorded out of tick order on purpose: export must sort.
    tl.span(eth, "copy", 1 * oneUs, 2 * oneUs);

    std::ostringstream os;
    tl.exportJson(os, {{"command", "unit-test"}});
    json::Value doc = json::parse(os.str());

    EXPECT_EQ(doc["otherData"]["command"].asString(), "unit-test");
    EXPECT_EQ(doc["otherData"]["dropped_events"].asNumber(), 0.0);

    const auto &evs = doc["traceEvents"].asArray();
    std::map<std::pair<double, double>, double> lastTs;
    std::size_t spans = 0, counters = 0, instants = 0, metas = 0;
    for (const auto &e : evs) {
        const std::string &ph = e["ph"].asString();
        if (ph == "M") {
            metas++;
            continue;
        }
        double ts = e["ts"].asNumber();
        EXPECT_GE(ts, 0.0);
        auto key = std::make_pair(e["pid"].asNumber(),
                                  e["tid"].asNumber());
        auto it = lastTs.find(key);
        if (it != lastTs.end()) {
            EXPECT_GE(ts, it->second) << "ts not monotone per thread";
        }
        lastTs[key] = ts;
        if (ph == "X") {
            spans++;
            EXPECT_GE(e["dur"].asNumber(), 0.0);
        } else if (ph == "C") {
            counters++;
            EXPECT_EQ(e["args"]["value"].asNumber(), 1536.0);
        } else if (ph == "i") {
            instants++;
            EXPECT_EQ(e["s"].asString(), "t");
        }
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_EQ(counters, 1u);
    EXPECT_EQ(instants, 1u);
    // 2 processes + 2 threads named.
    EXPECT_EQ(metas, 4u);

    // ts is microseconds: the earliest span starts at 1 µs.
    for (const auto &e : evs) {
        if (e["ph"].asString() == "X" &&
            e["name"].asString() == "copy") {
            EXPECT_DOUBLE_EQ(e["ts"].asNumber(), 1.0);
        }
    }
}

TEST(Timeline, SimObjectHelpersRecordOnOwnTrack)
{
    TimelineGuard guard;
    Simulation s;
    Component comp(s, "node7.widget");

    EXPECT_FALSE(Timeline::active());
    comp.emitAll(); // gated off: nothing recorded
    EXPECT_EQ(Timeline::instance().eventCount(), 0u);

    Timeline::instance().enable(true);
    EXPECT_TRUE(Timeline::active());
    comp.emitAll();
    auto &tl = Timeline::instance();
    ASSERT_EQ(tl.eventCount(), 3u);
    const auto &track = tl.tracks()[tl.records()[0].track];
    EXPECT_EQ(track.process, "node7");
    EXPECT_EQ(track.thread, "node7.widget");
}

// ---------------------------------------------------------------------
// Stats sampler
// ---------------------------------------------------------------------

TEST(StatSampler, EmitsFloorRuntimeOverPeriodPlusOneSnapshots)
{
    // Exact divisor and a ragged remainder: floor(T/P)+1 both ways.
    for (Tick runtime : {100 * oneUs, 95 * oneUs, 9 * oneUs}) {
        Simulation s;
        StatSampler sampler(s, 10 * oneUs);
        sampler.addProbe("tick", [&s] {
            return static_cast<double>(s.curTick());
        });
        sampler.start();
        s.run(runtime);
        sampler.stop();

        std::size_t expect =
            static_cast<std::size_t>(runtime / (10 * oneUs)) + 1;
        EXPECT_EQ(sampler.snapshotCount(), expect)
            << "runtime " << runtime;
        ASSERT_EQ(sampler.ticks().size(), expect);
        EXPECT_EQ(sampler.ticks().front(), 0u);
        EXPECT_EQ(sampler.ticks().back(),
                  (runtime / (10 * oneUs)) * 10 * oneUs);
        // The probe saw the snapshot-time tick.
        EXPECT_DOUBLE_EQ(sampler.values(0).back(),
                         static_cast<double>(sampler.ticks().back()));
    }
}

TEST(StatSampler, RegistryWalkFiltersAndSamplesScalars)
{
    Simulation s;
    Component comp(s, "nodeA.dev");
    Scalar bytes{"txBytes", "bytes sent"};
    Average lat{"lat", "latency"};
    Histogram hist{"dist", "ignored by sampler", 0, 10, 4};
    comp.stats().add(&bytes);
    comp.stats().add(&lat);
    comp.stats().add(&hist);

    StatSampler sampler(s, oneUs);
    // Filter by qualified name; histograms never match.
    EXPECT_EQ(sampler.addRegistryStats("nodeA.dev."), 2u);
    sampler.start();
    bytes += 1000;
    lat.sample(4.0);
    s.run(2 * oneUs);
    sampler.stop();

    ASSERT_EQ(sampler.snapshotCount(), 3u);
    EXPECT_EQ(sampler.probeCount(), 2u);
    // Probe 0 is the scalar: 0 at t0, 1000 afterwards.
    EXPECT_DOUBLE_EQ(sampler.values(0).front(), 0.0);
    EXPECT_DOUBLE_EQ(sampler.values(0).back(), 1000.0);
    EXPECT_DOUBLE_EQ(sampler.values(1).back(), 4.0);
}

TEST(StatSampler, ExportRoundTripsThroughJsonParser)
{
    Simulation s;
    StatSampler sampler(s, 5 * oneUs);
    sampler.addProbe("constant", [] { return 2.5; });
    sampler.start();
    s.run(20 * oneUs);
    sampler.stop();

    std::ostringstream os;
    sampler.exportJson(os, {{"command", "unit-test"}});
    json::Value doc = json::parse(os.str());

    EXPECT_EQ(doc["schema_version"].asNumber(), 1.0);
    EXPECT_EQ(doc["kind"].asString(), "mcnsim-stats-series");
    EXPECT_EQ(doc["meta"]["command"].asString(), "unit-test");
    EXPECT_EQ(doc["period_us"].asNumber(), 5.0);
    EXPECT_EQ(doc["snapshots"].asNumber(), 5.0);
    ASSERT_EQ(doc["ticks"].size(), 5u);
    ASSERT_EQ(doc["series"].size(), 1u);
    EXPECT_EQ(doc["series"][std::size_t{0}]["name"].asString(),
              "constant");
    EXPECT_EQ(
        doc["series"][std::size_t{0}]["values"][std::size_t{4}]
            .asNumber(),
        2.5);
}

TEST(StatSampler, StartClampsShardedEngineToOneWorker)
{
    Simulation s;
    s.enableSharding();
    s.newShard();
    s.setThreads(4);
    StatSampler sampler(s, 10 * oneUs);
    sampler.addProbe("tick", [&s] {
        return static_cast<double>(s.curTick());
    });
    EXPECT_EQ(s.threads(), 4u);
    sampler.start();
    // The clamp lives in start(), not in any particular caller: the
    // sampler reads live stats mid-run, so a sharded simulation
    // must fall back to one worker the moment sampling begins.
    EXPECT_EQ(s.threads(), 1u);
    s.run(20 * oneUs);
    sampler.stop();
    EXPECT_GE(sampler.snapshotCount(), 2u);
}

TEST(StatSampler, SeriesByteIdenticalAcrossWorkerCounts)
{
    // The sampled series is modeled output: requesting --threads=2/4
    // (clamped to 1 worker by start(), shard structure intact) must
    // export byte-for-byte what --threads=1 exports.
    auto run = [](unsigned threads) {
        Simulation s(3);
        s.enableSharding();
        s.setThreads(threads);
        mcnsim::core::ClusterSystemParams p;
        p.numNodes = 3;
        mcnsim::core::ClusterSystem sys(s, p);
        StatSampler sampler(s, 50 * oneUs);
        sampler.addRegistryStats("");
        sampler.start();
        runIperf(s, sys, 0, {1, 2}, oneMs);
        sampler.stop();
        std::ostringstream os;
        sampler.exportJson(os, {{"command", "unit-test"}});
        return os.str();
    };
    std::string t1 = run(1);
    EXPECT_EQ(t1, run(2));
    EXPECT_EQ(t1, run(4));
}

// ---------------------------------------------------------------------
// Host-time event profiler
// ---------------------------------------------------------------------

TEST(EventProfiler, CountsMatchScriptedSequence)
{
    EventQueue q;
    q.setProfiling(true);

    int fired = 0;
    for (Tick t = 1; t <= 3; ++t)
        q.schedule([&fired] { fired++; }, t * oneNs, "alpha");
    for (Tick t = 4; t <= 5; ++t)
        q.schedule([&fired] { fired++; }, t * oneNs, "beta");
    q.run();
    EXPECT_EQ(fired, 5);

    auto rows = q.profileEntries();
    ASSERT_EQ(rows.size(), 2u);
    std::map<std::string, std::uint64_t> counts;
    for (const auto &r : rows)
        counts[r.name] = r.count;
    EXPECT_EQ(counts["alpha"], 3u);
    EXPECT_EQ(counts["beta"], 2u);
    // Sorted by accumulated host time, descending.
    EXPECT_GE(rows[0].hostNs, rows[1].hostNs);

    q.resetProfile();
    EXPECT_TRUE(q.profileEntries().empty());
}

TEST(EventProfiler, DisabledByDefaultAndTogglable)
{
    EventQueue q;
    EXPECT_FALSE(q.profilingEnabled());
    q.schedule([] {}, oneNs, "quiet");
    q.run();
    EXPECT_TRUE(q.profileEntries().empty());

    q.setProfiling(true);
    q.schedule([] {}, 2 * oneNs, "loud");
    q.run();
    auto rows = q.profileEntries();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_STREQ(rows[0].name, "loud");
    EXPECT_EQ(rows[0].count, 1u);
}

TEST(EventProfiler, ManagedEventNameSurvivesRecycling)
{
    // The pooled slot's name is reset on recycle; the profiler must
    // key on the pre-dispatch pointer, never "pool-free".
    EventQueue q;
    q.setProfiling(true);
    for (int i = 0; i < 50; ++i)
        q.schedule([] {}, static_cast<Tick>(i + 1), "recycled");
    q.run();
    auto rows = q.profileEntries();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_STREQ(rows[0].name, "recycled");
    EXPECT_EQ(rows[0].count, 50u);
}

// ---------------------------------------------------------------------
// Self-describing stats dump
// ---------------------------------------------------------------------

TEST(StatsDump, SimulationDumpCarriesRunMetadata)
{
    Simulation s(1234);
    s.setMetadata("preset", "unit");
    s.eventQueue().setProfiling(true);
    s.eventQueue().schedule([] {}, 3 * oneUs, "meta-evt");
    s.run(5 * oneUs);

    std::ostringstream os;
    s.dumpStatsJson(os);
    json::Value doc = json::parse(os.str());

    EXPECT_EQ(doc["schema_version"].asNumber(), 3.0);
    EXPECT_EQ(doc["meta"]["seed"].asNumber(), 1234.0);
    EXPECT_EQ(doc["meta"]["sim_ticks"].asNumber(),
              static_cast<double>(5 * oneUs));
    EXPECT_EQ(doc["meta"]["events_processed"].asNumber(), 1.0);
    EXPECT_GE(doc["meta"]["wall_seconds"].asNumber(), 0.0);
    EXPECT_EQ(doc["meta"]["preset"].asString(), "unit");
    EXPECT_TRUE(doc["groups"].isArray());

    const auto &prof = doc["event_profile"].asArray();
    ASSERT_EQ(prof.size(), 1u);
    EXPECT_EQ(prof[0]["name"].asString(), "meta-evt");
    EXPECT_EQ(prof[0]["count"].asNumber(), 1.0);

    // The registry-level dump keeps its v1 shape for old tooling.
    std::ostringstream v1;
    s.statRegistry().dumpJson(v1);
    EXPECT_EQ(json::parse(v1.str())["schema_version"].asNumber(),
              1.0);
}
