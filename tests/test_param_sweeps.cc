/**
 * @file
 * Parameterized property sweeps (TEST_P): invariants checked across
 * whole parameter grids rather than single points -- ring geometry,
 * DRAM presets, interleave widths, TCP transfer configurations, TSO
 * segmentations and copy-mode orderings.
 */

#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "core/system_builder.hh"
#include "mcn/sram_buffer.hh"
#include "mem/dram_timing.hh"
#include "mem/interleave.hh"
#include "mem/mem_controller.hh"
#include "mem/memcpy_model.hh"
#include "net/socket.hh"
#include "net/tcp.hh"
#include "netdev/nic.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace mcnsim;
using namespace mcnsim::mem;
using namespace mcnsim::sim;

// ---------------------------------------------------------------------
// MessageRing: FIFO + byte-accounting invariants over geometry grid
// ---------------------------------------------------------------------

class RingSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t /*capacity*/,
                     std::size_t /*max msg*/>>
{};

TEST_P(RingSweep, RandomOpsKeepInvariants)
{
    auto [capacity, max_msg] = GetParam();
    mcn::MessageRing ring(capacity);
    Rng rng(static_cast<std::uint64_t>(capacity * 31 + max_msg));
    std::deque<std::vector<std::uint8_t>> model;

    for (int op = 0; op < 1200; ++op) {
        if (rng.chance(0.6)) {
            std::size_t n = rng.uniformInt(1, max_msg);
            std::vector<std::uint8_t> msg(n);
            for (auto &v : msg)
                v = static_cast<std::uint8_t>(
                    rng.uniformInt(0, 255));
            bool fits = mcn::MessageRing::footprint(n) <=
                        ring.freeBytes();
            ASSERT_EQ(ring.enqueue(msg.data(), n), fits);
            if (fits)
                model.push_back(std::move(msg));
        } else {
            auto got = ring.dequeue();
            if (model.empty()) {
                ASSERT_FALSE(got);
            } else {
                ASSERT_TRUE(got);
                ASSERT_EQ(got->bytes, model.front());
                model.pop_front();
            }
        }
        ASSERT_LE(ring.usedBytes(), ring.capacityBytes());
        ASSERT_EQ(ring.usedBytes() + ring.freeBytes(),
                  ring.capacityBytes());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, RingSweep,
    ::testing::Combine(::testing::Values(std::size_t{8192},
                                         std::size_t{48 * 1024},
                                         std::size_t{192 * 1024}),
                       ::testing::Values(std::size_t{64},
                                         std::size_t{1500},
                                         std::size_t{9000})));

// ---------------------------------------------------------------------
// DRAM presets: first-access latency identity for every part
// ---------------------------------------------------------------------

class DramPresetSweep
    : public ::testing::TestWithParam<int>
{
  public:
    static DramTiming
    preset(int i)
    {
        switch (i) {
          case 0:
            return DramTiming::ddr4_3200();
          case 1:
            return DramTiming::lpddr4_1866();
          default:
            return DramTiming::ddr3_1066();
        }
    }
};

TEST_P(DramPresetSweep, ColdReadLatencyIsActRcdClBurst)
{
    auto t = preset(GetParam());
    Simulation s;
    MemController mc(s, "mc", t);
    Tick done = 0;
    MemRequest r;
    r.kind = MemRequest::Kind::Read;
    r.addr = 0;
    r.onComplete = [&](Tick at) { done = at; };
    mc.access(std::move(r));
    s.run();
    EXPECT_EQ(done, t.tRCD + t.tCL + t.tBURST) << t.name;
}

TEST_P(DramPresetSweep, StreamApproachesPeakBandwidth)
{
    auto t = preset(GetParam());
    Simulation s;
    MemController mc(s, "mc", t);
    // 512 sequential lines: mostly row hits, bus-limited.
    int outstanding = 512;
    Tick last = 0;
    for (int i = 0; i < 512; ++i) {
        MemRequest r;
        r.kind = MemRequest::Kind::Read;
        r.addr = static_cast<Addr>(i) * 64;
        r.onComplete = [&](Tick at) {
            outstanding--;
            last = std::max(last, at);
        };
        mc.access(std::move(r));
    }
    s.run();
    ASSERT_EQ(outstanding, 0);
    double achieved = 512.0 * 64.0 / ticksToSeconds(last);
    EXPECT_GT(achieved, 0.6 * t.peakBandwidthBps()) << t.name;
    EXPECT_LE(achieved, 1.01 * t.peakBandwidthBps()) << t.name;
}

INSTANTIATE_TEST_SUITE_P(Parts, DramPresetSweep,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------
// Interleave: host-address round trip across channel widths
// ---------------------------------------------------------------------

class InterleaveSweep
    : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(InterleaveSweep, RoundTripAndStrideLaws)
{
    std::uint32_t channels = GetParam();
    InterleaveMap m(channels);
    Rng rng(channels);
    for (int i = 0; i < 1500; ++i) {
        Addr a = rng.uniformInt(0, 1ull << 36);
        ASSERT_EQ(m.hostAddr(m.channelOf(a), m.channelOffset(a)),
                  a);
    }
    // Stride law: k-th line of a channel-pinned buffer advances the
    // host address by exactly lineBytes * channels.
    for (std::uint32_t ch = 0; ch < channels; ++ch)
        for (std::uint64_t k = 1; k < 32; ++k)
            ASSERT_EQ(m.strideAddr(ch, 0, k) -
                          m.strideAddr(ch, 0, k - 1),
                      static_cast<Addr>(64) * channels);
}

INSTANTIATE_TEST_SUITE_P(Widths, InterleaveSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ---------------------------------------------------------------------
// TCP: delivery correctness over (MTU, checksum-bypass, size) grid
// ---------------------------------------------------------------------

class TcpTransferSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t /*mtu*/, bool /*bypass*/,
                     std::size_t /*bytes*/>>
{};

TEST_P(TcpTransferSweep, AllBytesArriveInOrder)
{
    auto [mtu, bypass, bytes] = GetParam();
    Simulation s;
    core::ClusterSystemParams p;
    p.numNodes = 2;
    p.net.mtu = mtu;
    core::ClusterSystem sys(s, p);
    sys.node(0).stack->setChecksumBypass(bypass);
    sys.node(1).stack->setChecksumBypass(bypass);

    std::vector<std::uint8_t> rx;
    bool up = false;
    auto server = [&]() -> Task<void> {
        auto lst = net::tcpListen(*sys.node(1).stack, 9100);
        up = true;
        auto conn = co_await lst->accept();
        while (rx.size() < bytes) {
            auto chunk = co_await conn->recv(65536);
            if (chunk.empty())
                break;
            rx.insert(rx.end(), chunk.begin(), chunk.end());
        }
    };
    std::size_t want = bytes;
    auto client = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        net::SockAddr dst{sys.addrOf(1), 9100};
        auto sock = co_await net::tcpConnect(*sys.node(0).stack,
                                             dst);
        if (!sock)
            co_return;
        std::vector<std::uint8_t> data(want);
        for (std::size_t i = 0; i < want; ++i)
            data[i] = static_cast<std::uint8_t>((i * 31) & 0xff);
        co_await sock->send(std::move(data));
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), client());
    s.run(s.curTick() + secondsToTicks(2.0));

    ASSERT_EQ(rx.size(), bytes)
        << "mtu=" << mtu << " bypass=" << bypass;
    for (std::size_t i = 0; i < bytes; ++i)
        ASSERT_EQ(rx[i], static_cast<std::uint8_t>((i * 31) & 0xff))
            << "offset " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpTransferSweep,
    ::testing::Combine(::testing::Values(1500u, 9000u),
                       ::testing::Bool(),
                       ::testing::Values(std::size_t{1},
                                         std::size_t{1500},
                                         std::size_t{100'000})));

// ---------------------------------------------------------------------
// TSO: segmentation identity over (payload, mss) grid
// ---------------------------------------------------------------------

class TsoSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t /*payload*/,
                     std::uint32_t /*mss*/>>
{};

TEST_P(TsoSweep, SegmentsPartitionThePayload)
{
    using namespace net;
    auto [payload, mss] = GetParam();

    auto pkt = Packet::makePattern(payload, 3);
    pkt->tsoMss = mss;
    TcpHeader th;
    th.srcPort = 5;
    th.dstPort = 6;
    th.seq = 500;
    th.push(*pkt, Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2),
            true);
    Ipv4Header ih;
    ih.src = Ipv4Addr(1, 0, 0, 1);
    ih.dst = Ipv4Addr(1, 0, 0, 2);
    ih.totalLength =
        static_cast<std::uint16_t>(pkt->size() + Ipv4Header::size);
    ih.push(*pkt, true);
    EthernetHeader eh;
    eh.dst = MacAddr::fromId(9);
    eh.src = MacAddr::fromId(8);
    eh.push(*pkt);

    auto segs = netdev::Nic::segmentTso(pkt, true);
    std::size_t expect =
        (payload + mss - 1) / mss;
    ASSERT_EQ(segs.size(), expect);

    std::uint32_t seq = 500;
    std::size_t total = 0;
    for (auto &sp : segs) {
        auto seg = sp->clone();
        EthernetHeader::pull(*seg);
        auto ip = Ipv4Header::pull(*seg, true);
        ASSERT_TRUE(ip);
        auto tcp = TcpHeader::pull(*seg, ip->src, ip->dst, true);
        ASSERT_TRUE(tcp);
        ASSERT_EQ(tcp->seq, seq);
        seq += static_cast<std::uint32_t>(seg->size());
        total += seg->size();
        ASSERT_LE(seg->size(), mss);
    }
    ASSERT_EQ(total, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TsoSweep,
    ::testing::Combine(::testing::Values(std::size_t{100},
                                         std::size_t{1460},
                                         std::size_t{10'000},
                                         std::size_t{40'000}),
                       ::testing::Values(536u, 1460u, 8960u)));

// ---------------------------------------------------------------------
// Copy modes: rate ordering holds for every channel preset
// ---------------------------------------------------------------------

class CopyModeSweep
    : public ::testing::TestWithParam<int>
{};

TEST_P(CopyModeSweep, UncachedSlowerThanWcSlowerThanDma)
{
    auto t = DramPresetSweep::preset(GetParam());
    CopyParams p;
    double peak = t.peakBandwidthBps();
    EXPECT_LT(p.rateFor(CopyMode::UncachedWord, peak),
              p.rateFor(CopyMode::CacheableRead, peak));
    EXPECT_LT(p.rateFor(CopyMode::UncachedWord, peak),
              p.rateFor(CopyMode::WriteCombined, peak));
    EXPECT_LE(p.rateFor(CopyMode::WriteCombined, peak),
              p.rateFor(CopyMode::DmaBurst, peak));
    EXPECT_LE(p.rateFor(CopyMode::DmaBurst, peak), peak);
}

INSTANTIATE_TEST_SUITE_P(Parts, CopyModeSweep,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------
// MCN config levels: every level still moves TCP data correctly
// (bytes identical; covered for speed at 64 KB per level)
// ---------------------------------------------------------------------

class McnLevelSweep : public ::testing::TestWithParam<int>
{};

TEST_P(McnLevelSweep, PingAndDataIntegrity)
{
    int level = GetParam();
    Simulation s;
    core::McnSystemParams p;
    p.numDimms = 1;
    p.config = core::McnConfig::level(level);
    core::McnSystem sys(s, p);

    std::vector<std::uint8_t> rx;
    constexpr std::size_t bytes = 64 * 1024;
    bool up = false;
    auto server = [&]() -> Task<void> {
        auto lst =
            net::tcpListen(sys.dimm(0).stack(), 9200);
        up = true;
        auto conn = co_await lst->accept();
        while (rx.size() < bytes) {
            auto chunk = co_await conn->recv(65536);
            if (chunk.empty())
                break;
            rx.insert(rx.end(), chunk.begin(), chunk.end());
        }
    };
    auto client = [&]() -> Task<void> {
        while (!up)
            co_await delayFor(s.eventQueue(), oneUs);
        net::SockAddr dst{sys.dimmAddr(0), 9200};
        auto sock =
            co_await net::tcpConnect(sys.hostStack(), dst);
        if (!sock)
            co_return;
        std::vector<std::uint8_t> data(bytes);
        for (std::size_t i = 0; i < bytes; ++i)
            data[i] = static_cast<std::uint8_t>((i * 131) & 0xff);
        co_await sock->send(std::move(data));
    };
    spawnDetached(s.eventQueue(), server());
    spawnDetached(s.eventQueue(), client());

    Tick deadline = s.curTick() + secondsToTicks(2.0);
    while (rx.size() < bytes && s.curTick() < deadline)
        s.run(std::min(s.curTick() + 200 * oneUs, deadline));

    ASSERT_EQ(rx.size(), bytes) << "mcn" << level;
    for (std::size_t i = 0; i < bytes; ++i)
        ASSERT_EQ(rx[i],
                  static_cast<std::uint8_t>((i * 131) & 0xff))
            << "offset " << i << " at mcn" << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, McnLevelSweep,
                         ::testing::Range(0, 6));
