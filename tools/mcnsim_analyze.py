#!/usr/bin/env python3
"""Shard-safety static analyzer for the mcnsim PDES engine.

The parallel engine (DESIGN.md §9) promises byte-identical output
for every --threads=N. That guarantee is a *property of the model
code*, not of the engine: one mutable process-global, one
pointer-ordered container iteration, one host-entropy read, and the
promise silently dies. This analyzer machine-checks the determinism
contract (DESIGN.md §11) across src/:

  R1 shard-static      No mutable namespace-scope or function-local
                       static/thread_local state in model code
                       unless the site carries an
                       MCNSIM_SHARD_SAFE("reason") annotation
                       (sim/annotate.hh) stating why it cannot leak
                       thread scheduling into modeled behaviour.

  R2 ptr-unordered-iter  No iteration over std::unordered_map/set
                       keyed on pointers: iteration order is a
                       function of allocator addresses, i.e. of
                       thread scheduling. Use an ordered container
                       or sort before use, and annotate with
                       // analyze-ok: ptr-unordered-iter (<why>).

  R3 host-entropy      No rand()/srand()/std::random_device and no
                       host wall-clock reads in model code: modeled
                       behaviour must depend only on the event queue
                       and the seeded RNG (sim/random.hh). The
                       run-metadata / event-profiler files that
                       legitimately read host time live in
                       HOST_TIME_ALLOW. (Subsumes the old
                       mcnsim_lint.py `wall-clock` rule.)

  R4 cross-shard-schedule  No direct schedule()/scheduleIn()/
                       reschedule() on a queue obtained via
                       shardQueue(): under --threads that queue may
                       belong to another shard's worker. Cross-shard
                       work goes through Simulation::postCrossShard
                       (the mailbox, DESIGN.md §9). Also tracks
                       local aliases of a shardQueue() result.
                       (Subsumes the old mcnsim_lint.py
                       `cross-shard` rule; the engine itself,
                       src/sim/, owns its queues and is exempt.)

  R5 atomic-memory-order  Atomics on the engine's synchronization
                       paths (sim/shard.*, sim/barrier.hh, and the
                       cross-thread buffer-pool refcounts) must pass
                       an explicit std::memory_order -- seq-cst by
                       default hides the intended ordering contract
                       and costs fences the barrier protocol was
                       designed to avoid. Operator forms (++, --,
                       =, +=) on atomics are flagged for the same
                       reason.

Analysis modes
  With the `clang` python bindings and a compile_commands.json
  (CMAKE_EXPORT_COMPILE_COMMANDS=ON) present, declarations are
  resolved through libclang's AST. Otherwise the analyzer announces
  a loud skip -- exactly like ci.sh's clang-tidy step -- and falls
  back to a scope-tracking textual analysis (comment/string
  stripping, brace-scope classification, multi-line declaration
  joining). The textual mode is the CI gate of record; AST mode
  additionally prunes its known false-positive classes (constructor
  -call globals, function pointers).

Suppressions
  R1 wants MCNSIM_SHARD_SAFE("reason") on the declaration line or
  up to 5 lines above. Every rule also accepts
      // analyze-ok: <rule> (<why this site is safe>)
  in the same window. Both require a non-empty justification.

Baseline
  tools/analyze_baseline.json records every annotated site plus any
  grandfathered (unfixed, unannotated) violations. --check fails on
  any violation or annotation drift from the baseline, so new
  findings fail CI while the tracked set stays reviewable.
  --update-baseline rewrites it after a sweep.

Usage
  tools/mcnsim_analyze.py                  # report findings, exit 0
  tools/mcnsim_analyze.py --check          # gate: baseline + fixtures
  tools/mcnsim_analyze.py --json OUT.json  # schema'd findings artifact
  tools/mcnsim_analyze.py --update-baseline
  tools/mcnsim_analyze.py --self-test      # classify tests/analyze_fixtures
  tools/mcnsim_analyze.py --mode textual|ast|auto
"""

import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "tools" / "analyze_baseline.json"
FIXTURES = REPO / "tests" / "analyze_fixtures"

RULES = ("shard-static", "ptr-unordered-iter", "host-entropy",
         "cross-shard-schedule", "atomic-memory-order")

# R3: files allowed to read host time (run-elapsed metadata, the
# opt-in host-time event profiler). Entropy (rand/random_device) has
# no allowlist: nothing in model code may use it.
HOST_TIME_ALLOW = {
    "src/sim/simulation.hh",
    "src/sim/simulation.cc",
    "src/sim/event_queue.cc",
}

# R5 scope: the engine's synchronization paths. Everything else is
# supposed to be single-threaded within its shard and should not be
# rolling its own atomics at all (R1 catches shared globals).
ATOMIC_ORDER_SCOPE = (
    "src/sim/shard.hh", "src/sim/shard.cc", "src/sim/barrier.hh",
    "src/net/buffer_pool.hh", "src/net/buffer_pool.cc",
)

HOST_ENTROPY_RE = re.compile(
    r"\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b"
)
HOST_CLOCK_RE = re.compile(
    r"steady_clock|system_clock|high_resolution_clock"
    r"|gettimeofday|clock_gettime|std::time\s*\(|\btime\s*\(\s*NULL"
    r"|\btime\s*\(\s*nullptr"
)
CROSS_SHARD_RE = re.compile(
    r"\bshardQueue\s*\([^)]*\)\s*\.\s*"
    r"(?:schedule|scheduleIn|reschedule)\s*\("
)
SHARD_ALIAS_RE = re.compile(
    r"(?:auto|EventQueue)\s*&\s*(\w+)\s*=\s*[^;]*\bshardQueue\s*\("
)
ANNOT_RE = re.compile(r'MCNSIM_SHARD_SAFE\s*\(\s*"(.*?)"')
OK_RE = re.compile(r"//\s*analyze-ok:\s*([\w-]+)\s*\(([^)]+)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([\w\-, ]+)")

ATOMIC_OPS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
              "fetch_and", "fetch_or", "fetch_xor",
              "compare_exchange_weak", "compare_exchange_strong",
              "wait")

# Keywords that rule a namespace-scope line out as a variable decl.
NON_DECL_KEYWORDS = re.compile(
    r"^\s*(?:using|typedef|template|friend|return|case|goto|public|"
    r"private|protected|if|else|for|while|switch|do|try|catch|"
    r"namespace|class|struct|enum|union|extern|#|\[\[|operator|"
    r"static_assert|MCNSIM_|FAULT_POINT)\b"
)


def strip_code(text):
    """Comments and string/char literal bodies -> spaces, preserving
    line structure, so rule regexes never match inside either."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.): bail
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out).split("\n")


def scope_map(code_lines):
    """Per-line (scope stack, statement-start) pairs at line start.
    Scope kinds: 'namespace' | 'class' | 'function' | 'block'. The
    statement-start flag is False on continuation lines (text since
    the last ';'/'{'/'}' is non-empty), so multi-line declarations
    are only matched at their first line."""

    def classify(head):
        head = head.strip()
        if re.search(r"\bnamespace\b(?:\s+[\w:]+)?\s*$", head):
            return "namespace"
        if re.search(r"[)\]]\s*(?:const|noexcept|override|final|"
                     r"mutable|->\s*[\w:<>,\s&*]+)*\s*$", head):
            return "function"
        if re.search(r"\b(?:class|struct|union|enum)\b", head) \
                and not head.endswith(")"):
            return "class"
        if re.search(r"\b(?:if|else|for|while|switch|do|try|catch)\b",
                     head):
            return "function"
        return "block"

    stack, head, per_line = [], "", []
    for line in code_lines:
        per_line.append((tuple(stack), head.strip() == ""))
        for ch in line:
            if ch == "{":
                stack.append(classify(head))
                head = ""
            elif ch == "}":
                if stack:
                    stack.pop()
                head = ""
            elif ch == ";":
                head = ""
            else:
                head += ch
        head += " "
    return per_line


def statement_at(code_lines, i, max_join=5):
    """Join stripped lines from i until the first of ';' '=' '{' '('
    (whichever comes first decides the declaration's shape)."""
    joined = ""
    for j in range(i, min(len(code_lines), i + max_join)):
        joined += code_lines[j] + " "
        if re.search(r"[;={(]", joined):
            break
    return joined


def balanced_args(code_lines, i, open_idx, max_join=4):
    """Text of a parenthesized argument list starting at the '(' at
    (line i, column open_idx), joined across lines."""
    depth, out = 0, []
    for j in range(i, min(len(code_lines), i + max_join)):
        seg = code_lines[j][open_idx:] if j == i else code_lines[j]
        for ch in seg:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(out)
            elif depth > 0:
                out.append(ch)
    return "".join(out)


def suppression(raw_lines, i, rule, back=5):
    """('shard-safe'|'analyze-ok', reason) when line i (0-based) or
    one of the @p back lines above carries a valid annotation for
    @p rule, else None. R1 accepts both forms; other rules only
    analyze-ok."""
    window = raw_lines[max(0, i - back):i + 1]
    if rule == "shard-static":
        joined = " ".join(window)
        m = ANNOT_RE.search(joined)
        if m and m.group(1).strip():
            return ("shard-safe", m.group(1).strip())
    for line in window:
        m = OK_RE.search(line)
        if m and m.group(1) == rule and m.group(2).strip():
            return ("analyze-ok", m.group(2).strip())
    return None


class FileAnalysis:
    """Textual analysis of one translation unit (+ sibling header or
    source, for cross-file declarations like a header-declared
    member iterated in the .cc)."""

    def __init__(self, path, rel, fixture_mode=False):
        self.path = path
        self.rel = rel
        self.fixture = fixture_mode
        self.raw = path.read_text(errors="replace").split("\n")
        self.code = strip_code("\n".join(self.raw))
        self.scopes = scope_map(self.code)
        self.sibling_code = []
        sib = (path.with_suffix(".cc") if path.suffix == ".hh"
               else path.with_suffix(".hh"))
        if not fixture_mode and sib.exists():
            self.sibling_code = strip_code(
                sib.read_text(errors="replace"))

    # -- R1 ----------------------------------------------------------
    DECL_QUAL_RE = re.compile(
        r"^\s*(?:\[\[[^\]]*\]\]\s*)?"
        r"(?P<quals>(?:(?:inline|static|thread_local|extern|const|"
        r"constexpr|constinit|mutable)\b\s*)+)")

    def mutable_static_decls(self):
        """Yield (line, symbol, kind) for mutable static-storage
        declarations: static/thread_local anywhere, plus plain
        variables at namespace scope."""
        for i, line in enumerate(self.code):
            if not line.strip():
                continue
            if NON_DECL_KEYWORDS.match(line):
                continue
            if "static_cast" in line or "static_assert" in line:
                continue
            stack, clean = self.scopes[i]
            if not clean:
                continue  # continuation of a previous statement
            at_ns = all(k == "namespace" for k in stack)
            m = self.DECL_QUAL_RE.match(line)
            quals = set(m.group("quals").split()) if m else set()
            if "extern" in quals:
                continue
            if quals & {"const", "constexpr", "constinit"}:
                continue
            explicit = bool(quals & {"static", "thread_local"})
            if not explicit and not at_ns:
                continue
            stmt = statement_at(self.code, i)
            if "operator" in stmt:
                continue
            body = stmt[m.end():] if m else stmt.lstrip()
            if not explicit:
                # Plain namespace-scope decl: require TYPE NAME shape
                # so labels/macros/expressions don't match.
                if not re.match(r"^\s*[\w:]+[\w:<>,\s*&]*\s+[*&]*"
                                r"\w+\s*[;={]", body):
                    continue
                if quals & {"inline"}:
                    pass  # header inline variable: still a global
            term = re.search(r"[;={(]", body)
            if not term or term.group() == "(":
                continue  # function decl/def (or ctor-call global)
            head = body[:term.start()]
            if re.search(r"\bconst\b\s*$", head):
                continue  # e.g. "static Foo *const x"
            sym = re.findall(r"[A-Za-z_]\w*", head)
            if not sym:
                continue
            yield i, sym[-1], "explicit" if explicit else "namespace"

    def r1(self, findings):
        for i, sym, _kind in self.mutable_static_decls():
            findings.emit(
                self, i, "shard-static", sym,
                f"mutable static-storage state '{sym}' reachable "
                "from model code; make it per-Simulation/per-shard "
                "or annotate MCNSIM_SHARD_SAFE(reason) "
                "(sim/annotate.hh)")

    # -- R2 ----------------------------------------------------------
    UNORDERED_DECL_RE = re.compile(r"\bunordered_(map|set)\s*<")

    @staticmethod
    def _ptr_keyed_names(code_lines):
        names = []
        for i, line in enumerate(code_lines):
            m = FileAnalysis.UNORDERED_DECL_RE.search(line)
            if not m:
                continue
            stmt = statement_at(code_lines, i, max_join=4)
            k = stmt.find("unordered_" + m.group(1))
            open_idx = stmt.find("<", k)
            if open_idx < 0:
                continue
            depth, arg_end = 0, -1
            first_arg = None
            for p in range(open_idx, len(stmt)):
                c = stmt[p]
                if c == "<":
                    depth += 1
                elif c == ">":
                    depth -= 1
                    if depth == 0:
                        arg_end = p
                        break
                elif c == "," and depth == 1 and first_arg is None:
                    first_arg = stmt[open_idx + 1:p]
            if arg_end < 0:
                continue
            if first_arg is None:
                first_arg = stmt[open_idx + 1:arg_end]
            if not ("*" in first_arg or
                    re.search(r"\bPtr\b|_ptr\b", first_arg)):
                continue
            nm = re.match(r"\s*&?\s*(\w+)\s*[;={(]",
                          stmt[arg_end + 1:])
            if nm:
                names.append(nm.group(1))
        return names

    def r2(self, findings):
        names = set(self._ptr_keyed_names(self.code) +
                    self._ptr_keyed_names(self.sibling_code))
        if not names:
            return
        alt = "|".join(re.escape(n) for n in sorted(names))
        iter_re = re.compile(
            r":\s*[\w.\->]*\b(" + alt + r")\b\s*\)"   # range-for
            r"|\b(" + alt + r")\s*\.\s*c?begin\s*\(")
        for i, line in enumerate(self.code):
            m = iter_re.search(line)
            if not m:
                continue
            sym = m.group(1) or m.group(2)
            findings.emit(
                self, i, "ptr-unordered-iter", sym,
                f"iteration over pointer-keyed unordered container "
                f"'{sym}': order follows allocator addresses, i.e. "
                "thread scheduling; use an ordered container or "
                "sort before use")

    # -- R3 ----------------------------------------------------------
    def r3(self, findings):
        clock_ok = self.rel in HOST_TIME_ALLOW
        for i, line in enumerate(self.code):
            m = HOST_ENTROPY_RE.search(line)
            if m:
                findings.emit(
                    self, i, "host-entropy", m.group(0).strip("( )"),
                    "host entropy in model code; draw from the "
                    "seeded sim::Random (sim/random.hh) instead")
                continue
            if not clock_ok:
                m = HOST_CLOCK_RE.search(line)
                if m:
                    findings.emit(
                        self, i, "host-entropy", m.group(0).strip(),
                        "host wall-clock read in model code (breaks "
                        "determinism; allowlist: HOST_TIME_ALLOW in "
                        "tools/mcnsim_analyze.py)")

    # -- R4 ----------------------------------------------------------
    def r4(self, findings):
        if not self.fixture and self.rel.startswith("src/sim/"):
            return  # the engine owns its queues and the mailbox
        aliases = {}  # name -> decl line
        for i, line in enumerate(self.code):
            if CROSS_SHARD_RE.search(line):
                findings.emit(
                    self, i, "cross-shard-schedule", "shardQueue",
                    "direct schedule() on shardQueue(...) races "
                    "with that shard's worker; use Simulation::"
                    "postCrossShard (DESIGN.md §9)")
            m = SHARD_ALIAS_RE.search(line)
            if m:
                aliases[m.group(1)] = i
            for name, decl in list(aliases.items()):
                if i == decl or i - decl > 60:
                    continue
                if re.search(r"\b" + re.escape(name) +
                             r"\s*\.\s*(?:schedule|scheduleIn|"
                             r"reschedule)\s*\(", line):
                    findings.emit(
                        self, i, "cross-shard-schedule", name,
                        f"'{name}' aliases a shardQueue() result; "
                        "scheduling on it races with that shard's "
                        "worker; use Simulation::postCrossShard "
                        "(DESIGN.md §9)")

    # -- R5 ----------------------------------------------------------
    ATOMIC_DECL_RE = re.compile(
        r"\batomic\s*<[^;>]*(?:<[^>]*>)?[^;>]*>\s*&?\s*(\w+)\s*[;{=(,)]")

    def r5(self, findings):
        if not self.fixture and self.rel not in ATOMIC_ORDER_SCOPE:
            return
        names = set()
        for lines in (self.code, self.sibling_code):
            for i, line in enumerate(lines):
                if "atomic" not in line:
                    continue
                stmt = statement_at(lines, i, max_join=3)
                for m in self.ATOMIC_DECL_RE.finditer(stmt):
                    names.add(m.group(1))
        if not names:
            return
        alt = "|".join(re.escape(n) for n in sorted(names))
        op_re = re.compile(
            r"\b(" + alt + r")\s*(?:\.|->)\s*(" +
            "|".join(ATOMIC_OPS) + r")\s*\(")
        raw_op_re = re.compile(
            r"(?:\+\+|--)\s*(" + alt + r")\b"
            r"|\b(" + alt + r")\s*(?:\+\+|--|(?:[-+|&^]|)=[^=])")
        for i, line in enumerate(self.code):
            for m in op_re.finditer(line):
                args = balanced_args(self.code, i,
                                     line.index("(", m.start()))
                if "memory_order" not in args:
                    findings.emit(
                        self, i, "atomic-memory-order",
                        f"{m.group(1)}.{m.group(2)}",
                        f"atomic {m.group(2)}() on '{m.group(1)}' "
                        "without an explicit std::memory_order "
                        "(seq-cst by default hides the ordering "
                        "contract)")
            m = raw_op_re.search(line)
            if m and not self.ATOMIC_DECL_RE.search(
                    statement_at(self.code, i, max_join=2)):
                sym = m.group(1) or m.group(2)
                findings.emit(
                    self, i, "atomic-memory-order", sym,
                    f"operator form on atomic '{sym}' is seq-cst; "
                    "use the explicit memory-order member form")

    def run(self, findings):
        self.r1(findings)
        self.r2(findings)
        self.r3(findings)
        self.r4(findings)
        self.r5(findings)


class Findings:
    def __init__(self):
        self.violations = []  # dicts
        self.annotated = []   # dicts

    def emit(self, fa, i, rule, symbol, message):
        sup = suppression(fa.raw, i, rule)
        entry = {"file": fa.rel, "line": i + 1, "rule": rule,
                 "symbol": symbol}
        if sup:
            kind, reason = sup
            entry["annotation"] = kind
            entry["reason"] = reason
            self.annotated.append(entry)
        else:
            entry["message"] = message
            self.violations.append(entry)


def ast_refine(findings, build_dir):
    """AST mode: prune textual false positives through libclang.

    Re-checks each R1 finding's location against the AST (must be a
    VarDecl with static storage duration and a non-const type) and
    each R2 site against a range-for/iterator call. Raises on any
    environment problem; the caller falls back loudly."""
    import clang.cindex as ci  # noqa -- optional dependency

    index = ci.Index.create()
    cdb = ci.CompilationDatabase.fromDirectory(str(build_dir))
    tus = {}

    def tu_for(rel):
        src = rel
        if rel.endswith(".hh"):  # headers ride their sibling TU
            src = rel[:-3] + ".cc"
        if src in tus:
            return tus[src]
        cmds = cdb.getCompileCommands(str(REPO / src))
        if not cmds:
            tus[src] = None
            return None
        args = [a for a in list(cmds[0].arguments)[1:-1]
                if a not in ("-c", "-o")]
        tus[src] = index.parse(str(REPO / src), args=args)
        return tus[src]

    def decl_at(tu, rel, line):
        hits = []

        def walk(c):
            try:
                loc = c.location
                if (loc.file and loc.file.name.endswith(rel)
                        and loc.line == line):
                    hits.append(c)
            except ValueError:
                pass
            for ch in c.get_children():
                walk(ch)

        walk(tu.cursor)
        return hits

    kept = []
    for v in findings.violations:
        if v["rule"] != "shard-static":
            kept.append(v)
            continue
        tu = tu_for(v["file"])
        if tu is None:
            kept.append(v)
            continue
        cursors = decl_at(tu, v["file"], v["line"])
        ok = False
        for c in cursors:
            if c.kind != ci.CursorKind.VAR_DECL:
                continue
            sc = c.storage_class
            static_like = sc in (ci.StorageClass.STATIC,
                                 ci.StorageClass.NONE)
            if static_like and not c.type.is_const_qualified():
                ok = True
        if ok or not cursors:
            kept.append(v)  # confirmed (or unresolvable: keep)
    findings.violations = kept
    return findings


def baseline_key(e):
    return (e["file"], e["rule"], e["symbol"])


def load_baseline():
    if not BASELINE.exists():
        return {"grandfathered": [], "annotated": []}
    with open(BASELINE) as f:
        doc = json.load(f)
    assert doc.get("kind") == "mcnsim-analyze-baseline", BASELINE
    return doc


def write_baseline(findings):
    doc = {
        "schema_version": 1,
        "kind": "mcnsim-analyze-baseline",
        "grandfathered": sorted(
            ({"file": v["file"], "rule": v["rule"],
              "symbol": v["symbol"]} for v in findings.violations),
            key=baseline_key),
        "annotated": sorted(
            ({"file": a["file"], "rule": a["rule"],
              "symbol": a["symbol"],
              "annotation": a["annotation"]}
             for a in findings.annotated),
            key=baseline_key),
    }
    with open(BASELINE, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    return doc


def check_against_baseline(findings):
    """Error strings for violations/annotations drifting from the
    committed baseline."""
    base = load_baseline()
    errs = []
    grand = {baseline_key(e) for e in base["grandfathered"]}
    known_annot = {baseline_key(e) for e in base["annotated"]}
    seen_viol = set()
    for v in findings.violations:
        k = baseline_key(v)
        seen_viol.add(k)
        if k not in grand:
            errs.append(f"{v['file']}:{v['line']}: [{v['rule']}] "
                        f"NEW violation: {v['message']}")
    for k in sorted(grand - seen_viol):
        errs.append(f"stale baseline entry (violation fixed?): "
                    f"{k[0]} [{k[1]}] {k[2]}; run --update-baseline")
    seen_annot = {baseline_key(a) for a in findings.annotated}
    for k in sorted(seen_annot - known_annot):
        errs.append(f"untracked annotated site: {k[0]} [{k[1]}] "
                    f"{k[2]}; run --update-baseline")
    for k in sorted(known_annot - seen_annot):
        errs.append(f"stale annotated baseline entry: {k[0]} "
                    f"[{k[1]}] {k[2]}; run --update-baseline")
    return errs


def self_test():
    """Classify every fixture in tests/analyze_fixtures: each line
    carrying `// expect: <rule>[, <rule>]` must be flagged with
    exactly those rules; every other line must be clean."""
    if not FIXTURES.is_dir():
        print(f"analyze: no fixtures at {FIXTURES}", file=sys.stderr)
        return 1
    failures = 0
    for path in sorted(FIXTURES.glob("*.cc")):
        rel = path.relative_to(REPO).as_posix()
        raw = path.read_text(errors="replace").split("\n")
        expected = set()
        for i, line in enumerate(raw):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    assert rule in RULES, (rel, rule)
                    expected.add((i + 1, rule))
        findings = Findings()
        FileAnalysis(path, rel, fixture_mode=True).run(findings)
        got = {(v["line"], v["rule"]) for v in findings.violations}
        missing = expected - got
        spurious = got - expected
        if missing or spurious:
            failures += 1
            print(f"FAIL {rel}")
            for line, rule in sorted(missing):
                print(f"  missing: line {line} [{rule}]")
            for line, rule in sorted(spurious):
                print(f"  spurious: line {line} [{rule}]")
        else:
            n = len(expected)
            print(f"PASS {rel} ({n} expected finding"
                  f"{'' if n == 1 else 's'}, "
                  f"{len(findings.annotated)} annotated)")
    return 1 if failures else 0


def gather_files(paths):
    roots = [REPO / p for p in paths] or [REPO / "src"]
    files = []
    for r in roots:
        if r.is_file():
            files.append(r)
        elif r.is_dir():
            files.extend(sorted(r.rglob("*.hh")))
            files.extend(sorted(r.rglob("*.cc")))
    return [f for f in files
            if FIXTURES not in f.parents]


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories (default: src)")
    ap.add_argument("--check", action="store_true",
                    help="gate mode: fail on baseline drift, run "
                         "the fixture self-test")
    ap.add_argument("--json", metavar="PATH",
                    help="write the schema'd findings artifact")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite tools/analyze_baseline.json")
    ap.add_argument("--self-test", action="store_true",
                    help="classify tests/analyze_fixtures only")
    ap.add_argument("--mode", choices=("auto", "ast", "textual"),
                    default="auto")
    ap.add_argument("--build-dir", default=str(REPO / "build"),
                    help="compile_commands.json location (AST mode)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings = Findings()
    files = gather_files(args.paths)
    for f in files:
        rel = f.relative_to(REPO).as_posix()
        if not rel.startswith("src/"):
            continue  # the determinism contract binds model code
        FileAnalysis(f, rel).run(findings)

    mode = "textual"
    if args.mode in ("auto", "ast"):
        try:
            cc = pathlib.Path(args.build_dir) / "compile_commands.json"
            if not cc.exists():
                raise RuntimeError(f"no {cc}")
            ast_refine(findings, args.build_dir)
            mode = "ast"
        except Exception as e:  # ImportError, parse errors, ...
            msg = (f"mcnsim_analyze: libclang AST mode unavailable "
                   f"({e.__class__.__name__}: {e}); falling back to "
                   "textual analysis (install the `clang` python "
                   "bindings and configure with "
                   "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON for AST mode)")
            if args.mode == "ast":
                print(msg, file=sys.stderr)
                return 2
            print(msg, file=sys.stderr)

    for v in findings.violations:
        print(f"{v['file']}:{v['line']}: [{v['rule']}] "
              f"{v['message']}")

    if args.json:
        doc = {
            "schema_version": 1,
            "kind": "mcnsim-analyze",
            "mode": mode,
            "files_scanned": len(files),
            "violations": findings.violations,
            "annotated": findings.annotated,
        }
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")

    if args.update_baseline:
        doc = write_baseline(findings)
        print(f"analyze: baseline updated "
              f"({len(doc['grandfathered'])} grandfathered, "
              f"{len(doc['annotated'])} annotated)")
        return 0

    print(f"mcnsim_analyze [{mode}]: {len(files)} files, "
          f"{len(findings.violations)} violation"
          f"{'' if len(findings.violations) == 1 else 's'}, "
          f"{len(findings.annotated)} annotated site"
          f"{'' if len(findings.annotated) == 1 else 's'}")

    if args.check:
        errs = check_against_baseline(findings)
        for e in errs:
            print(e)
        rc = self_test()
        if errs or rc:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
