#!/usr/bin/env python3
"""Summarize or validate an mcnsim timeline trace (--timeline=PATH).

The trace is Chrome trace-event JSON (chrome://tracing or
ui.perfetto.dev opens it directly); this tool is the headless
companion:

  * default: a per-track breakdown -- span count, busy time, and
    the top span names by accumulated duration -- the numbers behind
    a Table-III-style "where does the time go" analysis.
  * --validate: structural checks (schema keys, phase-specific
    fields, ts/dur sanity, per-thread ts monotonicity) and a nonzero
    exit on any violation, for CI (tools/ci.sh).

Usage:
  tools/timeline_summary.py TRACE.json [--validate] [--top N]
"""

import argparse
import collections
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def validate(doc, problems):
    """Append a message to problems for every structural violation."""
    if not isinstance(doc, dict):
        problems.append("document is not a JSON object")
        return
    for key in ("displayTimeUnit", "otherData", "traceEvents"):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents is not an array")
        return
    if not events:
        problems.append("traceEvents is empty")

    last_ts = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = e.get("ph")
        if ph not in ("M", "X", "C", "i"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "name" not in e or "pid" not in e or "tid" not in e:
            problems.append(f"{where}: missing name/pid/tid")
            continue
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                problems.append(
                    f"{where}: metadata row named {e.get('name')!r}")
            if "name" not in e.get("args", {}):
                problems.append(f"{where}: metadata without args.name")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
            continue
        key = (e["pid"], e["tid"])
        if key in last_ts and ts < last_ts[key]:
            problems.append(
                f"{where}: ts {ts} < {last_ts[key]} on track {key}; "
                f"not monotone per thread")
        last_ts[key] = ts
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        elif ph == "C":
            if "value" not in e.get("args", {}):
                problems.append(f"{where}: counter without args.value")
        elif ph == "i":
            if e.get("s") != "t":
                problems.append(f"{where}: instant scope {e.get('s')!r}")


def track_names(events):
    """(pid, tid) -> "process.thread" label from the metadata rows."""
    procs, threads = {}, {}
    for e in events:
        if e.get("ph") != "M":
            continue
        if e.get("name") == "process_name":
            procs[e["pid"]] = e["args"]["name"]
        elif e.get("name") == "thread_name":
            threads[(e["pid"], e["tid"])] = e["args"]["name"]
    return {key: name for key, name in threads.items()}, procs


def summarize(doc, top):
    events = doc["traceEvents"]
    threads, _ = track_names(events)

    per_track = collections.defaultdict(
        lambda: {"spans": 0, "busy_us": 0.0, "counters": 0,
                 "instants": 0})
    per_name = collections.defaultdict(lambda: [0, 0.0])
    t_min, t_max = None, None
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        key = (e["pid"], e["tid"])
        row = per_track[key]
        ts = e["ts"]
        t_min = ts if t_min is None else min(t_min, ts)
        if ph == "X":
            row["spans"] += 1
            row["busy_us"] += e["dur"]
            cell = per_name[e["name"]]
            cell[0] += 1
            cell[1] += e["dur"]
            t_max = max(t_max or 0, ts + e["dur"])
        elif ph == "C":
            row["counters"] += 1
            t_max = max(t_max or 0, ts)
        elif ph == "i":
            row["instants"] += 1
            t_max = max(t_max or 0, ts)

    other = doc.get("otherData", {})
    span_total = sum(r["busy_us"] for r in per_track.values())
    print(f"timeline: {len(events)} rows, {len(per_track)} tracks, "
          f"[{t_min:.1f}, {t_max:.1f}] us, "
          f"dropped={other.get('dropped_events', 0)}")
    for k in ("command", "system", "seed"):
        if k in other:
            print(f"  {k}: {other[k]}")

    print(f"\n{'track':<24} {'spans':>7} {'busy_us':>10} "
          f"{'counters':>9} {'instants':>9}")
    for key in sorted(per_track,
                      key=lambda k: -per_track[k]["busy_us"]):
        r = per_track[key]
        label = threads.get(key, f"pid{key[0]}.tid{key[1]}")
        print(f"{label:<24} {r['spans']:>7} {r['busy_us']:>10.1f} "
              f"{r['counters']:>9} {r['instants']:>9}")

    print(f"\ntop {top} span names by accumulated duration:")
    print(f"{'name':<16} {'count':>7} {'total_us':>10} {'share':>7}")
    ranked = sorted(per_name.items(), key=lambda kv: -kv[1][1])
    for name, (count, total) in ranked[:top]:
        share = 100.0 * total / span_total if span_total else 0.0
        print(f"{name:<16} {count:>7} {total:>10.1f} {share:>6.1f}%")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", help="timeline JSON (--timeline=PATH)")
    ap.add_argument("--validate", action="store_true",
                    help="structural checks only; exit 1 on violation")
    ap.add_argument("--top", type=int, default=12,
                    help="span names to rank (default 12)")
    args = ap.parse_args()

    try:
        doc = load(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {args.trace}: {e}", file=sys.stderr)
        return 2

    problems = []
    validate(doc, problems)
    if args.validate:
        for p in problems[:40]:
            print(f"FAIL {p}", file=sys.stderr)
        if problems:
            print(f"timeline validate: {len(problems)} violation(s)",
                  file=sys.stderr)
            return 1
        print(f"timeline validate: OK "
              f"({len(doc['traceEvents'])} rows)")
        return 0

    if problems:
        print(f"warning: {len(problems)} structural issue(s); "
              f"run --validate for details", file=sys.stderr)
    summarize(doc, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
