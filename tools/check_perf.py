#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json artifacts.

Compares freshly generated artifacts against the committed baseline
(tools/perf_baseline.json) and exits nonzero when either

  * a perf metric (host-time: keys ending in ``_ns``, plus
    ``wall_seconds``) regressed past its tolerance band, or
  * a modeled metric (everything else: simulated throughput, latency,
    energy, ... -- deterministic outputs of the simulation) drifted at
    all, which means simulator *behavior* changed, not just speed.

Perf metrics get a generous band (shared CI boxes are noisy; the
micro artifact already keeps the fastest of several repetitions) and
only an upper bound -- getting faster never fails. Modeled metrics
are compared with a tight relative tolerance in both directions.

Host-time metrics are additionally gated on the worker count: when
an artifact's ``config.threads`` differs from the baseline's, they
are skipped (with a note) rather than compared -- wall clock at
``--threads=4`` says nothing about a regression against a
``--threads=1`` baseline. Modeled metrics are thread-count
independent (DESIGN.md §9) and stay checked.

The modeled-metric bit-identity check doubles as the proof that the
determinism-contract annotations (MCNSIM_SHARD_SAFE,
sim/annotate.hh) compile to nothing: the shard-safety sweep that
seeded tools/analyze_baseline.json left every modeled metric
byte-for-byte unchanged, and this gate keeps it that way.

Usage:
  tools/check_perf.py [--baseline FILE] [--artifacts-dir DIR]
                      [--update] [BENCH ...]

With no BENCH names, every bench present in the baseline is checked.
``--update`` rewrites the baseline from the fresh artifacts instead
of checking (run it after an intentional perf or model change, and
commit the result).
"""

import argparse
import json
import os
import sys

# Upper bound for perf metrics: fresh <= base * PERF_REL + PERF_ABS.
# The band is wide because one noisy neighbor on a 1-core runner can
# easily cost 40%; real regressions from the optimizations this gate
# guards (event pooling, CoW packets, wide checksum) are 2x-7x.
PERF_REL = 1.6
PERF_ABS_NS = 30.0        # floor for tiny (few-ns) benchmarks
PERF_ABS_WALL = 2.0       # seconds; artifact-generation wall time

# Modeled metrics are deterministic; any drift beyond float noise is
# a behavior change and must be reviewed (then --update'd).
MODEL_RTOL = 1e-6

PERF_SUFFIX = "_ns"
WALL_KEY = "wall_seconds"


def is_perf_metric(key):
    return key.endswith(PERF_SUFFIX) or key == WALL_KEY


def threads_of(doc):
    """Worker count an artifact was generated with (config block,
    written by bench_util's --threads support). Artifacts predating
    the field ran the classic single-queue engine."""
    return int(doc.get("config", {}).get("threads", 1))


def load_json(path):
    with open(path) as f:
        return json.load(f)


def artifact_path(art_dir, bench):
    return os.path.join(art_dir, f"BENCH_{bench}.json")


def flatten(doc):
    """Metric map of an artifact, with wall_seconds folded in.

    Run-metadata blocks ("meta": seed, preset, wall clock, ...) and
    any non-numeric entries are self-description, not measurements;
    drop them so new metadata never trips the gate.
    """
    metrics = {k: v for k, v in doc.get("metrics", {}).items()
               if k != "meta" and isinstance(v, (int, float))}
    if WALL_KEY in doc:
        metrics[WALL_KEY] = doc[WALL_KEY]
    return metrics


def check_bench(bench, base_entry, art_dir, problems, notes,
                deltas):
    path = artifact_path(art_dir, bench)
    if not os.path.exists(path):
        problems.append(f"{bench}: artifact {path} missing")
        return
    doc = load_json(path)

    if doc.get("mode") != base_entry.get("mode"):
        notes.append(
            f"{bench}: mode {doc.get('mode')!r} != baseline "
            f"{base_entry.get('mode')!r}; skipped")
        return

    fresh = flatten(doc)
    base = base_entry.get("metrics", {})

    # Host-time metrics are only comparable between runs with the
    # same worker count: more threads shift work off the measured
    # wall clock (or onto it, on an oversubscribed box). Modeled
    # metrics are thread-count-independent by design (DESIGN.md §9)
    # and stay gated.
    skip_perf = threads_of(doc) != base_entry.get("threads", 1)
    if skip_perf:
        notes.append(
            f"{bench}: artifact threads={threads_of(doc)} != "
            f"baseline threads={base_entry.get('threads', 1)}; "
            f"host-time metrics skipped")

    for key, base_val in sorted(base.items()):
        if key not in fresh:
            problems.append(f"{bench}.{key}: missing from artifact")
            continue
        val = fresh[key]
        if not isinstance(val, (int, float)):
            problems.append(f"{bench}.{key}: not numeric: {val!r}")
            continue
        if is_perf_metric(key):
            if skip_perf:
                continue
            deltas.append((bench, key, base_val, val))
            abs_slack = (PERF_ABS_WALL if key == WALL_KEY
                         else PERF_ABS_NS)
            limit = base_val * PERF_REL + abs_slack
            if val > limit:
                problems.append(
                    f"{bench}.{key}: {val:.2f} > limit {limit:.2f} "
                    f"(baseline {base_val:.2f}, rel {PERF_REL}, "
                    f"abs {abs_slack})")
            elif base_val > 0 and val < base_val / PERF_REL:
                notes.append(
                    f"{bench}.{key}: improved {base_val:.2f} -> "
                    f"{val:.2f}; consider --update")
        else:
            tol = abs(base_val) * MODEL_RTOL
            if abs(val - base_val) > tol:
                problems.append(
                    f"{bench}.{key}: modeled metric drifted "
                    f"{base_val!r} -> {val!r} (tol {MODEL_RTOL}); "
                    f"simulator behavior changed -- review, then "
                    f"rerun with --update")

    for key in sorted(set(fresh) - set(base)):
        notes.append(f"{bench}.{key}: not in baseline "
                     f"(new metric; --update to start tracking)")


def print_delta_table(deltas):
    """Per-metric host-time summary (baseline -> fresh, speedup) so a
    passing run documents its deltas -- PR notes can paste this
    instead of rerunning with a diff tool."""
    if not deltas:
        return
    rows = []
    for bench, key, base_val, val in deltas:
        ratio = base_val / val if val > 0 else float("inf")
        unit = "s" if key == WALL_KEY else "ns"
        rows.append((f"{bench}.{key}",
                     f"{base_val:,.2f} {unit}",
                     f"{val:,.2f} {unit}",
                     f"{ratio:.2f}x"))
    hdr = ("metric", "baseline", "fresh", "speedup")
    widths = [max(len(hdr[i]), max(len(r[i]) for r in rows))
              for i in range(len(hdr))]
    print("\nhost-time deltas (baseline -> fresh; >1x = faster):")
    print("  " + "  ".join(h.ljust(w) for h, w in zip(hdr, widths)))
    for r in rows:
        print("  " + "  ".join(c.ljust(w) if i == 0 else c.rjust(w)
                               for i, (c, w)
                               in enumerate(zip(r, widths))))
    print()


def update_baseline(benches, art_dir, baseline_path):
    out = {}
    for bench in benches:
        path = artifact_path(art_dir, bench)
        if not os.path.exists(path):
            print(f"warning: {path} missing; not in baseline",
                  file=sys.stderr)
            continue
        doc = load_json(path)
        out[bench] = {"mode": doc.get("mode"),
                      "threads": threads_of(doc),
                      "metrics": flatten(doc)}
    with open(baseline_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"baseline written: {baseline_path} "
          f"({len(out)} bench(es))")
    return 0


def main():
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("benches", nargs="*",
                    help="bench names (default: all in baseline)")
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root, "tools",
                                         "perf_baseline.json"))
    ap.add_argument("--artifacts-dir", default=repo_root)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from fresh artifacts")
    args = ap.parse_args()

    if args.update:
        benches = args.benches
        if not benches:
            if os.path.exists(args.baseline):
                benches = sorted(load_json(args.baseline))
            else:
                benches = sorted(
                    f[len("BENCH_"):-len(".json")]
                    for f in os.listdir(args.artifacts_dir)
                    if f.startswith("BENCH_")
                    and f.endswith(".json"))
        return update_baseline(benches, args.artifacts_dir,
                               args.baseline)

    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} missing; create it "
              f"with --update", file=sys.stderr)
        return 2
    baseline = load_json(args.baseline)

    benches = args.benches or sorted(baseline)
    problems, notes, deltas = [], [], []
    for bench in benches:
        if bench not in baseline:
            notes.append(f"{bench}: not in baseline; skipped "
                         f"(--update to add)")
            continue
        check_bench(bench, baseline[bench], args.artifacts_dir,
                    problems, notes, deltas)

    for n in notes:
        print(f"note: {n}")
    if problems:
        print(f"\nperf gate: {len(problems)} violation(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  FAIL {p}", file=sys.stderr)
        return 1
    print_delta_table(deltas)
    print(f"perf gate: OK ({len(benches)} bench(es) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
