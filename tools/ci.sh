#!/usr/bin/env bash
# One-command CI pipeline, organised as named stages:
#
#   build    configure + build the default tree
#   test     tier-1 ctest suite
#   lint     mcnsim_lint.py --check and mcnsim_analyze.py --check
#            (the shard-safety analyzer: baseline drift + fixture
#            self-test), plus clang-tidy when installed
#   benches  regenerate bench artifacts (perf gate skipped -- CI
#            boxes are too noisy; run tools/run_benches.sh locally)
#   perf     regenerate bench artifacts AND run the
#            tools/check_perf.py gate: host-time bands plus
#            bit-identical modeled metrics. Off by default for the
#            same noise reason; opt in with --stages ...,perf (or
#            --with-perf) on a quiet box before merging perf work
#   obs      validate observability artifacts from an instrumented
#            iperf run (timeline trace, stats series, profile)
#   chaos    fault-injection soak: chaos selfcheck (determinism
#            under every canned schedule x several seeds) plus the
#            bench_chaos survival gates
#   rack-chaos  rack-scale failure domains (DESIGN.md §12): the
#            canned spine-kill / rack-partition schedules on both
#            fabric topologies, selfchecked across seeds and worker
#            counts, plus a path-hop sanity check on the fabric's
#            flow telemetry
#   pdes     parallel-engine gate: multi-thread selfchecks on
#            iperf/ping/chaos plus a byte-compare of the stat JSON
#            across worker counts (DESIGN.md §9)
#   checked  build with -DMCNSIM_CHECKED=ON, run ctest + the CLI
#            determinism selfcheck across mcn levels 0-5
#   asan     address+undefined sanitizers: ctest + CLI smoke
#   ubsan    undefined-only sanitizer run
#   tsan     ThreadSanitizer run of the concurrency surface: PDES
#            engine tests, multi-threaded CLI selfchecks, and a
#            cross-thread-count flow-stats byte-compare
#            (tools/run_sanitizers.sh --matrix thread)
#
# Usage: tools/ci.sh [--build-dir DIR] [--skip-benches]
#                    [--with-perf] [--stages S1,S2,...]
# Default stages: build,test,lint,benches,obs,chaos,rack-chaos,pdes,checked,asan,ubsan,tsan
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
STAGES="build,test,lint,benches,obs,chaos,rack-chaos,pdes,checked,asan,ubsan,tsan"

while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) BUILD_DIR="$2"; shift ;;
        --skip-benches)
            STAGES="$(echo "$STAGES" | sed 's/benches,//')" ;;
        --with-perf) STAGES="$STAGES,perf" ;;
        --stages) STAGES="$2"; shift ;;
        -h|--help)
            sed -n '2,26p' "$0" | sed 's/^# \{0,1\}//'
            exit 0 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

want() { case ",$STAGES," in *",$1,"*) return 0 ;; *) return 1 ;; esac; }

if want build; then
    echo "== stage: build =="
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
    cmake --build "$BUILD_DIR" -j
fi

if want test; then
    echo
    echo "== stage: test =="
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi

if want lint; then
    echo
    echo "== stage: lint =="
    python3 "$REPO_ROOT/tools/mcnsim_lint.py" --check
    python3 "$REPO_ROOT/tools/mcnsim_analyze.py" --check
    if command -v clang-tidy > /dev/null 2>&1; then
        cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
        git -C "$REPO_ROOT" ls-files 'src/*.cc' |
            sed "s|^|$REPO_ROOT/|" |
            xargs clang-tidy -p "$BUILD_DIR" --quiet
    else
        echo "clang-tidy not installed; skipping (config-on-record" \
             "in .clang-tidy; gating comes from -Wconversion +" \
             "mcnsim_lint.py)"
    fi
fi

if want benches; then
    echo
    echo "== stage: benches (perf gate skipped) =="
    "$REPO_ROOT/tools/run_benches.sh" --quick \
        --build-dir "$BUILD_DIR" --skip-perf
fi

if want perf; then
    echo
    echo "== stage: perf =="
    # Full perf gate: fresh artifacts (the benches stage's --quick
    # artifacts are fine for the gate; host-time bands are wide and
    # modeled metrics are mode-matched) checked against the
    # committed baseline. A modeled-metric diff here means simulator
    # behavior changed and must be reviewed before --update.
    "$REPO_ROOT/tools/run_benches.sh" --quick \
        --build-dir "$BUILD_DIR"
fi

if want obs; then
    echo
    echo "== stage: obs =="
    OBS_DIR="$(mktemp -d)"
    trap 'rm -rf "$OBS_DIR"' EXIT
    "$BUILD_DIR/tools/mcnsim_cli" iperf --duration-ms=1 \
        --timeline="$OBS_DIR/timeline.json" \
        --stats-series="$OBS_DIR/series.json" \
        --flow-stats="$OBS_DIR/flow.json" \
        --stats-json="$OBS_DIR/stats.json" \
        --profile --profile-top=5
    python3 "$REPO_ROOT/tools/timeline_summary.py" \
        "$OBS_DIR/timeline.json" --validate
    # Flow telemetry: the standalone artifact and the embedded
    # stats-JSON blocks must both pass schema + percentile
    # monotonicity checks, and the report must render.
    python3 "$REPO_ROOT/tools/flow_report.py" \
        "$OBS_DIR/flow.json" --validate
    python3 "$REPO_ROOT/tools/flow_report.py" \
        "$OBS_DIR/stats.json" --validate
    python3 "$REPO_ROOT/tools/flow_report.py" "$OBS_DIR/flow.json" \
        --stats-json "$OBS_DIR/stats.json" --top 5 > /dev/null
    # The flow artifact is a modeled result: byte-identical for
    # every worker count on a shardable system.
    for t in 1 2 4; do
        "$BUILD_DIR/tools/mcnsim_cli" iperf --system=cluster \
            --nodes=4 --threads="$t" --duration-ms=1 --seed=42 \
            --flow-stats="$OBS_DIR/flow-t$t.json" > /dev/null
    done
    cmp "$OBS_DIR/flow-t1.json" "$OBS_DIR/flow-t2.json"
    cmp "$OBS_DIR/flow-t1.json" "$OBS_DIR/flow-t4.json"
    echo "flow stats: OK (validated, byte-identical across" \
         "--threads=1/2/4)"
    python3 - "$OBS_DIR/series.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["kind"] == "mcnsim-stats-series", doc["kind"]
assert doc["snapshots"] >= 2, "need a multi-snapshot series"
assert len(doc["ticks"]) == doc["snapshots"]
for s in doc["series"]:
    assert len(s["values"]) == doc["snapshots"], s["name"]
print(f"stats series: OK ({doc['snapshots']} snapshots, "
      f"{len(doc['series'])} series)")
EOF
fi

if want chaos; then
    echo
    echo "== stage: chaos =="
    # Determinism under fire: every canned schedule must replay
    # byte-identically (modeled state + fault fire counts) across
    # several seeds.
    for sched in drop-heavy corrupt-heavy crash-recover; do
        for seed in 1 7 1234; do
            "$BUILD_DIR/tools/mcnsim_cli" chaos --selfcheck \
                --schedule="$sched" --seed="$seed" \
                --duration-ms=2
        done
    done
    # Survival gates: the soak bench fails on zero throughput or an
    # armed schedule that never fires.
    "$BUILD_DIR/bench/bench_chaos" --quick
fi

if want rack-chaos; then
    echo
    echo "== stage: rack-chaos =="
    # Failure-domain determinism: each canned rack scenario on each
    # fabric topology must replay byte-identically across seeds and
    # worker counts (the modeled state digest covers every fault
    # fire, reroute and partition abort).
    for topo in leafspine fattree; do
        for sched in spine-kill rack-partition; do
            for seed in 1 1234; do
                "$BUILD_DIR/tools/mcnsim_cli" chaos --selfcheck \
                    --topology="$topo" --schedule="$sched" \
                    --seed="$seed" --duration-ms=4
            done
        done
    done
    # Cross-worker-count byte-identity of the full stat JSON on a
    # faulted fabric (meta.wall_seconds is host time and exempt).
    RACK_DIR="$(mktemp -d)"
    for t in 1 2 4; do
        "$BUILD_DIR/tools/mcnsim_cli" chaos --topology=fattree \
            --nodes-per-rack=4 --schedule=rack-partition \
            --threads="$t" --duration-ms=4 --seed=7 \
            --stats-json="$RACK_DIR/t$t.json" > /dev/null
    done
    python3 - "$RACK_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
docs = {}
for t in (1, 2, 4):
    with open(os.path.join(d, f"t{t}.json")) as f:
        doc = json.load(f)
    doc["meta"].pop("wall_seconds", None)
    docs[t] = json.dumps(doc, sort_keys=True)
assert docs[1] == docs[2] == docs[4], \
    "faulted-fabric stat JSON differs across --threads=1/2/4"
print("rack-chaos: stat JSON identical across threads 1/2/4")
EOF
    # Path-hop telemetry: on a 2-level fabric no delivered packet
    # may carry more stamps than the topology diameter (10) -- more
    # means a forwarding loop.
    "$BUILD_DIR/tools/mcnsim_cli" iperf --topology=leafspine \
        --duration-ms=1 --flow-stats="$RACK_DIR/flow.json" \
        > /dev/null
    python3 "$REPO_ROOT/tools/flow_report.py" \
        "$RACK_DIR/flow.json" --validate --max-path-hops 10
    rm -rf "$RACK_DIR"
    # The SLO gates themselves run in bench_chaos (chaos stage).
fi

if want pdes; then
    echo
    echo "== stage: pdes =="
    # Every worker count must replay byte-identically in-process
    # (--selfcheck) on the shardable systems...
    for t in 2 4; do
        "$BUILD_DIR/tools/mcnsim_cli" iperf --system=cluster \
            --nodes=4 --threads="$t" --selfcheck --duration-ms=1
        "$BUILD_DIR/tools/mcnsim_cli" iperf --system=multi \
            --servers=2 --threads="$t" --selfcheck --duration-ms=1
        "$BUILD_DIR/tools/mcnsim_cli" ping --system=cluster \
            --nodes=3 --threads="$t" --selfcheck
        "$BUILD_DIR/tools/mcnsim_cli" chaos --system=cluster \
            --nodes=4 --threads="$t" --schedule=drop-heavy \
            --selfcheck --duration-ms=1
    done
    # ...and the full stat JSON must byte-match across worker
    # counts for the same seed (meta.wall_seconds is host time and
    # exempt).
    PDES_DIR="$(mktemp -d)"
    for t in 1 2 4; do
        "$BUILD_DIR/tools/mcnsim_cli" iperf --system=multi \
            --servers=4 --threads="$t" --duration-ms=2 --seed=42 \
            --stats-json="$PDES_DIR/t$t.json" > /dev/null
    done
    python3 - "$PDES_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
docs = {}
for t in (1, 2, 4):
    with open(os.path.join(d, f"t{t}.json")) as f:
        doc = json.load(f)
    doc["meta"].pop("wall_seconds", None)
    docs[t] = json.dumps(doc, sort_keys=True)
assert docs[1] == docs[2] == docs[4], \
    "stat JSON differs across --threads=1/2/4"
print("pdes: stat JSON identical across threads 1/2/4")
EOF
    rm -rf "$PDES_DIR"
fi

if want checked; then
    echo
    echo "== stage: checked =="
    CHECKED_DIR="$BUILD_DIR-checked"
    cmake -B "$CHECKED_DIR" -S "$REPO_ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMCNSIM_CHECKED=ON > /dev/null
    cmake --build "$CHECKED_DIR" -j
    ctest --test-dir "$CHECKED_DIR" --output-on-failure \
        -j "$(nproc)"
    echo "-- determinism selfcheck (mcn levels 0-5)"
    for lvl in 0 1 2 3 4 5; do
        "$CHECKED_DIR/tools/mcnsim_cli" iperf --selfcheck \
            --duration-ms=1 --level="$lvl"
    done
    "$CHECKED_DIR/tools/mcnsim_cli" ping --selfcheck \
        --system=cluster
fi

if want asan; then
    echo
    echo "== stage: asan =="
    "$REPO_ROOT/tools/run_sanitizers.sh" \
        --build-root "$BUILD_DIR-san" --matrix "address,undefined"
fi

if want ubsan; then
    echo
    echo "== stage: ubsan =="
    "$REPO_ROOT/tools/run_sanitizers.sh" \
        --build-root "$BUILD_DIR-san" --matrix "undefined"
fi

if want tsan; then
    echo
    echo "== stage: tsan =="
    "$REPO_ROOT/tools/run_sanitizers.sh" \
        --build-root "$BUILD_DIR-san" --matrix "thread"
fi

echo
echo "ci: stages '$STAGES' passed"
