#!/usr/bin/env bash
# One-command CI pipeline: configure + build, run the tier-1 test
# suite, regenerate the bench artifacts (perf gate skipped -- CI
# boxes are too noisy for the gate; run tools/run_benches.sh locally
# for that), and validate the observability artifacts produced by a
# short instrumented iperf run (timeline trace, stats series,
# profiler table).
#
# Usage: tools/ci.sh [--build-dir DIR] [--skip-benches]
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
SKIP_BENCHES=0

while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) BUILD_DIR="$2"; shift ;;
        --skip-benches) SKIP_BENCHES=1 ;;
        -h|--help)
            sed -n '2,9p' "$0" | sed 's/^# \{0,1\}//'
            exit 0 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j

echo
echo "== tier-1 tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [ "$SKIP_BENCHES" -eq 0 ]; then
    echo
    echo "== bench artifacts (perf gate skipped) =="
    "$REPO_ROOT/tools/run_benches.sh" --quick \
        --build-dir "$BUILD_DIR" --skip-perf
fi

echo
echo "== observability artifacts =="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
"$BUILD_DIR/tools/mcnsim_cli" iperf --duration-ms=1 \
    --timeline="$OBS_DIR/timeline.json" \
    --stats-series="$OBS_DIR/series.json" \
    --profile --profile-top=5
python3 "$REPO_ROOT/tools/timeline_summary.py" \
    "$OBS_DIR/timeline.json" --validate
python3 - "$OBS_DIR/series.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["kind"] == "mcnsim-stats-series", doc["kind"]
assert doc["snapshots"] >= 2, "need a multi-snapshot series"
assert len(doc["ticks"]) == doc["snapshots"]
for s in doc["series"]:
    assert len(s["values"]) == doc["snapshots"], s["name"]
print(f"stats series: OK ({doc['snapshots']} snapshots, "
      f"{len(doc['series'])} series)")
EOF

echo
echo "ci: all stages passed"
