#!/usr/bin/env bash
# Build and run the test suite under the sanitizer matrix.
#
# Each sanitizer set gets its own build tree (configured with
# -DMCNSIM_SANITIZE=<set>), runs the full ctest suite plus an
# iperf + ping CLI smoke, and fails on the first finding
# (-fno-sanitize-recover=all aborts on any error).
#
# The `thread` set is special-cased: TSan is incompatible with ASan
# and serializes execution ~10x, so instead of the full ctest suite
# it runs the concurrency surface -- the PDES engine tests plus
# multi-threaded CLI selfchecks and a --threads=1/2/4 flow-stats
# byte-compare -- with TSAN_OPTIONS pinned to tools/tsan.supp and
# halt_on_error=1. It is not in the default matrix (run it via
# `--matrix thread` or ci.sh's tsan stage).
#
# Usage: tools/run_sanitizers.sh [--build-root DIR] [--no-leaks]
#                                [--matrix SET1;SET2]
#   --build-root DIR   where the per-sanitizer trees go
#                      (default: <repo>/build-san)
#   --no-leaks         disable LeakSanitizer in the address run
#   --matrix LIST      semicolon-separated sanitizer sets
#                      (default: "address,undefined;undefined")
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="$REPO_ROOT/build-san"
DETECT_LEAKS=1
MATRIX="address,undefined;undefined"

while [ $# -gt 0 ]; do
    case "$1" in
        --build-root) BUILD_ROOT="$2"; shift ;;
        --no-leaks) DETECT_LEAKS=0 ;;
        --matrix) MATRIX="$2"; shift ;;
        -h|--help)
            sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
            exit 0 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

IFS=';' read -ra SETS <<< "$MATRIX"
for san in "${SETS[@]}"; do
    tree="$BUILD_ROOT/$(echo "$san" | tr ',' '-')"
    echo "== sanitizer set '$san' -> $tree =="
    cmake -B "$tree" -S "$REPO_ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMCNSIM_SANITIZE="$san" > /dev/null
    cmake --build "$tree" -j "$(nproc)"

    if [ "$san" = "thread" ]; then
        # TSan: pin the suppressions file so a run without it (and
        # thus without its reviewed justifications) cannot pass by
        # accident; halt on the first report.
        export TSAN_OPTIONS="suppressions=$REPO_ROOT/tools/tsan.supp:halt_on_error=1:second_deadlock_stack=1"

        echo "-- PDES engine tests under tsan"
        ctest --test-dir "$tree" --output-on-failure \
            -R '^Pdes\.' -j "$(nproc)"

        echo "-- multi-threaded CLI selfchecks under tsan"
        for t in 2 4; do
            "$tree/tools/mcnsim_cli" iperf --system=cluster \
                --nodes=4 --threads="$t" --selfcheck --duration-ms=1
            "$tree/tools/mcnsim_cli" ping --system=cluster \
                --nodes=3 --threads="$t" --selfcheck
            "$tree/tools/mcnsim_cli" chaos --system=cluster \
                --nodes=4 --threads="$t" --schedule=drop-heavy \
                --selfcheck --duration-ms=1
        done

        echo "-- flow-stats byte-compare across threads under tsan"
        TSAN_TMP="$(mktemp -d)"
        for t in 1 2 4; do
            "$tree/tools/mcnsim_cli" iperf --system=cluster \
                --nodes=4 --threads="$t" --duration-ms=1 --seed=42 \
                --flow-stats="$TSAN_TMP/flow-t$t.json" > /dev/null
        done
        cmp "$TSAN_TMP/flow-t1.json" "$TSAN_TMP/flow-t2.json"
        cmp "$TSAN_TMP/flow-t1.json" "$TSAN_TMP/flow-t4.json"
        rm -rf "$TSAN_TMP"
        echo "-- '$san' clean"
        echo
        continue
    fi

    export ASAN_OPTIONS="detect_leaks=$DETECT_LEAKS"
    export UBSAN_OPTIONS="print_stacktrace=1"

    echo "-- ctest under '$san'"
    ctest --test-dir "$tree" --output-on-failure -j "$(nproc)"

    echo "-- CLI smoke under '$san'"
    "$tree/tools/mcnsim_cli" iperf --duration-ms=1 > /dev/null
    "$tree/tools/mcnsim_cli" ping > /dev/null
    echo "-- '$san' clean"
    echo
done

echo "run_sanitizers: all sets clean"
