/**
 * @file
 * mcnsim command-line explorer: build a system from flags and run
 * one experiment against it, without writing any C++.
 *
 *   mcnsim_cli iperf     --system=mcn --dimms=4 --level=5
 *   mcnsim_cli ping      --system=cluster --size=1024 --count=10
 *   mcnsim_cli workload  --name=mg --system=mcn --dimms=2
 *   mcnsim_cli mapreduce --name=wordcount --system=mcn --dimms=4
 *   mcnsim_cli describe  --system=mcn --dimms=8 --level=3
 *
 * Common flags:
 *   --system=mcn|cluster|multi|scaleup|fabric   (default mcn)
 *   --dimms=N / --nodes=N / --servers=N / --cores=N
 *   --topology=leafspine|fattree   (multi-switch fabric; implies
 *                                   --system=fabric)
 *   --racks=N / --nodes-per-rack=N / --spines=N
 *   --level=0..5                   (Table I optimisation level)
 *   --duration-ms=N                (iperf window)
 *   --seed=N                       (simulation RNG seed, default 1)
 *   --threads=N                    (parallel event engine: shard the
 *                                   system per node and run windows
 *                                   on N worker threads; output is
 *                                   byte-identical for every N --
 *                                   see DESIGN.md §9)
 *   --selfcheck                    (determinism check: run the
 *                                   scenario twice with the same
 *                                   seed and diff the modeled state
 *                                   bit-for-bit)
 *   --stats                        (dump the full stats registry)
 *   --stats-json=PATH              (stats registry as JSON; - = stdout)
 *   --trace-flags=A,B              (enable debug flags, like MCNSIM_DEBUG)
 *
 * Timeline observability (see README.md §Observability):
 *   --timeline=PATH                (Chrome trace-event JSON; open in
 *                                   ui.perfetto.dev or chrome://tracing)
 *   --stats-series=PATH            (periodic stat snapshots as JSON)
 *   --series-period-us=N           (sampling period, default 50 µs)
 *   --series-filter=SUBSTR         (only stats whose "group.stat"
 *                                   name contains SUBSTR)
 *   --profile                      (per-event-name host-time profile;
 *                                   top-N table after the run)
 *   --profile-top=N                (rows in that table, default 20)
 *   --trace-ring=N                 (flight-recorder ring capacity,
 *                                   also via MCNSIM_TRACE_RING)
 *   --flow-stats[=PATH]            (per-flow tables + per-hop path
 *                                   latency histograms as JSON;
 *                                   - = stdout. Also unlocks the
 *                                   flows/path_latency blocks and
 *                                   queue watermarks in --stats-json)
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "dist/bigdata.hh"
#include "dist/coral.hh"
#include "dist/mapreduce.hh"
#include "dist/npb.hh"
#include "sim/fault.hh"
#include "sim/flow_stats.hh"
#include "sim/stat_sampler.hh"
#include "sim/timeline.hh"
#include "sim/trace_ring.hh"

using namespace mcnsim;
using namespace mcnsim::core;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> flags;

    std::string
    get(const std::string &key, const std::string &def) const
    {
        auto it = flags.find(key);
        return it == flags.end() ? def : it->second;
    }

    long
    getInt(const std::string &key, long def) const
    {
        auto it = flags.find(key);
        return it == flags.end() ? def : std::stol(it->second);
    }

    bool
    has(const std::string &key) const
    {
        return flags.count(key) > 0;
    }
};

Args
parse(int argc, char **argv)
{
    Args a;
    if (argc > 1 && argv[1][0] != '-')
        a.command = argv[1];
    for (int i = 1; i < argc; ++i) {
        std::string s = argv[i];
        if (s.rfind("--", 0) != 0)
            continue;
        auto eq = s.find('=');
        if (eq == std::string::npos)
            a.flags[s.substr(2)] = "1";
        else
            a.flags[s.substr(2, eq - 2)] = s.substr(eq + 1);
    }
    return a;
}

/**
 * Snapshot the modeled end-state of a run for --selfcheck: the full
 * stat registry (StatRegistry::dumpJson, which has no host-time meta
 * header), the final tick and the event count. Two runs of the same
 * scenario with the same seed must produce byte-identical digests.
 */
void
appendDigest(sim::Simulation &s, std::string *digest)
{
    if (!digest)
        return;
    std::ostringstream os;
    s.prepareStatsDump();
    s.statRegistry().dumpJson(os);
    os << "tick=" << s.curTick()
       << " events=" << s.eventsProcessed() << "\n";
    *digest += os.str();
}

/** The seed every command constructs its Simulation with. */
std::uint64_t
seedOf(const Args &a)
{
    return static_cast<std::uint64_t>(a.getInt("seed", 1));
}

/**
 * Honour --threads=N (call right after constructing the Simulation,
 * before the system is built). Presence of the flag -- any value,
 * including 1 -- selects the sharded engine: the builder partitions
 * the system into per-node shards and run() executes conservative
 * lookahead windows (DESIGN.md §9). The window schedule is a pure
 * function of the partitioning, never of the worker count, so
 * --threads=4 output byte-matches --threads=1; omitting the flag
 * keeps the classic single-queue engine. Commands whose harness
 * shares coordinator state across nodes (the MPI world of workload/
 * mapreduce) pass shardable=false and stay single-queue.
 */
void
applyThreads(sim::Simulation &s, const Args &a, bool shardable)
{
    if (!a.has("threads"))
        return;
    long n = std::max(1l, a.getInt("threads", 1));
    if (!shardable) {
        if (n > 1)
            std::fprintf(stderr,
                         "note: --threads ignored for '%s' (the MPI "
                         "world shares cross-node state; runs on one "
                         "queue)\n",
                         a.command.c_str());
        return;
    }
    s.enableSharding();
    s.setThreads(static_cast<unsigned>(n));
}

/** The system label for metadata/diagnostics: --topology implies
 *  the fabric system regardless of --system (buildSystem agrees). */
std::string
systemKind(const Args &a)
{
    if (a.has("topology") || a.get("system", "mcn") == "fabric")
        return "fabric-" + a.get("topology", "leafspine");
    return a.get("system", "mcn");
}

/** Honour --stats / --stats-json after a run. */
int
dumpRequestedStats(const Args &a, sim::Simulation &s)
{
    if (a.has("stats"))
        s.dumpStats(std::cout);
    if (!a.has("stats-json"))
        return 0;
    std::string path = a.get("stats-json", "-");
    if (path == "-" || path == "1") {
        s.dumpStatsJson(std::cout);
        return 0;
    }
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    s.dumpStatsJson(f);
    return f.good() ? 0 : 1;
}

/**
 * One run's observability session: arms the timeline, stats
 * sampler, event profiler and flight-recorder capacity from flags.
 * Construct after the system is built (the sampler walks the stat
 * registry); call finish() after the run to write the artifacts and
 * print the profile table.
 */
class ObsSession
{
  public:
    ObsSession(const Args &a, sim::Simulation &s) : a_(a), s_(s)
    {
        s_.setMetadata("command", a_.command);
        s_.setMetadata("system", systemKind(a_));
        if (a_.has("trace-ring"))
            sim::TraceRing::instance().setCapacity(
                static_cast<std::size_t>(
                    a_.getInt("trace-ring", 256)));
        if (a_.has("timeline")) {
            sim::Timeline::instance().clear();
            sim::Timeline::instance().enable(true);
        }
        if (a_.has("profile"))
            for (std::size_t i = 0; i < s_.shardCount(); ++i)
                s_.shardQueue(i).setProfiling(true);
        if (a_.has("flow-stats"))
            sim::FlowTelemetry::instance().enable();
        if (a_.has("stats-series")) {
            if (s_.threads() > 1)
                std::fprintf(stderr,
                             "note: --stats-series forces "
                             "--threads=1 (the sampler reads live "
                             "stats mid-run)\n");
            auto period = static_cast<sim::Tick>(a_.getInt(
                              "series-period-us", 50)) *
                          sim::oneUs;
            sampler_ =
                std::make_unique<sim::StatSampler>(s_, period);
            sampler_->addRegistryStats(a_.get("series-filter", ""));
            if (sim::FaultPlan::active()) {
                // Chaos visibility: the armed plan's fire count and
                // the recovery counters (rxCsumDrops, resyncs,
                // ringCrcDrops -- registry stats, captured above)
                // turn the degradation story into a time series.
                auto &plan = sim::FaultPlan::instance();
                sampler_->addProbe("fault.fires", [&plan] {
                    return static_cast<double>(plan.totalFires());
                });
            }
            sampler_->start(); // clamps a sharded run to 1 worker
        }
    }

    /** Write the requested artifacts; nonzero on a write failure. */
    int
    finish()
    {
        int rc = 0;
        std::vector<std::pair<std::string, std::string>> meta = {
            {"command", a_.command},
            {"system", systemKind(a_)},
            {"seed", std::to_string(s_.seed())},
        };
        if (sampler_) {
            sampler_->stop();
            rc |= writeTo(a_.get("stats-series", "-"),
                          [&](std::ostream &os) {
                              sampler_->exportJson(os, meta);
                          });
        }
        if (a_.has("flow-stats")) {
            auto &tel = sim::FlowTelemetry::instance();
            tel.disable();
            rc |= writeTo(a_.get("flow-stats", "-"),
                          [&](std::ostream &os) {
                              tel.exportJson(os, meta);
                          });
        }
        if (a_.has("timeline")) {
            auto &tl = sim::Timeline::instance();
            tl.enable(false);
            rc |= writeTo(a_.get("timeline", "-"),
                          [&](std::ostream &os) {
                              tl.exportJson(os, meta);
                          });
        }
        if (a_.has("profile"))
            printProfile();
        return rc;
    }

  private:
    template <typename F>
    int
    writeTo(const std::string &path, F &&write)
    {
        if (path == "-" || path == "1") {
            write(std::cout);
            return 0;
        }
        std::ofstream f(path);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        write(f);
        return f.good() ? 0 : 1;
    }

    void
    printProfile()
    {
        // Merge per-shard profiles by event name (one table whether
        // the run was sharded or not).
        std::map<std::string, sim::EventQueue::ProfileEntry> byName;
        for (std::size_t i = 0; i < s_.shardCount(); ++i)
            for (const auto &r : s_.shardQueue(i).profileEntries()) {
                auto &m = byName[r.name];
                m.name = r.name;
                m.count += r.count;
                m.hostNs += r.hostNs;
            }
        std::vector<sim::EventQueue::ProfileEntry> rows;
        rows.reserve(byName.size());
        for (auto &[name, row] : byName)
            rows.push_back(row);
        std::sort(rows.begin(), rows.end(),
                  [](const auto &x, const auto &y) {
                      return x.hostNs > y.hostNs;
                  });
        auto top = static_cast<std::size_t>(
            a_.getInt("profile-top", 20));
        std::printf("---- event profile: top %zu of %zu event "
                    "names by host time ----\n",
                    std::min(top, rows.size()), rows.size());
        std::printf("%-32s %12s %14s %10s\n", "event", "count",
                    "host_us", "avg_ns");
        for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
            const auto &r = rows[i];
            std::printf("%-32s %12llu %14.1f %10.1f\n", r.name,
                        static_cast<unsigned long long>(r.count),
                        static_cast<double>(r.hostNs) / 1e3,
                        static_cast<double>(r.hostNs) /
                            static_cast<double>(r.count));
        }
    }

    const Args &a_;
    sim::Simulation &s_;
    std::unique_ptr<sim::StatSampler> sampler_;
};

/** upf: parallel uplinks per (leaf, spine) pair -- must match
 *  FabricSystem::uplinksPerSpine() so the canned rack-partition
 *  schedule addresses the real uplink ports. */
std::size_t
fabricUplinksPerSpine(const Args &a)
{
    auto nodes_per_rack =
        static_cast<std::size_t>(a.getInt("nodes-per-rack", 2));
    auto spines = static_cast<std::size_t>(a.getInt("spines", 2));
    return a.get("topology", "leafspine") == "fattree"
               ? (nodes_per_rack + spines - 1) / spines
               : 1;
}

/** Build the system the flags describe. */
std::unique_ptr<System>
buildSystem(sim::Simulation &s, const Args &a)
{
    std::string kind = a.get("system", "mcn");
    // --topology implies the multi-switch fabric system.
    if (kind == "fabric" || a.has("topology")) {
        FabricSystemParams p;
        std::string topo = a.get("topology", "leafspine");
        if (topo == "fattree")
            p.topology = FabricTopology::FatTree;
        else if (topo != "leafspine") {
            std::fprintf(stderr,
                         "unknown --topology=%s (leafspine | "
                         "fattree)\n",
                         topo.c_str());
            return nullptr;
        }
        p.racks = static_cast<std::size_t>(a.getInt("racks", 2));
        p.nodesPerRack = static_cast<std::size_t>(
            a.getInt("nodes-per-rack", 2));
        p.spines = static_cast<std::size_t>(a.getInt("spines", 2));
        return std::make_unique<FabricSystem>(s, p);
    }
    if (kind == "mcn") {
        McnSystemParams p;
        p.numDimms = static_cast<std::size_t>(a.getInt("dimms", 4));
        p.config =
            McnConfig::level(static_cast<int>(a.getInt("level", 5)));
        return std::make_unique<McnSystem>(s, p);
    }
    if (kind == "cluster") {
        ClusterSystemParams p;
        p.numNodes = static_cast<std::size_t>(a.getInt("nodes", 2));
        return std::make_unique<ClusterSystem>(s, p);
    }
    if (kind == "multi") {
        McnMultiServerParams p;
        p.numServers =
            static_cast<std::size_t>(a.getInt("servers", 2));
        p.dimmsPerServer =
            static_cast<std::size_t>(a.getInt("dimms", 2));
        p.config =
            McnConfig::level(static_cast<int>(a.getInt("level", 5)));
        return std::make_unique<McnMultiServer>(s, p);
    }
    if (kind == "scaleup")
        return std::make_unique<ScaleUpSystem>(
            s, static_cast<std::uint32_t>(a.getInt("cores", 8)));
    std::fprintf(stderr, "unknown --system=%s\n", kind.c_str());
    return nullptr;
}

dist::WorkloadSpec
findWorkload(const std::string &name)
{
    for (auto &w : dist::npb::suite())
        if (w.name == name)
            return w;
    for (auto &w : dist::coral::suite())
        if (w.name == name)
            return w;
    for (auto &w : dist::bigdata::suite())
        if (w.name == name)
            return w;
    sim::fatal("unknown workload '", name,
               "' (try cg/mg/ft/is/ep/lu, amg/minife/lulesh, "
               "grep/pagerank/sort/wordcount)");
}

int
cmdIperf(const Args &a, std::string *digest = nullptr)
{
    sim::Simulation s(seedOf(a));
    applyThreads(s, a, true);
    auto sys = buildSystem(s, a);
    if (!sys)
        return 1;
    sim::Tick dur = static_cast<sim::Tick>(
                        a.getInt("duration-ms", 5)) *
                    sim::oneMs;
    std::vector<std::size_t> clients;
    for (std::size_t i = 1; i < sys->nodeCount(); ++i)
        clients.push_back(i);
    if (clients.empty()) {
        std::fprintf(stderr, "need >= 2 nodes for iperf\n");
        return 1;
    }
    ObsSession obs(a, s);
    auto r = runIperf(s, *sys, 0, clients, dur);
    std::printf("iperf: %.2f Gbit/s across %d connections "
                "(%llu bytes in %.1f ms)\n",
                r.gbps, r.connections,
                static_cast<unsigned long long>(r.bytes),
                sim::ticksToSeconds(dur) * 1e3);
    appendDigest(s, digest);
    int orc = obs.finish();
    int src = dumpRequestedStats(a, s);
    return orc ? orc : src;
}

int
cmdPing(const Args &a, std::string *digest = nullptr)
{
    sim::Simulation s(seedOf(a));
    applyThreads(s, a, true);
    auto sys = buildSystem(s, a);
    if (!sys || sys->nodeCount() < 2)
        return 1;
    std::size_t size =
        static_cast<std::size_t>(a.getInt("size", 56));
    int count = static_cast<int>(a.getInt("count", 5));
    sim::Tick timeout = static_cast<sim::Tick>(a.getInt(
                            "ping-timeout-us", 100000)) *
                        sim::oneUs;
    unsigned retries =
        static_cast<unsigned>(a.getInt("ping-retries", 0));
    ObsSession obs(a, s);
    auto pts =
        runPingSweep(s, *sys, 0, 1, {size}, count, timeout, retries);
    if (pts.empty() || pts[0].lost == count) {
        std::printf("ping: no replies\n");
        return 1;
    }
    std::printf("ping %zu bytes: avg %.2f us, min %.2f us, max "
                "%.2f us (%d probes, %d lost)\n",
                size, sim::ticksToUs(pts[0].avgRtt),
                sim::ticksToUs(pts[0].minRtt),
                sim::ticksToUs(pts[0].maxRtt), count, pts[0].lost);
    appendDigest(s, digest);
    int orc = obs.finish();
    int src = dumpRequestedStats(a, s);
    return orc ? orc : src;
}

int
cmdWorkload(const Args &a, std::string *digest = nullptr)
{
    sim::Simulation s(seedOf(a));
    applyThreads(s, a, false);
    auto sys = buildSystem(s, a);
    if (!sys)
        return 1;
    auto spec = findWorkload(a.get("name", "mg"));
    auto placement = allCoresPlacement(*sys);
    auto scaled =
        spec.scaledTo(static_cast<int>(placement.size()));
    scaled.iterations =
        static_cast<int>(a.getInt("iters", spec.iterations));
    ObsSession obs(a, s);
    auto rep = runMpiWorkload(s, *sys, scaled, placement);
    std::printf("%s on %zu ranks: %s in %.2f ms, %.1f MB over "
                "MPI\n",
                spec.name.c_str(), placement.size(),
                rep.completed ? "completed" : "DID NOT FINISH",
                sim::ticksToSeconds(rep.makespan) * 1e3,
                static_cast<double>(rep.mpiBytes) / 1e6);
    appendDigest(s, digest);
    int orc = obs.finish();
    if (!rep.completed)
        return 1;
    int src = dumpRequestedStats(a, s);
    return orc ? orc : src;
}

int
cmdMapReduce(const Args &a, std::string *digest = nullptr)
{
    sim::Simulation s(seedOf(a));
    applyThreads(s, a, false);
    auto sys = buildSystem(s, a);
    if (!sys)
        return 1;
    std::string name = a.get("name", "wordcount");
    dist::MapReduceJob job;
    if (name == "wordcount")
        job = dist::wordcountJob();
    else if (name == "sort")
        job = dist::sortJob();
    else if (name == "grep")
        job = dist::grepJob();
    else
        sim::fatal("unknown job '", name,
                   "' (wordcount/sort/grep)");

    auto placement = allCoresPlacement(*sys);
    ObsSession obs(a, s);
    auto rep = runMapReduce(s, *sys, job, placement);
    std::printf("%s on %zu workers: %s in %.2f ms (map %.2f ms, "
                "shuffle %.2f ms, %.1f MB shuffled)\n",
                job.name.c_str(), placement.size(),
                rep.completed ? "completed" : "DID NOT FINISH",
                sim::ticksToSeconds(rep.makespan) * 1e3,
                sim::ticksToSeconds(rep.mapPhase) * 1e3,
                sim::ticksToSeconds(rep.shufflePhase) * 1e3,
                static_cast<double>(rep.shuffledBytes) / 1e6);
    appendDigest(s, digest);
    int orc = obs.finish();
    if (!rep.completed)
        return 1;
    int src = dumpRequestedStats(a, s);
    return orc ? orc : src;
}

/**
 * Arm the process-wide fault plan from --faults / --schedule.
 * Returns false (with a message) on a malformed spec. Idempotent:
 * clears any previous plan first so --selfcheck reruns replay the
 * identical schedule.
 */
bool
armFaultPlan(const Args &a)
{
    std::string specs = a.get("faults", "");
    std::string schedule = a.get("schedule", "");
    if (!schedule.empty()) {
        if (schedule == "drop-heavy")
            specs = "*.rx-irq-lost:p=0.05;*.alert-lost:p=0.05;"
                    "*.stall:p=0.01";
        else if (schedule == "corrupt-heavy")
            specs = "*.tx-corrupt:p=0.02";
        else if (schedule == "crash-recover")
            specs = "mcn1.hang:at=2ms,param=1ms";
        else if (schedule == "spine-kill")
            // Fabric scenario (pass --topology=...): spine0 goes
            // dark for 1 ms; the leaves must reroute around it and
            // readmit it on recovery.
            specs = "spine0.crash:at=1ms,param=1ms";
        else if (schedule == "rack-partition") {
            // Fabric scenario: every uplink of rack0's leaf held
            // down for 1 ms -- rack0 is partitioned from the rest
            // of the fabric and its cross-rack sockets must fail
            // fast, then traffic resumes on recovery.
            auto nodes_per_rack = static_cast<std::size_t>(
                a.getInt("nodes-per-rack", 2));
            auto uplinks = static_cast<std::size_t>(
                               a.getInt("spines", 2)) *
                           fabricUplinksPerSpine(a);
            specs.clear();
            for (std::size_t u = 0; u < uplinks; ++u) {
                if (!specs.empty())
                    specs += ";";
                specs += "rack0.leaf.port" +
                         std::to_string(nodes_per_rack + u) +
                         ".down:at=1ms,param=1ms";
            }
        } else {
            std::fprintf(stderr,
                         "unknown --schedule=%s (drop-heavy | "
                         "corrupt-heavy | crash-recover | "
                         "spine-kill | rack-partition)\n",
                         schedule.c_str());
            return false;
        }
        if (a.has("faults"))
            specs += ";" + a.get("faults", "");
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "chaos: need --faults=SPEC[;SPEC...] or "
                     "--schedule=NAME\n");
        return false;
    }

    auto &plan = sim::FaultPlan::instance();
    plan.clear();
    plan.setSeed(seedOf(a));
    std::size_t pos = 0;
    while (pos < specs.size()) {
        std::size_t semi = specs.find(';', pos);
        if (semi == std::string::npos)
            semi = specs.size();
        if (semi > pos) {
            sim::FaultPlan::Spec sp;
            std::string err;
            std::string one = specs.substr(pos, semi - pos);
            if (!sim::FaultPlan::parseSpec(one, &sp, &err)) {
                std::fprintf(stderr, "bad fault spec '%s': %s\n",
                             one.c_str(), err.c_str());
                plan.clear();
                return false;
            }
            plan.arm(sp);
        }
        pos = semi + 1;
    }
    plan.resetRunState();
    return true;
}

/**
 * chaos: a fault-injection soak. Arms the fault plan, runs the
 * iperf traffic mix (every node streaming to the host) for the
 * requested window, and reports what fired and what the recovery
 * machinery did. Time-bounded by construction, so a wedged system
 * shows up as zero throughput, not a hang. With --selfcheck the
 * whole thing runs twice and the modeled end state (which includes
 * every fault fire) must be byte-identical.
 */
int
cmdChaos(const Args &a, std::string *digest = nullptr)
{
    if (!armFaultPlan(a))
        return 1;
    auto &plan = sim::FaultPlan::instance();

    sim::Simulation s(seedOf(a));
    applyThreads(s, a, true);
    auto sys = buildSystem(s, a);
    if (!sys || sys->nodeCount() < 2) {
        plan.clear();
        return 1;
    }
    sim::Tick dur = static_cast<sim::Tick>(
                        a.getInt("duration-ms", 10)) *
                    sim::oneMs;
    std::vector<std::size_t> clients;
    for (std::size_t i = 1; i < sys->nodeCount(); ++i)
        clients.push_back(i);

    ObsSession obs(a, s);
    auto r = runIperf(s, *sys, 0, clients, dur);

    std::printf("chaos: %.2f Gbit/s across %d connections under "
                "%zu armed spec(s), %llu fault(s) fired\n",
                r.gbps, r.connections, plan.specs().size(),
                static_cast<unsigned long long>(plan.totalFires()));
    for (const auto &[site, fires] : plan.fireCounts())
        std::printf("  %-48s %8llu\n", site.c_str(),
                    static_cast<unsigned long long>(fires));

    appendDigest(s, digest);
    if (digest) {
        // Fold the fault schedule into the digest too: a selfcheck
        // rerun must replay the identical fires, not just land on
        // the same stats.
        std::ostringstream os;
        os << "faultFires=" << plan.totalFires();
        for (const auto &[site, fires] : plan.fireCounts())
            os << " " << site << "=" << fires;
        os << "\n";
        *digest += os.str();
    }
    plan.clear();
    int orc = obs.finish();
    int src = dumpRequestedStats(a, s);
    return orc ? orc : src;
}

int
cmdDescribe(const Args &a)
{
    sim::Simulation s(seedOf(a));
    auto sys = buildSystem(s, a);
    if (!sys)
        return 1;
    std::printf("system: %s, %zu nodes\n", systemKind(a).c_str(),
                sys->nodeCount());
    for (std::size_t i = 0; i < sys->nodeCount(); ++i) {
        auto n = sys->node(i);
        std::printf("  node %zu: %s, %u cores @ %.2f GHz, %u mem "
                    "channels (%s)\n",
                    i, n.addr.str().c_str(),
                    n.kernel->cpus().coreCount(),
                    n.kernel->cpus().clock().frequencyHz() / 1e9,
                    n.kernel->mem().channelCount(),
                    n.kernel->mem().timing().name.c_str());
    }
    if (a.get("system", "mcn") == "mcn") {
        auto cfg = McnConfig::level(
            static_cast<int>(a.getInt("level", 5)));
        std::printf("config: %s\n", cfg.describe().c_str());
    }
    return 0;
}

/**
 * --selfcheck: run the scenario twice in-process with the same seed
 * and diff the modeled end-state digests bit-for-bit. Catches
 * nondeterminism (iteration over pointer-keyed containers, uninit
 * reads, wall-clock leakage into model code) that single-run tests
 * cannot see.
 */
int
runSelfcheck(const Args &a,
             int (*cmd)(const Args &, std::string *))
{
    std::string d1, d2;
    int rc1 = cmd(a, &d1);
    if (rc1)
        return rc1;
    int rc2 = cmd(a, &d2);
    if (rc2)
        return rc2;
    if (d1 != d2 || d1.empty()) {
        std::size_t at = 0;
        while (at < d1.size() && at < d2.size() && d1[at] == d2[at])
            at++;
        std::fprintf(stderr,
                     "selfcheck: FAILED -- two runs of '%s' with "
                     "seed %llu diverged at digest byte %zu "
                     "(%zu vs %zu bytes)\n",
                     a.command.c_str(),
                     static_cast<unsigned long long>(seedOf(a)), at,
                     d1.size(), d2.size());
        return 1;
    }
    std::printf("selfcheck: '%s' deterministic (seed %llu, "
                "%zu-byte state digest identical across 2 runs)\n",
                a.command.c_str(),
                static_cast<unsigned long long>(seedOf(a)),
                d1.size());
    return 0;
}

void
usage()
{
    std::printf(
        "usage: mcnsim_cli <command> [flags]\n"
        "commands: iperf | ping | workload | mapreduce | chaos | "
        "describe\n"
        "flags: --system=mcn|cluster|multi|scaleup|fabric --dimms=N\n"
        "       --nodes=N --servers=N --cores=N --level=0..5\n"
        "       --topology=leafspine|fattree  multi-switch fabric\n"
        "                    (implies --system=fabric)\n"
        "       --racks=N --nodes-per-rack=N --spines=N\n"
        "       --duration-ms=N --size=N --count=N\n"
        "       --name=<workload|job> --iters=N --stats\n"
        "       --stats-json=PATH|-  --trace-flags=FLAG1,FLAG2\n"
        "       --seed=N     simulation RNG seed (default 1)\n"
        "       --threads=N  sharded parallel engine, N workers\n"
        "                    (iperf/ping/chaos; output is identical\n"
        "                    for every N -- see DESIGN.md §9)\n"
        "       --selfcheck  run twice, diff modeled state "
        "bit-for-bit\n"
        "       --ping-timeout-us=N  per-probe timeout "
        "(ping, default 100000)\n"
        "       --ping-retries=N     re-sends per lost probe "
        "(ping, default 0)\n"
        "chaos (fault-injection soak; see DESIGN.md §8):\n"
        "       --faults=GLOB:k=v[,k=v...][;SPEC...]  e.g.\n"
        "         '*.tx-corrupt:p=0.01;mcn1.crash:at=2ms'\n"
        "       --schedule=drop-heavy|corrupt-heavy|crash-recover\n"
        "                  |spine-kill|rack-partition (fabric; pass\n"
        "                  --topology=... so the ports resolve)\n"
        "       spec keys: p= n= at= param= max= from= until=\n"
        "observability:\n"
        "       --timeline=PATH|-       Perfetto/chrome trace JSON\n"
        "       --stats-series=PATH|-   periodic stat snapshots\n"
        "       --series-period-us=N    sampling period (default 50)\n"
        "       --series-filter=SUBSTR  restrict sampled stats\n"
        "       --profile               host-time profile table\n"
        "       --profile-top=N         rows in that table\n"
        "       --trace-ring=N          flight-recorder capacity\n"
        "       --flow-stats[=PATH|-]   per-flow tables + per-hop\n"
        "                               path-latency histograms;\n"
        "                               also adds flows/path_latency\n"
        "                               blocks and queue watermarks\n"
        "                               to --stats-json\n"
        "trace flags (also via MCNSIM_DEBUG): Event MCNDriver\n"
        "       MCNDma NIC Switch TCP DRAM IRQ Fault ALL\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parse(argc, argv);
    if (a.has("trace-flags")) {
        std::string flags = a.get("trace-flags", "");
        std::size_t pos = 0;
        while (pos < flags.size()) {
            std::size_t comma = flags.find(',', pos);
            if (comma == std::string::npos)
                comma = flags.size();
            if (comma > pos)
                sim::Trace::setFlag(
                    flags.substr(pos, comma - pos), true);
            pos = comma + 1;
        }
    }
    try {
        int (*cmd)(const Args &, std::string *) = nullptr;
        if (a.command == "iperf")
            cmd = cmdIperf;
        else if (a.command == "ping")
            cmd = cmdPing;
        else if (a.command == "workload")
            cmd = cmdWorkload;
        else if (a.command == "mapreduce")
            cmd = cmdMapReduce;
        else if (a.command == "chaos")
            cmd = cmdChaos;
        if (cmd)
            return a.has("selfcheck") ? runSelfcheck(a, cmd)
                                      : cmd(a, nullptr);
        if (a.command == "describe")
            return cmdDescribe(a);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage();
    return a.command.empty() ? 0 : 1;
}
