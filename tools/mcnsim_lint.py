#!/usr/bin/env python3
"""Repo-specific lint rules for mcnsim.

Generic linters cannot see the simulator's sharp-edged contracts, so
this checker enforces them textually:

  packet-cdata   Read-only packet accesses must use cdata(): the
                 mutable data() overload triggers a copy-on-write
                 detach, so calling it for a read silently clones the
                 buffer and wrecks the zero-copy fan-out path. Sites
                 that really write (subscript assignment, memcpy
                 destination) pass automatically.

  trace-gate     Direct Trace::emit() call sites must sit behind a
                 one-branch Trace::anyActive() / active() gate so the
                 disabled-tracing hot path costs a single predictable
                 branch (see EventQueue::popAndRun for the pattern).

  fault-site     FAULT_POINT() declarations must pass a string
                 literal matching [a-z][a-z0-9-]*: site names are
                 the addressing scheme for fault specs ("mcn1.iface.
                 rx-irq-lost"), so a computed or irregular point
                 name silently makes a site unreachable from the
                 documented spec grammar.

  packet-alloc   Packet byte storage must come from the slab pool
                 (net/buffer_pool.hh): a raw `new uint8_t[]` /
                 `make_unique<uint8_t[]>` / heap vector-of-bytes in
                 model code bypasses the size-classed free lists and
                 the checked-build recycle poisoning, reintroducing
                 the per-packet malloc churn PR "hot-path round 2"
                 removed. The pool's own carve path is allowlisted;
                 non-packet byte storage (e.g. a socket stream ring)
                 annotates the site.

  stat-name      Stat constructor names (Scalar / Average /
                 Histogram / LogHistogram / QueueStat) must be
                 literal, lowerCamel, optionally dotted:
                 "txBytes", "txRing.usedBytes". The registry
                 qualifies them as <group>.<stat>, and every
                 downstream consumer (--series-filter substring
                 match, check_perf keys, flow_report queue table)
                 addresses stats by that dotted path -- an
                 irregular or computed name breaks the addressing
                 silently.

  this-capture   An event-queue schedule()/scheduleIn() callback
                 capturing [this] must belong to a SimObject (whose
                 lifetime the Simulation pins until after the queue
                 drains) -- otherwise the object can die before the
                 callback fires. Non-SimObject owners that cancel
                 their event in the destructor annotate the site.

The determinism-contract rules that used to live here (wall-clock
host-time reads, cross-shard schedule()) moved to the shard-safety
analyzer, tools/mcnsim_analyze.py (rules host-entropy and
cross-shard-schedule), which owns them with scope tracking and a
reviewed baseline -- one owner per rule.

Suppress a finding with a comment on the line or the line above:

    // lint-ok: <rule> (<why this site is safe>)

Usage:
    tools/mcnsim_lint.py            # report findings, exit 0
    tools/mcnsim_lint.py --check    # exit 1 when findings exist
    tools/mcnsim_lint.py --check src/net tests
"""

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# A packet-ish receiver calling the mutable data() overload.
PACKET_DATA_RE = re.compile(
    r"\b(\w*(?:pkt|packet|frame|seg|msg)\w*)\s*(?:->|\.)\s*data\s*\(\)",
    re.IGNORECASE,
)

# ...followed by something that writes through the pointer.
WRITE_THROUGH_RE = re.compile(
    r"data\s*\(\)\s*(?:\[[^\]]*\])?\s*"
    r"(?:=[^=]|\+=|-=|\^=|\|=|&=|\+\+|--)"
)

TRACE_EMIT_RE = re.compile(r"\bTrace::emit\s*\(")
TRACE_GATE_RE = re.compile(r"\banyActive\s*\(\)|\bactive\s*\(\)")

THIS_CAPTURE_RE = re.compile(r"\[\s*this\s*\]")
QUEUE_SCHED_RE = re.compile(
    r"(?:eventQueue\s*\(\)|queue_|\bq_|\bqueue\s*\(\))\s*\.\s*"
    r"(?:schedule|scheduleIn|reschedule)\s*\("
)

SIMOBJECT_RE = re.compile(r":\s*public\s+(?:sim::)?SimObject\b")

# Raw heap allocation of packet-style byte storage. The slab pool
# owns the only legitimate carve sites.
PACKET_ALLOC_ALLOW = {
    "src/net/buffer_pool.hh",
    "src/net/buffer_pool.cc",
}

PACKET_ALLOC_RE = re.compile(
    r"\bnew\s+(?:std::)?uint8_t\s*\["
    r"|make_unique\s*<\s*(?:std::)?uint8_t\s*\[\]"
    r"|make_shared\s*<\s*(?:std::)?vector\s*<\s*(?:std::)?uint8_t"
    r"|\bnew\s+(?:std::)?vector\s*<\s*(?:std::)?uint8_t"
)

# FAULT_POINT("point"): the argument must be a well-formed literal.
FAULT_POINT_RE = re.compile(r"\bFAULT_POINT\s*\(\s*([^)]*)\)")
FAULT_POINT_OK_RE = re.compile(r'^"[a-z][a-z0-9-]*"$')

# A stat being constructed: type, member/variable name, then the
# first constructor argument. Captures a literal first argument, or
# whatever non-literal expression sits there (group 2) so computed
# names are flagged too.
STAT_CTOR_RE = re.compile(
    r"\b(?:Scalar|Average|Histogram|LogHistogram|QueueStat)\s+"
    r"\w+\s*[({]\s*(?:\"([^\"]*)\"|([^,)}]+))"
)
STAT_NAME_OK_RE = re.compile(
    r"^[a-z][a-zA-Z0-9]*(\.[a-z][a-zA-Z0-9]*)*$")

SUPPRESS_RE = re.compile(r"//\s*lint-ok:\s*([\w-]+)")


def suppressed(lines, idx, rule, back=1):
    """True when line idx (0-based) or one of the @p back lines above
    carries a lint-ok annotation naming this rule."""
    for j in range(max(0, idx - back), idx + 1):
        m = SUPPRESS_RE.search(lines[j])
        if m and m.group(1) == rule:
            return True
    return False


def sibling_header_is_simobject(path):
    hh = path.with_suffix(".hh")
    if not hh.exists():
        return False
    return bool(SIMOBJECT_RE.search(hh.read_text(errors="replace")))


def check_file(path, rel, findings):
    text = path.read_text(errors="replace")
    lines = text.splitlines()
    in_src = rel.startswith("src/")

    for i, line in enumerate(lines):
        stripped = line.split("//", 1)[0]

        # packet-cdata: reads must not trigger copy-on-write.
        if in_src and not suppressed(lines, i, "packet-cdata"):
            m = PACKET_DATA_RE.search(stripped)
            if m and not WRITE_THROUGH_RE.search(stripped):
                window = " ".join(lines[max(0, i - 1):i + 2])
                if not WRITE_THROUGH_RE.search(window):
                    findings.append(
                        (rel, i + 1, "packet-cdata",
                         f"read-only access via {m.group(1)}->data() "
                         "detaches a shared CoW buffer; use cdata()"))

        # trace-gate: Trace::emit behind a one-branch gate.
        if (in_src
                and rel not in ("src/sim/logging.hh",
                                "src/sim/logging.cc",
                                "src/sim/trace_ring.hh",
                                "src/sim/trace_ring.cc")
                and TRACE_EMIT_RE.search(stripped)
                and not suppressed(lines, i, "trace-gate")):
            gate_window = " ".join(lines[max(0, i - 5):i + 1])
            if not TRACE_GATE_RE.search(gate_window):
                findings.append(
                    (rel, i + 1, "trace-gate",
                     "Trace::emit() without a Trace::anyActive()/"
                     "active() gate on the path"))

        # fault-site: FAULT_POINT takes a literal, lint-able name.
        if (in_src
                and rel not in ("src/sim/fault.hh",
                                "src/sim/fault.cc")
                and not suppressed(lines, i, "fault-site")):
            m = FAULT_POINT_RE.search(stripped)
            if m and not FAULT_POINT_OK_RE.match(m.group(1).strip()):
                findings.append(
                    (rel, i + 1, "fault-site",
                     f"FAULT_POINT({m.group(1).strip()}) must take "
                     'a string literal matching "[a-z][a-z0-9-]*" '
                     "so fault specs can address the site"))

        # packet-alloc: packet bytes come from the slab pool.
        if (in_src and rel not in PACKET_ALLOC_ALLOW
                and PACKET_ALLOC_RE.search(stripped)
                and not suppressed(lines, i, "packet-alloc")):
            findings.append(
                (rel, i + 1, "packet-alloc",
                 "raw heap allocation of packet byte storage; use "
                 "BufferPool::acquire (net/buffer_pool.hh) or "
                 "annotate a non-packet use"))

        # stat-name: registry stats are addressed as <group>.<stat>
        # by substring filters and report tools; names must be
        # literal and dotted-lowerCamel so that addressing works.
        if (in_src
                and rel not in ("src/sim/stats.hh",
                                "src/sim/stats.cc")
                and not suppressed(lines, i, "stat-name")):
            m = STAT_CTOR_RE.search(stripped)
            if m:
                literal, expr = m.group(1), m.group(2)
                if literal is None:
                    findings.append(
                        (rel, i + 1, "stat-name",
                         f"stat name {expr.strip()!r} is not a "
                         "string literal; computed names hide the "
                         "stat from filters and report tools"))
                elif not STAT_NAME_OK_RE.match(literal):
                    findings.append(
                        (rel, i + 1, "stat-name",
                         f'stat name "{literal}" must match '
                         "lowerCamel[.lowerCamel...] (e.g. "
                         '"txBytes", "txRing.usedBytes")'))

        # this-capture: queue callbacks capturing this need a
        # SimObject owner (or an annotated cancel-in-destructor).
        if (in_src and THIS_CAPTURE_RE.search(stripped)
                and not suppressed(lines, i, "this-capture",
                                   back=4)):
            sched_window = " ".join(lines[max(0, i - 3):i + 1])
            if QUEUE_SCHED_RE.search(sched_window):
                if not sibling_header_is_simobject(path):
                    findings.append(
                        (rel, i + 1, "this-capture",
                         "event-queue callback captures [this] but "
                         "the owner is not a SimObject; the object "
                         "may die before the callback fires"))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories (default: src tests "
                         "tools bench examples)")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero when findings exist")
    args = ap.parse_args()

    roots = [REPO / p for p in args.paths] or [
        REPO / d for d in ("src", "tests", "tools", "bench",
                           "examples")
    ]
    files = []
    for r in roots:
        if r.is_file():
            files.append(r)
        elif r.is_dir():
            files.extend(sorted(r.rglob("*.hh")))
            files.extend(sorted(r.rglob("*.cc")))
            files.extend(sorted(r.rglob("*.cpp")))

    findings = []
    for f in files:
        rel = f.relative_to(REPO).as_posix()
        check_file(f, rel, findings)

    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    n = len(findings)
    print(f"mcnsim_lint: {len(files)} files, {n} finding"
          f"{'' if n == 1 else 's'}")
    if args.check and findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
