#!/usr/bin/env python3
"""Render and validate mcnsim flow-telemetry artifacts.

Reads the mcnsim-flow-stats JSON written by
``mcnsim_cli <cmd> --flow-stats=PATH`` (or a schema-v3 ``--stats-json``
document, which embeds the same ``flows`` / ``path_latency`` blocks
when telemetry was on) and prints three tables:

  top flows       per-5-tuple bytes/packets/retransmits/RTT and
                  delivery-latency percentiles
  per-hop path    where delivery time goes, hop by hop (INT-style:
                  the delta between consecutive path stamps is
                  attributed to the later hop)
  hottest queues  time-weighted average + peak occupancy of every
                  "queue"-typed stat (needs --stats-json)

``--validate`` checks the artifact instead of rendering it: schema
shape, bucket-count consistency, and per-flow/per-hop percentile
monotonicity (min <= p50 <= p90 <= p99 <= p999 <= max). CI runs this
against a freshly generated artifact (tools/ci.sh, obs stage).
``--max-path-hops N`` additionally fails validation if any entry of
the ``path_hops`` histogram records a delivered packet with more
than N path stamps -- on a fixed-diameter fabric that means a
forwarding loop (tools/ci.sh, rack-chaos stage).

Usage:
    tools/flow_report.py FLOW.json [--stats-json STATS.json] [--top N]
    tools/flow_report.py FLOW.json --validate [--max-path-hops N]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def ticks_per_us(doc):
    """Tick-to-microsecond scale of the artifact. The standalone flow
    artifact carries it; a --stats-json document derives it from the
    run meta; anything else renders raw ticks (scale 1)."""
    if "ticks_per_us" in doc:
        return float(doc["ticks_per_us"])
    meta = doc.get("meta", {})
    ticks, secs = meta.get("sim_ticks"), meta.get("sim_seconds")
    if ticks and secs:
        return float(ticks) / (float(secs) * 1e6)
    return 1.0


def flow_name(f):
    return (f"{f['src_ip']}:{f['src_port']} -> "
            f"{f['dst_ip']}:{f['dst_port']}/{f['proto']}")


def fmt_table(headers, rows):
    width = [len(h) for h in headers]
    for r in rows:
        for c, cell in enumerate(r):
            width[c] = max(width[c], len(cell))
    out = []
    line = " | ".join(h.ljust(width[c])
                      for c, h in enumerate(headers))
    out.append(line)
    out.append("-+-".join("-" * w for w in width))
    for r in rows:
        out.append(" | ".join(cell.ljust(width[c])
                              for c, cell in enumerate(r)))
    return "\n".join(out)


def pct_us(lat, key, scale):
    return lat.get("percentiles", {}).get(key, 0.0) / scale


def render(doc, stats_doc, top):
    meta = doc.get("meta", {})
    scale = ticks_per_us(doc)
    print("flow report: " + ", ".join(
        f"{k}={v}" for k, v in sorted(meta.items())))

    flows = doc.get("flows", [])
    flows = sorted(flows,
                   key=lambda f: f["tx_bytes"] + f["rx_bytes"],
                   reverse=True)
    rows = []
    for f in flows[:top]:
        rtt = f.get("rtt", {})
        avg = (rtt["sum_ticks"] / rtt["samples"] / scale
               if rtt.get("samples") else 0.0)
        lat = f.get("latency", {})
        rows.append([
            flow_name(f),
            f"{f['tx_bytes'] / 1e6:.2f}",
            f"{f['rx_bytes'] / 1e6:.2f}",
            str(f["tx_packets"] + f["rx_packets"]),
            str(f["retransmits"]),
            f"{avg:.1f}",
            f"{pct_us(lat, 'p50', scale):.1f}",
            f"{pct_us(lat, 'p99', scale):.1f}",
            f"{pct_us(lat, 'p999', scale):.1f}",
        ])
    print(f"\n== top {min(top, len(flows))} of {len(flows)} flows "
          f"by bytes ==")
    print(fmt_table(["flow", "tx_MB", "rx_MB", "pkts", "rexmit",
                     "rtt_us", "p50_us", "p99_us", "p999_us"], rows))

    hops = doc.get("path_latency", [])
    hops = sorted(hops, key=lambda h: h["latency"].get("sum", 0),
                  reverse=True)
    rows = []
    for h in hops:
        lat = h["latency"]
        rows.append([
            h["hop"],
            str(lat.get("count", 0)),
            f"{lat.get('mean', 0.0) / scale:.2f}",
            f"{pct_us(lat, 'p50', scale):.2f}",
            f"{pct_us(lat, 'p90', scale):.2f}",
            f"{pct_us(lat, 'p99', scale):.2f}",
            f"{pct_us(lat, 'p999', scale):.2f}",
        ])
    print("\n== per-hop path latency (by total time) ==")
    print(fmt_table(["hop", "count", "mean_us", "p50_us", "p90_us",
                     "p99_us", "p999_us"], rows))

    lens = doc.get("path_hops", [])
    if lens:
        total = sum(e["packets"] for e in lens)
        rows = [[str(e["hops"]), str(e["packets"]),
                 f"{100.0 * e['packets'] / total:.1f}"]
                for e in sorted(lens, key=lambda e: e["hops"])]
        print("\n== path length distribution (stamps/packet) ==")
        print(fmt_table(["hops", "packets", "%"], rows))

    if stats_doc is not None:
        rows = []
        for g in stats_doc.get("groups", []):
            for s in g.get("stats", []):
                if s.get("type") != "queue":
                    continue
                rows.append((s.get("twa", 0.0), [
                    f"{g['name']}.{s['name']}",
                    f"{s.get('twa', 0.0):.1f}",
                    str(int(s.get("peak", 0))),
                    str(int(s.get("updates", 0))),
                ]))
        rows.sort(key=lambda r: r[0], reverse=True)
        print(f"\n== hottest queues (time-weighted avg) ==")
        print(fmt_table(["queue", "twa", "peak", "updates"],
                        [r for _, r in rows[:top]]))


def check_latency(where, lat, problems):
    for key in ("count", "sum", "min", "max", "mean", "percentiles",
                "buckets"):
        if key not in lat:
            problems.append(f"{where}: latency block missing {key!r}")
            return
    total = sum(n for _, n in lat["buckets"])
    if total != lat["count"]:
        problems.append(
            f"{where}: bucket counts sum to {total}, "
            f"count says {lat['count']}")
    bounds = [b for b, _ in lat["buckets"]]
    if bounds != sorted(bounds):
        problems.append(f"{where}: bucket bounds not ascending")
    p = lat["percentiles"]
    seq = [("min", lat["min"]), ("p50", p.get("p50")),
           ("p90", p.get("p90")), ("p99", p.get("p99")),
           ("p999", p.get("p999")), ("max", lat["max"])]
    for (an, av), (bn, bv) in zip(seq, seq[1:]):
        if av is None or bv is None:
            problems.append(f"{where}: missing percentile")
            return
        if av > bv + 1e-9:
            problems.append(
                f"{where}: non-monotone {an}={av} > {bn}={bv}")


def validate(doc, max_path_hops=None):
    problems = []
    for key in ("flows", "path_latency"):
        if key not in doc:
            problems.append(f"top level: missing {key!r}")
    for i, f in enumerate(doc.get("flows", [])):
        where = f"flow[{i}]"
        for key in ("src_ip", "dst_ip", "src_port", "dst_port",
                    "proto", "tx_bytes", "tx_packets", "rx_bytes",
                    "rx_packets", "retransmits", "first_tick",
                    "last_tick", "rtt", "latency"):
            if key not in f:
                problems.append(f"{where}: missing {key!r}")
                break
        else:
            where = flow_name(f)
            if f["first_tick"] > f["last_tick"]:
                problems.append(
                    f"{where}: first_tick {f['first_tick']} > "
                    f"last_tick {f['last_tick']}")
            rtt = f["rtt"]
            if (rtt.get("samples", 0) > 0
                    and rtt["min_ticks"] > rtt["max_ticks"]):
                problems.append(f"{where}: rtt min > max")
            if f["latency"].get("count", 0) > 0:
                check_latency(where, f["latency"], problems)
    for h in doc.get("path_latency", []):
        if "hop" not in h or "latency" not in h:
            problems.append("path_latency entry missing hop/latency")
            continue
        if h["latency"].get("count", 0) > 0:
            check_latency(f"hop {h['hop']}", h["latency"], problems)
    for e in doc.get("path_hops", []):
        if "hops" not in e or "packets" not in e:
            problems.append("path_hops entry missing hops/packets")
            continue
        if e["packets"] < 0 or e["hops"] < 0:
            problems.append(
                f"path_hops[{e['hops']}]: negative field")
        if (max_path_hops is not None and e["packets"] > 0
                and e["hops"] > max_path_hops):
            problems.append(
                f"path_hops: {e['packets']} packet(s) carried "
                f"{e['hops']} path stamps, over the topology "
                f"diameter {max_path_hops} -- forwarding loop?")
    return problems


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument("flow_json",
                    help="mcnsim-flow-stats artifact (or a schema-v3 "
                         "--stats-json document)")
    ap.add_argument("--stats-json",
                    help="stats JSON for the hottest-queue table")
    ap.add_argument("--top", type=int, default=10,
                    help="rows per table (default 10)")
    ap.add_argument("--validate", action="store_true",
                    help="check schema + percentile monotonicity "
                         "instead of rendering")
    ap.add_argument("--max-path-hops", type=int, metavar="N",
                    help="with --validate: fail if any delivered "
                         "packet carried more than N path stamps "
                         "(loop detection against the topology "
                         "diameter)")
    args = ap.parse_args()

    doc = load(args.flow_json)
    if args.validate:
        problems = validate(doc, args.max_path_hops)
        for p in problems:
            print(f"flow_report: {p}", file=sys.stderr)
        n_flows = len(doc.get("flows", []))
        n_hops = len(doc.get("path_latency", []))
        print(f"flow_report: {args.flow_json}: {n_flows} flows, "
              f"{n_hops} hops, {len(problems)} problem"
              f"{'' if len(problems) == 1 else 's'}")
        return 1 if problems else 0

    stats_doc = load(args.stats_json) if args.stats_json else None
    render(doc, stats_doc, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
