#!/usr/bin/env bash
# Regenerate and validate the machine-readable bench artifacts.
#
# Runs every bench binary with --json, writing BENCH_<name>.json
# into --out-dir (default: repo root), then validates that each
# artifact parses and carries the required schema keys. Exits
# nonzero if any bench fails or any artifact is invalid.
#
# After regeneration the perf gate (tools/check_perf.py) compares
# the artifacts against tools/perf_baseline.json and fails on
# regressions. --skip-perf disables the gate; --update-baseline
# rewrites the baseline from the fresh artifacts instead.
#
# Usage: tools/run_benches.sh [--quick|--full]
#                             [--build-dir DIR] [--out-dir DIR]
#                             [--only NAME]
#                             [--skip-perf] [--update-baseline]
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE=--quick
BUILD_DIR="$REPO_ROOT/build"
OUT_DIR="$REPO_ROOT"
ONLY=""
SKIP_PERF=0
UPDATE_BASELINE=0

while [ $# -gt 0 ]; do
    case "$1" in
        --quick|--full) MODE="$1" ;;
        --build-dir) BUILD_DIR="$2"; shift ;;
        --out-dir) OUT_DIR="$2"; shift ;;
        --only) ONLY="$2"; shift ;;
        --skip-perf) SKIP_PERF=1 ;;
        --update-baseline) UPDATE_BASELINE=1 ;;
        -h|--help)
            sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
            exit 0 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

BENCHES="fig8a_iperf fig8bc_ping table3_breakdown fig9_bandwidth \
fig10_energy fig11_npb ablation chaos micro"

validate() {
    python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
except Exception as e:
    sys.exit(f"{path}: does not parse: {e}")
required = ["bench", "schema_version", "mode", "config",
            "metrics", "paper_targets", "wall_seconds"]
missing = [k for k in required if k not in doc]
if missing:
    sys.exit(f"{path}: missing required keys: {missing}")
if doc["schema_version"] != 1:
    sys.exit(f"{path}: unexpected schema_version "
             f"{doc['schema_version']}")
if not doc["metrics"]:
    sys.exit(f"{path}: metrics object is empty")
EOF
}

failures=0
ran=0
ran_names=""
for b in $BENCHES; do
    if [ -n "$ONLY" ] && [ "$b" != "$ONLY" ]; then
        continue
    fi
    bin="$BUILD_DIR/bench/bench_$b"
    out="$OUT_DIR/BENCH_$b.json"
    if [ ! -x "$bin" ]; then
        echo "FAIL $b: $bin not built (cmake --build $BUILD_DIR)" >&2
        failures=$((failures + 1))
        continue
    fi
    echo "== bench_$b $MODE =="
    if ! "$bin" "$MODE" --json "$out"; then
        echo "FAIL $b: bench exited nonzero" >&2
        failures=$((failures + 1))
        continue
    fi
    if [ ! -f "$out" ]; then
        echo "FAIL $b: $out was not written" >&2
        failures=$((failures + 1))
        continue
    fi
    if ! validate "$out"; then
        failures=$((failures + 1))
        continue
    fi
    ran=$((ran + 1))
    ran_names="$ran_names $b"
done

echo
if [ "$failures" -ne 0 ]; then
    echo "$failures bench(es) failed; $ran ok" >&2
    exit 1
fi
echo "all $ran benches ok; artifacts in $OUT_DIR/BENCH_*.json"

if [ "$UPDATE_BASELINE" -eq 1 ]; then
    # shellcheck disable=SC2086
    python3 "$REPO_ROOT/tools/check_perf.py" \
        --artifacts-dir "$OUT_DIR" --update $ran_names
    exit $?
fi
if [ "$SKIP_PERF" -eq 1 ]; then
    echo "perf gate: skipped (--skip-perf)"
    exit 0
fi
echo
echo "== perf gate =="
# shellcheck disable=SC2086
python3 "$REPO_ROOT/tools/check_perf.py" \
    --artifacts-dir "$OUT_DIR" $ran_names
