/**
 * @file
 * ClockDomain implementation.
 */

#include "sim/clock_domain.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mcnsim::sim {

ClockDomain::ClockDomain(std::string name, double freq_hz)
    : name_(std::move(name)), freqHz_(freq_hz)
{
    if (freq_hz <= 0.0)
        fatal("clock domain '", name_, "': frequency must be > 0");
    double period_ps = 1e12 / freq_hz;
    period_ = static_cast<Tick>(std::llround(period_ps));
    if (period_ == 0)
        period_ = 1;
}

} // namespace mcnsim::sim
