#include "sim/shard.hh"

#include <algorithm>
#include <iterator>

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/timeline.hh"

namespace mcnsim::sim {

ShardSet::~ShardSet()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ShardSet::addQueue(EventQueue *q)
{
    MCNSIM_ASSERT(!running_, "addQueue during run");
    q->setShardIndex(queues_.size());
    queues_.push_back(q);
    const std::size_t n = queues_.size();
    inbox_.resize(n);
    for (auto &row : inbox_)
        row.resize(n);
    scratch_.resize(n);
}

void
ShardSet::addEdge(std::size_t a, std::size_t b, Tick latency)
{
    MCNSIM_ASSERT(a < queues_.size() && b < queues_.size(),
                  "addEdge shard index out of range");
    // A zero-latency edge would leave no room for any window to
    // make progress; clamp to one tick (the finest wire we model
    // is still orders of magnitude above a tick).
    if (latency < 1)
        latency = 1;
    lookahead_ = std::min(lookahead_, latency);
}

void
ShardSet::post(std::size_t src, std::size_t dst, Tick when,
               EventPriority prio, const char *name,
               std::function<void()> fn)
{
    MCNSIM_ASSERT(src < queues_.size() && dst < queues_.size(),
                  "post shard index out of range");
    if (!running_) {
        // Single-threaded setup path (system wiring, between
        // run-slices): a plain schedule is already deterministic.
        queues_[dst]->schedule(std::move(fn), when, name, prio);
        return;
    }
    // The lookahead contract is load-bearing in every build: the
    // destination shard may already be executing past `when` on
    // another thread, so a below-horizon post cannot be honored.
    if (when < windowEnd_) {
        panic("cross-shard post below the lookahead horizon: event '",
              name, "' from shard ", src, " to shard ", dst,
              " lands at tick ", when, " but the current window ends "
              "at tick ", windowEnd_, " (lookahead ", lookahead_,
              "); cross-shard events must travel over a registered "
              "edge whose latency >= the lookahead (see DESIGN.md "
              "§9)");
    }
    auto &mb = inbox_[dst][src];
    mb.msgs.push_back(Msg{when, prio, static_cast<std::uint32_t>(src),
                          mb.nextSeq++, name, std::move(fn)});
}

void
ShardSet::startThreads(unsigned workers)
{
    barrier_ = std::make_unique<SpinBarrier>(workers);
    startedWorkers_ = workers;
    threads_.reserve(workers - 1);
    for (unsigned i = 1; i < workers; ++i)
        threads_.emplace_back([this, i] { workerMain(i); });
}

void
ShardSet::workerMain(unsigned idx)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] { return shutdown_ || runGen_ != seen; });
            if (shutdown_)
                return;
            seen = runGen_;
        }
        windowLoop(idx);
    }
}

void
ShardSet::recordError()
{
    std::lock_guard<std::mutex> lk(errorMutex_);
    if (!error_)
        error_ = std::current_exception();
    errored_.store(true, std::memory_order_release);
}

void
ShardSet::atomicMinTick(std::atomic<Tick> &a, Tick v)
{
    Tick cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v,
                                    std::memory_order_relaxed))
        ;
}

Tick
ShardSet::windowEndFor(Tick h) const
{
    // Exclusive end: min(h + lookahead, until + 1), saturating.
    Tick end;
    if (lookahead_ == maxTick || h > maxTick - lookahead_)
        end = maxTick;
    else
        end = h + lookahead_;
    if (until_ != maxTick && end > until_)
        end = until_ + 1;
    return end;
}

void
ShardSet::drainInbox(std::size_t dst)
{
    auto &sc = scratch_[dst];
    sc.clear();
    for (auto &mb : inbox_[dst]) {
        if (mb.msgs.empty())
            continue;
        sc.insert(sc.end(),
                  std::make_move_iterator(mb.msgs.begin()),
                  std::make_move_iterator(mb.msgs.end()));
        mb.msgs.clear();
    }
    if (sc.empty())
        return;
    // The merge key. Everything in it is simulation state -- tick,
    // priority, topology index, per-mailbox message count -- so the
    // resulting schedule() order (and hence the destination queue's
    // sequence numbers) is identical for every thread count.
    std::sort(sc.begin(), sc.end(), [](const Msg &a, const Msg &b) {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return static_cast<int>(a.prio) < static_cast<int>(b.prio);
        if (a.srcShard != b.srcShard)
            return a.srcShard < b.srcShard;
        return a.seq < b.seq;
    });
    EventQueue &q = *queues_[dst];
    for (auto &m : sc)
        q.schedule(std::move(m.fn), m.when, m.name, m.prio);
    sc.clear();
}

void
ShardSet::windowLoop(unsigned w)
{
    SpinBarrier &bar = *barrier_;
    for (;;) {
        // Barrier A: last window's mailbox appends are visible.
        bar.arriveAndWait();

        // Phase 1 (parallel): merge inboxes, contribute to the
        // global horizon. Shards are strided across the workers
        // that own shards this run; extra pool threads idle
        // through the barriers.
        try {
            if (w < assignWorkers_) {
                for (std::size_t s = w; s < queues_.size();
                     s += assignWorkers_) {
                    drainInbox(s);
                    atomicMinTick(horizon_,
                                  queues_[s]->nextEventTick());
                }
            }
        } catch (...) {
            recordError();
        }

        // Barrier B: horizon complete.
        bar.arriveAndWait();

        // Phase 2 (worker 0 only): pick the window or finish.
        if (w == 0) {
            const Tick h = horizon_.load(std::memory_order_relaxed);
            if (errored_.load(std::memory_order_acquire) ||
                h == maxTick || h > until_) {
                done_ = true;
            } else {
                done_ = false;
                windowEnd_ = windowEndFor(h);
                horizon_.store(maxTick, std::memory_order_relaxed);
                ++windows_;
            }
        }

        // Barrier C: window end (or done flag) published.
        bar.arriveAndWait();
        if (done_) {
            // Barrier D: nobody leaves until every participant has
            // read done_. The coordinator resets it for the next
            // run() the moment it returns; a late reader would see
            // false, loop back to barrier A with no run active, and
            // strand itself (deadlocking the eventual join).
            bar.arriveAndWait();
            return;
        }

        // Phase 3 (parallel): execute the window on owned shards.
        try {
            if (w < assignWorkers_) {
                for (std::size_t s = w; s < queues_.size();
                     s += assignWorkers_)
                    queues_[s]->runWindow(windowEnd_);
            }
        } catch (...) {
            recordError();
        }
    }
}

Tick
ShardSet::run(Tick until, unsigned workers)
{
    MCNSIM_ASSERT(!queues_.empty(), "run on an empty ShardSet");
    if (queues_.size() == 1)
        return queues_[0]->run(until);

    if (workers == 0)
        workers = 1;
    workers = std::min<unsigned>(
        workers, static_cast<unsigned>(queues_.size()));
    // Single-threaded machinery clamps execution to one worker: the
    // trace ring and timeline record global order, and an armed
    // fault plan draws from shared per-site RNG streams whose draw
    // order must not depend on thread scheduling. The logical
    // schedule is worker-count-invariant, so results do not change.
    if (Trace::anyActive() || Timeline::active() ||
        FaultPlan::active())
        workers = 1;

    if (workers > 1 && startedWorkers_ == 0)
        startThreads(workers);
    if (!barrier_)
        barrier_ = std::make_unique<SpinBarrier>(1);
    assignWorkers_ =
        startedWorkers_ ? std::min(workers, startedWorkers_) : 1;

    until_ = until;
    done_ = false;
    horizon_.store(maxTick, std::memory_order_relaxed);
    errored_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    running_ = true;

    if (startedWorkers_ > 1) {
        {
            std::lock_guard<std::mutex> lk(m_);
            ++runGen_;
        }
        cv_.notify_all();
    }
    windowLoop(0); // the caller is worker 0
    running_ = false;

    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
    }

    // Mirror EventQueue::run: fast-forward every shard's clock to
    // the requested bound so curTick() agrees across shards between
    // run slices.
    if (until != maxTick) {
        for (auto *q : queues_) {
            if (q->curTick() < until)
                q->setCurTick(until);
        }
    }
    return queues_[0]->curTick();
}

} // namespace mcnsim::sim
