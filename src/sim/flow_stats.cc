/**
 * @file
 * FlowTelemetry implementation.
 */

#include "sim/annotate.hh"
#include "sim/flow_stats.hh"

#include <algorithm>
#include <string_view>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace mcnsim::sim {

FlowTelemetry &
FlowTelemetry::instance()
{
    MCNSIM_SHARD_SAFE("per-shard single-writer tables inside; the "
                      "enable gate flips only outside run windows");
    static FlowTelemetry t;
    return t;
}

void
FlowTelemetry::enable()
{
    for (auto &sh : shards_) {
        sh.flows.clear();
        sh.hops.clear();
        sh.pathLen.fill(0);
    }
    detail::flowTelemetryActive = true;
}

void
FlowTelemetry::disable()
{
    detail::flowTelemetryActive = false;
}

FlowTelemetry::Shard &
FlowTelemetry::shard(std::size_t idx)
{
    MCNSIM_ASSERT(idx < kMaxShards, "shard id out of range");
    return shards_[idx];
}

void
FlowTelemetry::FlowRecord::merge(const FlowRecord &o)
{
    txBytes += o.txBytes;
    txPackets += o.txPackets;
    rxBytes += o.rxBytes;
    rxPackets += o.rxPackets;
    retransmits += o.retransmits;
    rttSamples += o.rttSamples;
    rttSumTicks += o.rttSumTicks;
    rttMinTicks = std::min(rttMinTicks, o.rttMinTicks);
    rttMaxTicks = std::max(rttMaxTicks, o.rttMaxTicks);
    firstTick = std::min(firstTick, o.firstTick);
    lastTick = std::max(lastTick, o.lastTick);
    latency.merge(o.latency);
}

void
FlowTelemetry::recordTx(std::size_t shard_id, const FlowKey &key,
                        std::uint64_t bytes, Tick now)
{
    FlowRecord &r = shard(shard_id).flows[key];
    r.txBytes += bytes;
    r.txPackets += 1;
    r.firstTick = std::min(r.firstTick, now);
    r.lastTick = std::max(r.lastTick, now);
}

void
FlowTelemetry::recordRx(std::size_t shard_id, const FlowKey &key,
                        std::uint64_t bytes, Tick now, Tick latency)
{
    FlowRecord &r = shard(shard_id).flows[key];
    r.rxBytes += bytes;
    r.rxPackets += 1;
    r.firstTick = std::min(r.firstTick, now);
    r.lastTick = std::max(r.lastTick, now);
    if (latency != maxTick)
        r.latency.sample(latency);
}

void
FlowTelemetry::recordRetransmit(std::size_t shard_id,
                                const FlowKey &key)
{
    shard(shard_id).flows[key].retransmits += 1;
}

void
FlowTelemetry::recordRtt(std::size_t shard_id, const FlowKey &key,
                         Tick rtt)
{
    FlowRecord &r = shard(shard_id).flows[key];
    r.rttSamples += 1;
    r.rttSumTicks += rtt;
    r.rttMinTicks = std::min(r.rttMinTicks, rtt);
    r.rttMaxTicks = std::max(r.rttMaxTicks, rtt);
}

void
FlowTelemetry::recordHop(std::size_t shard_id, const char *hop,
                         Tick delta)
{
    auto &hops = shard(shard_id).hops;
    auto it = hops.find(std::string_view{hop});
    if (it == hops.end()) [[unlikely]]
        it = hops.emplace(hop, HopRecord{}).first;
    it->second.latency.sample(delta);
}

void
FlowTelemetry::recordPathLen(std::size_t shard_id,
                             std::size_t hops)
{
    shard(shard_id)
        .pathLen[std::min(hops, kMaxPathLen - 1)] += 1;
}

std::map<FlowTelemetry::FlowKey, FlowTelemetry::FlowRecord>
FlowTelemetry::foldFlows() const
{
    std::map<FlowKey, FlowRecord> out;
    for (const auto &sh : shards_)
        for (const auto &[key, rec] : sh.flows)
            out[key].merge(rec);
    return out;
}

std::map<std::string, FlowTelemetry::HopRecord>
FlowTelemetry::foldHops() const
{
    std::map<std::string, HopRecord> out;
    for (const auto &sh : shards_)
        for (const auto &[name, rec] : sh.hops)
            out[name].merge(rec);
    return out;
}

std::array<std::uint64_t, FlowTelemetry::kMaxPathLen>
FlowTelemetry::foldPathLens() const
{
    std::array<std::uint64_t, kMaxPathLen> out{};
    for (const auto &sh : shards_)
        for (std::size_t i = 0; i < kMaxPathLen; ++i)
            out[i] += sh.pathLen[i];
    return out;
}

bool
FlowTelemetry::hasData() const
{
    for (const auto &sh : shards_)
        if (!sh.flows.empty() || !sh.hops.empty())
            return true;
    return false;
}

std::string
FlowTelemetry::ipToString(std::uint32_t ip)
{
    return std::to_string((ip >> 24) & 0xff) + "." +
           std::to_string((ip >> 16) & 0xff) + "." +
           std::to_string((ip >> 8) & 0xff) + "." +
           std::to_string(ip & 0xff);
}

std::string
FlowTelemetry::protoName(std::uint8_t proto)
{
    switch (proto) {
      case 1: return "icmp";
      case 6: return "tcp";
      case 17: return "udp";
      default: return std::to_string(proto);
    }
}

void
FlowTelemetry::writeJsonBlocks(json::Writer &w) const
{
    w.key("flows");
    w.beginArray();
    for (const auto &[key, r] : foldFlows()) {
        w.beginObject();
        w.kv("src_ip", ipToString(key.srcIp));
        w.kv("dst_ip", ipToString(key.dstIp));
        w.kv("src_port", std::uint64_t{key.srcPort});
        w.kv("dst_port", std::uint64_t{key.dstPort});
        w.kv("proto", protoName(key.proto));
        w.kv("tx_bytes", r.txBytes);
        w.kv("tx_packets", r.txPackets);
        w.kv("rx_bytes", r.rxBytes);
        w.kv("rx_packets", r.rxPackets);
        w.kv("retransmits", r.retransmits);
        w.kv("first_tick", r.firstTick == maxTick ? 0 : r.firstTick);
        w.kv("last_tick", r.lastTick);
        w.key("rtt");
        w.beginObject();
        w.kv("samples", r.rttSamples);
        w.kv("sum_ticks", r.rttSumTicks);
        w.kv("min_ticks",
             r.rttSamples ? r.rttMinTicks : std::uint64_t{0});
        w.kv("max_ticks", r.rttMaxTicks);
        w.endObject();
        w.key("latency");
        w.beginObject();
        r.latency.writeJsonBody(w);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("path_latency");
    w.beginArray();
    for (const auto &[name, r] : foldHops()) {
        w.beginObject();
        w.kv("hop", name);
        w.key("latency");
        w.beginObject();
        r.latency.writeJsonBody(w);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("path_hops");
    w.beginArray();
    const auto lens = foldPathLens();
    for (std::size_t n = 0; n < kMaxPathLen; ++n) {
        if (!lens[n])
            continue;
        w.beginObject();
        w.kv("hops", std::uint64_t{n});
        w.kv("packets", lens[n]);
        w.endObject();
    }
    w.endArray();
}

void
FlowTelemetry::exportJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta)
    const
{
    json::Writer w(os);
    w.beginObject();
    w.kv("schema_version", std::uint64_t{1});
    w.kv("kind", "mcnsim-flow-stats");
    w.key("meta");
    w.beginObject();
    for (const auto &[k, v] : meta)
        w.kv(k, v);
    w.endObject();
    w.kv("ticks_per_us", oneUs);
    writeJsonBlocks(w);
    w.endObject();
    os << "\n";
}

} // namespace mcnsim::sim
