/**
 * @file
 * The discrete-event engine at the heart of mcnsim.
 *
 * Modeled loosely on gem5's event queue: events are scheduled at an
 * absolute tick, the queue pops them in (tick, priority, sequence)
 * order, and simulated objects advance time only by scheduling more
 * events. A single EventQueue drives one simulation instance; there
 * is deliberately no global queue so tests can run many independent
 * simulations in one process.
 *
 * Usage:
 *
 *   EventQueue q;
 *   q.schedule([&] { fire(); }, q.curTick() + 100, "my-event");
 *   q.run();                      // drain everything
 *   q.run(10 * oneUs);            // or: advance to a time limit
 *
 * Enable the "Event" debug flag (MCNSIM_DEBUG=Event) to trace every
 * dispatch with its name and priority.
 */

#ifndef MCNSIM_SIM_EVENT_QUEUE_HH
#define MCNSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mcnsim::sim {

class EventQueue;

/**
 * Priority of an event relative to other events scheduled at the same
 * tick. Lower values run first, matching gem5 conventions.
 */
enum class EventPriority : int {
    ClockTick = -10,     ///< clock/bandwidth slot bookkeeping
    HardwareIrq = -5,    ///< device interrupt delivery
    Default = 0,
    Softirq = 5,         ///< deferred kernel work
    Process = 10,        ///< user task wakeups
    StatsDump = 100,
};

/**
 * A schedulable unit of work. Events are one-shot: after process()
 * runs they may be re-scheduled by their owner. The queue never owns
 * the event memory; most users should prefer MemberEvent or
 * EventQueue::schedule(callback) which manage lifetime for them.
 */
class Event
{
  public:
    explicit Event(std::string name,
                   EventPriority prio = EventPriority::Default)
        : name_(std::move(name)), priority_(prio)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event's tick is reached. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is (or was last) scheduled for. */
    Tick when() const { return when_; }

    const std::string &name() const { return name_; }
    EventPriority priority() const { return priority_; }

  private:
    friend class EventQueue;

    std::string name_;
    EventPriority priority_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    bool scheduled_ = false;
    bool managed_ = false; ///< queue deletes after process()
};

/** An event wrapping an arbitrary callback. */
class CallbackEvent : public Event
{
  public:
    CallbackEvent(std::string name, std::function<void()> fn,
                  EventPriority prio = EventPriority::Default)
        : Event(std::move(name), prio), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * An event calling a member function on an owner object. The owner
 * embeds the event by value, so lifetime is tied to the owner --
 * the usual pattern for periodic device events.
 */
template <typename T>
class MemberEvent : public Event
{
  public:
    MemberEvent(std::string name, T *obj, void (T::*fn)(),
                EventPriority prio = EventPriority::Default)
        : Event(std::move(name), prio), obj_(obj), fn_(fn)
    {}

    void process() override { (obj_->*fn_)(); }

  private:
    T *obj_;
    void (T::*fn_)();
};

/**
 * The event queue and simulated clock. run() executes events in
 * order until the queue drains or a limit is hit.
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "main");
    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Remove and re-insert at a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Convenience: schedule a heap-allocated callback event that the
     * queue deletes after it fires. Returns the event so callers can
     * deschedule it (the queue then frees it immediately).
     */
    Event *schedule(std::function<void()> fn, Tick when,
                    std::string name = "lambda",
                    EventPriority prio = EventPriority::Default);

    /** Schedule a managed callback @p delta ticks from now. */
    Event *
    scheduleIn(std::function<void()> fn, Tick delta,
               std::string name = "lambda",
               EventPriority prio = EventPriority::Default)
    {
        return schedule(std::move(fn), curTick_ + delta,
                        std::move(name), prio);
    }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pendingEvents() const { return heap_.size(); }

    /**
     * Run until the queue is empty or curTick would exceed
     * @p until. Returns the tick at which execution stopped.
     */
    Tick run(Tick until = maxTick);

    /** Run at most @p n events. Returns events actually executed. */
    std::uint64_t runEvents(std::uint64_t n);

    /** Total events processed since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    void popAndRun();

    std::string name_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_EVENT_QUEUE_HH
