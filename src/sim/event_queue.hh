/**
 * @file
 * The discrete-event engine at the heart of mcnsim.
 *
 * Modeled loosely on gem5's event queue: events are scheduled at an
 * absolute tick, the queue pops them in (tick, priority, sequence)
 * order, and simulated objects advance time only by scheduling more
 * events. A single EventQueue drives one simulation instance; there
 * is deliberately no global queue so tests can run many independent
 * simulations in one process.
 *
 * Usage:
 *
 *   EventQueue q;
 *   q.schedule([&] { fire(); }, q.curTick() + 100, "my-event");
 *   q.run();                      // drain everything
 *   q.run(10 * oneUs);            // or: advance to a time limit
 *
 * Hot-path design notes (see DESIGN.md "Hot paths & buffer
 * ownership"):
 *
 *  - Managed callback events come from a slab-allocated free list
 *    owned by the queue; schedule(fn, ...) performs no heap
 *    allocation once the pool is warm (std::function small-buffer
 *    captures permitting).
 *  - Event names are non-owning `const char *`s. Pass a string
 *    literal on the fast path; a std::string name is interned once
 *    into a process-lifetime pool, so Event never owns (or copies)
 *    name storage.
 *  - deschedule() is lazy: the heap entry is left behind and skipped
 *    (by sequence-number mismatch or a cleared scheduled flag) when
 *    popped. The queue counts stale entries and compacts the heap
 *    when they outnumber live ones, so a frequently rescheduled
 *    periodic timer cannot bloat the heap.
 *
 * Lifetime rules for managed (pooled) events: the Event* returned by
 * schedule(fn, ...) is valid only while the event is scheduled. After
 * it fires, or after you deschedule() it, the pointer is dead -- the
 * pool may recycle the object for an unrelated schedule. Callers that
 * keep the pointer must null it in the callback (see
 * MemController::runScheduler for the canonical pattern). The checked
 * build (-DMCNSIM_CHECKED=ON) enforces this rule: recycled slots are
 * poisoned and generation-counted, and any schedule()/deschedule()/
 * dispatch of a dead managed Event* panics with the event's last
 * live name plus the flight-recorder ring.
 *
 * Lifetime rules for caller-owned events (CallbackEvent/MemberEvent
 * by value): destroying one while it still has entries in a queue --
 * scheduled, or descheduled but not yet compacted away -- implicitly
 * detaches it (~Event scrubs the queue), so tearing down a component
 * before its Simulation is safe. The queue itself must simply
 * outlive the simulation's components, which Simulation guarantees.
 *
 * Enable the "Event" debug flag (MCNSIM_DEBUG=Event) to trace every
 * dispatch with its name and priority.
 */

#ifndef MCNSIM_SIM_EVENT_QUEUE_HH
#define MCNSIM_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/annotate.hh"
#include "sim/checked.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

class EventQueue;

/**
 * Intern @p name into a process-lifetime string pool, returning a
 * stable pointer. Used by the Event constructors that accept
 * std::string so event objects never own name storage.
 */
const char *internEventName(const std::string &name);

/**
 * Priority of an event relative to other events scheduled at the same
 * tick. Lower values run first, matching gem5 conventions.
 */
enum class EventPriority : int {
    ClockTick = -10,     ///< clock/bandwidth slot bookkeeping
    HardwareIrq = -5,    ///< device interrupt delivery
    Default = 0,
    Softirq = 5,         ///< deferred kernel work
    Process = 10,        ///< user task wakeups
    StatsDump = 100,
};

/**
 * A schedulable unit of work. Events are one-shot: after process()
 * runs they may be re-scheduled by their owner. The queue never owns
 * the event memory; most users should prefer MemberEvent or
 * EventQueue::schedule(callback) which manage lifetime for them.
 *
 * The name is a non-owning pointer: pass a string literal (free), or
 * a std::string (interned once into a process-lifetime pool).
 */
class Event
{
  public:
    explicit Event(const char *name,
                   EventPriority prio = EventPriority::Default)
        : name_(name), priority_(prio)
    {}

    explicit Event(const std::string &name,
                   EventPriority prio = EventPriority::Default)
        : Event(internEventName(name), prio)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event's tick is reached. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is (or was last) scheduled for. */
    Tick when() const { return when_; }

    const char *name() const { return name_; }
    EventPriority priority() const { return priority_; }

#ifdef MCNSIM_CHECKED
    /** Checked build only: recycle count of this pool slot. */
    std::uint32_t generation() const { return gen_; }

    /** Checked build only: name the slot carried while last live. */
    const char *lastLiveName() const { return lastName_; }

    /** Checked build only: true while a managed slot sits on the
     *  free list (using the pointer now is a lifetime bug). */
    bool poisoned() const { return poisoned_; }
#endif

  protected:
    const char *name_;
    EventPriority priority_;

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    /** Queue this event last scheduled on; lets ~Event scrub any
     *  entries still referencing it (see the lifetime rules in the
     *  file comment). */
    EventQueue *queue_ = nullptr;
    /** Heap entries referencing this event that are stale (lazily
     *  descheduled or superseded by reschedule). Non-zero means the
     *  queue still holds pointers to us. */
    std::uint32_t staleRefs_ = 0;
    bool scheduled_ = false;
    bool managed_ = false; ///< queue-owned; recycled after process()
#ifdef MCNSIM_CHECKED
    std::uint32_t gen_ = 0;      ///< bumped on every pool recycle
    bool poisoned_ = false;      ///< free-listed managed slot
    const char *lastName_ = "never-armed";
#endif
};

/** An event wrapping an arbitrary callback. */
class CallbackEvent : public Event
{
  public:
    CallbackEvent(const char *name, std::function<void()> fn,
                  EventPriority prio = EventPriority::Default)
        : Event(name, prio), fn_(std::move(fn))
    {}

    CallbackEvent(const std::string &name, std::function<void()> fn,
                  EventPriority prio = EventPriority::Default)
        : Event(name, prio), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    friend class EventQueue;

    /** Pool slot constructor; armed by EventQueue::schedule(). */
    CallbackEvent() : Event("pool-free") {}

    std::function<void()> fn_;
};

/**
 * An event calling a member function on an owner object. The owner
 * embeds the event by value, so lifetime is tied to the owner --
 * the usual pattern for periodic device events.
 */
template <typename T>
class MemberEvent : public Event
{
  public:
    MemberEvent(const char *name, T *obj, void (T::*fn)(),
                EventPriority prio = EventPriority::Default)
        : Event(name, prio), obj_(obj), fn_(fn)
    {}

    MemberEvent(const std::string &name, T *obj, void (T::*fn)(),
                EventPriority prio = EventPriority::Default)
        : Event(name, prio), obj_(obj), fn_(fn)
    {}

    void process() override { (obj_->*fn_)(); }

  private:
    T *obj_;
    void (T::*fn_)();
};

/**
 * The event queue and simulated clock. run() executes events in
 * order until the queue drains or a limit is hit.
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "main");
    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /**
     * Reserve a same-tick ordering slot *now* for an event scheduled
     * *later* via the ordered overloads. Within a tick (and
     * priority) events run in the order their sequence numbers were
     * drawn, so a coalescing component (the link burst pump, the TCP
     * timer wheel) that holds work aside and schedules its dispatch
     * event lazily can still occupy exactly the within-tick position
     * a schedule-at-submit-time design would have: reserve at submit
     * time, schedule with the reserved order at dispatch time. Each
     * reserved order must be used at most once (uniqueness is what
     * the lazy-deletion staleness checks rest on).
     */
    std::uint64_t
    reserveOrder()
    {
        assert(nextSeq_ < seqMask && "sequence numbers exhausted");
        return nextSeq_++;
    }

    /** Schedule @p ev at @p when occupying the previously reserved
     *  within-tick position @p order. */
    void schedule(Event *ev, Tick when, std::uint64_t order);

    /**
     * Remove a pending event; no-op if not scheduled. Lazy: the heap
     * entry is left behind and skipped when popped (or reclaimed by
     * compaction). For a managed event the pointer is dead after
     * this call.
     */
    void deschedule(Event *ev);

    /** Remove and re-insert at a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Convenience: schedule a pooled callback event that the queue
     * recycles after it fires. Returns the event so callers can
     * deschedule it; see the lifetime rules in the file comment.
     * @p name must be a string literal (or otherwise outlive the
     * event); use the std::string overload for dynamic names.
     *
     * Templated so the callback is constructed straight into the
     * pooled slot's std::function, with no intermediate type-erased
     * moves on the hot path.
     */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    Event *
    schedule(F &&fn, Tick when, const char *name = "lambda",
             EventPriority prio = EventPriority::Default)
    {
        CallbackEvent *ev = acquireSlot();
        ev->name_ = name;
        ev->priority_ = prio;
        ev->fn_ = std::forward<F>(fn);
        ev->managed_ = true;
        schedule(ev, when);
        return ev;
    }

    /** As above with a dynamic name (interned, slower). */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    Event *
    schedule(F &&fn, Tick when, const std::string &name,
             EventPriority prio = EventPriority::Default)
    {
        return schedule(std::forward<F>(fn), when,
                        internEventName(name), prio);
    }

    /** Managed callback at a reserved within-tick position (see
     *  reserveOrder()). */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    Event *
    scheduleOrdered(F &&fn, Tick when, std::uint64_t order,
                    const char *name = "lambda",
                    EventPriority prio = EventPriority::Default)
    {
        CallbackEvent *ev = acquireSlot();
        ev->name_ = name;
        ev->priority_ = prio;
        ev->fn_ = std::forward<F>(fn);
        ev->managed_ = true;
        schedule(ev, when, order);
        return ev;
    }

    /** Schedule a managed callback @p delta ticks from now. */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    Event *
    scheduleIn(F &&fn, Tick delta, const char *name = "lambda",
               EventPriority prio = EventPriority::Default)
    {
        return schedule(std::forward<F>(fn), curTick_ + delta, name,
                        prio);
    }

    /** As above with a dynamic name (interned, slower). */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    Event *
    scheduleIn(F &&fn, Tick delta, const std::string &name,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(std::forward<F>(fn), curTick_ + delta,
                        internEventName(name), prio);
    }

    /** True when no live events are pending. */
    bool empty() const { return heap_.size() == staleEntries_; }

    /** Number of live (not lazily-descheduled) pending events. */
    std::size_t
    pendingEvents() const
    {
        return heap_.size() - staleEntries_;
    }

    /**
     * Run until the queue is empty or curTick would exceed
     * @p until. Returns the tick at which execution stopped.
     */
    Tick run(Tick until = maxTick);

    /** Run at most @p n events. Returns events actually executed. */
    std::uint64_t runEvents(std::uint64_t n);

    // Parallel-simulation hooks (see sim/shard.hh, DESIGN.md §9) ----

    /**
     * Tick of the earliest live pending event, maxTick when none.
     * Prunes stale (lazily-descheduled) heap heads on the way --
     * exactly the entries run() would skip, so the pruning is
     * deterministic.
     */
    Tick nextEventTick();

    /**
     * Execute every event with tick < @p endExclusive -- one
     * conservative-lookahead window. Unlike run() this never
     * fast-forwards curTick past the last executed event; the
     * ShardSet advances clocks once the whole run completes.
     */
    void runWindow(Tick endExclusive);

    /** Fast-forward the clock. ShardSet-only: @p t must not move
     *  time backwards or jump over a pending event. */
    void setCurTick(Tick t);

    /** Index of this queue's shard within its ShardSet; 0 when the
     *  simulation is unsharded. */
    std::size_t shardIndex() const { return shardIndex_; }
    void setShardIndex(std::size_t i) { shardIndex_ = i; }

    /**
     * The queue dispatching an event on the *current thread*, or
     * nullptr outside dispatch. The checked build uses this to
     * enforce the cross-shard lifetime rule: while a queue is
     * executing, scheduling onto a *different* queue is racy (the
     * other shard may be running concurrently) and must go through
     * the Simulation::postCrossShard mailbox instead.
     */
    static EventQueue *current() { return currentQueue_; }

    /** Total events processed since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

    const std::string &name() const { return name_; }

    // Detached coroutine frames ---------------------------------------
    //
    // spawnDetached() hands ownership of a top-level coroutine frame
    // to "nobody": the frame frees itself on completion. A frame
    // still suspended when the simulation ends (an iperf client
    // blocked on a socket, an MPI rank waiting on a mailbox) would
    // leak -- LeakSanitizer flags every such run. The queue therefore
    // keeps a registry of live detached frames; completion removes
    // the entry, and ~EventQueue destroys whatever is left, which
    // transitively destroys awaited child frames (owned by parent
    // frame locals) and their captured resources.

    /** Track a detached frame until it completes or is reaped. */
    void registerDetachedFrame(std::coroutine_handle<> h);

    /** Remove a completed frame from the registry (no destroy). */
    void forgetDetachedFrame(std::coroutine_handle<> h);

    /** Detached frames spawned but not yet finished or reaped. */
    std::size_t detachedFramesLive() const
    {
        return detachedFrames_.size();
    }

    /** Destroy every live detached frame (teardown; also called by
     *  the destructor before the pending-event heap is dropped). */
    void destroyDetachedFrames();

    // Introspection for tests and diagnostics ------------------------

    /** Heap entries including stale (lazily-descheduled) ones. */
    std::size_t internalEntries() const { return heap_.size(); }

    /** Stale heap entries awaiting pop or compaction. */
    std::size_t staleEntries() const { return staleEntries_; }

    /** Pooled callback events ever carved from the slabs. */
    std::size_t poolCarved() const { return poolCarved_; }

    /** Pooled callback events currently on the free list. */
    std::size_t poolFree() const { return freeList_.size(); }

    /** Pooled events currently live (scheduled or mid-dispatch);
     *  zero after a full drain means no pooled-event leaks. */
    std::size_t
    poolOutstanding() const
    {
        return poolCarved_ - freeList_.size();
    }

    // Host-time event profiler ---------------------------------------
    //
    // When enabled, every dispatch is timed with the host's
    // steady_clock and accumulated per event name. Names are
    // non-owning interned/literal pointers, so aggregation is a
    // pointer-keyed hash map -- no string hashing on the dispatch
    // path. The disabled cost is one predictable branch in
    // popAndRun() (same budget as the flight-recorder gate).

    /** One row of the host-time profile (see profileEntries()). */
    struct ProfileEntry
    {
        const char *name;      ///< interned/literal event name
        std::uint64_t count;   ///< dispatches observed
        std::uint64_t hostNs;  ///< accumulated host wall time
    };

    /** Turn per-event-name host-time profiling on or off. */
    void setProfiling(bool on) { profiling_ = on; }
    bool profilingEnabled() const { return profiling_; }

    /** Drop all accumulated profile rows. */
    void resetProfile() { profile_.clear(); }

    /** Profile rows sorted by accumulated host time, descending. */
    std::vector<ProfileEntry> profileEntries() const;

  private:
    /** Sequence numbers occupy the low 48 bits of an Entry key (the
     *  biased priority sits above them), so one 64-bit compare
     *  orders (priority, seq). 2^48 schedules is ~years of simulated
     *  workload; schedule() asserts against overflow. */
    static constexpr int seqBits = 48;
    static constexpr std::uint64_t seqMask =
        (std::uint64_t{1} << seqBits) - 1;
    static constexpr std::int64_t prioBias = std::int64_t{1} << 15;

    struct Entry
    {
        Tick when;
        std::uint64_t key; ///< (prio + prioBias) << seqBits | seq
        Event *ev;

        std::uint64_t seq() const { return key & seqMask; }

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return key > o.key;
        }
    };

    static std::uint64_t
    entryKey(const Event *ev)
    {
        auto prio = static_cast<std::int64_t>(ev->priority_);
        return (static_cast<std::uint64_t>(prio + prioBias)
                << seqBits) |
               ev->seq_;
    }

    /** Comparator making the std heap algorithms build a min-heap.
     *  A functor type (not a function pointer) so the heap
     *  algorithms inline the comparison. */
    struct EntryAfter
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a > b;
        }
    };

    friend class Event;

    /** RAII marker for current(): saves and restores the previous
     *  thread-local queue so nested drives (a test running a second
     *  simulation from inside an event) stay balanced. */
    struct CurrentScope
    {
        explicit CurrentScope(EventQueue *q) : prev(currentQueue_)
        {
            currentQueue_ = q;
        }
        ~CurrentScope() { currentQueue_ = prev; }
        EventQueue *prev;
    };

    void popAndRun();
    void dispatchProfiled(Event *ev);
    void compact();
    CallbackEvent *acquireSlot();
    void recycle(CallbackEvent *ev);

    /** Null out every heap entry referencing @p ev: called by
     *  ~Event when the event dies with entries still pending, so the
     *  queue never dereferences a destroyed event. */
    void forgetDead(Event *ev);

    /** Compact when stale entries exceed this count and outnumber
     *  live ones (the latter keeps compaction amortized-O(1)). */
    static constexpr std::size_t staleCompactMin = 64;

    /** Pooled events are carved from fixed-size slabs so the pool
     *  grows without relocating live events. */
    static constexpr std::size_t slabEvents = 64;

    MCNSIM_SHARD_SAFE("thread_local dispatch context: each worker "
                      "reads/writes only its own copy, and a "
                      "worker's copy always names the shard queue "
                      "it is executing -- pure function of the "
                      "schedule, not of thread interleaving");
    static thread_local EventQueue *currentQueue_;

    std::string name_;
    Tick curTick_ = 0;
    std::size_t shardIndex_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t staleEntries_ = 0;
    std::size_t poolCarved_ = 0;
    bool profiling_ = false;
    /** True inside ~EventQueue: deschedule() calls re-entered from
     *  destructors triggered by the drain (an event lambda dropping
     *  the last ref to a socket) must not compact the heap mid-walk
     *  or trip the checked lifetime detectors. */
    bool draining_ = false;
    std::vector<Entry> heap_;
    std::vector<std::coroutine_handle<>> detachedFrames_;
    std::vector<CallbackEvent *> freeList_;
    std::vector<std::unique_ptr<CallbackEvent[]>> slabs_;
    /** name pointer -> (dispatch count, accumulated host ns). */
    std::unordered_map<const char *,
                       std::pair<std::uint64_t, std::uint64_t>>
        profile_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_EVENT_QUEUE_HH
