/**
 * @file
 * Simulation lifecycle implementation.
 */

#include "sim/simulation.hh"

#include "sim/sim_object.hh"

namespace mcnsim::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

Tick
Simulation::run(Tick until)
{
    if (!started_) {
        started_ = true;
        // startup() hooks may construct more objects; index loop.
        for (std::size_t i = 0; i < objects_.size(); ++i)
            objects_[i]->startup();
    }
    return queue_.run(until);
}

} // namespace mcnsim::sim
