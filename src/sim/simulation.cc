/**
 * @file
 * Simulation lifecycle implementation.
 */

#include "sim/simulation.hh"

#include "sim/flow_stats.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace mcnsim::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed), seed_(seed)
{}

void
Simulation::enableSharding()
{
    if (shards_)
        return;
    MCNSIM_ASSERT(objects_.empty(),
                  "enableSharding() after components were built");
    shards_ = std::make_unique<ShardSet>();
    shards_->addQueue(&queue_);
}

std::size_t
Simulation::newShard()
{
    if (!shards_)
        return 0;
    extraQueues_.push_back(std::make_unique<EventQueue>(
        "shard" + std::to_string(extraQueues_.size() + 1)));
    shards_->addQueue(extraQueues_.back().get());
    return shards_->shardCount() - 1;
}

void
Simulation::addShardEdge(std::size_t a, std::size_t b, Tick latency)
{
    if (shards_ && a != b)
        shards_->addEdge(a, b, latency);
}

void
Simulation::postCrossShard(std::size_t src, std::size_t dst,
                           Tick when, EventPriority prio,
                           const char *name,
                           std::function<void()> fn)
{
    if (shards_) {
        shards_->post(src, dst, when, prio, name, std::move(fn));
        return;
    }
    queue_.schedule(std::move(fn), when, name, prio);
}

std::uint64_t
Simulation::eventsProcessed() const
{
    std::uint64_t total = queue_.eventsProcessed();
    for (const auto &q : extraQueues_)
        total += q->eventsProcessed();
    return total;
}

void
Simulation::prepareStatsDump()
{
    for (std::size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->syncStats();
}

Tick
Simulation::run(Tick until)
{
    if (!started_) {
        started_ = true;
        // startup() hooks may construct more objects; index loop.
        // Hooks run before any event dispatches, so scope each one
        // to its object's shard: children built inside a hook must
        // inherit the parent's shard, not whatever scope the
        // builders last left.
        for (std::size_t i = 0; i < objects_.size(); ++i) {
            ShardScope scope(*this, objects_[i]->shardId());
            objects_[i]->startup();
        }
    }
    if (shards_ && shards_->shardCount() > 1)
        return shards_->run(until, threads_);
    return queue_.run(until);
}

double
Simulation::wallSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - created_)
        .count();
}

void
Simulation::dumpStatsJson(std::ostream &os)
{
    prepareStatsDump();
    json::Writer w(os);
    w.beginObject();
    // v3: adds "flows" / "path_latency" blocks (present only when
    // flow telemetry is active) and "queue"-typed stats.
    w.kv("schema_version", std::uint64_t{3});
    w.key("meta");
    w.beginObject();
    w.kv("seed", seed_);
    w.kv("sim_ticks", curTick());
    w.kv("sim_seconds", ticksToSeconds(curTick()));
    w.kv("events_processed", eventsProcessed());
    w.kv("wall_seconds", wallSeconds());
    for (const auto &[k, v] : metadata_)
        w.kv(k, v);
    w.endObject();
    statRegistry_.writeGroups(w);
    if (FlowTelemetry::active() || FlowTelemetry::instance().hasData())
        FlowTelemetry::instance().writeJsonBlocks(w);
    if (queue_.profilingEnabled()) {
        w.key("event_profile");
        w.beginArray();
        for (const auto &row : queue_.profileEntries()) {
            w.beginObject();
            w.kv("name", row.name);
            w.kv("count", row.count);
            w.kv("host_ns", row.hostNs);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    os << "\n";
}

} // namespace mcnsim::sim
