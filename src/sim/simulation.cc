/**
 * @file
 * Simulation lifecycle implementation.
 */

#include "sim/simulation.hh"

#include "sim/json.hh"
#include "sim/sim_object.hh"

namespace mcnsim::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed), seed_(seed)
{}

Tick
Simulation::run(Tick until)
{
    if (!started_) {
        started_ = true;
        // startup() hooks may construct more objects; index loop.
        for (std::size_t i = 0; i < objects_.size(); ++i)
            objects_[i]->startup();
    }
    return queue_.run(until);
}

double
Simulation::wallSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - created_)
        .count();
}

void
Simulation::dumpStatsJson(std::ostream &os)
{
    json::Writer w(os);
    w.beginObject();
    w.kv("schema_version", std::uint64_t{2});
    w.key("meta");
    w.beginObject();
    w.kv("seed", seed_);
    w.kv("sim_ticks", curTick());
    w.kv("sim_seconds", ticksToSeconds(curTick()));
    w.kv("events_processed", queue_.eventsProcessed());
    w.kv("wall_seconds", wallSeconds());
    for (const auto &[k, v] : metadata_)
        w.kv(k, v);
    w.endObject();
    statRegistry_.writeGroups(w);
    if (queue_.profilingEnabled()) {
        w.key("event_profile");
        w.beginArray();
        for (const auto &row : queue_.profileEntries()) {
            w.beginObject();
            w.kv("name", row.name);
            w.kv("count", row.count);
            w.kv("host_ns", row.hostNs);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    os << "\n";
}

} // namespace mcnsim::sim
