/**
 * @file
 * Clock domains convert between cycles and ticks for components
 * running at different frequencies (host cores, MCN cores, DDR bus).
 *
 * Usage:
 *
 *   ClockDomain clk("hostCores", 3.6e9);     // 3.6 GHz
 *   Tick cost = clk.cyclesToTicks(1200);     // 1200 cycles in ps
 *   Cycles spent = clk.ticksToCycles(cost);  // and back (rounds up)
 */

#ifndef MCNSIM_SIM_CLOCK_DOMAIN_HH
#define MCNSIM_SIM_CLOCK_DOMAIN_HH

#include <string>

#include "sim/types.hh"

namespace mcnsim::sim {

/** A fixed-frequency clock domain. */
class ClockDomain
{
  public:
    /** @param freq_hz clock frequency in Hz (must be > 0). */
    ClockDomain(std::string name, double freq_hz);

    /** Tick duration of one cycle (rounded to >= 1 ps). */
    Tick period() const { return period_; }

    double frequencyHz() const { return freqHz_; }

    /** Ticks covered by @p n cycles. */
    Tick cyclesToTicks(Cycles n) const { return n * period_; }

    /** Cycles fully elapsed in @p t ticks (rounds up: partial
     *  cycles still cost a cycle, matching hardware behaviour). */
    Cycles ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

    /** Next domain-clock edge at or after @p now. */
    Tick nextEdge(Tick now) const
    {
        return ((now + period_ - 1) / period_) * period_;
    }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double freqHz_;
    Tick period_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_CLOCK_DOMAIN_HH
