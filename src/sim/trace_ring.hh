/**
 * @file
 * Flight-recorder trace ring: a bounded, process-wide ring of the
 * most recent tick-stamped debug-trace events. Trace::emit feeds it
 * whenever a debug flag is enabled, and panic()/fatal() dump it to
 * stderr so a failing test or bench dies *with context* — the last
 * N things the simulator did, not just a message.
 *
 * Usage:
 *
 *   sim::Trace::setFlag("MCNDriver", true);   // start recording
 *   sim::TraceRing::instance().setCapacity(512);
 *   ... run the simulation ...
 *   sim::TraceRing::instance().dump(std::cerr);   // oldest first
 *
 * The ring is deliberately global (like the debug-flag set): a
 * crash dump must see events from every Simulation in the process.
 * Recording costs nothing when no debug flag is enabled.
 */

#ifndef MCNSIM_SIM_TRACE_RING_HH
#define MCNSIM_SIM_TRACE_RING_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mcnsim::sim {

/** One recorded trace event. */
struct TraceRecord
{
    Tick when = 0;
    std::string flag;
    std::string msg;
};

/**
 * Bounded ring buffer of TraceRecords. Oldest entries are
 * overwritten once the capacity is reached; dump() and snapshot()
 * return the surviving entries oldest-first.
 */
class TraceRing
{
  public:
    static constexpr std::size_t defaultCapacity = 256;

    /** The process-wide ring Trace::emit records into. */
    static TraceRing &instance();

    explicit TraceRing(std::size_t capacity = defaultCapacity);

    /** Resize the ring; discards all recorded entries. */
    void setCapacity(std::size_t n);
    std::size_t capacity() const { return capacity_; }

    /** Append one event, overwriting the oldest when full. */
    void record(Tick when, std::string flag, std::string msg);

    /** Entries currently held (<= capacity). */
    std::size_t size() const { return entries_.size(); }

    /** Total events ever recorded (includes overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Surviving entries, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /** Human-readable dump, oldest first; no-op when empty. */
    void dump(std::ostream &os) const;

    /** Drop all entries (capacity unchanged). */
    void clear();

  private:
    std::size_t capacity_;
    std::size_t head_ = 0; ///< next slot to write once full
    std::uint64_t recorded_ = 0;
    std::vector<TraceRecord> entries_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_TRACE_RING_HH
