/**
 * @file
 * SimObject: base class for all simulated components. Provides a
 * hierarchical name, access to the owning simulation's event queue,
 * and a stats group auto-registered with the simulation.
 */

#ifndef MCNSIM_SIM_SIM_OBJECT_HH
#define MCNSIM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

class Simulation;

/**
 * Base class for simulated components. SimObjects are created with a
 * reference to their Simulation and never outlive it.
 */
class SimObject
{
  public:
    SimObject(Simulation &simulation, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** Called once after the whole system is wired, before run. */
    virtual void startup() {}

    Simulation &simulation() { return sim_; }
    EventQueue &eventQueue();
    Tick curTick() const;

    StatGroup &stats() { return statGroup_; }

  protected:
    /** Register a stat with this object's group. */
    void regStat(StatBase *stat) { statGroup_.add(stat); }

    /** Tick-stamped debug tracing shorthand: "<name>: <msg>" under
     *  @p flag, recorded in the flight-recorder ring and echoed to
     *  stderr while the flag is enabled. Fully qualified so the
     *  POSIX dprintf(3) from <stdio.h> can never shadow it. */
    template <typename... Args>
    void
    trace(const std::string &flag, const Args &...args) const
    {
        mcnsim::sim::dprintf(curTick(), flag, name_, ": ", args...);
    }

  private:
    Simulation &sim_;
    std::string name_;
    StatGroup statGroup_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_SIM_OBJECT_HH
