/**
 * @file
 * SimObject: base class for all simulated components. Provides a
 * hierarchical name, access to the owning simulation's event queue,
 * and a stats group auto-registered with the simulation.
 */

#ifndef MCNSIM_SIM_SIM_OBJECT_HH
#define MCNSIM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

class Simulation;

/**
 * Base class for simulated components. SimObjects are created with a
 * reference to their Simulation and never outlive it.
 */
class SimObject
{
  public:
    SimObject(Simulation &simulation, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** Called once after the whole system is wired, before run. */
    virtual void startup() {}

    /**
     * Called before any stats dump/snapshot. Objects that keep
     * shard-local plain counters (to avoid cross-thread Scalar
     * writes during a parallel window) fold them into their
     * registered stats here. Must be idempotent.
     */
    virtual void syncStats() {}

    Simulation &simulation() { return sim_; }

    /** This object's event queue: the shard queue it was
     *  constructed under (the simulation's primary queue when
     *  unsharded). Cached at construction -- hot path. */
    EventQueue &eventQueue() const { return *queue_; }
    Tick curTick() const { return queue_->curTick(); }

    /** Shard this object was constructed on (0 when unsharded). */
    std::size_t shardId() const { return shard_; }

    StatGroup &stats() { return statGroup_; }

    /** This object's timeline track, for recording against explicit
     *  ticks via Timeline::instance() directly (also used by
     *  FaultSite to stamp injection instants on the owner). */
    Timeline::TrackId tlTrack() const { return tlTrack_; }

  protected:
    /** Register a stat with this object's group. */
    void regStat(StatBase *stat) { statGroup_.add(stat); }

    /** Tick-stamped debug tracing shorthand: "<name>: <msg>" under
     *  @p flag, recorded in the flight-recorder ring and echoed to
     *  stderr while the flag is enabled. Fully qualified so the
     *  POSIX dprintf(3) from <stdio.h> can never shadow it. */
    template <typename... Args>
    void
    trace(const std::string &flag, const Args &...args) const
    {
        mcnsim::sim::dprintf(curTick(), flag, name_, ": ", args...);
    }

    // Timeline shorthands: every SimObject owns a timeline track
    // (process = first dot-segment of the name, thread = full name).
    // Each helper is gated on the one-branch Timeline::active() check
    // so an un-traced run pays a single predictable branch per call
    // site. @p name must outlive the timeline (string literal).

    /** Record a complete span [start, end] on this object's track. */
    void
    tlSpan(const char *name, Tick start, Tick end) const
    {
        if (Timeline::active()) [[unlikely]]
            Timeline::instance().span(tlTrack_, name, start, end);
    }

    /** Record a counter sample at the current tick. */
    void
    tlCounter(const char *name, double value) const
    {
        if (Timeline::active()) [[unlikely]]
            Timeline::instance().counter(tlTrack_, name, curTick(),
                                         value);
    }

    /** Record an instant event at the current tick. */
    void
    tlInstant(const char *name) const
    {
        if (Timeline::active()) [[unlikely]]
            Timeline::instance().instant(tlTrack_, name, curTick());
    }

  private:
    Simulation &sim_;
    EventQueue *queue_;
    std::size_t shard_;
    std::string name_;
    StatGroup statGroup_;
    Timeline::TrackId tlTrack_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_SIM_OBJECT_HH
