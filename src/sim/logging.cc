/**
 * @file
 * Logging implementation: trace-flag registry and status output.
 */

#include "sim/annotate.hh"
#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <set>

#include "sim/trace_ring.hh"

namespace mcnsim::sim {

namespace {

MCNSIM_SHARD_SAFE("trace-echo toggle: flipped by tests/CLI outside "
                  "run windows; traces force one worker anyway");
bool echoTraces = true;

std::set<std::string> &
flagSet()
{
    MCNSIM_SHARD_SAFE("debug-flag set: parsed once during static "
                      "init, mutated by setFlag() outside run "
                      "windows only; any active flag clamps the "
                      "ShardSet to one worker");
    static std::set<std::string> flags = [] {
        std::set<std::string> s;
        if (const char *env = std::getenv("MCNSIM_DEBUG")) {
            std::string cur;
            for (const char *p = env;; ++p) {
                if (*p == ',' || *p == '\0') {
                    if (!cur.empty())
                        s.insert(cur);
                    cur.clear();
                    if (*p == '\0')
                        break;
                } else {
                    cur.push_back(*p);
                }
            }
        }
        detail::traceActiveFlagCount = s.size();
        return s;
    }();
    return flags;
}

MCNSIM_SHARD_SAFE("CLI-set output toggle: written during argument "
                  "parsing before any event loop runs");
bool quietMode = false;

/** Force the one-time MCNSIM_DEBUG parse during static init so
 *  env-enabled flags are counted before the first anyActive()
 *  fast-path check (which is now a bare inline load). */
[[maybe_unused]] const bool traceEnvParsed = (flagSet(), true);

} // namespace

void
Trace::setFlag(const std::string &flag, bool on)
{
    if (on)
        flagSet().insert(flag);
    else
        flagSet().erase(flag);
    detail::traceActiveFlagCount = flagSet().size();
}

bool
Trace::enabled(const std::string &flag)
{
    const auto &flags = flagSet();
    return flags.count(flag) > 0 || flags.count("ALL") > 0;
}

void
Trace::setEcho(bool echo)
{
    echoTraces = echo;
}

void
Trace::emit(Tick when, const std::string &flag, const std::string &msg)
{
    TraceRing::instance().record(when, flag, msg);
    if (echoTraces)
        std::fprintf(stderr, "%12llu: [%s] %s\n",
                     static_cast<unsigned long long>(when),
                     flag.c_str(), msg.c_str());
}

void
detail::dumpFlightRecorder(const char *kind)
{
    const auto &ring = TraceRing::instance();
    if (ring.size() == 0)
        return;
    std::cerr << "== " << kind
              << "() raised; dumping flight recorder ==\n";
    ring.dump(std::cerr);
}

void
inform(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace mcnsim::sim
