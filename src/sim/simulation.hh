/**
 * @file
 * Simulation: owns the event queue, the stat registry, the RNG and
 * the startup/run lifecycle for one simulated system.
 *
 * Usage:
 *
 *   sim::Simulation s;                 // seed defaults to 1
 *   core::McnSystem sys(s, params);    // components self-register
 *   s.run(10 * sim::oneMs);            // startup() hooks fire once
 *   s.dumpStats(std::cout);            // gem5-style text dump
 *   s.dumpStatsJson(out);              // machine-readable dump
 *
 * Many Simulations may coexist in one process; nothing here is
 * global.
 */

#ifndef MCNSIM_SIM_SIMULATION_HH
#define MCNSIM_SIM_SIMULATION_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

class SimObject;

/**
 * One independent simulated system. Components register themselves
 * on construction; run() fires startup() hooks once, then executes
 * events.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);

    EventQueue &eventQueue() { return queue_; }
    Tick curTick() const { return queue_.curTick(); }
    StatRegistry &statRegistry() { return statRegistry_; }
    Rng &rng() { return rng_; }

    /** Run until @p until (absolute tick) or queue exhaustion. */
    Tick run(Tick until = maxTick);

    /** Run for @p delta more ticks. */
    Tick runFor(Tick delta) { return run(curTick() + delta); }

    /** Dump all registered statistics as text. */
    void dumpStats(std::ostream &os) { statRegistry_.dump(os); }

    /**
     * Dump all registered statistics as one JSON document,
     * self-describing: a "meta" header (seed, sim ticks, events
     * processed, wall-clock seconds, plus any setMetadata() pairs
     * such as the preset name), the stat "groups", and -- when the
     * event queue's profiler is enabled -- an "event_profile" array
     * of {name, count, host_ns} rows sorted by host time.
     * schema_version 2; version 1 (groups only) remains available
     * via StatRegistry::dumpJson.
     */
    void dumpStatsJson(std::ostream &os);

    /** Reset all statistics (e.g. after warmup). */
    void resetStats() { statRegistry_.resetAll(); }

    /** RNG seed this simulation was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Attach a key/value pair to the stats-dump "meta" header
     *  (e.g. preset name, CLI command). Later pairs append. */
    void
    setMetadata(std::string key, std::string value)
    {
        metadata_.emplace_back(std::move(key), std::move(value));
    }

    const std::vector<std::pair<std::string, std::string>> &
    metadata() const
    {
        return metadata_;
    }

    /** Host wall-clock seconds since construction. */
    double wallSeconds() const;

  private:
    friend class SimObject;
    void registerObject(SimObject *obj) { objects_.push_back(obj); }

    EventQueue queue_;
    StatRegistry statRegistry_;
    Rng rng_;
    std::vector<SimObject *> objects_;
    std::vector<std::pair<std::string, std::string>> metadata_;
    std::uint64_t seed_;
    std::chrono::steady_clock::time_point created_ =
        std::chrono::steady_clock::now();
    bool started_ = false;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_SIMULATION_HH
