/**
 * @file
 * Simulation: owns the event queue, the stat registry, the RNG and
 * the startup/run lifecycle for one simulated system.
 *
 * Usage:
 *
 *   sim::Simulation s;                 // seed defaults to 1
 *   core::McnSystem sys(s, params);    // components self-register
 *   s.run(10 * sim::oneMs);            // startup() hooks fire once
 *   s.dumpStats(std::cout);            // gem5-style text dump
 *   s.dumpStatsJson(out);              // machine-readable dump
 *
 * Parallel runs (see sim/shard.hh and DESIGN.md §9): a builder may
 * partition the system into shards, each with its own event queue:
 *
 *   s.enableSharding();
 *   auto node = s.newShard();
 *   {
 *       Simulation::ShardScope scope(s, node);
 *       // components constructed here live on shard `node`
 *   }
 *   s.addShardEdge(0, node, linkLatency);  // lookahead source
 *   s.setThreads(4);
 *   s.run(until);               // windowed parallel execution
 *
 * Results are byte-identical for every thread count; when sharding
 * is never enabled, run() is exactly the classic single-queue loop.
 *
 * Many Simulations may coexist in one process; nothing here is
 * global.
 */

#ifndef MCNSIM_SIM_SIMULATION_HH
#define MCNSIM_SIM_SIMULATION_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

class SimObject;

/**
 * One independent simulated system. Components register themselves
 * on construction; run() fires startup() hooks once, then executes
 * events.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);

    EventQueue &eventQueue() { return queue_; }
    Tick curTick() const { return queue_.curTick(); }
    StatRegistry &statRegistry() { return statRegistry_; }
    Rng &rng() { return rng_; }

    /** Run until @p until (absolute tick) or queue exhaustion. */
    Tick run(Tick until = maxTick);

    /** Run for @p delta more ticks. */
    Tick runFor(Tick delta) { return run(curTick() + delta); }

    /** Dump all registered statistics as text. */
    void
    dumpStats(std::ostream &os)
    {
        prepareStatsDump();
        statRegistry_.dump(os);
    }

    /**
     * Dump all registered statistics as one JSON document,
     * self-describing: a "meta" header (seed, sim ticks, events
     * processed, wall-clock seconds, plus any setMetadata() pairs
     * such as the preset name), the stat "groups", and -- when the
     * event queue's profiler is enabled -- an "event_profile" array
     * of {name, count, host_ns} rows sorted by host time.
     * schema_version 2; version 1 (groups only) remains available
     * via StatRegistry::dumpJson.
     */
    void dumpStatsJson(std::ostream &os);

    /** Reset all statistics (e.g. after warmup). Syncs pending
     *  shard-local counters first so they don't survive the reset. */
    void
    resetStats()
    {
        prepareStatsDump();
        statRegistry_.resetAll();
    }

    /** RNG seed this simulation was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Attach a key/value pair to the stats-dump "meta" header
     *  (e.g. preset name, CLI command). Later pairs append. */
    void
    setMetadata(std::string key, std::string value)
    {
        metadata_.emplace_back(std::move(key), std::move(value));
    }

    const std::vector<std::pair<std::string, std::string>> &
    metadata() const
    {
        return metadata_;
    }

    /** Host wall-clock seconds since construction. */
    double wallSeconds() const;

    // Sharding (parallel simulation; see sim/shard.hh) -------------

    /**
     * Scopes component construction to a shard: every SimObject
     * built while a ShardScope is live caches that shard's event
     * queue. Builders wrap each node's construction in one.
     */
    class ShardScope
    {
      public:
        ShardScope(Simulation &s, std::size_t shard)
            : sim_(s), prev_(s.constructionShard_)
        {
            sim_.constructionShard_ = shard;
        }
        ~ShardScope() { sim_.constructionShard_ = prev_; }

        ShardScope(const ShardScope &) = delete;
        ShardScope &operator=(const ShardScope &) = delete;

      private:
        Simulation &sim_;
        std::size_t prev_;
    };

    /**
     * Opt this simulation into sharded execution (call before any
     * shard-aware components are built). The primary queue becomes
     * shard 0; newShard() adds more. Without this call, newShard()
     * degrades to shard 0 and run() is the classic serial loop.
     */
    void enableSharding();
    bool shardingEnabled() const { return shards_ != nullptr; }

    /** Create a new shard (its own event queue) and return its
     *  index. Returns 0 when sharding is not enabled. */
    std::size_t newShard();

    /** Number of shards (1 when unsharded). */
    std::size_t
    shardCount() const
    {
        return shards_ ? shards_->shardCount() : 1;
    }

    /** Event queue of shard @p i (0 = the primary queue). */
    EventQueue &
    shardQueue(std::size_t i)
    {
        return i == 0 ? queue_ : *extraQueues_[i - 1];
    }

    /**
     * Queue new SimObjects bind to. Objects created while an event
     * is dispatching (lazy timers, runtime-spawned helpers) belong
     * to the shard that is executing them -- another shard's worker
     * may be running concurrently, so the build-time ShardScope
     * cannot be trusted mid-run. Outside dispatch, the active
     * ShardScope (or shard 0) decides.
     */
    EventQueue &
    constructionQueue()
    {
        if (EventQueue *q = EventQueue::current())
            return *q;
        return shardQueue(constructionShard_);
    }

    std::size_t
    constructionShard() const
    {
        if (EventQueue *q = EventQueue::current())
            return q->shardIndex();
        return constructionShard_;
    }

    /** Register an inter-shard wire; its latency bounds the
     *  conservative lookahead. No-op when unsharded. */
    void addShardEdge(std::size_t a, std::size_t b, Tick latency);

    /** Minimum inter-shard edge latency (the lookahead); maxTick
     *  when unsharded or no edges are registered. */
    Tick
    shardLookahead() const
    {
        return shards_ ? shards_->lookahead() : maxTick;
    }

    /**
     * Deliver a cross-shard event through the deterministic mailbox
     * (see ShardSet::post). Falls back to a direct schedule when
     * sharding is off.
     */
    void postCrossShard(std::size_t src, std::size_t dst, Tick when,
                        EventPriority prio, const char *name,
                        std::function<void()> fn);

    /** Worker threads used by sharded run() (default 1). Clamped to
     *  the shard count; ignored when unsharded. */
    void setThreads(unsigned n) { threads_ = n ? n : 1; }
    unsigned threads() const { return threads_; }

    /** Events processed across every shard queue. */
    std::uint64_t eventsProcessed() const;

    /**
     * Fold per-shard counters into the registered stats (calls every
     * object's syncStats()). dumpStats/dumpStatsJson call this;
     * external snapshots (the stats time-series sampler) should too.
     */
    void prepareStatsDump();

    /** The shard set, for tests; null when unsharded. */
    ShardSet *shardSet() { return shards_.get(); }

  private:
    friend class SimObject;
    void registerObject(SimObject *obj) { objects_.push_back(obj); }

    EventQueue queue_;
    StatRegistry statRegistry_;
    Rng rng_;
    std::vector<SimObject *> objects_;
    std::vector<std::pair<std::string, std::string>> metadata_;
    /** Queues of shards 1..N-1 (shard 0 is queue_). unique_ptrs so
     *  queue addresses stay stable as shards are added. */
    std::vector<std::unique_ptr<EventQueue>> extraQueues_;
    std::unique_ptr<ShardSet> shards_;
    std::size_t constructionShard_ = 0;
    unsigned threads_ = 1;
    std::uint64_t seed_;
    std::chrono::steady_clock::time_point created_ =
        std::chrono::steady_clock::now();
    bool started_ = false;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_SIMULATION_HH
