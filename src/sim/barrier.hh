/**
 * @file
 * SpinBarrier: the synchronization point between parallel-simulation
 * window phases (see sim/shard.hh and DESIGN.md §9).
 *
 * A conservative-lookahead window is three short phases (drain
 * mailboxes, pick the window end, execute), each a handful of
 * microseconds of host work, so the barrier must cost less than a
 * condition variable's syscall round trip. This one is a classic
 * generation-counting (sense-reversing) barrier: the last arriver
 * bumps the generation and wakes the rest, waiters spin briefly on
 * the generation word and then fall back to C++20 atomic wait so an
 * oversubscribed host does not burn cores.
 *
 * Usage:
 *
 *   sim::SpinBarrier bar(workers);
 *   // on every worker thread, once per phase:
 *   bar.arriveAndWait();
 *
 * The barrier provides acquire/release ordering: every write made
 * before arriveAndWait() is visible to every thread after it
 * returns. That ordering is what lets the window loop keep its
 * shared state (window end, horizon, done flag) as plain members
 * written in single-writer phases.
 */

#ifndef MCNSIM_SIM_BARRIER_HH
#define MCNSIM_SIM_BARRIER_HH

#include <atomic>
#include <cstdint>

namespace mcnsim::sim {

/** Generation-counting barrier for a fixed set of threads. */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned count) : count_(count) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Number of participating threads. */
    unsigned count() const { return count_; }

    /**
     * Block until all count() threads have arrived. The last
     * arriver releases the rest; the generation counter makes the
     * barrier immediately reusable for the next phase.
     */
    void
    arriveAndWait()
    {
        if (count_ <= 1)
            return;
        const std::uint64_t gen = gen_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            count_) {
            arrived_.store(0, std::memory_order_relaxed);
            gen_.fetch_add(1, std::memory_order_release);
            gen_.notify_all();
            return;
        }
        // Spin a little first: phases are short, and the futex round
        // trip of atomic wait usually costs more than the remaining
        // phase time. Fall back to wait() so an oversubscribed or
        // descheduled sibling cannot pin a core.
        for (int i = 0; i < spinRounds; ++i) {
            if (gen_.load(std::memory_order_acquire) != gen)
                return;
        }
        while (gen_.load(std::memory_order_acquire) == gen)
            gen_.wait(gen, std::memory_order_acquire);
    }

  private:
    static constexpr int spinRounds = 4096;

    unsigned count_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> gen_{0};
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_BARRIER_HH
