/**
 * @file
 * SimObject implementation.
 */

#include "sim/sim_object.hh"

#include "sim/simulation.hh"

namespace mcnsim::sim {

SimObject::SimObject(Simulation &simulation, std::string name)
    : sim_(simulation), queue_(&simulation.constructionQueue()),
      shard_(simulation.constructionShard()), name_(std::move(name)),
      statGroup_(name_),
      tlTrack_(Timeline::instance().trackFor(name_))
{
    sim_.registerObject(this);
    sim_.statRegistry().add(&statGroup_);
}

} // namespace mcnsim::sim
