/**
 * @file
 * SimObject implementation.
 */

#include "sim/sim_object.hh"

#include "sim/simulation.hh"

namespace mcnsim::sim {

SimObject::SimObject(Simulation &simulation, std::string name)
    : sim_(simulation), name_(std::move(name)), statGroup_(name_),
      tlTrack_(Timeline::instance().trackFor(name_))
{
    sim_.registerObject(this);
    sim_.statRegistry().add(&statGroup_);
}

EventQueue &
SimObject::eventQueue()
{
    return sim_.eventQueue();
}

Tick
SimObject::curTick() const
{
    return sim_.curTick();
}

} // namespace mcnsim::sim
