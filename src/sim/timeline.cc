/**
 * @file
 * Timeline implementation: track registration and the Chrome
 * trace-event JSON export.
 */

#include "sim/annotate.hh"
#include "sim/timeline.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "sim/json.hh"

namespace mcnsim::sim {

Timeline &
Timeline::instance()
{
    MCNSIM_SHARD_SAFE("process-wide recorder, but ShardSet::run "
                      "clamps to one worker while the timeline is "
                      "active; start()/stop() happen outside run "
                      "windows");
    static Timeline tl;
    return tl;
}

Timeline::Timeline(std::size_t capacity) : capacity_(capacity) {}

void
Timeline::enable(bool on)
{
    enabled_ = on;
    if (this == &instance())
        detail::timelineActive = on;
    if (on && records_.capacity() == 0)
        records_.reserve(std::min<std::size_t>(capacity_, 1u << 16));
}

Timeline::TrackId
Timeline::track(const std::string &process, const std::string &thread)
{
    auto key = std::make_pair(process, thread);
    auto it = byName_.find(key);
    if (it != byName_.end())
        return it->second;

    auto [pit, fresh] = pidByProcess_.try_emplace(
        process,
        static_cast<std::uint32_t>(pidByProcess_.size() + 1));
    (void)fresh;
    const std::uint32_t pid = pit->second;
    const std::uint32_t tid = ++nextTid_[pid];

    auto id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(Track{process, thread, pid, tid});
    byName_.emplace(std::move(key), id);
    return id;
}

Timeline::TrackId
Timeline::trackFor(const std::string &component)
{
    auto dot = component.find('.');
    return track(dot == std::string::npos ? component
                                          : component.substr(0, dot),
                 component);
}

bool
Timeline::room()
{
    if (records_.size() < capacity_) [[likely]]
        return true;
    dropped_++;
    return false;
}

void
Timeline::span(TrackId t, const char *name, Tick start, Tick end)
{
    if (!enabled_ || !room())
        return;
    if (end < start)
        end = start;
    records_.push_back(Record{start, end, 0, name, t, Phase::Span});
}

void
Timeline::counter(TrackId t, const char *name, Tick when, double value)
{
    if (!enabled_ || !room())
        return;
    records_.push_back(
        Record{when, when, value, name, t, Phase::Counter});
}

void
Timeline::instant(TrackId t, const char *name, Tick when)
{
    if (!enabled_ || !room())
        return;
    records_.push_back(Record{when, when, 0, name, t, Phase::Instant});
}

void
Timeline::setCapacity(std::size_t max_events)
{
    capacity_ = max_events;
    if (records_.size() > capacity_) {
        dropped_ += records_.size() - capacity_;
        records_.resize(capacity_);
    }
}

void
Timeline::clear()
{
    records_.clear();
    dropped_ = 0;
}

void
Timeline::exportJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    // Sort by start tick (stably, so same-tick records keep record
    // order): Perfetto tolerates out-of-order events, but a sorted
    // stream keeps ts monotone per thread, which our tests and
    // timeline_summary.py check.
    std::vector<std::uint32_t> order(records_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return records_[a].start < records_[b].start;
                     });

    std::set<TrackId> used;
    for (const Record &r : records_)
        used.insert(r.track);

    json::Writer w(os, 1);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData");
    w.beginObject();
    w.kv("tool", "mcnsim");
    w.kv("time_unit", "us (1 tick = 1 ps)");
    w.kv("dropped_events", dropped_);
    for (const auto &[k, v] : meta)
        w.kv(k, v);
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    // Metadata rows first: name every referenced process and thread
    // so the Perfetto UI shows component names, not bare pids/tids.
    std::set<std::uint32_t> namedPids;
    for (TrackId id : used) {
        const Track &t = tracks_[id];
        if (namedPids.insert(t.pid).second) {
            w.beginObject();
            w.kv("name", "process_name");
            w.kv("ph", "M");
            w.kv("pid", std::uint64_t{t.pid});
            w.kv("tid", std::uint64_t{0});
            w.key("args");
            w.beginObject();
            w.kv("name", t.process);
            w.endObject();
            w.endObject();
        }
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", std::uint64_t{t.pid});
        w.kv("tid", std::uint64_t{t.tid});
        w.key("args");
        w.beginObject();
        w.kv("name", t.thread);
        w.endObject();
        w.endObject();
    }

    for (std::uint32_t idx : order) {
        const Record &r = records_[idx];
        const Track &t = tracks_[r.track];
        w.beginObject();
        w.kv("name", r.name);
        w.kv("pid", std::uint64_t{t.pid});
        w.kv("tid", std::uint64_t{t.tid});
        w.kv("ts", ticksToUs(r.start));
        switch (r.phase) {
          case Phase::Span:
            w.kv("ph", "X");
            w.kv("dur", ticksToUs(r.end - r.start));
            break;
          case Phase::Counter:
            w.kv("ph", "C");
            w.key("args");
            w.beginObject();
            w.kv("value", r.value);
            w.endObject();
            break;
          case Phase::Instant:
            w.kv("ph", "i");
            w.kv("s", "t");
            break;
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace mcnsim::sim
