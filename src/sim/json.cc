/**
 * @file
 * JSON writer and parser implementation.
 */

#include "sim/json.hh"

#include <cmath>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace mcnsim::sim::json {

std::string
quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
formatNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null";
    // Integers up to 2^53 print exactly, without an exponent.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest round-trip: try 15 significant digits, fall back to 17.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.15g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
Writer::newlineIndent()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int k = 0; k < indent_; ++k)
            os_ << ' ';
}

void
Writer::prepare()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // key() already positioned us
    }
    if (stack_.empty())
        return;
    MCNSIM_ASSERT(!stack_.back().isObject,
                  "JSON object member written without a key");
    if (stack_.back().members++)
        os_ << ',';
    newlineIndent();
}

void
Writer::key(const std::string &k)
{
    MCNSIM_ASSERT(!stack_.empty() && stack_.back().isObject,
                  "JSON key() outside an object");
    MCNSIM_ASSERT(!pendingKey_, "JSON key() with a key pending");
    if (stack_.back().members++)
        os_ << ',';
    newlineIndent();
    os_ << quote(k) << (indent_ > 0 ? ": " : ":");
    pendingKey_ = true;
}

void
Writer::beginObject()
{
    prepare();
    os_ << '{';
    stack_.push_back({true, 0});
}

void
Writer::endObject()
{
    MCNSIM_ASSERT(!stack_.empty() && stack_.back().isObject,
                  "unbalanced JSON endObject()");
    bool had = stack_.back().members > 0;
    stack_.pop_back();
    if (had)
        newlineIndent();
    os_ << '}';
}

void
Writer::beginArray()
{
    prepare();
    os_ << '[';
    stack_.push_back({false, 0});
}

void
Writer::endArray()
{
    MCNSIM_ASSERT(!stack_.empty() && !stack_.back().isObject,
                  "unbalanced JSON endArray()");
    bool had = stack_.back().members > 0;
    stack_.pop_back();
    if (had)
        newlineIndent();
    os_ << ']';
}

void
Writer::value(double v)
{
    prepare();
    os_ << formatNumber(v);
}

void
Writer::value(std::uint64_t v)
{
    prepare();
    os_ << v;
}

void
Writer::value(bool v)
{
    prepare();
    os_ << (v ? "true" : "false");
}

void
Writer::value(const std::string &v)
{
    prepare();
    os_ << quote(v);
}

void
Writer::null()
{
    prepare();
    os_ << "null";
}

// ---------------------------------------------------------------- Value

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        fatal("JSON value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    if (type_ != Type::Number)
        fatal("JSON value is not a number");
    return num_;
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        fatal("JSON value is not a string");
    return str_;
}

const std::vector<Value> &
Value::asArray() const
{
    if (type_ != Type::Array)
        fatal("JSON value is not an array");
    return arr_;
}

const std::vector<std::pair<std::string, Value>> &
Value::asObject() const
{
    if (type_ != Type::Object)
        fatal("JSON value is not an object");
    return obj_;
}

const Value *
Value::find(const std::string &k) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[key, val] : obj_)
        if (key == k)
            return &val;
    return nullptr;
}

const Value &
Value::operator[](const std::string &k) const
{
    const Value *v = find(k);
    if (!v)
        fatal("JSON object has no member '", k, "'");
    return *v;
}

const Value &
Value::operator[](std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        fatal("JSON array index ", i, " out of range");
    return arr_[i];
}

std::size_t
Value::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double n)
{
    Value v;
    v.type_ = Type::Number;
    v.num_ = n;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> a)
{
    Value v;
    v.type_ = Type::Array;
    v.arr_ = std::move(a);
    return v;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> o)
{
    Value v;
    v.type_ = Type::Object;
    v.obj_ = std::move(o);
    return v;
}

// --------------------------------------------------------------- parser

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            err("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    err(const std::string &what)
    {
        fatal("JSON parse error at offset ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            err("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            err(strcat("expected '", c, "'"));
        pos_++;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value::makeString(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value::makeBool(true);
            err("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value::makeBool(false);
            err("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value::makeNull();
            err("bad literal");
          default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        std::vector<std::pair<std::string, Value>> members;
        skipWs();
        if (peek() == '}') {
            pos_++;
            return Value::makeObject(std::move(members));
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            members.emplace_back(std::move(key), parseValue());
            skipWs();
            char c = peek();
            pos_++;
            if (c == '}')
                break;
            if (c != ',')
                err("expected ',' or '}' in object");
        }
        return Value::makeObject(std::move(members));
    }

    Value
    parseArray()
    {
        expect('[');
        std::vector<Value> elems;
        skipWs();
        if (peek() == ']') {
            pos_++;
            return Value::makeArray(std::move(elems));
        }
        while (true) {
            elems.push_back(parseValue());
            skipWs();
            char c = peek();
            pos_++;
            if (c == ']')
                break;
            if (c != ',')
                err("expected ',' or ']' in array");
        }
        return Value::makeArray(std::move(elems));
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                err("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                err("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': out += parseUnicodeEscape(); break;
              default: err("bad escape character");
            }
        }
        return out;
    }

    /** Decode \uXXXX (BMP only) to UTF-8. */
    std::string
    parseUnicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            err("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                err("bad hex digit in \\u escape");
        }
        std::string out;
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
        return out;
    }

    Value
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            pos_++;
        if (pos_ == start)
            err("expected a value");
        char *end = nullptr;
        double v = std::strtod(text_.c_str() + start, &end);
        if (end != text_.c_str() + pos_)
            err("malformed number");
        return Value::makeNumber(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace mcnsim::sim::json
