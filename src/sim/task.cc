/**
 * @file
 * Task machinery implementation: detached launch, condition wakeups
 * and task groups.
 */

#include "sim/task.hh"

namespace mcnsim::sim {

void
spawnDetached(EventQueue &q, Task<void> task)
{
    auto h = task.release();
    if (!h)
        return;
    h.promise().detached = true;
    h.promise().reaper = &q;
    q.registerDetachedFrame(h);
    q.scheduleIn([h] { h.resume(); }, 0, "task-spawn",
                 EventPriority::Process);
}

void
Condition::notifyAll()
{
    // Move the list out first: a resumed waiter may wait() again and
    // must land in the *next* notification round.
    std::deque<std::coroutine_handle<>> ready;
    ready.swap(waiters_);
    for (auto h : ready)
        q_.scheduleIn([h] { h.resume(); }, 0, "cv-notify",
                      EventPriority::Process);
}

void
Condition::notifyOne()
{
    if (waiters_.empty())
        return;
    auto h = waiters_.front();
    waiters_.pop_front();
    q_.scheduleIn([h] { h.resume(); }, 0, "cv-notify",
                  EventPriority::Process);
}

void
TaskGroup::spawn(Task<void> t)
{
    live_++;
    spawned_++;
    spawnDetached(q_, wrap(std::move(t)));
}

Task<void>
TaskGroup::wrap(Task<void> t)
{
    co_await std::move(t);
    if (--live_ == 0)
        done_.notifyAll();
}

} // namespace mcnsim::sim
