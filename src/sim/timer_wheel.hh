/**
 * @file
 * Hierarchical timing wheel for high-churn deadline timers.
 *
 * Protocol timers (TCP retransmit, delayed ACK, zero-window
 * persist) are armed and canceled far more often than they fire:
 * every ACKed segment re-arms the RTO, so the old
 * one-managed-event-per-timer design fed the event heap a steady
 * diet of lazily-descheduled entries and paid two O(log heap)
 * operations per re-arm. This wheel keeps every armed timer in an
 * intrusive doubly-linked slot list -- arm and cancel are O(1) list
 * splices -- and presents the whole population to the EventQueue as
 * ONE caller-owned driving event aimed at the earliest deadline.
 *
 * Determinism (the part that keeps modeled output bit-identical to
 * the per-event design):
 *
 *  - arm() draws a within-tick order slot from
 *    EventQueue::reserveOrder() at the *call site*, consuming
 *    exactly the sequence number the old schedule-per-timer code
 *    consumed at the same spot.
 *  - The driving event is always scheduled *with the front timer's
 *    reserved order* (EventQueue::schedule(ev, tick, order)), so it
 *    pops at precisely the heap position the front timer's own
 *    event would have occupied -- same tick, same interleaving with
 *    unrelated same-tick events.
 *  - Each dispatch fires exactly one timer (the (deadline, order)
 *    minimum) and re-aims, so several timers due at one tick fire
 *    in arm order with other events interleaving exactly as they
 *    would have between separate timer events.
 *
 * Structure: `levels` levels of 64 slots. A node files at the level
 * of the highest bit where its deadline differs from the wheel's
 * notion of now (`levelBits` bits per level), in the slot indexed
 * by the deadline's bits at that level. Firing advances now to the
 * due tick and cascades the due tick's containing slot on every
 * upper level down toward level 0. Two invariants make the min
 * scans exact (no early/late fires, ever):
 *
 *  - live deadlines are always >= the wheel's now (the wheel only
 *    advances to the global minimum), so within a level the lowest
 *    occupied slot index holds that level's earliest deadlines even
 *    though nodes were filed under different "now" epochs;
 *  - a level-0 resident always has deadline == its slot's tick at
 *    fire time, so firing never needs a deadline comparison loop
 *    beyond the due slot's list walk.
 *
 * Lifetime: TimerNode is embedded in its owner (a TcpSocket). The
 * callback is a std::function stored in the node while armed --
 * captures (the keep-alive shared_ptr to the owner) are dropped on
 * cancel and on fire, exactly like the captures of a recycled
 * managed event. A wheel destroyed with timers still armed detaches
 * every node first (dropping captures, which may destroy owners
 * whose destructors re-enter cancel(); the node's null wheel back
 * pointer makes that a no-op).
 */

#ifndef MCNSIM_SIM_TIMER_WHEEL_HH
#define MCNSIM_SIM_TIMER_WHEEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

class TimerWheel;

/** One deadline timer, embedded in its owning object. */
class TimerNode
{
  public:
    TimerNode() = default;
    ~TimerNode() { cancel(); }

    TimerNode(const TimerNode &) = delete;
    TimerNode &operator=(const TimerNode &) = delete;

    /** True while waiting to fire. */
    bool armed() const { return wheel_ != nullptr; }

    /** Absolute fire tick (valid while armed). */
    Tick deadline() const { return deadline_; }

    /** Disarm; drops the callback and its captures. No-op when
     *  idle, safe after the owning wheel is gone. */
    void cancel();

  private:
    friend class TimerWheel;

    TimerWheel *wheel_ = nullptr;
    TimerNode *prev_ = nullptr;
    TimerNode *next_ = nullptr;
    Tick deadline_ = 0;
    std::uint64_t order_ = 0;
    std::uint8_t level_ = 0;
    std::uint8_t slot_ = 0;
    std::function<void()> fn_;
};

/** A hierarchical timing wheel bound to one EventQueue. */
class TimerWheel
{
  public:
    /** @p name labels the driving event in traces/profiles. */
    TimerWheel(EventQueue &q, const char *name);
    ~TimerWheel();

    TimerWheel(const TimerWheel &) = delete;
    TimerWheel &operator=(const TimerWheel &) = delete;

    /**
     * Arm @p n to invoke @p fn at absolute tick @p deadline
     * (>= the queue's current tick). Re-arming an armed node moves
     * it (the old deadline and callback are dropped). Same-tick
     * timers fire in arm order.
     */
    void arm(TimerNode &n, Tick deadline, std::function<void()> fn);

    /** Disarm @p n (no-op when idle). */
    void cancel(TimerNode &n);

    /** Timers currently armed. */
    std::size_t armedCount() const { return armedCount_; }

    /** Earliest armed deadline, maxTick when empty. */
    Tick nextDeadline() const;

    // Introspection (tests, diagnostics) -----------------------------
    std::uint64_t fires() const { return fires_; }
    std::uint64_t cascades() const { return cascades_; }

    static constexpr unsigned levelBits = 6;
    static constexpr unsigned slotsPerLevel = 1u << levelBits;
    /** 8 levels x 6 bits = the queue's 48-bit usable tick horizon. */
    static constexpr unsigned levels = 8;

  private:
    struct Front
    {
        Tick tick;
        std::uint64_t order;
        bool some;
    };

    void insert(TimerNode &n);
    void detach(TimerNode &n);
    Front front() const;
    void reaim();
    void fire();

    /** Level whose slot granule distinguishes @p deadline from the
     *  wheel's current epoch. */
    unsigned levelFor(Tick deadline) const;

    EventQueue &q_;
    CallbackEvent drive_;
    Tick now_ = 0;
    std::size_t armedCount_ = 0;
    std::uint64_t fires_ = 0;
    std::uint64_t cascades_ = 0;

    bool aimed_ = false;
    Tick aimTick_ = 0;
    std::uint64_t aimOrder_ = 0;

    /** Slot occupancy bitmask per level (bit i == slot i in use). */
    std::uint64_t masks_[levels] = {};
    TimerNode *slots_[levels][slotsPerLevel] = {};
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_TIMER_WHEEL_HH
