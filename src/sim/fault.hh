/**
 * @file
 * Deterministic fault injection: a process-wide FaultPlan registry
 * plus per-component FaultSite injection points.
 *
 * Components declare *sites* -- named places where a fault could
 * strike -- via the FAULT_POINT macro. A site's full name is the
 * owning SimObject's hierarchical name plus a short point suffix
 * ("cluster.link0.drop", "mcn1.iface.alert-lost"), so a fault
 * schedule can address any component the same way stats and
 * timeline tracks do. Faults themselves are declarative FaultPlan
 * specs: a site glob, a trigger (per-opportunity probability, every
 * Nth opportunity, or an exact tick for scheduled faults such as a
 * node crash), an optional tick window / fire cap, and a
 * kind-specific numeric parameter.
 *
 *   sim::FaultPlan::instance().setSeed(seed);
 *   sim::FaultPlan::instance().arm(
 *       sim::FaultPlan::parseSpec("*.link*.drop:p=0.01", &err));
 *   ... run; every matching site now flips a deterministic coin ...
 *
 * Cost model follows the Trace/Timeline gate pattern: FaultSite::
 * fires() is an inline one-load-one-branch check against
 * detail::faultPlanArmed when no plan is armed, and an armed plan
 * whose specs do not fire draws only from *per-site* RNG streams
 * (split from the run seed by site-name hash), never from the
 * Simulation's model RNG -- so modeled timing cannot drift unless a
 * fault actually strikes.
 *
 * Determinism: per-site streams make firing independent of
 * component construction order, and FaultPlan::resetRunState()
 * rewinds every site (counters + RNG) so a --selfcheck rerun
 * replays the identical fault schedule.
 *
 * Threading / parallel engine (DESIGN.md §9): the plan registry and
 * per-site RNG streams are process-wide mutable state, so the shard
 * set clamps to one worker while a plan is armed
 * (FaultPlan::active() is one of ShardSet::run's clamp conditions).
 * The window *schedule* is unchanged -- chaos runs under --threads
 * produce the same bytes as --threads=1, just without parallelism.
 */

#ifndef MCNSIM_SIM_FAULT_HH
#define MCNSIM_SIM_FAULT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/annotate.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

namespace detail {
/** Mirror of "any fault spec armed", inline so the FaultSite::
 *  fires() gate compiles to one load + branch on instrumented hot
 *  paths. Maintained by FaultPlan::arm()/clear(). */
MCNSIM_SHARD_SAFE("config gate: written by arm()/clear() outside "
                  "run windows only; ShardSet::run clamps to one "
                  "worker while armed, so per-site RNG draw order "
                  "stays deterministic");
inline bool faultPlanArmed = false;
} // namespace detail

/** Process-wide registry of armed fault specs (see file comment). */
class FaultPlan
{
  public:
    /** One declarative fault. Exactly one trigger is used: @p at
     *  (scheduled, consumed via scheduledFor()), @p every (every
     *  Nth opportunity), or @p probability. */
    struct Spec
    {
        std::string siteGlob;     ///< glob over site names (*, ?)
        double probability = 0.0; ///< per-opportunity Bernoulli
        std::uint64_t every = 0;  ///< fire each Nth opportunity
        Tick at = 0;              ///< scheduled trigger tick
        bool scheduled = false;   ///< @p at is valid
        Tick windowStart = 0;     ///< inline triggers: active from
        Tick windowEnd = maxTick; ///< ...through this tick
        std::uint64_t maxFires = ~std::uint64_t{0};
        std::uint64_t param = 0;  ///< kind-specific (ticks, bytes..)
    };

    /** A scheduled (crash/hang/spurious-doorbell) hit for a site. */
    struct Scheduled
    {
        Tick at;
        std::uint64_t param;
    };

    /** The process-wide plan all sites consult. */
    static FaultPlan &instance();

    /** One-branch gate for injection sites (process-wide). */
    static bool active() { return detail::faultPlanArmed; }

    /** Arm one spec; activates the gate. */
    void arm(Spec spec);

    /** Disarm everything and deactivate the gate. Site records
     *  survive (components cache pointers into them). */
    void clear();

    /** Seed for the per-site RNG streams; call before arming (or
     *  follow with resetRunState()). */
    void setSeed(std::uint64_t seed);

    /** Rewind every site -- opportunity/fire counters and RNG
     *  streams -- so the next run replays the identical schedule.
     *  Required between --selfcheck repetitions. */
    void resetRunState();

    /**
     * Parse "glob:key=value[,key=value...]" into a Spec. Triggers:
     * p=<prob>, n=<every-Nth>, at=<time>. Modifiers: param=<time|n>,
     * max=<fires>, from=<time>, until=<time>. Times take ns/us/ms/s
     * suffixes (bare numbers are ticks). Returns false and sets
     * @p err on malformed input.
     */
    static bool parseSpec(const std::string &text, Spec *out,
                          std::string *err);

    /** Scheduled hits whose glob matches @p site, sorted by tick.
     *  Components query this in startup() (behind active()). */
    std::vector<Scheduled> scheduledFor(const std::string &site);

    /** Total inline fires since the last resetRunState(). */
    std::uint64_t totalFires() const { return totalFires_; }

    /** Per-site fire counts since the last resetRunState(). */
    std::vector<std::pair<std::string, std::uint64_t>>
    fireCounts() const;

    /** Armed specs (for reporting). */
    const std::vector<Spec> &specs() const { return specs_; }

    /** Simple glob: '*' any run, '?' any one char. */
    static bool globMatch(const std::string &pattern,
                          const std::string &str);

    /** Record a scheduled fault firing at @p site (crash, hang,
     *  spurious doorbell): counts it like an inline site fire so
     *  fireCounts()/totalFires() cover the whole schedule. */
    void recordFire(const std::string &site);

  private:
    friend class FaultSite;

    /** Per-site record: process lifetime, rebound lazily whenever
     *  the plan epoch moves (arm/clear/reset/seed). */
    struct SiteState
    {
        explicit SiteState(std::string n)
            : name(std::move(n)), rng(0)
        {}
        std::string name;
        Rng rng;
        std::vector<std::size_t> matches; ///< indices into specs_
        std::vector<std::uint64_t> fires; ///< per matched spec
        std::uint64_t opportunities = 0;
        std::uint64_t totalFires = 0;
        std::uint64_t epoch = 0;
    };

    SiteState *site(const std::string &name);
    void refresh(SiteState &s);
    bool query(SiteState &s, Tick now, std::uint64_t *param);
    void noteFire(SiteState &s);

    std::vector<Spec> specs_;
    std::map<std::string, std::unique_ptr<SiteState>> sites_;
    std::uint64_t seed_ = 0;
    std::uint64_t epoch_ = 1;
    std::uint64_t totalFires_ = 0;
};

/**
 * One injection point owned by a SimObject. Declare with
 * FAULT_POINT so the site name follows the hierarchy convention
 * (enforced by the fault-site lint rule):
 *
 *   sim::FaultSite faultDrop_ = FAULT_POINT("drop");
 *
 * fires() asks the plan whether a matching spec strikes at this
 * opportunity; on a hit it emits a "Fault" trace event and a
 * timeline instant on the owner's track, then returns true. param()
 * exposes the firing spec's argument, rng() a deterministic
 * per-site stream for shaping the damage (byte to flip, delay...).
 */
class FaultSite
{
  public:
    FaultSite(const SimObject &owner, const char *point)
        : name_(owner.name() + "." + point), owner_(owner)
    {}

    /** Did a fault strike at this opportunity? One branch when no
     *  plan is armed. */
    bool
    fires()
    {
        if (!FaultPlan::active()) [[likely]]
            return false;
        return firesSlow();
    }

    /** The firing spec's kind-specific parameter (valid after
     *  fires() returned true). */
    std::uint64_t param() const { return param_; }

    /** Deterministic per-site stream for shaping a hit. */
    Rng &rng();

    const std::string &name() const { return name_; }

  private:
    bool firesSlow();

    std::string name_;
    const SimObject &owner_;
    FaultPlan::SiteState *state_ = nullptr;
    std::uint64_t param_ = 0;
};

/** Declare an injection site on `this` SimObject; the site name is
 *  "<object-name>.<point>". @p point must be a literal matching
 *  [a-z][a-z0-9-]* (lint rule: fault-site). */
#define FAULT_POINT(point) ::mcnsim::sim::FaultSite{*this, point}

/**
 * Report a *scheduled* fault striking (node crash, hang, spurious
 * doorbell): emits the same "Fault" trace event + timeline instant
 * a FaultSite hit produces and records the fire under
 * "<owner>.<point>" in the plan's counts. Components call this at
 * the moment the event they scheduled from scheduledFor() fires.
 */
void reportScheduledFault(const SimObject &owner, const char *point);

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_FAULT_HH
