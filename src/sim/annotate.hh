/**
 * @file
 * Shard-safety annotations for the static analyzer
 * (tools/mcnsim_analyze.py, DESIGN.md §11 "Determinism contract").
 *
 * The parallel engine (DESIGN.md §9) promises byte-identical output
 * for any --threads=N. That promise dies quietly the moment model
 * code grows mutable process-global state whose value or access
 * order depends on thread scheduling -- the exact bug class that hit
 * the TCP ISS generators during the PDES bring-up. The analyzer
 * therefore rejects every mutable namespace-scope or function-local
 * static/thread_local reachable from model code (rule R1) unless
 * the site carries an MCNSIM_SHARD_SAFE annotation stating *why* it
 * cannot leak thread scheduling into modeled behaviour.
 *
 * Usage -- the annotation goes on the line of, or directly above,
 * the declaration it blesses:
 *
 *   MCNSIM_SHARD_SAFE("mutex-guarded registry; stats-only, never "
 *                     "read by modeled decisions");
 *   static Registry r;
 *
 * The reason must be a non-empty string literal: it is the safety
 * argument of record (greppable: `git grep MCNSIM_SHARD_SAFE`), and
 * tools/mcnsim_analyze.py refuses annotations without one. Valid
 * arguments are things like:
 *
 *  - single-writer: only written before/after run windows, or only
 *    by the owning shard's worker;
 *  - synchronized: mutex/atomic-guarded AND the value never feeds a
 *    modeled decision (stats, interning, host-side observability);
 *  - clamped: the feature forces ShardSet::run to one worker while
 *    active (trace ring, timeline, fault plan).
 *
 * "It has a mutex" alone is NOT sufficient -- a mutex serializes
 * access but does not make the access *order* deterministic; state
 * that modeled code reads back must also be order-independent.
 *
 * The macro compiles to a static_assert over the literal -- zero
 * bytes, zero branches, usable at namespace, class, and function
 * scope -- so annotating a site can never perturb modeled metrics
 * (the perf gate pins this).
 */

#ifndef MCNSIM_SIM_ANNOTATE_HH
#define MCNSIM_SIM_ANNOTATE_HH

/**
 * Declare that the mutable static on this or the next declaration
 * cannot leak thread scheduling into modeled behaviour. @p reason
 * must be a non-empty string literal carrying the safety argument.
 */
#define MCNSIM_SHARD_SAFE(reason)                                      \
    static_assert(sizeof(reason) > 1,                                  \
                  "MCNSIM_SHARD_SAFE needs a non-empty reason")

#endif // MCNSIM_SIM_ANNOTATE_HH
