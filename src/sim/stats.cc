/**
 * @file
 * Statistics package implementation.
 */

#include "sim/stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace mcnsim::sim {

void
StatBase::jsonHeader(json::Writer &w, const char *type) const
{
    w.kv("name", name_);
    w.kv("type", type);
    w.kv("desc", desc_);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name()) << " "
       << std::setw(16) << value_ << " # " << desc() << "\n";
}

void
Scalar::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "scalar");
    w.kv("value", value_);
    w.endObject();
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name()) << " "
       << std::setw(16) << mean() << " # " << desc() << " (n="
       << count_ << ")\n";
}

void
Average::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "average");
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("mean", mean());
    w.endObject();
}

Histogram::Histogram(std::string name, std::string desc, double min,
                     double max, std::size_t buckets)
    : StatBase(std::move(name), std::move(desc)), lo_(min), hi_(max),
      width_((max - min) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    MCNSIM_ASSERT(max > min && buckets > 0, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    count_++;

    if (v < lo_) {
        under_++;
    } else if (v >= hi_) {
        over_++;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx]++;
    }
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    // Fractional target rank, then linear interpolation within the
    // bucket that holds it: tail percentiles (p999) land between
    // bucket edges instead of snapping to a midpoint. The result is
    // clamped to the exact observed extremes so a sparsely filled
    // bucket cannot report a value no sample ever had.
    double target = p / 100.0 * static_cast<double>(count_);
    if (static_cast<double>(under_) >= target && under_ > 0)
        return std::min(lo_, max_);
    double seen = static_cast<double>(under_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double n = static_cast<double>(buckets_[i]);
        if (n > 0.0 && seen + n >= target) {
            double frac = (target - seen) / n;
            double v = lo_ + width_ * (static_cast<double>(i) + frac);
            return std::clamp(v, min_, max_);
        }
        seen += n;
    }
    return max_;
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name()) << " mean="
       << mean() << " min=" << min_ << " max=" << max_
       << " p50=" << percentile(50) << " p99=" << percentile(99)
       << " n=" << count_ << " # " << desc() << "\n";
}

void
Histogram::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "histogram");
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("mean", mean());
    w.kv("min", min_);
    w.kv("max", max_);
    w.kv("lo", lo_);
    w.kv("hi", hi_);
    w.kv("bucket_width", width_);
    w.kv("underflow", under_);
    w.kv("overflow", over_);
    w.key("buckets");
    w.beginArray();
    for (auto b : buckets_)
        w.value(b);
    w.endArray();
    w.key("percentiles");
    w.beginObject();
    w.kv("p50", percentile(50));
    w.kv("p90", percentile(90));
    w.kv("p99", percentile(99));
    w.endObject();
    w.endObject();
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    under_ = over_ = count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

// ---------------------------------------------------------------------
// LogBuckets / LogHistogram
// ---------------------------------------------------------------------

std::size_t
LogBuckets::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<std::size_t>(v);
    // Highest set bit k >= kSubBits: range [2^k, 2^(k+1)) splits
    // into kSubBuckets linear subbuckets of width 2^(k-kSubBits).
    unsigned k = 63u - static_cast<unsigned>(__builtin_clzll(v));
    std::uint64_t sub = (v - (std::uint64_t{1} << k)) >>
                        (k - kSubBits);
    return static_cast<std::size_t>(
        (std::uint64_t{k - kSubBits + 1} << kSubBits) + sub);
}

std::uint64_t
LogBuckets::bucketLow(std::size_t idx)
{
    if (idx < kSubBuckets)
        return idx;
    std::uint64_t major = (idx >> kSubBits) + kSubBits - 1;
    std::uint64_t sub = idx & (kSubBuckets - 1);
    return (std::uint64_t{1} << major) +
           (sub << (major - kSubBits));
}

std::uint64_t
LogBuckets::bucketHigh(std::size_t idx)
{
    if (idx < kSubBuckets)
        return idx + 1;
    std::uint64_t major = (idx >> kSubBits) + kSubBits - 1;
    return bucketLow(idx) + (std::uint64_t{1} << (major - kSubBits));
}

void
LogBuckets::sample(std::uint64_t v)
{
    std::size_t idx = bucketIndex(v);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    buckets_[idx]++;
    count_++;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
LogBuckets::merge(const LogBuckets &other)
{
    if (other.count_ == 0)
        return;
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LogBuckets::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    double target = p / 100.0 * static_cast<double>(count_);
    double seen = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double n = static_cast<double>(buckets_[i]);
        if (n > 0.0 && seen + n >= target) {
            double frac = (target - seen) / n;
            double lo = static_cast<double>(bucketLow(i));
            double hi = static_cast<double>(bucketHigh(i));
            double v = lo + (hi - lo) * frac;
            return std::clamp(v, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
        seen += n;
    }
    return static_cast<double>(max_);
}

void
LogBuckets::reset()
{
    buckets_.clear();
    count_ = sum_ = max_ = 0;
    min_ = ~std::uint64_t{0};
}

std::vector<std::pair<std::size_t, std::uint64_t>>
LogBuckets::nonzero() const
{
    std::vector<std::pair<std::size_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        if (buckets_[i])
            out.emplace_back(i, buckets_[i]);
    return out;
}

void
LogBuckets::writeJsonBody(json::Writer &w) const
{
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("min", minSample());
    w.kv("max", max_);
    w.kv("mean", mean());
    w.key("percentiles");
    w.beginObject();
    w.kv("p50", percentile(50));
    w.kv("p90", percentile(90));
    w.kv("p99", percentile(99));
    w.kv("p999", percentile(99.9));
    w.endObject();
    // Sparse encoding: [bucket-low, count] pairs; empty buckets are
    // the common case in a log-bucketed 64-bit range.
    w.key("buckets");
    w.beginArray();
    for (const auto &[idx, n] : nonzero()) {
        w.beginArray();
        w.value(bucketLow(idx));
        w.value(n);
        w.endArray();
    }
    w.endArray();
}

void
LogHistogram::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name())
       << " mean=" << mean() << " min=" << minSample()
       << " max=" << maxSample() << " p50=" << percentile(50)
       << " p99=" << percentile(99) << " p999=" << percentile(99.9)
       << " n=" << count() << " # " << desc() << "\n";
}

void
LogHistogram::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "log_histogram");
    b_.writeJsonBody(w);
    w.endObject();
}

// ---------------------------------------------------------------------
// QueueStat
// ---------------------------------------------------------------------

void
QueueStat::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name())
       << " twa=" << timeWeightedMean() << " peak=" << peak_
       << " updates=" << updates_ << " # " << desc() << "\n";
}

void
QueueStat::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "queue");
    w.kv("twa", timeWeightedMean());
    w.kv("peak", peak_);
    w.kv("updates", updates_);
    w.kv("area", area_);
    w.kv("last_level", lastLevel_);
    w.kv("last_tick", lastTick_);
    w.endObject();
}

void
QueueStat::reset()
{
    area_ = 0.0;
    lastTick_ = 0;
    lastLevel_ = peak_ = updates_ = 0;
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto *s : stats_)
        s->print(os, name_ + ".");
}

void
StatGroup::toJson(json::Writer &w) const
{
    w.beginObject();
    w.kv("name", name_);
    w.key("stats");
    w.beginArray();
    for (const auto *s : stats_)
        s->toJson(w);
    w.endArray();
    w.endObject();
}

void
StatGroup::reset()
{
    for (auto *s : stats_)
        s->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << "---------- Begin Simulation Statistics ----------\n";
    for (const auto *g : groups_)
        g->print(os);
    os << "---------- End Simulation Statistics   ----------\n";
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.kv("schema_version", std::uint64_t{1});
    writeGroups(w);
    w.endObject();
    os << "\n";
}

void
StatRegistry::writeGroups(json::Writer &w) const
{
    w.key("groups");
    w.beginArray();
    for (const auto *g : groups_)
        g->toJson(w);
    w.endArray();
}

void
StatRegistry::resetAll()
{
    for (auto *g : groups_)
        g->reset();
}

} // namespace mcnsim::sim
