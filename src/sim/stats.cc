/**
 * @file
 * Statistics package implementation.
 */

#include "sim/stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace mcnsim::sim {

void
StatBase::jsonHeader(json::Writer &w, const char *type) const
{
    w.kv("name", name_);
    w.kv("type", type);
    w.kv("desc", desc_);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name()) << " "
       << std::setw(16) << value_ << " # " << desc() << "\n";
}

void
Scalar::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "scalar");
    w.kv("value", value_);
    w.endObject();
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name()) << " "
       << std::setw(16) << mean() << " # " << desc() << " (n="
       << count_ << ")\n";
}

void
Average::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "average");
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("mean", mean());
    w.endObject();
}

Histogram::Histogram(std::string name, std::string desc, double min,
                     double max, std::size_t buckets)
    : StatBase(std::move(name), std::move(desc)), lo_(min), hi_(max),
      width_((max - min) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    MCNSIM_ASSERT(max > min && buckets > 0, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    count_++;

    if (v < lo_) {
        under_++;
    } else if (v >= hi_) {
        over_++;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx]++;
    }
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_));
    std::uint64_t seen = under_;
    if (seen >= target && under_ > 0)
        return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return lo_ + width_ * (static_cast<double>(i) + 0.5);
    }
    return max_;
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name()) << " mean="
       << mean() << " min=" << min_ << " max=" << max_
       << " p50=" << percentile(50) << " p99=" << percentile(99)
       << " n=" << count_ << " # " << desc() << "\n";
}

void
Histogram::toJson(json::Writer &w) const
{
    w.beginObject();
    jsonHeader(w, "histogram");
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("mean", mean());
    w.kv("min", min_);
    w.kv("max", max_);
    w.kv("lo", lo_);
    w.kv("hi", hi_);
    w.kv("bucket_width", width_);
    w.kv("underflow", under_);
    w.kv("overflow", over_);
    w.key("buckets");
    w.beginArray();
    for (auto b : buckets_)
        w.value(b);
    w.endArray();
    w.key("percentiles");
    w.beginObject();
    w.kv("p50", percentile(50));
    w.kv("p90", percentile(90));
    w.kv("p99", percentile(99));
    w.endObject();
    w.endObject();
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    under_ = over_ = count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto *s : stats_)
        s->print(os, name_ + ".");
}

void
StatGroup::toJson(json::Writer &w) const
{
    w.beginObject();
    w.kv("name", name_);
    w.key("stats");
    w.beginArray();
    for (const auto *s : stats_)
        s->toJson(w);
    w.endArray();
    w.endObject();
}

void
StatGroup::reset()
{
    for (auto *s : stats_)
        s->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << "---------- Begin Simulation Statistics ----------\n";
    for (const auto *g : groups_)
        g->print(os);
    os << "---------- End Simulation Statistics   ----------\n";
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.kv("schema_version", std::uint64_t{1});
    writeGroups(w);
    w.endObject();
    os << "\n";
}

void
StatRegistry::writeGroups(json::Writer &w) const
{
    w.key("groups");
    w.beginArray();
    for (const auto *g : groups_)
        g->toJson(w);
    w.endArray();
}

void
StatRegistry::resetAll()
{
    for (auto *g : groups_)
        g->reset();
}

} // namespace mcnsim::sim
