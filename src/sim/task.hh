/**
 * @file
 * Coroutine-based simulated software tasks.
 *
 * Kernel-level machinery in mcnsim (drivers, IRQs, TCP processing) is
 * event/callback driven, but user-level software -- iperf clients,
 * ping, MPI ranks, workload phases -- reads far more naturally as
 * straight-line code. Task<T> is a lazily-started coroutine resumed
 * from the event queue:
 *
 *   sim::Task<> client(Env &env) {
 *       co_await env.delay(10 * sim::oneUs);
 *       co_await sock->connect(server);
 *       while (...) co_await sock->send(chunk);
 *   }
 *
 * Tasks compose by co_await-ing sub-tasks; top-level tasks are
 * launched with spawnDetached() or via a TaskGroup that tracks
 * completion. Condition / Mailbox / SimSemaphore provide blocking
 * primitives whose wakeups are funnelled through the event queue so
 * notify never recursively re-enters the notifier.
 */

#ifndef MCNSIM_SIM_TASK_HH
#define MCNSIM_SIM_TASK_HH

#include <coroutine>
#include <deque>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

template <typename T = void>
class Task;

namespace detail {

/** Promise parts shared between Task<T> and Task<void>. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    bool detached = false;
    /** Set by spawnDetached: the queue tracking this root frame so
     *  a frame still suspended at teardown can be reaped instead of
     *  leaked. */
    EventQueue *reaper = nullptr;

    std::suspend_always initial_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto &p = h.promise();
            std::coroutine_handle<> next =
                p.continuation ? p.continuation
                               : std::coroutine_handle<>(
                                     std::noop_coroutine());
            if (p.detached) {
                // Nobody owns the frame; free it now. Detached tasks
                // must not throw -- surface bugs loudly instead of
                // losing them.
                if (p.exception) {
                    try {
                        std::rethrow_exception(p.exception);
                    } catch (const std::exception &e) {
                        std::fprintf(stderr,
                                     "detached task threw: %s\n",
                                     e.what());
                        std::abort();
                    }
                }
                if (p.reaper)
                    p.reaper->forgetDetachedFrame(h);
                h.destroy();
            }
            return next;
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }
};

} // namespace detail

/**
 * A lazily started coroutine yielding a value of type T. The Task
 * object owns the coroutine frame unless detached via
 * spawnDetached().
 */
template <typename T>
class Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(std::coroutine_handle<promise_type>::
                            from_promise(*this));
        }

        void return_value(T v) { value.emplace(std::move(v)); }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

    Task(Task &&o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return h_ != nullptr; }
    bool done() const { return !h_ || h_.done(); }

    /** Awaiter: start the child, resume parent when it finishes. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent)
            {
                h.promise().continuation = parent;
                return h;
            }

            T
            await_resume()
            {
                auto &p = h.promise();
                if (p.exception)
                    std::rethrow_exception(p.exception);
                return std::move(*p.value);
            }
        };
        return Awaiter{h_};
    }

    /** Release ownership (used by spawnDetached). */
    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(h_, nullptr);
    }

  private:
    void
    destroy()
    {
        if (h_)
            h_.destroy();
        h_ = nullptr;
    }

    std::coroutine_handle<promise_type> h_ = nullptr;
};

/** Task<void> specialisation. */
template <>
class Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(std::coroutine_handle<promise_type>::
                            from_promise(*this));
        }

        void return_void() {}
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

    Task(Task &&o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return h_ != nullptr; }
    bool done() const { return !h_ || h_.done(); }

    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent)
            {
                h.promise().continuation = parent;
                return h;
            }

            void
            await_resume()
            {
                if (h.promise().exception)
                    std::rethrow_exception(h.promise().exception);
            }
        };
        return Awaiter{h_};
    }

    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(h_, nullptr);
    }

  private:
    void
    destroy()
    {
        if (h_)
            h_.destroy();
        h_ = nullptr;
    }

    std::coroutine_handle<promise_type> h_ = nullptr;
};

/**
 * Launch a task with no owner; the frame frees itself on completion.
 * The task starts running at the current tick via the event queue
 * (never inline), so spawning from inside an event handler is safe.
 */
void spawnDetached(EventQueue &q, Task<void> task);

/** Awaitable pause: resume after @p delta ticks. */
struct Delay
{
    EventQueue &q;
    Tick delta;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        q.scheduleIn([h] { h.resume(); }, delta, "task-delay",
                     EventPriority::Process);
    }

    void await_resume() {}
};

/** Convenience factory. */
inline Delay
delayFor(EventQueue &q, Tick delta)
{
    return Delay{q, delta};
}

/**
 * A broadcast condition variable for coroutines. Waiters suspend;
 * notifyAll() schedules every waiter for resumption at the current
 * tick. Predicate re-checking is the caller's job, as with any CV.
 */
class Condition
{
  public:
    explicit Condition(EventQueue &q) : q_(q) {}

    /** Awaitable that suspends until the next notifyAll(). */
    auto
    wait()
    {
        struct Awaiter
        {
            Condition &cv;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                cv.waiters_.push_back(h);
            }

            void await_resume() {}
        };
        return Awaiter{*this};
    }

    /** Wake all current waiters (via the event queue, not inline). */
    void notifyAll();

    /** Wake one waiter in FIFO order. */
    void notifyOne();

    std::size_t waiterCount() const { return waiters_.size(); }

  private:
    EventQueue &q_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/** Counting semaphore for coroutines (e.g. bounded socket buffers). */
class SimSemaphore
{
  public:
    SimSemaphore(EventQueue &q, std::int64_t initial)
        : cv_(q), count_(initial)
    {}

    /** Acquire @p n units, suspending while unavailable. */
    Task<void>
    acquire(std::int64_t n = 1)
    {
        while (count_ < n)
            co_await cv_.wait();
        count_ -= n;
    }

    /** Release @p n units and wake waiters. */
    void
    release(std::int64_t n = 1)
    {
        count_ += n;
        cv_.notifyAll();
    }

    std::int64_t available() const { return count_; }

  private:
    Condition cv_;
    std::int64_t count_;
};

/**
 * A typed blocking queue: the standard way simulated processes hand
 * messages to each other (used by mini-MPI matching).
 */
template <typename T>
class Mailbox
{
  public:
    explicit Mailbox(EventQueue &q) : cv_(q) {}

    void
    push(T v)
    {
        items_.push_back(std::move(v));
        cv_.notifyAll();
    }

    /** Pop the front item, suspending while empty. */
    Task<T>
    pop()
    {
        while (items_.empty())
            co_await cv_.wait();
        T v = std::move(items_.front());
        items_.pop_front();
        co_return v;
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

  private:
    Condition cv_;
    std::deque<T> items_;
};

/**
 * Tracks a set of spawned tasks so a harness can wait for (or poll)
 * collective completion.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(EventQueue &q) : q_(q), done_(q) {}

    /** Launch @p t as part of the group. */
    void spawn(Task<void> t);

    /** Number of tasks still running. */
    int liveCount() const { return live_; }

    /** True once every spawned task finished. */
    bool allDone() const { return live_ == 0 && spawned_ > 0; }

    /** Awaitable completion of the whole group. */
    Task<void>
    wait()
    {
        while (live_ > 0)
            co_await done_.wait();
    }

  private:
    Task<void> wrap(Task<void> t);

    EventQueue &q_;
    Condition done_;
    int live_ = 0;
    int spawned_ = 0;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_TASK_HH
