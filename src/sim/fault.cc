/**
 * @file
 * FaultPlan / FaultSite implementation.
 */

#include "sim/annotate.hh"
#include "sim/fault.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/timeline.hh"

namespace mcnsim::sim {

FaultPlan &
FaultPlan::instance()
{
    MCNSIM_SHARD_SAFE("process-wide plan, but ShardSet::run clamps "
                      "to one worker while a plan is armed, and "
                      "arm()/clear() happen outside run windows");
    static FaultPlan plan;
    return plan;
}

void
FaultPlan::arm(Spec spec)
{
    specs_.push_back(std::move(spec));
    ++epoch_;
    detail::faultPlanArmed = true;
}

void
FaultPlan::clear()
{
    specs_.clear();
    ++epoch_;
    totalFires_ = 0;
    detail::faultPlanArmed = false;
}

void
FaultPlan::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    ++epoch_;
}

void
FaultPlan::resetRunState()
{
    ++epoch_;
    totalFires_ = 0;
}

namespace {

/** FNV-1a over the site name, mixed with the run seed, so each
 *  site gets an independent deterministic stream regardless of
 *  construction order. */
std::uint64_t
siteSeed(std::uint64_t run_seed, const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    // splitmix64 finalizer over (hash ^ seed)
    std::uint64_t z = h ^ (run_seed + 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Parse "<number>[ns|us|ms|s]" into ticks; bare numbers are
 *  ticks (picoseconds). */
bool
parseTime(const std::string &v, Tick *out)
{
    std::size_t pos = 0;
    double num;
    try {
        num = std::stod(v, &pos);
    } catch (...) {
        return false;
    }
    const std::string suffix = v.substr(pos);
    double scale = 1.0;
    if (suffix == "ns")
        scale = static_cast<double>(oneNs);
    else if (suffix == "us")
        scale = static_cast<double>(oneUs);
    else if (suffix == "ms")
        scale = static_cast<double>(oneMs);
    else if (suffix == "s")
        scale = static_cast<double>(oneSec);
    else if (!suffix.empty())
        return false;
    if (num < 0)
        return false;
    *out = static_cast<Tick>(num * scale);
    return true;
}

} // namespace

bool
FaultPlan::parseSpec(const std::string &text, Spec *out,
                     std::string *err)
{
    const auto colon = text.find(':');
    if (colon == std::string::npos || colon == 0) {
        if (err)
            *err = "expected '<site-glob>:<key>=<value>,...'";
        return false;
    }
    Spec spec;
    spec.siteGlob = text.substr(0, colon);
    bool have_trigger = false;

    std::string rest = text.substr(colon + 1);
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string kv = rest.substr(0, comma);
        rest = comma == std::string::npos ? ""
                                          : rest.substr(comma + 1);
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
            if (err)
                *err = "expected key=value, got '" + kv + "'";
            return false;
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        bool ok = true;
        if (key == "p") {
            try {
                spec.probability = std::stod(val);
            } catch (...) {
                ok = false;
            }
            ok = ok && spec.probability >= 0.0
                 && spec.probability <= 1.0;
            have_trigger = true;
        } else if (key == "n") {
            spec.every = std::strtoull(val.c_str(), nullptr, 10);
            ok = spec.every > 0;
            have_trigger = true;
        } else if (key == "at") {
            ok = parseTime(val, &spec.at);
            spec.scheduled = true;
            have_trigger = true;
        } else if (key == "param") {
            ok = parseTime(val, &spec.param);
        } else if (key == "max") {
            spec.maxFires = std::strtoull(val.c_str(), nullptr, 10);
            ok = spec.maxFires > 0;
        } else if (key == "from") {
            ok = parseTime(val, &spec.windowStart);
        } else if (key == "until") {
            ok = parseTime(val, &spec.windowEnd);
        } else {
            if (err)
                *err = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            if (err)
                *err = "bad value for '" + key + "': '" + val + "'";
            return false;
        }
    }
    if (!have_trigger) {
        if (err)
            *err = "need a trigger: p=, n= or at=";
        return false;
    }
    *out = std::move(spec);
    return true;
}

std::vector<FaultPlan::Scheduled>
FaultPlan::scheduledFor(const std::string &site)
{
    std::vector<Scheduled> hits;
    for (const Spec &s : specs_) {
        if (s.scheduled && globMatch(s.siteGlob, site))
            hits.push_back({s.at, s.param});
    }
    std::sort(hits.begin(), hits.end(),
              [](const Scheduled &a, const Scheduled &b) {
                  return a.at < b.at;
              });
    return hits;
}

std::vector<std::pair<std::string, std::uint64_t>>
FaultPlan::fireCounts() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &[name, state] : sites_) {
        if (state->epoch == epoch_ && state->totalFires)
            out.emplace_back(name, state->totalFires);
    }
    return out;
}

bool
FaultPlan::globMatch(const std::string &pattern,
                     const std::string &str)
{
    // Iterative backtracking matcher: '*' matches any run
    // (including dots), '?' any single character.
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < str.size()) {
        if (p < pattern.size()
            && (pattern[p] == '?' || pattern[p] == str[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

FaultPlan::SiteState *
FaultPlan::site(const std::string &name)
{
    auto it = sites_.find(name);
    if (it == sites_.end()) {
        it = sites_
                 .emplace(name,
                          std::make_unique<SiteState>(name))
                 .first;
    }
    return it->second.get();
}

void
FaultPlan::refresh(SiteState &s)
{
    if (s.epoch == epoch_)
        return;
    s.epoch = epoch_;
    s.opportunities = 0;
    s.totalFires = 0;
    s.rng.seed(siteSeed(seed_, s.name));
    s.matches.clear();
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (!specs_[i].scheduled
            && globMatch(specs_[i].siteGlob, s.name))
            s.matches.push_back(i);
    }
    s.fires.assign(s.matches.size(), 0);
}

bool
FaultPlan::query(SiteState &s, Tick now, std::uint64_t *param)
{
    refresh(s);
    if (s.matches.empty())
        return false;
    ++s.opportunities;
    for (std::size_t i = 0; i < s.matches.size(); ++i) {
        const Spec &spec = specs_[s.matches[i]];
        if (now < spec.windowStart || now > spec.windowEnd)
            continue;
        if (s.fires[i] >= spec.maxFires)
            continue;
        const bool hit =
            spec.every ? (s.opportunities % spec.every == 0)
                       : s.rng.chance(spec.probability);
        if (!hit)
            continue;
        ++s.fires[i];
        *param = spec.param;
        noteFire(s);
        return true;
    }
    return false;
}

void
FaultPlan::noteFire(SiteState &s)
{
    ++s.totalFires;
    ++totalFires_;
}

void
FaultPlan::recordFire(const std::string &site_name)
{
    SiteState *s = site(site_name);
    refresh(*s);
    noteFire(*s);
}

void
reportScheduledFault(const SimObject &owner, const char *point)
{
    const std::string site = owner.name() + "." + point;
    const Tick now = owner.curTick();
    FaultPlan::instance().recordFire(site);
    dprintf(now, "Fault", site, ": scheduled fault fired");
    if (Timeline::active()) [[unlikely]]
        Timeline::instance().instant(owner.tlTrack(), "Fault", now);
}

bool
FaultSite::firesSlow()
{
    FaultPlan &plan = FaultPlan::instance();
    if (!state_)
        state_ = plan.site(name_);
    const Tick now = owner_.curTick();
    if (!plan.query(*state_, now, &param_))
        return false;
    dprintf(now, "Fault", name_, ": fired (site fire #",
            state_->totalFires, ", param=", param_, ")");
    if (Timeline::active()) [[unlikely]]
        Timeline::instance().instant(owner_.tlTrack(), "Fault",
                                     now);
    return true;
}

Rng &
FaultSite::rng()
{
    FaultPlan &plan = FaultPlan::instance();
    if (!state_)
        state_ = plan.site(name_);
    plan.refresh(*state_);
    return state_->rng;
}

} // namespace mcnsim::sim
