/**
 * @file
 * Fundamental simulation types: ticks, cycles, frequencies and the
 * conversions between them.
 *
 * A Tick is the base unit of simulated time and corresponds to one
 * picosecond, which is fine enough to express DDR4 and multi-GHz core
 * clocks without rounding surprises.
 */

#ifndef MCNSIM_SIM_TYPES_HH
#define MCNSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace mcnsim::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A signed tick delta, used for latency arithmetic. */
using TickDelta = std::int64_t;

/** Sentinel for "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per common wall-clock units. */
constexpr Tick onePs = 1;
constexpr Tick oneNs = 1000 * onePs;
constexpr Tick oneUs = 1000 * oneNs;
constexpr Tick oneMs = 1000 * oneUs;
constexpr Tick oneSec = 1000 * oneMs;

/** An integral number of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Convert a tick count to (fractional) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

/** Convert seconds to ticks (saturating at maxTick). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(oneSec));
}

/** Convert ticks to microseconds as a double, handy for reports. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneUs);
}

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_TYPES_HH
