/**
 * @file
 * TimerWheel implementation. See the header for the determinism
 * and lifetime contracts; the comments here cover the filing and
 * cascading mechanics.
 */

#include "sim/timer_wheel.hh"

#include <bit>
#include <utility>

#include "sim/logging.hh"

namespace mcnsim::sim {

void
TimerNode::cancel()
{
    if (wheel_)
        wheel_->cancel(*this);
}

TimerWheel::TimerWheel(EventQueue &q, const char *name)
    : q_(q), drive_(name, [this] { fire(); })
{}

TimerWheel::~TimerWheel()
{
    // Detach every armed node before the slot arrays die. Dropping
    // a callback may release the last reference to its owner, whose
    // destructor can re-enter cancel() for *other* nodes -- so the
    // wheel must be consistent each time a callback is destroyed
    // (the `fn` local dies at the bottom of each iteration, after
    // the detach bookkeeping).
    while (armedCount_ > 0) {
        TimerNode *n = nullptr;
        for (unsigned l = 0; l < levels && !n; ++l) {
            if (!masks_[l])
                continue;
            unsigned s = static_cast<unsigned>(
                std::countr_zero(masks_[l]));
            n = slots_[l][s];
        }
        MCNSIM_ASSERT(n, "armed count does not match wheel slots");
        detach(*n);
        n->wheel_ = nullptr;
        armedCount_--;
        std::function<void()> fn = std::move(n->fn_);
        n->fn_ = nullptr;
    }
    if (aimed_)
        q_.deschedule(&drive_);
}

unsigned
TimerWheel::levelFor(Tick deadline) const
{
    Tick diff = deadline ^ now_;
    if (diff == 0)
        return 0;
    unsigned high = 63u - static_cast<unsigned>(
                              std::countl_zero(diff));
    unsigned level = high / levelBits;
    MCNSIM_ASSERT(level < levels,
                  "timer deadline beyond the wheel horizon");
    return level;
}

void
TimerWheel::insert(TimerNode &n)
{
    unsigned level = levelFor(n.deadline_);
    unsigned slot = static_cast<unsigned>(
        (n.deadline_ >> (level * levelBits)) &
        (slotsPerLevel - 1));
    n.level_ = static_cast<std::uint8_t>(level);
    n.slot_ = static_cast<std::uint8_t>(slot);
    n.prev_ = nullptr;
    n.next_ = slots_[level][slot];
    if (n.next_)
        n.next_->prev_ = &n;
    slots_[level][slot] = &n;
    masks_[level] |= std::uint64_t{1} << slot;
}

void
TimerWheel::detach(TimerNode &n)
{
    if (n.prev_)
        n.prev_->next_ = n.next_;
    else
        slots_[n.level_][n.slot_] = n.next_;
    if (n.next_)
        n.next_->prev_ = n.prev_;
    if (!slots_[n.level_][n.slot_])
        masks_[n.level_] &= ~(std::uint64_t{1} << n.slot_);
    n.prev_ = n.next_ = nullptr;
}

Tick
TimerWheel::nextDeadline() const
{
    Front f = front();
    return f.some ? f.tick : maxTick;
}

TimerWheel::Front
TimerWheel::front() const
{
    // Per level, the lowest occupied slot holds that level's
    // earliest deadlines (live deadlines never precede now_, which
    // pins every level's occupied indices at or after now_'s own --
    // see the header's invariant discussion). Walk that one slot
    // for its (deadline, order) minimum and reduce across levels;
    // the order tie-break is what makes same-tick firing follow arm
    // order even when epoch drift filed equal deadlines at
    // different levels.
    Front best{0, 0, false};
    for (unsigned l = 0; l < levels; ++l) {
        if (!masks_[l])
            continue;
        unsigned s =
            static_cast<unsigned>(std::countr_zero(masks_[l]));
        for (TimerNode *n = slots_[l][s]; n; n = n->next_) {
            if (!best.some || n->deadline_ < best.tick ||
                (n->deadline_ == best.tick &&
                 n->order_ < best.order)) {
                best = Front{n->deadline_, n->order_, true};
            }
        }
    }
    return best;
}

void
TimerWheel::reaim()
{
    Front f = front();
    if (!f.some) {
        if (aimed_) {
            q_.deschedule(&drive_);
            aimed_ = false;
        }
        return;
    }
    if (aimed_ && aimTick_ == f.tick && aimOrder_ == f.order)
        return;
    if (aimed_)
        q_.deschedule(&drive_);
    // The driving event borrows the front timer's reserved
    // within-tick slot, landing at exactly the heap position that
    // timer's own event would have had.
    q_.schedule(&drive_, f.tick, f.order);
    aimed_ = true;
    aimTick_ = f.tick;
    aimOrder_ = f.order;
}

void
TimerWheel::fire()
{
    aimed_ = false;
    Tick t = q_.curTick();
    if (t != now_) {
        now_ = t;
        // Cascade: on every upper level, re-file the slot that
        // contains the new now. Entries equal to now drop into
        // level 0's due slot; later entries move to the level where
        // they now diverge from now (never back into the slot being
        // drained, so one pass suffices).
        for (unsigned l = 1; l < levels; ++l) {
            unsigned s = static_cast<unsigned>(
                (t >> (l * levelBits)) & (slotsPerLevel - 1));
            TimerNode *n = slots_[l][s];
            if (!n)
                continue;
            slots_[l][s] = nullptr;
            masks_[l] &= ~(std::uint64_t{1} << s);
            while (n) {
                TimerNode *next = n->next_;
                insert(*n);
                cascades_++;
                n = next;
            }
        }
    }

    // The due slot holds only deadline == now entries (level-0
    // filing pins all 64 high bit groups). Fire the arm-order
    // minimum, re-aim -- possibly at this same tick for the next
    // due timer -- then run the callback with the wheel already
    // consistent (it may arm, cancel, or destroy timers freely).
    unsigned s = static_cast<unsigned>(t & (slotsPerLevel - 1));
    TimerNode *due = nullptr;
    for (TimerNode *n = slots_[0][s]; n; n = n->next_) {
        MCNSIM_ASSERT(n->deadline_ == t,
                      "stale entry in the due slot");
        if (!due || n->order_ < due->order_)
            due = n;
    }
    MCNSIM_ASSERT(due, "timer wheel fired with an empty due slot");
    detach(*due);
    due->wheel_ = nullptr;
    armedCount_--;
    fires_++;
    std::function<void()> fn = std::move(due->fn_);
    due->fn_ = nullptr;
    reaim();
    fn();
}

void
TimerWheel::arm(TimerNode &n, Tick deadline,
                std::function<void()> fn)
{
    MCNSIM_ASSERT(deadline >= q_.curTick(),
                  "arming a timer in the past");
    MCNSIM_ASSERT(n.wheel_ == this || n.wheel_ == nullptr,
                  "timer node is armed on a different wheel");
    std::function<void()> old;
    if (n.wheel_) {
        detach(n);
        old = std::move(n.fn_); // destroyed after state settles
        armedCount_--;
    }
    n.deadline_ = deadline;
    // Reserve the within-tick position *now*: this consumes exactly
    // the sequence number a schedule-at-arm-time design would, so
    // the fire interleaves with unrelated same-tick events
    // identically (see the header).
    n.order_ = q_.reserveOrder();
    n.fn_ = std::move(fn);
    n.wheel_ = this;
    insert(n);
    armedCount_++;
    reaim();
}

void
TimerWheel::cancel(TimerNode &n)
{
    if (n.wheel_ != this)
        return;
    detach(n);
    n.wheel_ = nullptr;
    armedCount_--;
    std::function<void()> fn = std::move(n.fn_);
    n.fn_ = nullptr;
    reaim();
    // `fn` dies here: dropping the keep-alive capture may destroy
    // the owner, whose destructor may cancel other nodes -- the
    // wheel is already consistent.
}

} // namespace mcnsim::sim
