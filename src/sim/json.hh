/**
 * @file
 * Minimal JSON support for the simulator's observability layer: a
 * streaming Writer (used by StatRegistry::dumpJson and the bench
 * JSON artifacts) and a small recursive-descent parser (used by the
 * tests to round-trip what the writer emits, and by tooling that
 * validates BENCH_*.json files).
 *
 * Writer usage:
 *
 *   json::Writer w(os);
 *   w.beginObject();
 *   w.kv("bench", "fig8a_iperf");
 *   w.key("metrics");
 *   w.beginObject();
 *   w.kv("gbps", 5.57);
 *   w.endObject();
 *   w.endObject();   // {"bench":"fig8a_iperf","metrics":{"gbps":5.57}}
 *
 * Parser usage:
 *
 *   json::Value v = json::parse(text);       // throws FatalError
 *   double g = v["metrics"]["gbps"].asNumber();
 *
 * Deliberately tiny: no comments, no trailing commas, numbers are
 * doubles. NaN/Inf are emitted as null (JSON has no spelling for
 * them) and doubles are printed with round-trip precision.
 */

#ifndef MCNSIM_SIM_JSON_HH
#define MCNSIM_SIM_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mcnsim::sim::json {

/** Escape @p s into a double-quoted JSON string literal. */
std::string quote(const std::string &s);

/** Shortest representation of @p v that parses back to the same
 *  double ("16.5", not "16.500000000000000"). */
std::string formatNumber(double v);

/**
 * Streaming JSON writer with automatic comma/indent handling.
 * Containers must be closed in the order they were opened; every
 * object member needs a key() (or kv()) before its value.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os, int indent = 2)
        : os_(os), indent_(indent)
    {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Name the next member of the enclosing object. */
    void key(const std::string &k);

    void value(double v);
    void value(std::uint64_t v);
    void value(int v) { value(static_cast<std::uint64_t>(v < 0 ? 0 : v)); }
    void value(bool v);
    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void null();

    /** key(k) followed by value(v). */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

  private:
    struct Level
    {
        bool isObject;
        std::size_t members = 0;
    };

    /** Comma/newline/indent bookkeeping before a key or value. */
    void prepare();
    void newlineIndent();

    std::ostream &os_;
    int indent_;
    std::vector<Level> stack_;
    bool pendingKey_ = false;
};

/**
 * A parsed JSON value. Arrays and objects hold their children by
 * value; object member order is preserved.
 */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; panic via fatal() on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<Value> &asArray() const;
    const std::vector<std::pair<std::string, Value>> &asObject() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &k) const;

    /** Object member access; fatal() when absent. */
    const Value &operator[](const std::string &k) const;

    /** Array element access; fatal() when out of range. */
    const Value &operator[](std::size_t i) const;

    std::size_t size() const;

    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double n);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> a);
    static Value
    makeObject(std::vector<std::pair<std::string, Value>> o);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/** Parse @p text (one JSON document); throws FatalError on error. */
Value parse(const std::string &text);

} // namespace mcnsim::sim::json

#endif // MCNSIM_SIM_JSON_HH
