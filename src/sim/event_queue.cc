/**
 * @file
 * EventQueue implementation: vector-backed binary heap with lazy
 * deletion + threshold compaction, and a slab pool for managed
 * callback events.
 */

#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

#include "sim/logging.hh"

namespace mcnsim::sim {

const char *
internEventName(const std::string &name)
{
    // Process-lifetime intern pool: node-based, so c_str() pointers
    // stay stable across rehashes. The simulator is single-threaded
    // by design (one EventQueue per Simulation, no cross-thread
    // scheduling), so no lock is needed.
    static std::unordered_set<std::string> pool;
    return pool.insert(name).first->c_str();
}

Event::~Event()
{
    // An event must not be destroyed while scheduled; the queue would
    // be left holding a dangling pointer. Managed events are recycled
    // by the queue itself after clearing the flag.
    assert(!scheduled_ && "event destroyed while scheduled");
}

EventQueue::EventQueue(std::string name) : name_(std::move(name)) {}

EventQueue::~EventQueue()
{
    // Drain without executing: recycle managed events, detach the
    // rest. The slabs (and every pooled event) are freed when the
    // members are destroyed afterwards.
    for (const Entry &e : heap_) {
        if (e.ev->seq_ == e.seq()) {
            e.ev->scheduled_ = false;
            if (e.ev->managed_)
                recycle(static_cast<CallbackEvent *>(e.ev));
        }
    }
    heap_.clear();
}

CallbackEvent *
EventQueue::acquireSlot()
{
    if (freeList_.empty()) {
        // Carve a fresh slab. new[] keeps existing events in place,
        // so live Event* handles never move.
        slabs_.emplace_back(new CallbackEvent[slabEvents]);
        CallbackEvent *slab = slabs_.back().get();
        freeList_.reserve(freeList_.size() + slabEvents);
        for (std::size_t i = 0; i < slabEvents; ++i)
            freeList_.push_back(&slab[i]);
        poolCarved_ += slabEvents;
    }
    CallbackEvent *ev = freeList_.back();
    freeList_.pop_back();
    return ev;
}

void
EventQueue::recycle(CallbackEvent *ev)
{
    assert(ev->managed_ && "recycling a non-pooled event");
    assert(!ev->scheduled_ && "recycling a scheduled event");
    // Drop the callback now: captures (PacketPtrs, shared sockets,
    // coroutine handles) must not live until the slot is reused.
    ev->fn_ = nullptr;
    ev->name_ = "pool-free";
    ev->managed_ = false;
    freeList_.push_back(ev);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (when < curTick_) [[unlikely]]
        throw std::logic_error("scheduling event '" +
                               std::string(ev->name()) +
                               "' in the past");
    if (ev->scheduled_) [[unlikely]]
        throw std::logic_error("event '" + std::string(ev->name()) +
                               "' already scheduled");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    assert(ev->seq_ <= seqMask && "sequence numbers exhausted");
    heap_.push_back(Entry{when, entryKey(ev), ev});
    std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

void
EventQueue::deschedule(Event *ev)
{
    // Lazy removal: mark unscheduled; the stale heap entry is
    // skipped (and a managed event recycled) when popped, or
    // reclaimed wholesale by compact() once stale entries dominate.
    if (!ev->scheduled_)
        return;
    ev->scheduled_ = false;
    staleEntries_++;
    if (staleEntries_ > staleCompactMin &&
        staleEntries_ * 2 > heap_.size())
        compact();
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    // deschedule() clears scheduled_, turning the live heap entry
    // stale; schedule() then hands out a fresh (monotonic) sequence
    // number, which is what lets the stale entry be recognized on
    // pop or compaction. Sequence monotonicity is the invariant the
    // whole lazy-deletion scheme rests on.
    deschedule(ev);
    assert(!ev->scheduled_ && "deschedule left event scheduled");
    schedule(ev, when);
    assert(ev->seq_ + 1 == nextSeq_ &&
           "reschedule did not assign the newest sequence number");
}

void
EventQueue::compact()
{
    // Drop every stale entry in one pass and re-heapify. An entry is
    // live iff its event is scheduled and the sequence numbers agree;
    // a seq-mismatched entry is a leftover from reschedule() (a newer
    // live entry exists elsewhere in the heap). A seq-matched entry
    // for a descheduled managed event is that event's only remaining
    // reference -- recycle it here, exactly as popAndRun() would.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const Entry e = heap_[i];
        if (e.ev->scheduled_ && e.ev->seq_ == e.seq()) {
            heap_[kept++] = e;
        } else if (!e.ev->scheduled_ && e.ev->managed_ &&
                   e.ev->seq_ == e.seq()) {
            recycle(static_cast<CallbackEvent *>(e.ev));
        }
    }
    heap_.resize(kept);
    std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
    staleEntries_ = 0;
}

void
EventQueue::popAndRun()
{
    const Entry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();

    Event *ev = e.ev;
    // Stale entry: the event was descheduled or rescheduled since
    // this heap entry was created.
    if (!ev->scheduled_ || ev->seq_ != e.seq()) {
        staleEntries_--;
        // A descheduled managed event with no live entry must be
        // recycled here, exactly once: when its latest (seq-matching)
        // stale entry surfaces.
        if (!ev->scheduled_ && ev->managed_ && ev->seq_ == e.seq())
            recycle(static_cast<CallbackEvent *>(ev));
        return;
    }

    assert(e.when >= curTick_);
    curTick_ = e.when;
    ev->scheduled_ = false;
    processed_++;
    // Flight-recorder hook: under the "Event" debug flag every
    // processed event lands in the trace ring, so a panic() dump
    // shows exactly what the simulator was doing. anyActive() keeps
    // the disabled-case cost to one branch on this hot path.
    if (Trace::anyActive() && Trace::enabled("Event")) [[unlikely]]
        Trace::emit(curTick_, "Event",
                    strcat(name_, ": run '", ev->name(), "' prio=",
                           static_cast<int>(ev->priority())));
    if (profiling_) [[unlikely]] {
        dispatchProfiled(ev);
        return;
    }
    if (ev->managed_) {
        // Devirtualized dispatch: a managed event is always a pooled
        // CallbackEvent, so skip the vtable hop.
        auto *cb = static_cast<CallbackEvent *>(ev);
        cb->fn_();
        if (!cb->scheduled_)
            recycle(cb);
    } else {
        ev->process();
    }
}

void
EventQueue::dispatchProfiled(Event *ev)
{
    // Capture the name pointer before dispatch: a managed event's
    // slot is recycled (and its name reset) the moment it completes.
    // Literal and interned names are process-lifetime, so the saved
    // pointer keys the aggregation map safely afterwards.
    const char *name = ev->name_;
    const auto t0 = std::chrono::steady_clock::now();
    if (ev->managed_) {
        auto *cb = static_cast<CallbackEvent *>(ev);
        cb->fn_();
        if (!cb->scheduled_)
            recycle(cb);
    } else {
        ev->process();
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    auto &row = profile_[name];
    row.first++;
    row.second += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

std::vector<EventQueue::ProfileEntry>
EventQueue::profileEntries() const
{
    std::vector<ProfileEntry> out;
    out.reserve(profile_.size());
    for (const auto &[name, row] : profile_)
        out.push_back(ProfileEntry{name, row.first, row.second});
    std::sort(out.begin(), out.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  if (a.hostNs != b.hostNs)
                      return a.hostNs > b.hostNs;
                  return std::string_view(a.name) <
                         std::string_view(b.name);
              });
    return out;
}

Tick
EventQueue::run(Tick until)
{
    while (!heap_.empty() && heap_.front().when <= until)
        popAndRun();
    if (curTick_ < until && until != maxTick)
        curTick_ = until;
    return curTick_;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t n)
{
    std::uint64_t before = processed_;
    while (!heap_.empty() && processed_ - before < n)
        popAndRun();
    return processed_ - before;
}

} // namespace mcnsim::sim
