/**
 * @file
 * EventQueue implementation.
 */

#include "sim/event_queue.hh"

#include <cassert>
#include <stdexcept>

#include "sim/logging.hh"

namespace mcnsim::sim {

Event::~Event()
{
    // An event must not be destroyed while scheduled; the queue would
    // be left holding a dangling pointer. Managed events are deleted
    // by the queue itself after clearing the flag.
    assert(!scheduled_ && "event destroyed while scheduled");
}

EventQueue::EventQueue(std::string name) : name_(std::move(name)) {}

EventQueue::~EventQueue()
{
    // Drain without executing: free managed events, detach the rest.
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (e.ev->seq_ == e.seq) {
            e.ev->scheduled_ = false;
            if (e.ev->managed_)
                delete e.ev;
        }
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (when < curTick_)
        throw std::logic_error("scheduling event '" + ev->name() +
                               "' in the past");
    if (ev->scheduled_)
        throw std::logic_error("event '" + ev->name() +
                               "' already scheduled");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    heap_.push(Entry{when, static_cast<int>(ev->priority()),
                     ev->seq_, ev});
}

void
EventQueue::deschedule(Event *ev)
{
    // Lazy removal: mark unscheduled; the stale heap entry is skipped
    // (and a managed event freed) when popped.
    if (!ev->scheduled_)
        return;
    ev->scheduled_ = false;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    // deschedule() leaves a stale heap entry behind; give the event a
    // fresh sequence number so the stale entry is recognizable.
    ev->scheduled_ = false;
    schedule(ev, when);
}

Event *
EventQueue::schedule(std::function<void()> fn, Tick when,
                     std::string name, EventPriority prio)
{
    auto *ev = new CallbackEvent(std::move(name), std::move(fn), prio);
    ev->managed_ = true;
    schedule(ev, when);
    return ev;
}

void
EventQueue::popAndRun()
{
    Entry e = heap_.top();
    heap_.pop();

    Event *ev = e.ev;
    // Stale entry: the event was descheduled or rescheduled since this
    // heap entry was created.
    if (!ev->scheduled_ || ev->seq_ != e.seq) {
        // A descheduled managed event with no live entry must be freed
        // here, exactly once: when its latest (seq-matching) stale
        // entry surfaces.
        if (!ev->scheduled_ && ev->managed_ && ev->seq_ == e.seq)
            delete ev;
        return;
    }

    assert(e.when >= curTick_);
    curTick_ = e.when;
    ev->scheduled_ = false;
    processed_++;
    // Flight-recorder hook: under the "Event" debug flag every
    // processed event lands in the trace ring, so a panic() dump
    // shows exactly what the simulator was doing. anyActive() keeps
    // the disabled-case cost to one branch on this hot path.
    if (Trace::anyActive() && Trace::enabled("Event"))
        Trace::emit(curTick_, "Event",
                    strcat(name_, ": run '", ev->name(), "' prio=",
                           static_cast<int>(ev->priority())));
    ev->process();
    if (ev->managed_ && !ev->scheduled_)
        delete ev;
}

Tick
EventQueue::run(Tick until)
{
    while (!heap_.empty() && heap_.top().when <= until)
        popAndRun();
    if (curTick_ < until && until != maxTick)
        curTick_ = until;
    return curTick_;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t n)
{
    std::uint64_t before = processed_;
    while (!heap_.empty() && processed_ - before < n)
        popAndRun();
    return processed_ - before;
}

} // namespace mcnsim::sim
