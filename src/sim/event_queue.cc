/**
 * @file
 * EventQueue implementation: vector-backed binary heap with lazy
 * deletion + threshold compaction, and a slab pool for managed
 * callback events.
 */

#include "sim/annotate.hh"
#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

#include "sim/logging.hh"

namespace mcnsim::sim {

MCNSIM_SHARD_SAFE("thread_local dispatch context; see the matching "
                  "annotation on the declaration in event_queue.hh");
thread_local EventQueue *EventQueue::currentQueue_ = nullptr;

const char *
internEventName(const std::string &name)
{
    // Process-lifetime intern pool: node-based, so c_str() pointers
    // stay stable across rehashes. Interning can happen from any
    // shard worker (a dynamic event name in a window), so the pool
    // is mutex-guarded; the fast path (string-literal names) never
    // comes here.
    MCNSIM_SHARD_SAFE("mutex-guarded intern pool: insertion order "
                      "varies across runs/threads but only the "
                      "interned bytes are ever read back, and equal "
                      "strings intern to equal bytes");
    static std::mutex mtx;
    static std::unordered_set<std::string> pool;
    std::lock_guard<std::mutex> lk(mtx);
    return pool.insert(name).first->c_str();
}

Event::~Event()
{
    // A caller-owned event may die while the queue still holds heap
    // entries for it -- scheduled (a periodic device event whose
    // owner is torn down before the Simulation) or lazily
    // descheduled. Scrub those entries so the queue never
    // dereferences a destroyed event; this makes destruction an
    // implicit deschedule. Found by ASan/UBSan: the old code left
    // dangling Event*s for ~EventQueue to read.
    if (queue_ && (scheduled_ || staleRefs_ > 0))
        queue_->forgetDead(this);
}

EventQueue::EventQueue(std::string name) : name_(std::move(name)) {}

EventQueue::~EventQueue()
{
    // Reap suspended detached coroutine frames first: their locals'
    // destructors may deschedule events, which needs the heap still
    // intact.
    destroyDetachedFrames();

    // Drain without executing: recycle managed events, detach the
    // rest. Every non-null entry points at a live event (~Event
    // scrubs entries for destroyed ones). The slabs (and every
    // pooled event) are freed when the members are destroyed
    // afterwards. Recycling destroys callback captures, which can
    // re-enter deschedule() (a lambda dropping the last shared_ptr
    // to a socket whose destructor cancels its timers); draining_
    // makes those re-entrant calls mark-only.
    draining_ = true;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const Entry e = heap_[i];
        Event *ev = e.ev;
        if (!ev)
            continue;
        if (ev->scheduled_ && ev->seq_ == e.seq())
            ev->scheduled_ = false;
        else
            ev->staleRefs_--;
        if (ev->managed_) {
            if (ev->seq_ == e.seq())
                recycle(static_cast<CallbackEvent *>(ev));
        } else if (ev->staleRefs_ == 0) {
            // The event outlives the queue; make sure its destructor
            // will not call back into us.
            ev->queue_ = nullptr;
        }
    }
    heap_.clear();
}

void
EventQueue::forgetDead(Event *ev)
{
    for (Entry &e : heap_) {
        if (e.ev != ev)
            continue;
        // The (single) live entry turns stale by being nulled; stale
        // entries were already counted.
        if (ev->scheduled_ && e.seq() == ev->seq_)
            staleEntries_++;
        e.ev = nullptr;
    }
    ev->scheduled_ = false;
    ev->staleRefs_ = 0;
    ev->queue_ = nullptr;
}

void
EventQueue::registerDetachedFrame(std::coroutine_handle<> h)
{
    detachedFrames_.push_back(h);
}

void
EventQueue::forgetDetachedFrame(std::coroutine_handle<> h)
{
    for (std::size_t i = 0; i < detachedFrames_.size(); ++i) {
        if (detachedFrames_[i] == h) {
            detachedFrames_[i] = detachedFrames_.back();
            detachedFrames_.pop_back();
            return;
        }
    }
}

void
EventQueue::destroyDetachedFrames()
{
    // Destroying a root frame runs its locals' destructors, which
    // may deschedule events or release sockets but never resumes or
    // spawns coroutines, so a plain sweep over a moved-out copy is
    // safe (roots never own other roots).
    std::vector<std::coroutine_handle<>> frames;
    frames.swap(detachedFrames_);
    for (auto h : frames)
        h.destroy();
}

CallbackEvent *
EventQueue::acquireSlot()
{
    if (freeList_.empty()) {
        // Carve a fresh slab. new[] keeps existing events in place,
        // so live Event* handles never move.
        slabs_.emplace_back(new CallbackEvent[slabEvents]);
        CallbackEvent *slab = slabs_.back().get();
        freeList_.reserve(freeList_.size() + slabEvents);
        for (std::size_t i = 0; i < slabEvents; ++i)
            freeList_.push_back(&slab[i]);
        poolCarved_ += slabEvents;
    }
    CallbackEvent *ev = freeList_.back();
    freeList_.pop_back();
    MCNSIM_IF_CHECKED(ev->poisoned_ = false;)
    return ev;
}

void
EventQueue::recycle(CallbackEvent *ev)
{
    assert(ev->managed_ && "recycling a non-pooled event");
    assert(!ev->scheduled_ && "recycling a scheduled event");
    // Drop the callback now: captures (PacketPtrs, shared sockets,
    // coroutine handles) must not live until the slot is reused.
    ev->fn_ = nullptr;
#ifdef MCNSIM_CHECKED
    // Poison the slot: remember the name it died under, bump the
    // generation, and plant a callback that panics if anything ever
    // dispatches this slot while it sits on the free list. Any
    // schedule()/deschedule()/reschedule() of the dead pointer
    // panics too (see the poisoned_ checks in those functions).
    ev->lastName_ = ev->name_;
    ev->gen_++;
    ev->poisoned_ = true;
    const char *dead = ev->lastName_;
    ev->fn_ = [dead] {
        panic("use-after-fire: dispatched a recycled pooled event "
              "(last live name '", dead, "')");
    };
#endif
    ev->name_ = "pool-free";
    ev->managed_ = false;
    freeList_.push_back(ev);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    schedule(ev, when, nextSeq_++);
}

void
EventQueue::schedule(Event *ev, Tick when, std::uint64_t order)
{
    MCNSIM_CHECK(order < nextSeq_,
                 "schedule() of event '", ev->name(),
                 "' with an unreserved order slot (order ", order,
                 " >= next sequence ", nextSeq_,
                 "): call reserveOrder() first");
    MCNSIM_CHECK(!MCNSIM_IF_CHECKED(ev->poisoned_),
                 "schedule() of a dead pooled Event* (last live "
                 "name '", ev->lastLiveName(), "', generation ",
                 ev->generation(), "): managed events die at "
                 "fire/deschedule");
    assert(!draining_ && "schedule() during ~EventQueue");
    if (when < curTick_) [[unlikely]]
        throw std::logic_error("scheduling event '" +
                               std::string(ev->name()) +
                               "' in the past");
    if (ev->scheduled_) [[unlikely]]
        throw std::logic_error("event '" + std::string(ev->name()) +
                               "' already scheduled");
    // Cross-shard lifetime rule (DESIGN.md §9): while some queue is
    // dispatching on this thread, scheduling onto a different queue
    // races with whatever thread owns that queue's shard. Legitimate
    // cross-shard traffic goes through the ShardSet mailbox
    // (Simulation::postCrossShard), which lands here only between
    // windows, when current() is null.
    MCNSIM_CHECK(currentQueue_ == nullptr || currentQueue_ == this,
                 "cross-shard schedule: event '", ev->name(),
                 "' scheduled on queue '", name_, "' while queue '",
                 currentQueue_ ? currentQueue_->name_ : "?",
                 "' is dispatching; route it through "
                 "Simulation::postCrossShard (the mailbox API)");
    if (ev->queue_ != this && ev->queue_ && ev->staleRefs_ > 0)
        [[unlikely]] {
        // Moving to a new queue with stale entries left on the old
        // one: scrub them so the old queue never touches us again.
        ev->queue_->forgetDead(ev);
    }
    ev->queue_ = this;
    ev->when_ = when;
    ev->seq_ = order;
    ev->scheduled_ = true;
    assert(ev->seq_ <= seqMask && "sequence numbers exhausted");
    heap_.push_back(Entry{when, entryKey(ev), ev});
    std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

void
EventQueue::deschedule(Event *ev)
{
    MCNSIM_CHECK(draining_ || !MCNSIM_IF_CHECKED(ev->poisoned_),
                 "deschedule() of a dead pooled Event* (last live "
                 "name '", ev->lastLiveName(), "', generation ",
                 ev->generation(), "): managed events die at "
                 "fire/deschedule");
    MCNSIM_CHECK(draining_ || !(ev->managed_ && !ev->scheduled_),
                 "deschedule() of a managed Event* ('", ev->name(),
                 "') that already fired or was descheduled: the "
                 "pointer died at that moment");
    // Lazy removal: mark unscheduled; the stale heap entry is
    // skipped (and a managed event recycled) when popped, or
    // reclaimed wholesale by compact() once stale entries dominate.
    if (!ev->scheduled_)
        return;
    ev->scheduled_ = false;
    ev->staleRefs_++;
    staleEntries_++;
    // No compaction while ~EventQueue walks the heap (re-entrant
    // call from a capture's destructor): the walk settles accounts.
    if (!draining_ && staleEntries_ > staleCompactMin &&
        staleEntries_ * 2 > heap_.size())
        compact();
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    // deschedule() clears scheduled_, turning the live heap entry
    // stale; schedule() then hands out a fresh (monotonic) sequence
    // number, which is what lets the stale entry be recognized on
    // pop or compaction. Sequence monotonicity is the invariant the
    // whole lazy-deletion scheme rests on.
    deschedule(ev);
    assert(!ev->scheduled_ && "deschedule left event scheduled");
    schedule(ev, when);
    assert(ev->seq_ + 1 == nextSeq_ &&
           "reschedule did not assign the newest sequence number");
}

void
EventQueue::compact()
{
    // Drop every stale entry in one pass and re-heapify. An entry is
    // live iff its event is scheduled and the sequence numbers agree;
    // a seq-mismatched entry is a leftover from reschedule() (a newer
    // live entry exists elsewhere in the heap). A seq-matched entry
    // for a descheduled managed event is that event's only remaining
    // reference -- recycle it here, exactly as popAndRun() would.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const Entry e = heap_[i];
        if (!e.ev)
            continue; // scrubbed by ~Event
        if (e.ev->scheduled_ && e.ev->seq_ == e.seq()) {
            heap_[kept++] = e;
            continue;
        }
        e.ev->staleRefs_--;
        if (!e.ev->scheduled_ && e.ev->managed_ &&
            e.ev->seq_ == e.seq()) {
            recycle(static_cast<CallbackEvent *>(e.ev));
        }
    }
    heap_.resize(kept);
    std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
    staleEntries_ = 0;
}

void
EventQueue::popAndRun()
{
    const Entry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();

    Event *ev = e.ev;
    // Entry scrubbed by ~Event: the event is gone; only the count
    // needs fixing.
    if (!ev) [[unlikely]] {
        staleEntries_--;
        return;
    }
    // Stale entry: the event was descheduled or rescheduled since
    // this heap entry was created.
    if (!ev->scheduled_ || ev->seq_ != e.seq()) {
        staleEntries_--;
        ev->staleRefs_--;
        // A descheduled managed event with no live entry must be
        // recycled here, exactly once: when its latest (seq-matching)
        // stale entry surfaces.
        if (!ev->scheduled_ && ev->managed_ && ev->seq_ == e.seq())
            recycle(static_cast<CallbackEvent *>(ev));
        return;
    }

    assert(e.when >= curTick_);
    curTick_ = e.when;
    ev->scheduled_ = false;
    processed_++;
    // Flight-recorder hook: under the "Event" debug flag every
    // processed event lands in the trace ring, so a panic() dump
    // shows exactly what the simulator was doing. anyActive() keeps
    // the disabled-case cost to one branch on this hot path.
    if (Trace::anyActive() && Trace::enabled("Event")) [[unlikely]]
        Trace::emit(curTick_, "Event",
                    strcat(name_, ": run '", ev->name(), "' prio=",
                           static_cast<int>(ev->priority())));
    if (profiling_) [[unlikely]] {
        dispatchProfiled(ev);
        return;
    }
    if (ev->managed_) {
        // Devirtualized dispatch: a managed event is always a pooled
        // CallbackEvent, so skip the vtable hop.
        auto *cb = static_cast<CallbackEvent *>(ev);
        cb->fn_();
        if (!cb->scheduled_)
            recycle(cb);
    } else {
        ev->process();
    }
}

void
EventQueue::dispatchProfiled(Event *ev)
{
    // Capture the name pointer before dispatch: a managed event's
    // slot is recycled (and its name reset) the moment it completes.
    // Literal and interned names are process-lifetime, so the saved
    // pointer keys the aggregation map safely afterwards.
    const char *name = ev->name_;
    const auto t0 = std::chrono::steady_clock::now();
    if (ev->managed_) {
        auto *cb = static_cast<CallbackEvent *>(ev);
        cb->fn_();
        if (!cb->scheduled_)
            recycle(cb);
    } else {
        ev->process();
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    auto &row = profile_[name];
    row.first++;
    row.second += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

std::vector<EventQueue::ProfileEntry>
EventQueue::profileEntries() const
{
    std::vector<ProfileEntry> out;
    out.reserve(profile_.size());
    // analyze-ok: ptr-unordered-iter (sorted by (hostNs, name)
    // below before anything is emitted; host-time observability
    // only, never feeds modeled state)
    for (const auto &[name, row] : profile_)
        out.push_back(ProfileEntry{name, row.first, row.second});
    std::sort(out.begin(), out.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  if (a.hostNs != b.hostNs)
                      return a.hostNs > b.hostNs;
                  return std::string_view(a.name) <
                         std::string_view(b.name);
              });
    return out;
}

Tick
EventQueue::run(Tick until)
{
    CurrentScope scope(this);
    while (!heap_.empty() && heap_.front().when <= until)
        popAndRun();
    if (curTick_ < until && until != maxTick)
        curTick_ = until;
    return curTick_;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t n)
{
    CurrentScope scope(this);
    std::uint64_t before = processed_;
    while (!heap_.empty() && processed_ - before < n)
        popAndRun();
    return processed_ - before;
}

Tick
EventQueue::nextEventTick()
{
    // Drop stale heads (descheduled/rescheduled leftovers) so the
    // reported tick belongs to a live event. popAndRun() on a stale
    // head does exactly the bookkeeping run() would do, so this
    // pruning never perturbs the schedule.
    while (!heap_.empty()) {
        const Entry &e = heap_.front();
        if (e.ev && e.ev->scheduled_ && e.ev->seq_ == e.seq())
            return e.when;
        popAndRun();
    }
    return maxTick;
}

void
EventQueue::runWindow(Tick endExclusive)
{
    CurrentScope scope(this);
    while (!heap_.empty() && heap_.front().when < endExclusive)
        popAndRun();
}

void
EventQueue::setCurTick(Tick t)
{
    MCNSIM_ASSERT(t >= curTick_,
                  "setCurTick would move time backwards");
    assert((heap_.empty() || nextEventTick() >= t) &&
           "setCurTick would jump over a pending event");
    curTick_ = t;
}

} // namespace mcnsim::sim
