/**
 * @file
 * Network-wide flow telemetry: per-flow accounting tables plus
 * per-hop path-latency histograms, the "which flow, which hop,
 * which queue?" layer the whole-run stats cannot answer.
 *
 * Three record families feed one process-wide FlowTelemetry
 * registry:
 *
 *  - *flows*: the transport layers (TCP/UDP/ICMP) record tx/rx
 *    bytes and packets, retransmits, RTT samples and end-to-end
 *    delivery latency per 5-tuple (src ip/port, dst ip/port,
 *    proto). A flow is unidirectional, like an IPFIX/NetFlow
 *    record: one TCP connection shows up as two flows.
 *
 *  - *path hops*: delivery sites fold a packet's PathTrace
 *    (net/packet.hh) into per-hop latency histograms -- the delta
 *    between consecutive hop stamps is attributed to the later
 *    hop, INT-style, so "where does the time go between these two
 *    stacks" is answerable per component, not just end to end.
 *
 *  - *queues* live elsewhere: QueueStat (sim/stats.hh) instances
 *    registered in the owners' stat groups, updated behind the
 *    same FlowTelemetry::active() gate.
 *
 * Cost model follows the Timeline/FaultPlan pattern exactly: every
 * record site is gated on FlowTelemetry::active(), an inline
 * one-load-one-branch check against detail::flowTelemetryActive.
 * Telemetry only *observes* ticks that already exist -- it
 * schedules no events and draws no RNG -- so modeled metrics are
 * bit-identical with the gate on or off.
 *
 * Threading / parallel engine (DESIGN.md §9): tables are
 * per-shard. A record site passes its owner's shardId(), making
 * each table single-writer (that shard's worker thread); the fold
 * step merges shards in index order with commutative integer
 * arithmetic and emits map-sorted JSON, so the artifact is
 * byte-identical for every --threads=N (shard structure is a
 * function of topology, not worker count).
 */

#ifndef MCNSIM_SIM_FLOW_STATS_HH
#define MCNSIM_SIM_FLOW_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/annotate.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

namespace detail {
/** Mirror of "flow telemetry enabled", inline so record-site gates
 *  compile to one load + branch. Maintained by FlowTelemetry::
 *  enable()/disable(). */
MCNSIM_SHARD_SAFE("config gate: toggled by enable()/disable() "
                  "outside run windows only; read-only during a "
                  "window, and the tables it gates are per-shard "
                  "single-writer");
inline bool flowTelemetryActive = false;
} // namespace detail

/** Process-wide flow/path telemetry registry (see file comment). */
class FlowTelemetry
{
  public:
    /** Upper bound on shard ids; topology shard counts are node
     *  counts, far below this. Fixed storage keeps record sites
     *  allocation- and race-free. */
    static constexpr std::size_t kMaxShards = 64;

    /** Unidirectional 5-tuple flow identity. */
    struct FlowKey
    {
        std::uint32_t srcIp = 0;
        std::uint32_t dstIp = 0;
        std::uint16_t srcPort = 0;
        std::uint16_t dstPort = 0;
        std::uint8_t proto = 0; ///< IP proto (1 icmp, 6 tcp, 17 udp)

        bool
        operator<(const FlowKey &o) const
        {
            return std::tie(srcIp, dstIp, srcPort, dstPort, proto) <
                   std::tie(o.srcIp, o.dstIp, o.srcPort, o.dstPort,
                            o.proto);
        }
    };

    /** Per-flow accumulators. All integer, so shard merges are
     *  order-independent. */
    struct FlowRecord
    {
        std::uint64_t txBytes = 0;
        std::uint64_t txPackets = 0;
        std::uint64_t rxBytes = 0;
        std::uint64_t rxPackets = 0;
        std::uint64_t retransmits = 0;
        std::uint64_t rttSamples = 0;
        std::uint64_t rttSumTicks = 0;
        std::uint64_t rttMinTicks = ~std::uint64_t{0};
        std::uint64_t rttMaxTicks = 0;
        Tick firstTick = maxTick; ///< first record touching the flow
        Tick lastTick = 0;        ///< last record touching the flow
        /** End-to-end delivery latency (StackTx -> Delivered). */
        LogBuckets latency;

        void merge(const FlowRecord &o);
    };

    /** Per-hop path latency (time attributed to reaching a hop). */
    struct HopRecord
    {
        LogBuckets latency;

        void merge(const HopRecord &o) { latency.merge(o.latency); }
    };

    /** Upper bound on counted path lengths (PathTrace stamps per
     *  packet); longer paths clamp into the last bin. */
    static constexpr std::size_t kMaxPathLen = 32;

    static FlowTelemetry &instance();

    /** One-branch gate for record sites (process-wide). */
    static bool active() { return detail::flowTelemetryActive; }

    /** Reset all tables and activate the gate. */
    void enable();

    /** Deactivate the gate. Tables survive for export. */
    void disable();

    // --- Record API ---------------------------------------------------
    // Callers gate on active() first and pass their owning
    // SimObject's shardId(): each shard table is single-writer.

    void recordTx(std::size_t shard, const FlowKey &key,
                  std::uint64_t bytes, Tick now);

    /** @p latency is the StackTx->Delivered span in ticks, or
     *  maxTick when the packet carries no usable trace. */
    void recordRx(std::size_t shard, const FlowKey &key,
                  std::uint64_t bytes, Tick now, Tick latency);

    void recordRetransmit(std::size_t shard, const FlowKey &key);

    void recordRtt(std::size_t shard, const FlowKey &key, Tick rtt);

    /** Attribute @p delta ticks to hop @p hop (a component name;
     *  copied into the table on first sight, so the caller's string
     *  only needs to live for this call -- benches fold after their
     *  Simulation, and every SimObject name in it, is gone). */
    void recordHop(std::size_t shard, const char *hop, Tick delta);

    /** Count one delivered packet whose PathTrace carried @p hops
     *  stamps (a path-length histogram: multi-switch fabrics show
     *  their diameter here, and a packet seen with more stamps than
     *  the topology diameter means a forwarding loop). */
    void recordPathLen(std::size_t shard, std::size_t hops);

    // --- Fold / export ------------------------------------------------

    /** Merge every shard table (deterministic order). */
    std::map<FlowKey, FlowRecord> foldFlows() const;
    std::map<std::string, HopRecord> foldHops() const;
    std::array<std::uint64_t, kMaxPathLen> foldPathLens() const;

    /** True when any shard recorded anything. */
    bool hasData() const;

    /** Write the "flows" and "path_latency" members into an open
     *  JSON object (the schema-v3 stats blocks). */
    void writeJsonBlocks(json::Writer &w) const;

    /** Standalone mcnsim-flow-stats artifact. */
    void exportJson(
        std::ostream &os,
        const std::vector<std::pair<std::string, std::string>> &meta)
        const;

    /** Dotted-quad rendering of a FlowKey IP. */
    static std::string ipToString(std::uint32_t ip);

    /** "tcp"/"udp"/"icmp", or the number for anything else. */
    static std::string protoName(std::uint8_t proto);

  private:
    struct Shard
    {
        std::map<FlowKey, FlowRecord> flows;
        /** Keyed by owned name copies (transparent comparator, so
         *  the steady-state recordHop lookup takes the raw char*
         *  without allocating); map order is name order, which
         *  makes the fold and the JSON deterministic. */
        std::map<std::string, HopRecord, std::less<>> hops;
        /** pathLen[n] = delivered packets with n PathTrace stamps. */
        std::array<std::uint64_t, kMaxPathLen> pathLen{};
    };

    Shard &shard(std::size_t idx);

    std::array<Shard, kMaxShards> shards_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_FLOW_STATS_HH
