/**
 * @file
 * Flight-recorder trace ring implementation.
 */

#include "sim/annotate.hh"
#include "sim/trace_ring.hh"

#include <cstdlib>

namespace mcnsim::sim {

TraceRing &
TraceRing::instance()
{
    // MCNSIM_TRACE_RING=N sizes the process-wide ring at first use
    // (the CLI's --trace-ring flag calls setCapacity() instead).
    MCNSIM_SHARD_SAFE("process-wide trace ring, but tracing clamps "
                      "the ShardSet to one worker; capacity is set "
                      "during static init or CLI parsing");
    static TraceRing ring = [] {
        std::size_t cap = defaultCapacity;
        if (const char *env = std::getenv("MCNSIM_TRACE_RING")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                cap = static_cast<std::size_t>(v);
        }
        return TraceRing(cap);
    }();
    return ring;
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    entries_.reserve(capacity_);
}

void
TraceRing::setCapacity(std::size_t n)
{
    capacity_ = n ? n : 1;
    clear();
    entries_.reserve(capacity_);
}

void
TraceRing::record(Tick when, std::string flag, std::string msg)
{
    recorded_++;
    if (entries_.size() < capacity_) {
        entries_.push_back(
            {when, std::move(flag), std::move(msg)});
        return;
    }
    entries_[head_] = {when, std::move(flag), std::move(msg)};
    head_ = (head_ + 1) % capacity_;
}

std::vector<TraceRecord>
TraceRing::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(entries_.size());
    // head_ is the oldest entry once the ring has wrapped.
    for (std::size_t i = 0; i < entries_.size(); ++i)
        out.push_back(entries_[(head_ + i) % entries_.size()]);
    return out;
}

void
TraceRing::dump(std::ostream &os) const
{
    if (entries_.empty())
        return;
    os << "---------- flight recorder (last " << entries_.size()
       << " of " << recorded_ << " trace events) ----------\n";
    for (const auto &r : snapshot())
        os << "  " << r.when << ": [" << r.flag << "] " << r.msg
           << "\n";
    os << "---------- end flight recorder ----------\n";
}

void
TraceRing::clear()
{
    entries_.clear();
    head_ = 0;
}

} // namespace mcnsim::sim
