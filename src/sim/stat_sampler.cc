/**
 * @file
 * StatSampler implementation.
 */

#include "sim/stat_sampler.hh"

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace mcnsim::sim {

StatSampler::StatSampler(Simulation &sim, Tick period)
    : sim_(sim), period_(period)
{
    MCNSIM_ASSERT(period_ > 0, "sampler period must be nonzero");
}

StatSampler::~StatSampler()
{
    stop();
}

void
StatSampler::addProbe(std::string name, std::function<double()> fn)
{
    MCNSIM_ASSERT(ticks_.empty(),
                  "probes must be registered before sampling starts");
    probes_.push_back(Probe{std::move(name), std::move(fn)});
    data_.emplace_back();
}

std::size_t
StatSampler::addRegistryStats(const std::string &filter)
{
    std::size_t added = 0;
    for (const StatGroup *g : sim_.statRegistry().groups()) {
        for (StatBase *s : g->stats()) {
            std::string qualified = g->name() + "." + s->name();
            if (!filter.empty() &&
                qualified.find(filter) == std::string::npos)
                continue;
            if (auto *sc = dynamic_cast<const Scalar *>(s)) {
                addProbe(qualified, [sc] { return sc->value(); });
                added++;
            } else if (auto *av = dynamic_cast<const Average *>(s)) {
                addProbe(qualified, [av] { return av->mean(); });
                added++;
            }
            // Histograms are skipped: a distribution does not
            // collapse to one meaningful time-series value.
        }
    }
    return added;
}

void
StatSampler::start()
{
    if (running_)
        return;
    // The sampler reads live stats mid-run: prepareStatsDump() and
    // the probe lambdas touch every shard's objects between
    // windows. Clamp the sharded engine to one worker so those
    // reads are race-free; the shard structure (and therefore the
    // modeled output) is untouched -- --threads=N stays
    // byte-identical, it just executes serially while sampling.
    if (sim_.threads() > 1)
        sim_.setThreads(1);
    running_ = true;
    sampleAndReschedule();
}

void
StatSampler::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (ev_) {
        sim_.eventQueue().deschedule(ev_);
        ev_ = nullptr;
    }
}

void
StatSampler::sampleOnce()
{
    // Fold shard-local counters (split-link deltas, see DESIGN.md
    // §9) into the registry before reading it; no-op when nothing
    // is pending.
    sim_.prepareStatsDump();
    ticks_.push_back(sim_.curTick());
    for (std::size_t i = 0; i < probes_.size(); ++i)
        data_[i].push_back(probes_[i].fn());
}

void
StatSampler::sampleAndReschedule()
{
    // The managed event pointer dies when the event fires; null it
    // before anything can observe it (canonical pattern, see the
    // EventQueue lifetime rules).
    ev_ = nullptr;
    sampleOnce();
    // lint-ok: this-capture (stop() deschedules in ~StatSampler)
    ev_ = sim_.eventQueue().scheduleIn(
        [this] { sampleAndReschedule(); }, period_, "stat-sample",
        EventPriority::StatsDump);
}

const std::vector<double> &
StatSampler::values(std::size_t probe) const
{
    MCNSIM_ASSERT(probe < data_.size(), "probe index out of range");
    return data_[probe];
}

void
StatSampler::exportJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    json::Writer w(os);
    w.beginObject();
    w.kv("schema_version", std::uint64_t{1});
    w.kv("kind", "mcnsim-stats-series");
    w.key("meta");
    w.beginObject();
    for (const auto &[k, v] : meta)
        w.kv(k, v);
    w.endObject();
    w.kv("period_ticks", period_);
    w.kv("period_us", ticksToUs(period_));
    w.kv("snapshots", std::uint64_t{ticks_.size()});
    w.key("ticks");
    w.beginArray();
    for (Tick t : ticks_)
        w.value(t);
    w.endArray();
    w.key("series");
    w.beginArray();
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        w.beginObject();
        w.kv("name", probes_[i].name);
        w.key("values");
        w.beginArray();
        for (double v : data_[i])
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace mcnsim::sim
