/**
 * @file
 * Checked-build support: machine-enforced invariants for the
 * simulator's sharp-edged hot-path contracts.
 *
 * The hot-path overhaul (pooled managed events, copy-on-write
 * packets, lazily-compacted deschedule lists, circular SRAM rings)
 * bought its speed with invariants that a silent bug can violate
 * without any test noticing. The checked build compiles extra
 * detectors into those layers:
 *
 *  - pooled-event lifetime checker: generation counters + slot
 *    poisoning in the EventQueue, so any use of a managed Event*
 *    after it fired or was descheduled panics with the event's
 *    interned name (and the flight-recorder ring, via panic());
 *  - CoW packet aliasing checker: a seal hash taken whenever a
 *    packet buffer becomes shared, re-verified on every subsequent
 *    access, so a write through a stale view (const_cast, a cached
 *    data() pointer from before clone()) panics at the next audit;
 *  - ring-index / SRAM-buffer bounds invariants in the MCN message
 *    rings (start/end/used consistency, trace-queue sync).
 *
 * Enable with -DMCNSIM_CHECKED=ON at configure time; the option
 * defines MCNSIM_CHECKED on the mcnsim target *publicly*, because
 * the checkers add fields to Event and Packet (every consumer must
 * agree on the layout). When the option is off, MCNSIM_CHECK()
 * compiles to nothing and the extra fields vanish, so release
 * builds pay zero bytes and zero branches -- the perf gate
 * (tools/check_perf.py) enforces that.
 *
 * See README.md and DESIGN.md "Correctness tooling".
 */

#ifndef MCNSIM_SIM_CHECKED_HH
#define MCNSIM_SIM_CHECKED_HH

#include <cstddef>
#include <cstdint>

#include "sim/logging.hh"

namespace mcnsim::sim {

#ifdef MCNSIM_CHECKED
inline constexpr bool checkedBuild = true;
#else
inline constexpr bool checkedBuild = false;
#endif

namespace checked {

/** FNV-1a over a byte range: the CoW seal hash. Fast enough to run
 *  per packet access in checked builds, and any single-bit change
 *  flips the digest. */
inline std::uint64_t
hashBytes(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace checked
} // namespace mcnsim::sim

/**
 * MCNSIM_CHECK(cond, ...): checked-build invariant. Panics (which
 * dumps the flight-recorder ring) when @p cond is false; compiles
 * to nothing -- the condition is NOT evaluated -- when the checked
 * build is off. Use MCNSIM_ASSERT for invariants that must hold in
 * every build.
 */
#ifdef MCNSIM_CHECKED
#define MCNSIM_CHECK(cond, ...)                                       \
    do {                                                              \
        if (!(cond))                                                  \
            ::mcnsim::sim::panic("checked: '", #cond,                 \
                                 "' violated: ", __VA_ARGS__);        \
    } while (0)
#define MCNSIM_IF_CHECKED(...) __VA_ARGS__
#else
#define MCNSIM_CHECK(cond, ...) ((void)0)
#define MCNSIM_IF_CHECKED(...)
#endif

#endif // MCNSIM_SIM_CHECKED_HH
