/**
 * @file
 * Conservative parallel discrete-event simulation (PDES): shard a
 * Simulation into per-node EventQueues and run them on a thread
 * pool, bounded by a lookahead derived from the smallest
 * inter-shard link latency (the dist-gem5 synchronization scheme
 * the paper's own evaluation used).
 *
 * Model (see DESIGN.md §9 for the full determinism argument):
 *
 *  - Every shard is one EventQueue plus the components built inside
 *    its Simulation::ShardScope. Components interact freely within
 *    a shard (same queue, same thread during a window).
 *  - Time advances in windows. Each window, the set computes the
 *    global horizon h = min over shards of the next event tick,
 *    then every shard executes its events with tick < h + L in
 *    parallel, where L is the lookahead: the smallest latency of
 *    any registered inter-shard edge (addEdge). Events a shard
 *    creates for itself are unrestricted; events crossing shards
 *    must land at or beyond the current window end, which the
 *    physical link latency guarantees.
 *  - Cross-shard events travel as mailbox messages, not direct
 *    schedule() calls. Each (src, dst) pair has a single-writer
 *    mailbox; messages carry a deterministic (tick, priority,
 *    srcShard, srcSeq) key and are merged into the destination
 *    queue -- in exactly that order -- at the window boundary.
 *    The merge order is therefore a pure function of simulation
 *    state, never of thread scheduling, which is why an N-thread
 *    run is byte-identical to a 1-thread run.
 *
 * Usage (normally driven by Simulation, not directly):
 *
 *   ShardSet set;
 *   set.addQueue(&q0); set.addQueue(&q1);
 *   set.addEdge(0, 1, linkLatency);       // lookahead source
 *   set.post(0, 1, when, prio, "wire", fn);   // cross-shard event
 *   set.run(until, threads);              // window loop
 *
 * post() outside run() degrades to a plain (single-threaded)
 * schedule on the destination queue, so system wiring and
 * between-run setup need no special casing. post() *inside* a
 * window enforces the lookahead contract unconditionally (every
 * build, not just checked): a message below the current window end
 * panics, because the destination shard may already have advanced
 * past that tick.
 */

#ifndef MCNSIM_SIM_SHARD_HH
#define MCNSIM_SIM_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/barrier.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

/** A set of EventQueue shards co-simulated under one clock. */
class ShardSet
{
  public:
    ShardSet() = default;
    ~ShardSet();

    ShardSet(const ShardSet &) = delete;
    ShardSet &operator=(const ShardSet &) = delete;

    /** Register @p q as the next shard (index = registration
     *  order). All queues must be added before the first run(). */
    void addQueue(EventQueue *q);

    std::size_t shardCount() const { return queues_.size(); }

    EventQueue &queue(std::size_t i) { return *queues_[i]; }

    /**
     * Declare an inter-shard communication edge with the given
     * minimum latency (a wire's propagation delay). The lookahead
     * is the minimum over all edges; builders call this once per
     * link that crosses shards.
     */
    void addEdge(std::size_t a, std::size_t b, Tick latency);

    /** Conservative lookahead: min edge latency (maxTick when the
     *  shards share no edges and may free-run independently). */
    Tick lookahead() const { return lookahead_; }

    /**
     * Deliver a cross-shard event: run @p fn at @p when on shard
     * @p dst. Inside a run the message is mailboxed and merged at
     * the next window boundary; @p when must be at or beyond the
     * current window end (guaranteed by any edge latency >= the
     * lookahead) or this panics. Outside a run it schedules
     * directly. @p name must outlive the event (literal/interned).
     */
    void post(std::size_t src, std::size_t dst, Tick when,
              EventPriority prio, const char *name,
              std::function<void()> fn);

    /**
     * Run every shard up to @p until (inclusive, like
     * EventQueue::run) using at most @p workers threads. The
     * logical schedule -- window boundaries, merge orders, per-queue
     * event order -- depends only on queue state, never on
     * @p workers, so any thread count produces byte-identical
     * results. Observability that assumes a single thread (trace
     * flags, timeline) clamps execution to one worker; results are
     * unchanged for the same reason.
     */
    Tick run(Tick until, unsigned workers);

    /** True while run() is executing (posts must mailbox). */
    bool running() const { return running_; }

    /** Windows executed since construction (diagnostics). */
    std::uint64_t windowsRun() const { return windows_; }

  private:
    /** One mailboxed cross-shard event. */
    struct Msg
    {
        Tick when;
        EventPriority prio;
        std::uint32_t srcShard;
        std::uint64_t seq; ///< per-(src,dst) mailbox counter
        const char *name;
        std::function<void()> fn;
    };

    /** Single-writer (src thread) / single-reader (dst thread at
     *  the barrier) message buffer. Cache-line aligned so two
     *  sources appending concurrently never share a line. */
    struct alignas(64) Mailbox
    {
        std::vector<Msg> msgs;
        std::uint64_t nextSeq = 0;
    };

    void startThreads(unsigned workers);
    void workerMain(unsigned idx);
    void windowLoop(unsigned w);
    void drainInbox(std::size_t dst);
    Tick windowEndFor(Tick horizon) const;
    void recordError();
    static void atomicMinTick(std::atomic<Tick> &a, Tick v);

    std::vector<EventQueue *> queues_;
    /** inbox_[dst][src]: written only by src's worker during a
     *  window, drained only by dst's worker at the barrier. */
    std::vector<std::vector<Mailbox>> inbox_;
    /** Per-destination merge scratch (owned by dst's worker). */
    std::vector<std::vector<Msg>> scratch_;
    Tick lookahead_ = maxTick;

    // Thread pool (lazily started by the first multi-worker run).
    std::vector<std::thread> threads_;
    std::unique_ptr<SpinBarrier> barrier_;
    unsigned startedWorkers_ = 0; ///< barrier participants; 0 = none
    std::mutex m_;
    std::condition_variable cv_;
    std::uint64_t runGen_ = 0;
    bool shutdown_ = false;

    // Per-run state. Plain members are written in single-writer
    // phases separated by the barrier (which provides the ordering).
    Tick until_ = 0;
    Tick windowEnd_ = 0;
    unsigned assignWorkers_ = 1; ///< workers owning shards this run
    bool done_ = false;
    bool running_ = false;
    std::uint64_t windows_ = 0;
    std::atomic<Tick> horizon_{maxTick};
    std::atomic<bool> errored_{false};
    std::exception_ptr error_;
    std::mutex errorMutex_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_SHARD_HH
