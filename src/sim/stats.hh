/**
 * @file
 * Statistics package, a small cousin of gem5's: named scalar
 * counters, averages, histograms and rate helpers, organised into
 * per-object groups and dumpable as text or as JSON.
 *
 * Usage:
 *
 *   Scalar txBytes{"txBytes", "bytes transmitted"};
 *   group.add(&txBytes);
 *   txBytes += pkt.size();
 *   registry.dump(std::cout);       // gem5-style text
 *   registry.dumpJson(out);         // machine-readable artifact
 *
 * The JSON schema is documented in README.md §Observability: one
 * top-level object with "schema_version" and "groups", each group
 * carrying its stats as typed objects ("scalar" / "average" /
 * "histogram" including raw buckets and percentiles).
 */

#ifndef MCNSIM_SIM_STATS_HH
#define MCNSIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

/** Base for all statistics: a name, a description, and text/JSON
 *  output. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print "name value # desc" style lines. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /** Write this stat as one JSON object ({"name":..., "type":...,
     *  ...}). The writer must be positioned where a value fits. */
    virtual void toJson(json::Writer &w) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  protected:
    /** Shared "name"/"desc"/"type" members of the JSON object. */
    void jsonHeader(json::Writer &w, const char *type) const;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple accumulating counter (double so it can count bytes,
 * packets, joules, ...). */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running average (sum / count). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { sum_ += v; count_++; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [min, max) with overflow/underflow
 * buckets, plus exact min/max/mean tracking.
 */
class Histogram : public StatBase
{
  public:
    Histogram(std::string name, std::string desc, double min,
              double max, std::size_t buckets);

    void sample(double v);

    std::uint64_t count() const { return count_; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /** Approximate p-th percentile (0..100) from bucket midpoints. */
    double percentile(double p) const;

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override;

    std::uint64_t underflow() const { return under_; }
    std::uint64_t overflow() const { return over_; }

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t under_ = 0, over_ = 0, count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0, max_ = 0.0;
};

/**
 * A named group of statistics, typically one per SimObject. The
 * group does not own registered stats; owners embed them by value.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(StatBase *stat) { stats_.push_back(stat); }

    void print(std::ostream &os) const;

    /** Write {"name":..., "stats":[...]} for this group. */
    void toJson(json::Writer &w) const;

    void reset();

    const std::string &name() const { return name_; }
    const std::vector<StatBase *> &stats() const { return stats_; }

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
};

/**
 * Registry of all stat groups in a simulation, for a gem5-style
 * stats dump at end of run.
 */
class StatRegistry
{
  public:
    void add(StatGroup *group) { groups_.push_back(group); }
    void dump(std::ostream &os) const;

    /** Machine-readable dump: one JSON document with every group
     *  and stat (schema in README.md §Observability). */
    void dumpJson(std::ostream &os) const;

    /** Write just the "groups" member (key + array) into an open
     *  JSON object, for callers composing a larger document
     *  (Simulation::dumpStatsJson wraps this with run metadata). */
    void writeGroups(json::Writer &w) const;

    void resetAll();

    /** Registered groups, for walkers like StatSampler. */
    const std::vector<StatGroup *> &groups() const { return groups_; }

  private:
    std::vector<StatGroup *> groups_;
};

/** Bytes + window → Gbit/s, the unit the paper's Fig. 8 uses. */
inline double
toGbps(double bytes, Tick window)
{
    double secs = ticksToSeconds(window);
    return secs > 0 ? bytes * 8.0 / secs / 1e9 : 0.0;
}

/** Bytes + window → GB/s, the unit the paper's Sec. VII uses. */
inline double
toGBps(double bytes, Tick window)
{
    double secs = ticksToSeconds(window);
    return secs > 0 ? bytes / secs / 1e9 : 0.0;
}

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_STATS_HH
