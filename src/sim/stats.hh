/**
 * @file
 * Statistics package, a small cousin of gem5's: named scalar
 * counters, averages, histograms and rate helpers, organised into
 * per-object groups and dumpable as text or as JSON.
 *
 * Usage:
 *
 *   Scalar txBytes{"txBytes", "bytes transmitted"};
 *   group.add(&txBytes);
 *   txBytes += pkt.size();
 *   registry.dump(std::cout);       // gem5-style text
 *   registry.dumpJson(out);         // machine-readable artifact
 *
 * The JSON schema is documented in README.md §Observability: one
 * top-level object with "schema_version" and "groups", each group
 * carrying its stats as typed objects ("scalar" / "average" /
 * "histogram" including raw buckets and percentiles).
 */

#ifndef MCNSIM_SIM_STATS_HH
#define MCNSIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

/** Base for all statistics: a name, a description, and text/JSON
 *  output. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print "name value # desc" style lines. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /** Write this stat as one JSON object ({"name":..., "type":...,
     *  ...}). The writer must be positioned where a value fits. */
    virtual void toJson(json::Writer &w) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  protected:
    /** Shared "name"/"desc"/"type" members of the JSON object. */
    void jsonHeader(json::Writer &w, const char *type) const;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple accumulating counter (double so it can count bytes,
 * packets, joules, ...). */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running average (sum / count). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { sum_ += v; count_++; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [min, max) with overflow/underflow
 * buckets, plus exact min/max/mean tracking.
 */
class Histogram : public StatBase
{
  public:
    Histogram(std::string name, std::string desc, double min,
              double max, std::size_t buckets);

    void sample(double v);

    std::uint64_t count() const { return count_; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /** Approximate p-th percentile (0..100) from bucket midpoints. */
    double percentile(double p) const;

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override;

    std::uint64_t underflow() const { return under_; }
    std::uint64_t overflow() const { return over_; }

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t under_ = 0, over_ = 0, count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0, max_ = 0.0;
};

/**
 * Log-bucketed counting core shared by LogHistogram and the flow
 * telemetry tables (sim/flow_stats.hh): HDR-histogram-style
 * log-linear buckets over unsigned tick values. Values below
 * kSubBuckets land in unit-width buckets; above that each power-of-
 * two range splits into kSubBuckets linear subbuckets, so relative
 * quantization error stays under 1/kSubBuckets across the full
 * 64-bit range. Integer counts make merges commutative and
 * percentiles bit-reproducible regardless of sample order -- the
 * property the sharded engine's fold step relies on.
 */
class LogBuckets
{
  public:
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;

    void sample(std::uint64_t v);

    /** Fold @p other into this (integer adds; order-independent). */
    void merge(const LogBuckets &other);

    /** p-th percentile (0..100) with within-bucket linear
     *  interpolation, clamped to the exact observed [min, max]. */
    double percentile(double p) const;

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minSample() const { return count_ ? min_ : 0; }
    std::uint64_t maxSample() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    void reset();

    /** Bucket index for @p v (test / report introspection). */
    static std::size_t bucketIndex(std::uint64_t v);

    /** Inclusive lower bound of bucket @p idx. */
    static std::uint64_t bucketLow(std::size_t idx);

    /** Exclusive upper bound of bucket @p idx. */
    static std::uint64_t bucketHigh(std::size_t idx);

    /** Sparse view: (bucket index, count) for non-empty buckets in
     *  ascending index order. */
    std::vector<std::pair<std::size_t, std::uint64_t>> nonzero() const;

    /** Write the standard JSON body (count/sum/min/max/mean/
     *  percentiles/sparse buckets) into an open object. */
    void writeJsonBody(json::Writer &w) const;

  private:
    std::vector<std::uint64_t> buckets_; ///< grown to the max index
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/**
 * HDR-style log-bucketed histogram stat for long-tailed tick-valued
 * distributions (latencies): p50/p90/p99/p999 with within-bucket
 * interpolation, exact min/max, and a sparse JSON encoding. Unlike
 * Histogram it needs no a-priori [min, max) range.
 */
class LogHistogram : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(std::uint64_t v) { b_.sample(v); }
    void merge(const LogHistogram &o) { b_.merge(o.b_); }

    std::uint64_t count() const { return b_.count(); }
    double mean() const { return b_.mean(); }
    std::uint64_t minSample() const { return b_.minSample(); }
    std::uint64_t maxSample() const { return b_.maxSample(); }
    double percentile(double p) const { return b_.percentile(p); }

    const LogBuckets &buckets() const { return b_; }

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override { b_.reset(); }

  private:
    LogBuckets b_;
};

/**
 * Queue-occupancy stat: time-weighted-average level plus high
 * watermark. Owners call update(now, level) at every enqueue/
 * dequeue (gated behind FlowTelemetry::active() so disabled runs
 * pay one load + branch); the TWA integrates level over the time it
 * was held, so sparse updates are exact, not sampled. Exported as
 * JSON type "queue" with the raw integral so tools can recompute.
 */
class QueueStat : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    update(Tick now, std::uint64_t level)
    {
        area_ += static_cast<double>(now - lastTick_) *
                 static_cast<double>(lastLevel_);
        lastTick_ = now;
        lastLevel_ = level;
        if (level > peak_)
            peak_ = level;
        updates_++;
    }

    std::uint64_t peak() const { return peak_; }
    std::uint64_t updates() const { return updates_; }
    std::uint64_t lastLevel() const { return lastLevel_; }
    Tick lastTick() const { return lastTick_; }

    /** Time-weighted mean level over [0, last update]. */
    double
    timeWeightedMean() const
    {
        return lastTick_ ? area_ / static_cast<double>(lastTick_)
                         : 0.0;
    }

    void print(std::ostream &os,
               const std::string &prefix) const override;
    void toJson(json::Writer &w) const override;
    void reset() override;

  private:
    double area_ = 0.0; ///< integral of level over time (level*ticks)
    Tick lastTick_ = 0;
    std::uint64_t lastLevel_ = 0;
    std::uint64_t peak_ = 0;
    std::uint64_t updates_ = 0;
};

/**
 * A named group of statistics, typically one per SimObject. The
 * group does not own registered stats; owners embed them by value.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(StatBase *stat) { stats_.push_back(stat); }

    void print(std::ostream &os) const;

    /** Write {"name":..., "stats":[...]} for this group. */
    void toJson(json::Writer &w) const;

    void reset();

    const std::string &name() const { return name_; }
    const std::vector<StatBase *> &stats() const { return stats_; }

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
};

/**
 * Registry of all stat groups in a simulation, for a gem5-style
 * stats dump at end of run.
 */
class StatRegistry
{
  public:
    void add(StatGroup *group) { groups_.push_back(group); }
    void dump(std::ostream &os) const;

    /** Machine-readable dump: one JSON document with every group
     *  and stat (schema in README.md §Observability). */
    void dumpJson(std::ostream &os) const;

    /** Write just the "groups" member (key + array) into an open
     *  JSON object, for callers composing a larger document
     *  (Simulation::dumpStatsJson wraps this with run metadata). */
    void writeGroups(json::Writer &w) const;

    void resetAll();

    /** Registered groups, for walkers like StatSampler. */
    const std::vector<StatGroup *> &groups() const { return groups_; }

  private:
    std::vector<StatGroup *> groups_;
};

/** Bytes + window → Gbit/s, the unit the paper's Fig. 8 uses. */
inline double
toGbps(double bytes, Tick window)
{
    double secs = ticksToSeconds(window);
    return secs > 0 ? bytes * 8.0 / secs / 1e9 : 0.0;
}

/** Bytes + window → GB/s, the unit the paper's Sec. VII uses. */
inline double
toGBps(double bytes, Tick window)
{
    double secs = ticksToSeconds(window);
    return secs > 0 ? bytes / secs / 1e9 : 0.0;
}

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_STATS_HH
