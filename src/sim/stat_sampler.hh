/**
 * @file
 * StatSampler: periodic snapshots of selected statistics into an
 * in-memory time-series, exported as one schema_version'd JSON
 * document (`--stats-series=PATH` in mcnsim_cli).
 *
 * End-of-run stats answer "how much"; the sampler answers "when".
 * An iperf run shows the TCP ramp, ring-occupancy oscillation under
 * the C3 polling agent, and the drain tail -- shapes a single
 * terminal number cannot.
 *
 * Usage:
 *
 *   StatSampler sampler(sim, 10 * oneUs);       // one row / 10 µs
 *   sampler.addRegistryStats("txBytes");        // substring filter
 *   sampler.addProbe("ringUsed", [&] { return ring.usedBytes(); });
 *   sampler.start();          // samples now, then every period
 *   sim.run(runtime);
 *   sampler.stop();
 *   sampler.exportJson(out);
 *
 * Sampling uses one managed event at StatsDump priority, so a
 * snapshot sees everything else scheduled for its tick already
 * applied. A run of length T yields exactly floor(T/period)+1
 * snapshots (one at start(), one per period boundary reached).
 * Probes must all be registered before start(); the series arrays
 * stay rectangular.
 */

#ifndef MCNSIM_SIM_STAT_SAMPLER_HH
#define MCNSIM_SIM_STAT_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace mcnsim::sim {

class Event;
class Simulation;

/** Periodic stats snapshotter (see file comment). */
class StatSampler
{
  public:
    /** Sample every @p period ticks once start()ed. */
    StatSampler(Simulation &sim, Tick period);
    ~StatSampler();

    StatSampler(const StatSampler &) = delete;
    StatSampler &operator=(const StatSampler &) = delete;

    /** Register a named probe evaluated at every snapshot. */
    void addProbe(std::string name, std::function<double()> fn);

    /**
     * Register probes for every Scalar (value) and Average (mean) in
     * the simulation's StatRegistry whose qualified "group.stat"
     * name contains @p filter (empty = all; histograms are skipped
     * -- a distribution is not one number). Returns how many probes
     * were added. Call after the system is built, before start().
     */
    std::size_t addRegistryStats(const std::string &filter = "");

    /** Take the t0 snapshot and begin periodic sampling. */
    void start();

    /** Stop sampling (idempotent); recorded snapshots survive. */
    void stop();

    Tick period() const { return period_; }
    std::size_t probeCount() const { return probes_.size(); }
    std::size_t snapshotCount() const { return ticks_.size(); }

    /** Snapshot ticks and per-probe value rows, for tests. */
    const std::vector<Tick> &ticks() const { return ticks_; }
    const std::vector<double> &values(std::size_t probe) const;

    /**
     * Write the series as one JSON document:
     * {"schema_version":1, "kind":"mcnsim-stats-series",
     *  "meta":{...}, "period_ticks":N, "period_us":x,
     *  "ticks":[...], "series":[{"name":..., "values":[...]}]}.
     */
    void exportJson(std::ostream &os,
                    const std::vector<std::pair<std::string,
                                                std::string>> &meta =
                        {}) const;

  private:
    void sampleOnce();
    void sampleAndReschedule();

    Simulation &sim_;
    Tick period_;
    bool running_ = false;
    Event *ev_ = nullptr; ///< pending managed sample event

    struct Probe
    {
        std::string name;
        std::function<double()> fn;
    };

    std::vector<Probe> probes_;
    std::vector<Tick> ticks_;
    /** data_[probe][snapshot], rectangular. */
    std::vector<std::vector<double>> data_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_STAT_SAMPLER_HH
