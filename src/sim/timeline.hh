/**
 * @file
 * Timeline recorder: a low-overhead span/counter/instant event
 * recorder keyed on simulation ticks, exported in the Chrome
 * trace-event format so a run opens directly in chrome://tracing or
 * ui.perfetto.dev.
 *
 * The model follows the trace-event JSON: every simulated component
 * records onto a *track*, and tracks are grouped into a "process"
 * (the simulated node: host, mcn0, node1, ...) with one "thread" per
 * component (host driver, a DIMM's MCN driver, a memory controller).
 * SimObject derives both names from its hierarchical name, so every
 * component owns a track with zero extra wiring (see
 * SimObject::tlSpan and friends).
 *
 * Usage:
 *
 *   sim::Timeline::instance().enable(true);
 *   ... run the simulation; instrumented components record ...
 *   std::ofstream f("trace.json");
 *   sim::Timeline::instance().exportJson(f);   // open in Perfetto
 *
 * Cost model: recording is gated by Timeline::active(), an inline
 * one-load-one-branch check exactly like Trace::anyActive(), so a
 * disabled timeline costs one predictable branch per instrumented
 * site. When enabled, a record is a bounds check plus a 40-byte
 * append into a preallocated ring-capped vector -- no allocation,
 * no formatting until exportJson().
 *
 * The recorder is process-wide (like the flight-recorder ring):
 * track ids live for the process lifetime, so components may cache
 * them across Simulation instances. Event storage is bounded
 * (setCapacity); overflow drops new events and counts them, and the
 * export notes the drop count rather than lying by omission.
 *
 * Threading / parallel engine (DESIGN.md §9): the bump-append store
 * is process-wide and unsynchronized, so the shard set clamps to
 * one worker while the timeline is enabled (Timeline::active() is
 * one of ShardSet::run's clamp conditions). Recording order -- and
 * therefore the exported document -- stays identical to a
 * --threads=1 run; only parallelism is given up.
 */

#ifndef MCNSIM_SIM_TIMELINE_HH
#define MCNSIM_SIM_TIMELINE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/annotate.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

namespace detail {
/** Mirror of the timeline's enabled state, inline so the
 *  Timeline::active() gate compiles to one load + branch on the
 *  instrumented hot paths. Maintained by Timeline::enable(). */
MCNSIM_SHARD_SAFE("config gate: written by start()/stop() outside "
                  "run windows only; ShardSet::run clamps to one "
                  "worker while the timeline records");
inline bool timelineActive = false;
} // namespace detail

/** Process-wide timeline recorder (see file comment). */
class Timeline
{
  public:
    using TrackId = std::uint32_t;

    /** Phases of the Chrome trace-event format we emit. */
    enum class Phase : std::uint8_t {
        Span,    ///< complete event ("X": ts + dur)
        Counter, ///< counter sample ("C")
        Instant, ///< instant event ("i")
    };

    /** One recorded event. POD, appended on the hot path. */
    struct Record
    {
        Tick start = 0;   ///< event tick (span start)
        Tick end = 0;     ///< span end; == start otherwise
        double value = 0; ///< counter value
        const char *name = nullptr; ///< literal / interned
        TrackId track = 0;
        Phase phase = Phase::Span;
    };

    /** One registered track: a (process, thread) pair. */
    struct Track
    {
        std::string process;
        std::string thread;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
    };

    /** Default bound on stored events (~80 MB of records). */
    static constexpr std::size_t defaultCapacity = 2u << 20;

    /** The process-wide recorder all components feed. */
    static Timeline &instance();

    explicit Timeline(std::size_t capacity = defaultCapacity);

    /** One-branch gate for instrumented sites (process-wide). */
    static bool active() { return detail::timelineActive; }

    /** Turn recording on or off; off also freezes the buffer so it
     *  can be exported later. Only the process-wide instance()
     *  drives the active() gate. */
    void enable(bool on);
    bool enabled() const { return enabled_; }

    /**
     * Register (or look up) the track for @p process / @p thread.
     * Idempotent; returns a process-lifetime id. Cheap enough for
     * construction time, not meant for per-event calls.
     */
    TrackId track(const std::string &process,
                  const std::string &thread);

    /**
     * Track for a hierarchically named component: the first
     * dot-separated segment is the process (simulated node), the
     * full name is the thread. "host.mcndrv" -> ("host",
     * "host.mcndrv"); a dotless name is its own process.
     */
    TrackId trackFor(const std::string &component);

    // Recording (callers must check active() first; these check
    // enabled_ again so misuse is safe, just slower) --------------

    /** Complete span [start, end] on @p t. Clamps end < start. */
    void span(TrackId t, const char *name, Tick start, Tick end);

    /** Counter sample at @p when. */
    void counter(TrackId t, const char *name, Tick when,
                 double value);

    /** Instant event at @p when. */
    void instant(TrackId t, const char *name, Tick when);

    // Introspection / export --------------------------------------

    std::size_t eventCount() const { return records_.size(); }
    std::size_t trackCount() const { return tracks_.size(); }

    /** Events discarded because the capacity bound was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /** Resize the event bound; keeps already-recorded events that
     *  fit. */
    void setCapacity(std::size_t max_events);
    std::size_t capacity() const { return capacity_; }

    /** Drop recorded events (tracks and ids survive -- components
     *  cache them). */
    void clear();

    /**
     * Write one Chrome trace-event JSON document: metadata rows
     * naming every referenced process/thread, then all events
     * sorted by start tick (ts monotone per thread). @p meta
     * key/value pairs land in "otherData" so the artifact is
     * self-describing. Ticks (ps) are emitted as fractional
     * microseconds, the unit the trace-event format expects.
     */
    void exportJson(std::ostream &os,
                    const std::vector<std::pair<std::string,
                                                std::string>> &meta =
                        {}) const;

    const std::vector<Track> &tracks() const { return tracks_; }
    const std::vector<Record> &records() const { return records_; }

  private:
    bool room();

    bool enabled_ = false;
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    std::vector<Record> records_;
    std::vector<Track> tracks_;
    std::map<std::pair<std::string, std::string>, TrackId> byName_;
    std::map<std::string, std::uint32_t> pidByProcess_;
    std::map<std::uint32_t, std::uint32_t> nextTid_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_TIMELINE_HH
