/**
 * @file
 * Lightweight logging / diagnostics in the spirit of gem5's
 * logging.hh: panic() for simulator bugs, fatal() for user errors,
 * warn()/inform() for status, plus tick-stamped debug tracing gated
 * by named flags.
 */

#ifndef MCNSIM_SIM_LOGGING_HH
#define MCNSIM_SIM_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/annotate.hh"
#include "sim/types.hh"

namespace mcnsim::sim {

/** Thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

namespace detail {

/** Count of enabled trace flags, mirrored here so the
 *  Trace::anyActive() gate inlines to one load + branch on the
 *  event-dispatch hot path. Maintained by logging.cc (env parse at
 *  startup, Trace::setFlag at runtime). */
MCNSIM_SHARD_SAFE("config gate: written by setFlag() outside run "
                  "windows only; ShardSet::run clamps to one worker "
                  "while any trace flag is active");
inline std::size_t traceActiveFlagCount = 0;

/** Dump the flight-recorder ring to stderr (see trace_ring.hh).
 *  Called by panic()/fatal() so crashes carry recent-event context;
 *  a no-op when no trace events were recorded. */
void dumpFlightRecorder(const char *kind);

inline void
format_to(std::ostringstream &) {}

template <typename T, typename... Rest>
void
format_to(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format_to(os, rest...);
}

} // namespace detail

/** Concatenate arbitrary streamable arguments into a string. */
template <typename... Args>
std::string
strcat(const Args &...args)
{
    std::ostringstream os;
    detail::format_to(os, args...);
    return os.str();
}

/** Report an unrecoverable internal error (simulator bug). */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    detail::dumpFlightRecorder("panic");
    throw PanicError("panic: " + strcat(args...));
}

/** Report an unrecoverable user error (bad config / arguments). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    detail::dumpFlightRecorder("fatal");
    throw FatalError("fatal: " + strcat(args...));
}

/** panic() unless @p cond holds. */
#define MCNSIM_ASSERT(cond, ...)                                      \
    do {                                                              \
        if (!(cond))                                                  \
            ::mcnsim::sim::panic("assertion '", #cond, "' failed: ",  \
                                 __VA_ARGS__);                        \
    } while (0)

/**
 * Debug trace control. Flags are plain strings ("TCP", "MCNDriver",
 * "DRAM", ...); tracing is off by default and enabled per flag, or
 * globally via MCNSIM_DEBUG=FLAG1,FLAG2 in the environment.
 */
class Trace
{
  public:
    /** Enable or disable a debug flag at runtime. */
    static void setFlag(const std::string &flag, bool on);

    /** True when @p flag tracing is active. */
    static bool enabled(const std::string &flag);

    /** True when at least one flag is enabled — a cheap first-level
     *  gate so disabled tracing stays off the hot paths. Inline so
     *  the disabled case costs one load + branch, even at -O1. */
    static bool
    anyActive()
    {
        return detail::traceActiveFlagCount != 0;
    }

    /** Enable/disable echoing trace lines to stderr. Recording into
     *  the flight-recorder ring (trace_ring.hh) always happens; with
     *  echo off, enabled flags feed the ring silently. */
    static void setEcho(bool echo);

    /** Emit one tick-stamped trace line: appended to the
     *  flight-recorder ring and (when echo is on) printed. */
    static void emit(Tick when, const std::string &flag,
                     const std::string &msg);
};

/** Status messages (always shown unless quieted). */
void inform(const std::string &msg);
void warn(const std::string &msg);
void setQuiet(bool quiet);

/** Tick-stamped debug print, compiled in but gated at runtime. */
template <typename... Args>
void
dprintf(Tick when, const std::string &flag, const Args &...args)
{
    if (Trace::anyActive() && Trace::enabled(flag))
        Trace::emit(when, flag, strcat(args...));
}

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_LOGGING_HH
