/**
 * @file
 * Deterministic pseudo-random number generation for workload models
 * and failure injection. One Rng per Simulation keeps runs
 * reproducible regardless of component construction order.
 *
 * Usage:
 *
 *   Rng rng(42);                              // same seed, same run
 *   auto burst = rng.uniformInt(1, 8);
 *   auto gap = rng.exponential(meanGapTicks);
 *   if (rng.chance(0.01)) dropPacket();
 */

#ifndef MCNSIM_SIM_RANDOM_HH
#define MCNSIM_SIM_RANDOM_HH

#include <cstdint>
#include <random>

namespace mcnsim::sim {

/** A seeded RNG with the distributions the simulator needs. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /** Exponentially distributed value with mean @p mean. */
    double exponential(double mean);

    /** Normal value clamped at >= 0 (for jittered latencies). */
    double normalNonNeg(double mean, double stddev);

    /** Re-seed (used by parameterized tests). */
    void seed(std::uint64_t s) { engine_.seed(s); }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace mcnsim::sim

#endif // MCNSIM_SIM_RANDOM_HH
