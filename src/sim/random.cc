/**
 * @file
 * Rng implementation.
 */

#include "sim/random.hh"

#include <algorithm>

namespace mcnsim::sim {

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniformReal(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        return 0.0;
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

double
Rng::normalNonNeg(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return std::max(0.0, dist(engine_));
}

} // namespace mcnsim::sim
