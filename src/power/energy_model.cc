/**
 * @file
 * Energy model implementation.
 */

#include "power/energy_model.hh"

namespace mcnsim::power {

void
EnergyModel::addCores(const cpu::CpuCluster &cluster, CorePower p)
{
    cores_.push_back(CoreEntry{&cluster, p, 0});
}

void
EnergyModel::addMem(const mem::MemSystem &mem, DramPower p,
                    double capacity_gb)
{
    mems_.push_back(MemEntry{&mem, p, capacity_gb, 0});
}

void
EnergyModel::addNet(const os::NetDevice &dev, NetPower p)
{
    nets_.push_back(NetEntry{&dev, p, 0});
}

void
EnergyModel::addSwitch(BytesFn bytes, NetPower p)
{
    switches_.push_back(SwitchEntry{std::move(bytes), p, 0});
}

void
EnergyModel::addUncore(UncorePower p)
{
    uncore_.push_back(p);
}

void
EnergyModel::snapshot(sim::Tick now)
{
    windowStart_ = now;
    for (auto &c : cores_)
        c.baseBusy = c.cluster->totalBusyTicks();
    for (auto &m : mems_)
        m.baseBytes = m.mem->totalBytes();
    for (auto &n : nets_)
        n.baseBytes = n.dev->txBytes() + n.dev->rxBytes();
    for (auto &s : switches_)
        s.baseBytes = s.bytes();
}

EnergyBreakdown
EnergyModel::compute(sim::Tick now) const
{
    EnergyBreakdown e;
    double window =
        sim::ticksToSeconds(now > windowStart_ ? now - windowStart_
                                               : 0);

    for (const auto &c : cores_) {
        double busy = sim::ticksToSeconds(
            c.cluster->totalBusyTicks() - c.baseBusy);
        double cores = c.cluster->coreCount();
        double idle = cores * window - busy;
        if (idle < 0)
            idle = 0;
        // Active power includes the idle (leakage) floor.
        e.coreDynamic += busy * (c.power.activeW - c.power.idleW);
        e.coreStatic += cores * window * c.power.idleW;
        (void)idle;
    }

    for (const auto &m : mems_) {
        std::uint64_t bytes = m.mem->totalBytes() - m.baseBytes;
        e.dram += static_cast<double>(bytes) * m.power.energyPerByte;
        e.dram += m.capacityGb * m.power.backgroundWPerGB * window;
    }

    for (const auto &n : nets_) {
        std::uint64_t bytes =
            n.dev->txBytes() + n.dev->rxBytes() - n.baseBytes;
        e.network +=
            static_cast<double>(bytes) * n.power.energyPerByte;
        e.network += n.power.idleW * window;
    }

    for (const auto &s : switches_) {
        std::uint64_t bytes = s.bytes() - s.baseBytes;
        e.network +=
            static_cast<double>(bytes) * s.power.energyPerByte;
        e.network += s.power.idleW * window;
    }

    for (const auto &u : uncore_)
        e.uncore += u.staticW * window;

    return e;
}

} // namespace mcnsim::power
