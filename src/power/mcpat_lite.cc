/**
 * @file
 * McpatLite is header-only; this TU anchors the module.
 */

#include "power/mcpat_lite.hh"
