/**
 * @file
 * Energy accounting: integrates the simulator's activity counters
 * (core busy ticks, DRAM bytes, NIC/switch bytes) against the
 * McPAT-lite presets to produce the Joules behind the paper's
 * Fig. 10 energy-efficiency comparison.
 *
 * Usage: attach components, call snapshot() at the start of the
 * measurement window (e.g. after warmup), then compute(now) for
 * the energy spent since the snapshot.
 */

#ifndef MCNSIM_POWER_ENERGY_MODEL_HH
#define MCNSIM_POWER_ENERGY_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/cpu_cluster.hh"
#include "mem/mem_system.hh"
#include "os/net_device.hh"
#include "power/mcpat_lite.hh"
#include "sim/types.hh"

namespace mcnsim::power {

/** Joules by component class. */
struct EnergyBreakdown
{
    double coreDynamic = 0.0;
    double coreStatic = 0.0;
    double dram = 0.0;
    double network = 0.0;
    double uncore = 0.0;

    double
    total() const
    {
        return coreDynamic + coreStatic + dram + network + uncore;
    }
};

/** Integrates component activity into Joules over a window. */
class EnergyModel
{
  public:
    /** Byte counter not tied to a NetDevice (switch fabric). */
    using BytesFn = std::function<std::uint64_t()>;

    void addCores(const cpu::CpuCluster &cluster, CorePower p);
    void addMem(const mem::MemSystem &mem, DramPower p,
                double capacity_gb);
    void addNet(const os::NetDevice &dev, NetPower p);
    void addSwitch(BytesFn bytes, NetPower p);
    void addUncore(UncorePower p);

    /** Capture the window start (tick + counter baselines). */
    void snapshot(sim::Tick now);

    /** Energy spent between the snapshot and @p now. */
    EnergyBreakdown compute(sim::Tick now) const;

  private:
    struct CoreEntry
    {
        const cpu::CpuCluster *cluster;
        CorePower power;
        sim::Tick baseBusy = 0;
    };
    struct MemEntry
    {
        const mem::MemSystem *mem;
        DramPower power;
        double capacityGb;
        std::uint64_t baseBytes = 0;
    };
    struct NetEntry
    {
        const os::NetDevice *dev;
        NetPower power;
        std::uint64_t baseBytes = 0;
    };

    struct SwitchEntry
    {
        BytesFn bytes;
        NetPower power;
        std::uint64_t baseBytes = 0;
    };

    std::vector<CoreEntry> cores_;
    std::vector<MemEntry> mems_;
    std::vector<NetEntry> nets_;
    std::vector<SwitchEntry> switches_;
    std::vector<UncorePower> uncore_;
    sim::Tick windowStart_ = 0;
};

} // namespace mcnsim::power

#endif // MCNSIM_POWER_ENERGY_MODEL_HH
