/**
 * @file
 * McPAT-lite: per-component power presets. The paper uses McPAT in
 * 22 nm for power estimation (Sec. V); shipping McPAT is out of
 * scope, so this header carries the distilled per-component numbers
 * it would produce for the parts in Table II, sourced from the
 * paper's own part citations (A57 cluster ~1.8 W TDP at 10 nm,
 * Snapdragon-835 class <=5 W, server-class host ~95 W for 8 cores,
 * 10GbE NIC and ToR switch port classes).
 */

#ifndef MCNSIM_POWER_MCPAT_LITE_HH
#define MCNSIM_POWER_MCPAT_LITE_HH

namespace mcnsim::power {

/** One core's power. */
struct CorePower
{
    double activeW = 0.0; ///< while executing
    double idleW = 0.0;   ///< clock-gated
};

/** A memory system's power. */
struct DramPower
{
    double backgroundWPerGB = 0.3;
    double energyPerByte = 5e-11; ///< 50 pJ/B incl. I/O
};

/** A network device / switch port. */
struct NetPower
{
    double idleW = 0.0;
    double energyPerByte = 0.0;
};

/** Fixed per-node overhead (uncore, VRs, fans share). */
struct UncorePower
{
    double staticW = 0.0;
};

/** Presets (22 nm McPAT-class numbers). */
struct McpatLite
{
    /** Host Xeon-class core @ 3.4 GHz. */
    static CorePower
    hostCore()
    {
        return {8.0, 1.2};
    }

    /** ARM A57-class MCN core @ 2.45 GHz (10 nm scaled). */
    static CorePower
    mcnCore()
    {
        return {0.45, 0.06};
    }

    /** NIOS II soft core on the ConTutto FPGA. */
    static CorePower
    niosCore()
    {
        return {1.5, 1.0};
    }

    static DramPower
    ddr4()
    {
        return {0.3, 5e-11};
    }

    static DramPower
    lpddr4()
    {
        return {0.12, 2.5e-11};
    }

    /** 10GbE NIC. */
    static NetPower
    nic10g()
    {
        return {4.5, 8e-12};
    }

    /** One ToR switch port's share. */
    static NetPower
    switchPort()
    {
        return {3.0, 1.2e-11};
    }

    /** Host node uncore (LLC, IO, VR losses). */
    static UncorePower
    hostUncore()
    {
        return {22.0};
    }

    /** MCN DIMM buffer device beyond the cores. */
    static UncorePower
    mcnBufferDevice()
    {
        return {0.9};
    }
};

} // namespace mcnsim::power

#endif // MCNSIM_POWER_MCPAT_LITE_HH
