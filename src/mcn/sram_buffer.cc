/**
 * @file
 * SRAM message ring implementation.
 */

#include "mcn/sram_buffer.hh"

#include <cstring>

#include "sim/checked.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace mcnsim::mcn {

namespace {

/** FNV-1a over a message payload: the ring-entry CRC. Plenty for
 *  catching injected single-byte flips. */
std::uint32_t
payloadCrc(const std::uint8_t *data, std::size_t n)
{
    std::uint32_t h = 2166136261u;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 16777619u;
    }
    return h;
}

/** CRC side-channel records: bit 32 set = a CRC was computed at
 *  enqueue (fault plan armed); low 32 bits hold it. 0 = skipped,
 *  so a disarmed run never pays the per-byte hash and a plan armed
 *  between enqueue and dequeue cannot false-positive. */
constexpr std::uint64_t crcValidBit = 1ull << 32;

} // namespace

MessageRing::MessageRing(std::size_t capacity_bytes)
    : buf_(capacity_bytes)
{
    MCNSIM_ASSERT(capacity_bytes >= 4096, "ring too small");
}

void
MessageRing::writeBytes(std::size_t pos, const std::uint8_t *src,
                        std::size_t n)
{
    std::size_t first = std::min(n, buf_.size() - pos);
    std::memcpy(buf_.data() + pos, src, first);
    if (first < n)
        std::memcpy(buf_.data(), src + first, n - first);
}

void
MessageRing::readBytes(std::size_t pos, std::uint8_t *dst,
                       std::size_t n) const
{
    std::size_t first = std::min(n, buf_.size() - pos);
    std::memcpy(dst, buf_.data() + pos, first);
    if (first < n)
        std::memcpy(dst + n - (n - first), buf_.data(), n - first);
}

#ifdef MCNSIM_CHECKED
void
MessageRing::auditInvariants() const
{
    MCNSIM_CHECK(start_ < buf_.size() && end_ < buf_.size(),
                 "MCN ring pointer out of bounds (start=", start_,
                 " end=", end_, " capacity=", buf_.size(), ")");
    MCNSIM_CHECK(used_ <= buf_.size(),
                 "MCN ring overfull (used=", used_,
                 " capacity=", buf_.size(), ")");
    MCNSIM_CHECK((start_ + used_) % buf_.size() == end_,
                 "MCN ring start/end/used inconsistent (start=",
                 start_, " end=", end_, " used=", used_,
                 " capacity=", buf_.size(), ")");
    MCNSIM_CHECK(traces_.size() == enqueued_ - dequeued_,
                 "MCN ring trace queue out of sync (", traces_.size(),
                 " traces vs ", enqueued_ - dequeued_,
                 " messages in flight)");
    MCNSIM_CHECK(crcs_.size() == traces_.size(),
                 "MCN ring CRC side channel out of sync (",
                 crcs_.size(), " CRCs vs ", traces_.size(),
                 " traces)");
    MCNSIM_CHECK(paths_.size() == traces_.size(),
                 "MCN ring path side channel out of sync (",
                 paths_.size(), " paths vs ", traces_.size(),
                 " traces)");
}

void
MessageRing::corruptForTest()
{
    end_ = (end_ + 1) % buf_.size();
}
#endif

bool
MessageRing::enqueue(const std::uint8_t *data, std::size_t len,
                     std::shared_ptr<net::LatencyTrace> trace,
                     std::shared_ptr<net::PathTrace> path)
{
    MCNSIM_IF_CHECKED(auditInvariants();)
    std::size_t need = footprint(len);
    if (need > freeBytes() || len == 0)
        return false;
    traces_.push_back(std::move(trace));
    paths_.push_back(std::move(path));
    crcs_.push_back(sim::FaultPlan::active()
                        ? (crcValidBit | payloadCrc(data, len))
                        : 0);

    std::uint8_t hdr[lengthFieldBytes];
    hdr[0] = static_cast<std::uint8_t>(len >> 24);
    hdr[1] = static_cast<std::uint8_t>(len >> 16);
    hdr[2] = static_cast<std::uint8_t>(len >> 8);
    hdr[3] = static_cast<std::uint8_t>(len & 0xff);

    writeBytes(end_, hdr, lengthFieldBytes);
    writeBytes((end_ + lengthFieldBytes) % buf_.size(), data, len);
    end_ = (end_ + need) % buf_.size();
    used_ += need;
    enqueued_++;
    MCNSIM_IF_CHECKED(auditInvariants();)
    return true;
}

std::optional<std::size_t>
MessageRing::frontLength() const
{
    MCNSIM_IF_CHECKED(auditInvariants();)
    if (empty())
        return std::nullopt;
    std::uint8_t hdr[lengthFieldBytes];
    readBytes(start_, hdr, lengthFieldBytes);
    std::size_t len = (std::size_t(hdr[0]) << 24) |
                      (std::size_t(hdr[1]) << 16) |
                      (std::size_t(hdr[2]) << 8) | hdr[3];
    return len;
}

std::optional<McnMessage>
MessageRing::dequeue()
{
    auto len = frontLength();
    if (!len)
        return std::nullopt;
    MCNSIM_ASSERT(footprint(*len) <= used_, "corrupt ring state");

    McnMessage out;
    out.bytes.resize(*len);
    readBytes((start_ + lengthFieldBytes) % buf_.size(),
              out.bytes.data(), *len);
    if (!traces_.empty()) {
        if (traces_.front())
            out.trace = *traces_.front();
        traces_.pop_front();
    }
    if (!paths_.empty()) {
        out.path = std::move(paths_.front());
        paths_.pop_front();
    }
    if (!crcs_.empty()) {
        const std::uint64_t rec = crcs_.front();
        crcs_.pop_front();
        if (rec & crcValidBit) [[unlikely]]
            out.crcOk = payloadCrc(out.bytes.data(),
                                   out.bytes.size()) ==
                        (rec & 0xffffffffu);
    }
    std::size_t need = footprint(*len);
    start_ = (start_ + need) % buf_.size();
    used_ -= need;
    dequeued_++;
    MCNSIM_IF_CHECKED(auditInvariants();)
    return out;
}

bool
MessageRing::corruptNewest()
{
    if (empty())
        return false;
    // The newest message's payload ends one byte before end_.
    std::size_t pos = (end_ + buf_.size() - 1) % buf_.size();
    buf_[pos] ^= 0x20;
    return true;
}

SramBuffer::SramBuffer(std::size_t total_bytes, double tx_fraction)
    : total_(total_bytes),
      tx_(static_cast<std::size_t>(
          static_cast<double>(total_bytes - controlBytes) *
          tx_fraction)),
      rx_(total_bytes - controlBytes -
          static_cast<std::size_t>(
              static_cast<double>(total_bytes - controlBytes) *
              tx_fraction))
{}

} // namespace mcnsim::mcn
