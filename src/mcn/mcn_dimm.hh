/**
 * @file
 * McnDimm: one MCN DIMM / MCN node (paper Sec. III-A) -- a mobile-
 * class quad-core processor with its own local memory channels, the
 * buffer device's MCN interface + SRAM, a full network stack, and
 * the MCN-side driver, all behind a standard DIMM form factor.
 */

#ifndef MCNSIM_MCN_MCN_DIMM_HH
#define MCNSIM_MCN_MCN_DIMM_HH

#include <memory>

#include "core/mcn_config.hh"
#include "mcn/mcn_driver.hh"
#include "mcn/mcn_interface.hh"
#include "net/net_stack.hh"
#include "os/kernel.hh"
#include "sim/sim_object.hh"

namespace mcnsim::mcn {

/** Construction parameters for an MCN DIMM. */
struct McnDimmParams
{
    /** MCN processor: Snapdragon-835-class (Table II MCN row). */
    os::KernelParams kernel{
        .cores = 4,
        .coreFreqHz = 2.45e9,
        .memChannels = 2,
        .dramTiming = mem::DramTiming::lpddr4_1866(),
        .costs = {},
    };
    core::McnConfig config;
    McnInterfaceParams iface;
};

/** One MCN node. */
class McnDimm : public sim::SimObject
{
  public:
    McnDimm(sim::Simulation &s, std::string name, int node_id,
            const McnDimmParams &params);

    /** Schedules crash/hang faults from the armed plan:
     *  "<name>.crash:at=<t>" kills the MCN processor for good;
     *  "<name>.hang:at=<t>,param=<dur>" stalls it for @p dur. */
    void startup() override;

    /** The MCN processor stops: no transmit, no RX drain. The
     *  buffer device (SRAM + poll flags) stays reachable. */
    void crash();

    /** Crash, then revive after @p duration (resyncs doorbells). */
    void hang(sim::Tick duration);

    bool alive() const { return driver_->alive(); }

    os::Kernel &kernel() { return *kernel_; }
    McnInterface &iface() { return *iface_; }
    net::NetStack &stack() { return *stack_; }
    McnDriver &driver() { return *driver_; }

    int nodeId() const { return kernel_->nodeId(); }
    const core::McnConfig &config() const { return params_.config; }

    /** The MCN-side interface's MAC (F3 routing key). */
    net::MacAddr mac() const { return driver_->mac(); }

    /** Assign the node's IP and bring the interface up
     *  (subnet mask 0.0.0.0: everything is forwarded to the host,
     *  Sec. III-B "network organization"). */
    void configureAddress(net::Ipv4Addr addr);

    net::Ipv4Addr addr() const { return addr_; }

  private:
    McnDimmParams params_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<McnInterface> iface_;
    std::unique_ptr<net::NetStack> stack_;
    std::unique_ptr<McnDriver> driver_;
    net::Ipv4Addr addr_;
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_MCN_DIMM_HH
