/**
 * @file
 * The MCN-side driver (Sec. III-B): the network device the MCN
 * processor's stack sees. Transmit performs the paper's T1-T3 into
 * the SRAM TX ring; receive drains the RX ring when the MCN
 * interface raises its IRQ. With mcn5, an MCN-DMA engine does the
 * byte moving instead of the MCN cores.
 */

#ifndef MCNSIM_MCN_MCN_DRIVER_HH
#define MCNSIM_MCN_MCN_DRIVER_HH

#include "core/mcn_config.hh"
#include "mcn/mcn_dma.hh"
#include "mcn/mcn_interface.hh"
#include "os/kernel.hh"
#include "os/net_device.hh"
#include "sim/fault.hh"

namespace mcnsim::mcn {

/** The MCN node's virtual Ethernet device. */
class McnDriver : public os::NetDevice
{
  public:
    McnDriver(sim::Simulation &s, std::string name,
              net::MacAddr mac, os::Kernel &kernel,
              McnInterface &iface, core::McnConfig config);

    os::TxResult xmit(net::PacketPtr pkt) override;

    /** Arms the doorbell-recovery watchdog under a fault plan. */
    void startup() override;

    const core::McnConfig &config() const { return config_; }

    /**
     * Crash/hang support: a dead MCN processor neither transmits
     * (xmit returns Busy) nor answers its RX IRQ. The buffer
     * device's SRAM survives -- only the processor stops.
     */
    void setAlive(bool alive);
    bool alive() const { return alive_; }

    /**
     * Level-triggered receive entry: drain the RX ring. Wired to
     * the MCN interface's IRQ through the kernel's IRQ controller
     * (so interrupt-entry cost is charged) by McnDimm.
     */
    void rxIrq();

    std::uint64_t rxMessages() const
    {
        return static_cast<std::uint64_t>(statRxMsgs_.value());
    }
    std::uint64_t ringCrcDrops() const
    {
        return static_cast<std::uint64_t>(statCrcDrops_.value());
    }
    std::uint64_t watchdogResyncs() const
    {
        return static_cast<std::uint64_t>(statResyncs_.value());
    }

  private:
    void drainRx();
    void watchdogTick();

    os::Kernel &kernel_;
    McnInterface &iface_;
    core::McnConfig config_;
    std::unique_ptr<McnDmaEngine> dma_;
    bool draining_ = false;
    bool alive_ = true;
    std::size_t txReserved_ = 0; ///< ring bytes of in-flight copies

    sim::Scalar statTxMsgs_{"txMessages", "messages into TX ring"};
    sim::Scalar statRxMsgs_{"rxMessages", "messages out of RX ring"};
    sim::Scalar statTxFull_{"txRingFull", "TX ring full events"};
    sim::Scalar statCrcDrops_{"ringCrcDrops",
                              "RX ring messages failing CRC"};
    sim::Scalar statResyncs_{"watchdogResyncs",
                             "watchdog-recovered lost doorbells"};

    /// In-SRAM corruption of the message just written to the TX
    /// ring (the host-side drain sees the CRC mismatch).
    sim::FaultSite faultTxCorrupt_ = FAULT_POINT("tx-corrupt");
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_MCN_DRIVER_HH
