/**
 * @file
 * McnDmaEngine implementation.
 */

#include "mcn/mcn_dma.hh"

#include "sim/simulation.hh"

namespace mcnsim::mcn {

McnDmaEngine::McnDmaEngine(sim::Simulation &s, std::string name,
                           os::Kernel &kernel,
                           mem::BandwidthArbiter &arbiter,
                           double rate_bps)
    : sim::SimObject(s, std::move(name)), kernel_(kernel),
      arbiter_(arbiter), rateBps_(rate_bps)
{
    regStat(&statTransfers_);
    regStat(&statBytes_);
    regStat(&statStalls_);
}

void
McnDmaEngine::transfer(std::uint64_t bytes,
                       std::function<void(sim::Tick)> done)
{
    statTransfers_ += 1;
    statBytes_ += static_cast<double>(bytes);
    trace("MCNDma", "transfer ", bytes, "B at ", rateBps_ / 1e9,
          " GB/s");

    // The driver writes the descriptor (node number + size) into
    // the engine's configuration space, then the engine streams.
    const sim::Tick t0 = curTick();
    kernel_.cpus().leastLoaded().execute(
        kernel_.costs().dmaSetup,
        [this, bytes, t0, done = std::move(done)](sim::Tick) {
            // Injected stall: the engine sits on the descriptor
            // (bus contention, stuck arbitration) before streaming.
            if (faultStall_.fires()) {
                statStalls_ += 1;
                const sim::Tick delay = faultStall_.param()
                                            ? faultStall_.param()
                                            : 50 * sim::oneUs;
                eventQueue().scheduleIn(
                    [this, bytes, t0, done] {
                        stream(bytes, t0, done);
                    },
                    delay, "fault.dmaStall");
                return;
            }
            stream(bytes, t0, done);
        });
}

void
McnDmaEngine::stream(std::uint64_t bytes, sim::Tick t0,
                     std::function<void(sim::Tick)> done)
{
    // Injected partial transfer: the engine aborts mid-stream and
    // the descriptor is replayed -- modelled as streaming half the
    // bytes first, then the full transfer.
    if (faultPartial_.fires()) {
        statStalls_ += 1;
        arbiter_.startTransfer(
            bytes / 2 + 1,
            [this, bytes, t0, done](sim::Tick) {
                stream(bytes, t0, done);
            },
            rateBps_);
        return;
    }
    arbiter_.startTransfer(
        bytes,
        [this, t0, done](sim::Tick) {
            // Completion interrupt, then the callback.
            kernel_.cpus().execute(
                kernel_.costs().interruptEntry,
                [this, t0, done](sim::Tick at) {
                    tlSpan("dmaTransfer", t0, at);
                    if (done)
                        done(at);
                },
                /*irq=*/true);
        },
        rateBps_);
}

} // namespace mcnsim::mcn
