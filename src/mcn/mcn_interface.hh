/**
 * @file
 * McnInterface: the MCN-specific logic in the DIMM's buffer device
 * (paper Fig. 3(a)). It owns the SRAM buffer, exposes it as an
 * MMIO window on the host memory channel, redirects MCN-side
 * accesses from the MCN memory controller, raises the IRQ into the
 * MCN processor when the host deposits packets, and (mcn1+) asserts
 * ALERT_N toward the host when the MCN node has outgoing packets.
 */

#ifndef MCNSIM_MCN_MCN_INTERFACE_HH
#define MCNSIM_MCN_MCN_INTERFACE_HH

#include <functional>

#include <memory>

#include "mcn/sram_buffer.hh"
#include "mem/bandwidth_arbiter.hh"
#include "mem/mem_controller.hh"
#include "sim/fault.hh"
#include "sim/flow_stats.hh"
#include "sim/sim_object.hh"

namespace mcnsim::mcn {

/** Latency parameters of the buffer-device datapath. */
struct McnInterfaceParams
{
    /** SRAM access beyond the channel burst (host side). */
    sim::Tick sramReadLatency = 15 * sim::oneNs;
    sim::Tick sramWriteLatency = 10 * sim::oneNs;

    /** On-chip interconnect hop for MCN-side SRAM access. */
    sim::Tick mcnSideLatency = 8 * sim::oneNs;

    /** SRAM port streaming bandwidth (bulk copies), bytes/s. */
    double sramPortBps = 12.8e9;
};

/** The buffer device's MCN logic. */
class McnInterface : public sim::SimObject
{
  public:
    McnInterface(sim::Simulation &s, std::string name,
                 std::size_t sram_bytes,
                 McnInterfaceParams params = {});

    /** Schedules spurious-doorbell faults from the armed plan. */
    void startup() override;

    SramBuffer &sram() { return sram_; }
    const McnInterfaceParams &params() const { return params_; }

    /** The MCN-side SRAM port (bulk copies over the on-chip bus). */
    mem::BandwidthArbiter &sramPort() { return *sramPort_; }

    /**
     * Register the SRAM window at channel-local offset @p base on
     * the host-side memory controller @p host_mc.
     */
    void mapHostWindow(mem::MemController &host_mc,
                       mem::Addr base);

    mem::Addr hostWindowBase() const { return hostWindowBase_; }

    /** IRQ into the MCN processor: host deposited RX packets. */
    void setRxIrqHandler(std::function<void()> h)
    {
        rxIrq_ = std::move(h);
    }

    /** ALERT_N toward the host MC: MCN node has TX packets. */
    void setAlertHandler(std::function<void()> h)
    {
        alert_ = std::move(h);
    }

    /**
     * Host driver finished writing messages into the RX ring: set
     * rx-poll and interrupt the MCN processor.
     */
    void hostDepositedRx();

    /**
     * MCN driver finished writing messages into the TX ring: set
     * tx-poll and, when wired (mcn1+), pulse ALERT_N.
     */
    void mcnDepositedTx();

    /**
     * Observability hook: sample both ring fill levels as timeline
     * counters and flow-telemetry queue watermarks. Drivers call it
     * after every enqueue or dequeue; a run with neither feature
     * active pays two branches.
     */
    void
    recordRingLevels()
    {
        if (sim::Timeline::active()) [[unlikely]] {
            tlCounter("txRingBytes",
                      static_cast<double>(sram_.tx().usedBytes()));
            tlCounter("rxRingBytes",
                      static_cast<double>(sram_.rx().usedBytes()));
        }
        if (sim::FlowTelemetry::active()) [[unlikely]] {
            statTxRingQ_.update(curTick(), sram_.tx().usedBytes());
            statRxRingQ_.update(curTick(), sram_.rx().usedBytes());
        }
    }

    std::uint64_t rxIrqsRaised() const
    {
        return static_cast<std::uint64_t>(statRxIrqs_.value());
    }
    std::uint64_t alertsRaised() const
    {
        return static_cast<std::uint64_t>(statAlerts_.value());
    }
    std::uint64_t doorbellsLost() const
    {
        return static_cast<std::uint64_t>(statLost_.value());
    }

  private:
    SramBuffer sram_;
    McnInterfaceParams params_;
    std::unique_ptr<mem::BandwidthArbiter> sramPort_;
    mem::Addr hostWindowBase_ = 0;
    std::function<void()> rxIrq_;
    std::function<void()> alert_;

    sim::Scalar statRxIrqs_{"rxIrqs", "IRQs into the MCN processor"};
    sim::Scalar statAlerts_{"alerts", "ALERT_N pulses to the host"};
    sim::Scalar statHostAccesses_{"hostAccesses",
                                  "host MMIO accesses to the SRAM"};
    sim::Scalar statLost_{"doorbellsLost",
                          "injected lost IRQ/ALERT doorbells"};
    sim::Scalar statSpurious_{"doorbellsSpurious",
                              "injected spurious doorbells"};
    sim::QueueStat statTxRingQ_{"txRing.usedBytes",
                                "SRAM TX ring occupancy (flow "
                                "telemetry)"};
    sim::QueueStat statRxRingQ_{"rxRing.usedBytes",
                                "SRAM RX ring occupancy (flow "
                                "telemetry)"};

    // Fault sites: a doorbell edge that never reaches its handler
    // (flaky interrupt line); spurious-* are scheduled faults.
    sim::FaultSite faultRxIrqLost_ = FAULT_POINT("rx-irq-lost");
    sim::FaultSite faultAlertLost_ = FAULT_POINT("alert-lost");
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_MCN_INTERFACE_HH
