/**
 * @file
 * MCN-side driver implementation.
 */

#include "mcn/mcn_driver.hh"

#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::mcn {

namespace {
/** Packets at or below this size stay on the CPU copy path even
 *  when an MCN-DMA engine exists (descriptor setup + completion
 *  interrupt cost more than the copy). */
constexpr std::uint64_t dmaCopybreak = 1024;
} // namespace

McnDriver::McnDriver(sim::Simulation &s, std::string name,
                     net::MacAddr mac, os::Kernel &kernel,
                     McnInterface &iface, core::McnConfig config)
    : os::NetDevice(s, std::move(name), mac, config.mtu),
      kernel_(kernel), iface_(iface), config_(config)
{
    features().tso = config.tso;
    // The memory channel is ECC/CRC protected (paper Sec. IV-A):
    // this is the trusted hop that makes mcn2's checksum bypass
    // sound under the per-hop trust rule.
    features().trusted = true;
    if (config.dma)
        // The MCN-side engine moves bytes between the DIMM's own
        // DRAM and the SRAM over the on-chip bus: full port rate,
        // unlike the host-side engine that crosses the channel.
        dma_ = std::make_unique<McnDmaEngine>(
            s, this->name() + ".dma", kernel_, iface_.sramPort(),
            12.8e9);

    regStat(&statTxMsgs_);
    regStat(&statRxMsgs_);
    regStat(&statTxFull_);
    regStat(&statCrcDrops_);
    regStat(&statResyncs_);
}

void
McnDriver::startup()
{
    // The doorbell-recovery watchdog only exists under an armed
    // fault plan: silent runs stay event-identical to the seed
    // baselines, and an armed run is deterministic either way.
    if (sim::FaultPlan::active())
        // lint-ok: this-capture (SimObject via os::NetDevice)
        eventQueue().scheduleIn([this] { watchdogTick(); },
                                config_.watchdogEpoch,
                                "mcn.rxWatchdog");
}

void
McnDriver::setAlive(bool alive)
{
    alive_ = alive;
    if (alive) {
        // Revive: resynchronise with whatever the host deposited
        // while we were down (the rx-poll flag survives in SRAM).
        if (iface_.sram().rxPoll() || !iface_.sram().rx().empty())
            rxIrq();
    }
}

void
McnDriver::watchdogTick()
{
    // Lost-doorbell recovery: rx-poll set (or messages pending)
    // with no drain running means the IRQ edge was swallowed.
    if (alive_ && !draining_ &&
        (iface_.sram().rxPoll() || !iface_.sram().rx().empty())) {
        statResyncs_ += 1;
        trace("MCNDriver", "watchdog: RX ring stuck, resyncing");
        rxIrq();
    }
    // lint-ok: this-capture (SimObject via os::NetDevice)
    eventQueue().scheduleIn([this] { watchdogTick(); },
                            config_.watchdogEpoch,
                            "mcn.rxWatchdog");
}

os::TxResult
McnDriver::xmit(net::PacketPtr pkt)
{
    if (!alive_)
        return os::TxResult::Busy; // crashed processor
    auto &ring = iface_.sram().tx();
    // T1/T2: check space against the cached ring pointers,
    // accounting for copies already in flight.
    std::size_t need = MessageRing::footprint(pkt->size());
    if (need + txReserved_ > ring.freeBytes()) {
        statTxFull_ += 1;
        statTxBusy_ += 1;
        trace("MCNDriver", "xmit: TX ring full (", need,
              "B needed)");
        return os::TxResult::Busy; // NETDEV_TX_BUSY
    }
    txReserved_ += need;
    trace("MCNDriver", "xmit ", pkt->size(), "B into TX ring");
    statTxMsgs_ += 1;
    countTx(*pkt);

    std::uint64_t bytes = pkt->size();
    const auto &costs = kernel_.costs();

    // The message becomes visible in the ring only when the
    // modelled copy completes (T3: update tx-end, fence, tx-poll).
    const sim::Tick t0 = curTick();
    auto finish = [this, pkt, need, t0](sim::Tick now) {
        tlSpan("mcnTxCopy", t0, now);
        pkt->trace.stamp(net::Stage::DriverTx, now);
        if (sim::FlowTelemetry::active()) [[unlikely]]
            pkt->pathHop(name().c_str(), now);
        bool ok = iface_.sram().tx().enqueue(
            pkt->cdata(), pkt->size(),
            std::make_shared<net::LatencyTrace>(pkt->trace),
            pkt->path ? std::make_shared<net::PathTrace>(*pkt->path)
                      : nullptr);
        MCNSIM_ASSERT(ok, "TX ring enqueue failed after reserve");
        if (faultTxCorrupt_.fires())
            iface_.sram().tx().corruptNewest();
        txReserved_ -= need;
        iface_.mcnDepositedTx();
    };

    // Copybreak: programming the DMA engine costs more than a CPU
    // copy for small packets, so those stay on the CPU path (the
    // standard trick in production NIC drivers).
    if (dma_ && bytes > dmaCopybreak) {
        dma_->transfer(bytes, finish);
    } else {
        // CPU memcpy into the SRAM through the on-chip port.
        kernel_.cpus().leastLoaded().execute(
            costs.mcnDriverTx + costs.copy(bytes),
            [this, bytes, finish](sim::Tick) {
                iface_.sramPort().startTransfer(bytes, finish);
            });
    }
    return os::TxResult::Ok;
}

void
McnDriver::rxIrq()
{
    if (draining_ || !alive_)
        return;
    draining_ = true;
    // The interrupt cost was charged by the IRQ path in the
    // interface wiring; start the drain loop.
    drainRx();
}

void
McnDriver::drainRx()
{
    auto &ring = iface_.sram().rx();
    if (ring.empty()) {
        iface_.sram().clearRxPoll();
        draining_ = false;
        // Packets may have landed between the check and the flag
        // clear; the interface re-raises its IRQ on the next
        // deposit, so nothing is lost.
        return;
    }

    auto msg = ring.dequeue();
    MCNSIM_ASSERT(msg, "non-empty ring without front message");
    iface_.recordRingLevels();
    if (!msg->crcOk) {
        // In-SRAM corruption caught by the ring-entry CRC: the
        // message never reaches the stack; TCP retransmits.
        statCrcDrops_ += 1;
        trace("MCNDriver", "RX ring CRC mismatch, dropping");
        drainRx();
        return;
    }
    statRxMsgs_ += 1;
    std::uint64_t bytes = msg->bytes.size();
    trace("MCNDriver", "drain RX ring: ", bytes, "B");
    auto pkt = net::Packet::make(std::move(msg->bytes));
    pkt->trace = msg->trace;
    if (msg->path) [[unlikely]]
        pkt->path = std::make_unique<net::PathTrace>(*msg->path);

    const auto &costs = kernel_.costs();
    const sim::Tick t0 = curTick();
    auto deliver = [this, pkt, t0](sim::Tick now) {
        tlSpan("mcnRxCopy", t0, now);
        pkt->trace.stamp(net::Stage::DriverRx, now);
        if (sim::FlowTelemetry::active()) [[unlikely]]
            pkt->pathHop(name().c_str(), now);
        deliverUp(pkt);
        drainRx();
    };

    if (dma_ && bytes > dmaCopybreak) {
        dma_->transfer(bytes, deliver);
    } else {
        kernel_.cpus().leastLoaded().execute(
            costs.mcnDriverRx + costs.copy(bytes),
            [this, bytes, deliver](sim::Tick) {
                iface_.sramPort().startTransfer(bytes, deliver);
            });
    }
}

} // namespace mcnsim::mcn
