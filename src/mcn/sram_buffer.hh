/**
 * @file
 * The MCN interface's SRAM communication buffer (paper Fig. 4).
 *
 * The 96 KB SRAM is split into a control block and two circular
 * rings of MCN messages (a 4-byte length followed by the frame
 * bytes):
 *
 *  - the TX ring carries MCN-node -> host messages; the MCN driver
 *    produces at tx-end, the host's polling agent consumes at
 *    tx-start, and tx-poll signals pending data;
 *  - the RX ring carries host -> MCN-node messages with rx-start /
 *    rx-end / rx-poll playing the mirrored roles.
 *
 * The buffer holds real bytes and enforces real ring invariants;
 * timing (memory-channel transactions, memcpy bandwidth) is charged
 * by the drivers around these functional operations.
 */

#ifndef MCNSIM_MCN_SRAM_BUFFER_HH
#define MCNSIM_MCN_SRAM_BUFFER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hh"

namespace mcnsim::mcn {

/** A dequeued MCN message: the frame bytes plus the simulation-side
 *  latency trace that rode along (metadata, not modelled bytes). */
struct McnMessage
{
    std::vector<std::uint8_t> bytes;
    net::LatencyTrace trace;
    /** Per-hop path telemetry riding the crossing (null unless flow
     *  telemetry is active; metadata, not modelled bytes). */
    std::shared_ptr<net::PathTrace> path;
    /** Ring-entry CRC verdict: false when the payload read back
     *  does not match the checksum computed at enqueue (in-SRAM
     *  corruption). The drivers drop such messages and count them
     *  as ringCrcDrops. */
    bool crcOk = true;
};

/** One circular message ring inside the SRAM. */
class MessageRing
{
  public:
    explicit MessageRing(std::size_t capacity_bytes);

    /** Bytes a message of @p payload bytes occupies in the ring. */
    static std::size_t
    footprint(std::size_t payload)
    {
        return payload + lengthFieldBytes;
    }

    /**
     * Enqueue one message; returns false when it does not fit
     * (the driver then returns NETDEV_TX_BUSY). @p trace is
     * simulation metadata carried alongside the bytes so latency
     * breakdowns survive the ring crossing.
     */
    bool enqueue(const std::uint8_t *data, std::size_t len,
                 std::shared_ptr<net::LatencyTrace> trace = nullptr,
                 std::shared_ptr<net::PathTrace> path = nullptr);

    /** Dequeue the oldest message, if any. */
    std::optional<McnMessage> dequeue();

    /** Peek the oldest message's length without consuming. */
    std::optional<std::size_t> frontLength() const;

    bool empty() const { return used_ == 0; }
    std::size_t usedBytes() const { return used_; }
    std::size_t freeBytes() const { return buf_.size() - used_; }
    std::size_t capacityBytes() const { return buf_.size(); }

    /** Ring pointers, exposed for tests / pointer-read modelling. */
    std::size_t startPtr() const { return start_; }
    std::size_t endPtr() const { return end_; }

    std::uint64_t messagesEnqueued() const { return enqueued_; }
    std::uint64_t messagesDequeued() const { return dequeued_; }

    /**
     * Fault-injection hook: flip one byte of the newest message's
     * payload in place, leaving the CRC recorded at enqueue time
     * untouched -- models a bit error inside the SRAM (or a racy
     * producer). dequeue() of that message reports crcOk == false.
     * Returns false when the ring is empty.
     */
    bool corruptNewest();

#ifdef MCNSIM_CHECKED
    /** Checked build, tests only: deliberately desynchronise the
     *  ring pointers so the invariant audit on the next operation
     *  panics -- proves the detector actually fires. */
    void corruptForTest();
#endif

  private:
    static constexpr std::size_t lengthFieldBytes = 4;

#ifdef MCNSIM_CHECKED
    /** Checked build: audit start/end/used consistency, pointer
     *  bounds and trace-queue sync; runs on every ring operation. */
    void auditInvariants() const;
#endif

    void writeBytes(std::size_t pos, const std::uint8_t *src,
                    std::size_t n);
    void readBytes(std::size_t pos, std::uint8_t *dst,
                   std::size_t n) const;

    std::vector<std::uint8_t> buf_;
    std::deque<std::shared_ptr<net::LatencyTrace>> traces_;
    /** Per-message payload CRC records, parallel to traces_ (bit 32
     *  = computed, low 32 = FNV-1a; 0 = skipped because no fault
     *  plan was armed at enqueue). Kept in a side channel -- not in
     *  the ring bytes -- so the modelled ring footprint (and
     *  therefore timing) is unchanged, and only computed under an
     *  armed fault plan so disarmed runs pay no per-byte hash. */
    std::deque<std::uint64_t> crcs_;
    /** Per-hop path telemetry riding each message, parallel to
     *  traces_; entries are null unless flow telemetry was active
     *  at enqueue. */
    std::deque<std::shared_ptr<net::PathTrace>> paths_;
    std::size_t start_ = 0; ///< first byte of the oldest message
    std::size_t end_ = 0;   ///< one past the newest message
    std::size_t used_ = 0;
    std::uint64_t enqueued_ = 0;
    std::uint64_t dequeued_ = 0;
};

/** The whole SRAM buffer: control fields + TX and RX rings. */
class SramBuffer
{
  public:
    /** Control block size reserved ahead of the rings. */
    static constexpr std::size_t controlBytes = 64;

    /**
     * @param total_bytes  full SRAM size (96 KB in the paper)
     * @param tx_fraction  share of ring space given to the TX ring
     */
    explicit SramBuffer(std::size_t total_bytes = 96 * 1024,
                        double tx_fraction = 0.5);

    MessageRing &tx() { return tx_; }
    MessageRing &rx() { return rx_; }
    const MessageRing &tx() const { return tx_; }
    const MessageRing &rx() const { return rx_; }

    // Control fields (Fig. 4): handshaking flags.
    bool txPoll() const { return txPoll_; }
    void setTxPoll() { txPoll_ = true; }
    void clearTxPoll() { txPoll_ = false; }

    bool rxPoll() const { return rxPoll_; }
    void setRxPoll() { rxPoll_ = true; }
    void clearRxPoll() { rxPoll_ = false; }

    std::size_t totalBytes() const { return total_; }

  private:
    std::size_t total_;
    MessageRing tx_;
    MessageRing rx_;
    bool txPoll_ = false;
    bool rxPoll_ = false;
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_SRAM_BUFFER_HH
