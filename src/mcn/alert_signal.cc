/**
 * @file
 * AlertSignal implementation.
 */

#include "mcn/alert_signal.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace mcnsim::mcn {

AlertSignal::AlertSignal(sim::Simulation &s, std::string name,
                         sim::Tick identify_latency)
    : sim::SimObject(s, std::move(name)),
      identifyLatency_(identify_latency)
{
    regStat(&statAsserts_);
    regStat(&statCoalesced_);
}

void
AlertSignal::assertFrom(std::uint32_t dimm)
{
    statAsserts_ += 1;
    if (std::find(pending_.begin(), pending_.end(), dimm) !=
        pending_.end()) {
        statCoalesced_ += 1;
        return;
    }
    pending_.push_back(dimm);
    if (!busy_)
        deliver();
}

void
AlertSignal::deliver()
{
    if (pending_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    // Keep the entry queued until serviced so re-assertions from
    // the same DIMM coalesce (open-drain: the wire is already low).
    std::uint32_t dimm = pending_.front();

    // The MC scans the channel to identify the asserting DIMM,
    // then relays the interrupt.
    eventQueue().scheduleIn(
        [this, dimm] {
            if (handler_)
                handler_(dimm);
            if (!pending_.empty() && pending_.front() == dimm)
                pending_.erase(pending_.begin());
            deliver();
        },
        identifyLatency_, "alert.identify",
        sim::EventPriority::HardwareIrq);
}

} // namespace mcnsim::mcn
