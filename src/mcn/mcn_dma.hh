/**
 * @file
 * MCN-DMA (Sec. IV-B): memory-to-memory DMA engines that move
 * packet bytes between kernel memory and the SRAM rings so the
 * cores stop paying per-byte copy costs. One engine per MCN node
 * and one per host channel; the driver programs a descriptor
 * (small CPU cost), the engine streams at DMA rate through the
 * given bulk arbiter, and completion is delivered as an interrupt.
 */

#ifndef MCNSIM_MCN_MCN_DMA_HH
#define MCNSIM_MCN_MCN_DMA_HH

#include <cstdint>
#include <functional>

#include "mem/bandwidth_arbiter.hh"
#include "os/kernel.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace mcnsim::mcn {

/** One MCN-DMA engine. */
class McnDmaEngine : public sim::SimObject
{
  public:
    /**
     * @param arbiter   the resource the engine streams through
     *                  (host channel bulk port or SRAM port)
     * @param rate_bps  engine streaming bound
     */
    McnDmaEngine(sim::Simulation &s, std::string name,
                 os::Kernel &kernel, mem::BandwidthArbiter &arbiter,
                 double rate_bps = 4e9);

    /**
     * Program a transfer of @p bytes; @p done fires (after the
     * completion interrupt cost) once the data is moved.
     */
    void transfer(std::uint64_t bytes,
                  std::function<void(sim::Tick)> done);

    std::uint64_t transfers() const
    {
        return static_cast<std::uint64_t>(statTransfers_.value());
    }
    std::uint64_t stalls() const
    {
        return static_cast<std::uint64_t>(statStalls_.value());
    }

  private:
    void stream(std::uint64_t bytes, sim::Tick t0,
                std::function<void(sim::Tick)> done);

    os::Kernel &kernel_;
    mem::BandwidthArbiter &arbiter_;
    double rateBps_;

    sim::Scalar statTransfers_{"transfers", "DMA transfers"};
    sim::Scalar statBytes_{"bytes", "bytes moved by DMA"};
    sim::Scalar statStalls_{"stalls", "injected stalls/retries"};

    /// Engine stalls before streaming (param = extra delay).
    sim::FaultSite faultStall_ = FAULT_POINT("stall");
    /// Transfer aborts partway and is re-streamed (extra time).
    sim::FaultSite faultPartial_ = FAULT_POINT("partial");
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_MCN_DMA_HH
