/**
 * @file
 * Host-side MCN driver implementation.
 */

#include "mcn/host_driver.hh"

#include "net/net_stack.hh"
#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::mcn {

namespace {
/** Channel-local base of the first SRAM window (1 GB in). */
constexpr mem::Addr windowRegionBase = 1ull << 30;

/** Below this size the CPU copy beats DMA setup + completion
 *  interrupt (driver copybreak, as in production NICs). */
constexpr std::uint64_t dmaCopybreak = 1024;
} // namespace

// ---------------------------------------------------------------------
// McnHostInterface
// ---------------------------------------------------------------------

McnHostInterface::McnHostInterface(sim::Simulation &s,
                                   std::string name,
                                   net::MacAddr mac,
                                   std::uint32_t mtu,
                                   McnHostDriver &driver,
                                   std::size_t dimm_index)
    : os::NetDevice(s, std::move(name), mac, mtu), driver_(driver),
      dimmIndex_(dimm_index)
{
    features().tso = driver.config().tso;
    // The hop behind this virtual device is the ECC/CRC-protected
    // memory channel: trusted under the per-hop checksum rule, so
    // mcn2's bypass stays sound host-side too.
    features().trusted = true;
}

os::TxResult
McnHostInterface::xmit(net::PacketPtr pkt)
{
    auto res = driver_.xmitToDimm(dimmIndex_, pkt);
    if (res == os::TxResult::Ok)
        countTx(*pkt);
    else
        statTxBusy_ += 1;
    return res;
}

// ---------------------------------------------------------------------
// McnHostDriver
// ---------------------------------------------------------------------

McnHostDriver::McnHostDriver(sim::Simulation &s, std::string name,
                             os::Kernel &host_kernel,
                             core::McnConfig config)
    : sim::SimObject(s, std::move(name)), kernel_(host_kernel),
      config_(config)
{
    regStat(&statF1_);
    regStat(&statF2_);
    regStat(&statF3_);
    regStat(&statF4_);
    regStat(&statFDrop_);
    regStat(&statPollScans_);
    regStat(&statPollHits_);
    regStat(&statRxRingFull_);
    regStat(&statDegraded_);
    regStat(&statRecoveries_);
    regStat(&statDegradedDrops_);
    regStat(&statRingCrcDrops_);
}

McnHostInterface &
McnHostDriver::addDimm(McnDimm &dimm, std::uint32_t channel)
{
    MCNSIM_ASSERT(channel < kernel_.mem().channelCount(),
                  "channel out of range");
    auto b = std::make_unique<Binding>();
    b->dimm = &dimm;
    b->channel = channel;
    b->slot = slotsPerChannel_[channel]++;
    b->windowBase =
        windowRegionBase + b->slot * dimm.config().sramBytes;

    std::size_t idx = dimms_.size();
    b->iface = std::make_unique<McnHostInterface>(
        simulation(), name() + ".veth" + std::to_string(idx),
        net::MacAddr::fromId(0x200000u +
                             static_cast<std::uint32_t>(idx)),
        config_.mtu, *this, idx);

    auto &mc = kernel_.mem().controller(channel);
    dimm.iface().mapHostWindow(mc, b->windowBase);
    b->copy = std::make_unique<mem::CopyEngine>(
        simulation(), name() + ".copy" + std::to_string(idx), mc);
    if (config_.dma)
        b->dma = std::make_unique<McnDmaEngine>(
            simulation(), name() + ".dma" + std::to_string(idx),
            kernel_, mc.bulk());

    // Inventory for the memory mapping unit.
    mem::DimmInfo info;
    info.name = dimm.name();
    info.kind = mem::DimmKind::Mcn;
    info.sramWindowBase = b->windowBase;
    info.sramWindowSize = dimm.config().sramBytes;
    kernel_.mem().addDimm(channel, info);

    if (config_.alertInterrupt) {
        auto &alert = alerts_[channel];
        if (!alert) {
            alert = std::make_unique<AlertSignal>(
                simulation(),
                name() + ".alert" + std::to_string(channel));
            alert->setHandler([this, channel](std::uint32_t slot) {
                // Interrupt relayed to a core; then poll exactly
                // the asserting DIMM.
                for (std::size_t i = 0; i < dimms_.size(); ++i) {
                    if (dimms_[i]->channel == channel &&
                        dimms_[i]->slot == slot) {
                        kernel_.cpus().execute(
                            kernel_.costs().interruptEntry,
                            [this, i](sim::Tick) { drainDimm(i); },
                            /*irq=*/true);
                        return;
                    }
                }
            });
        }
        AlertSignal *sig = alert.get();
        std::uint32_t slot = b->slot;
        dimm.iface().setAlertHandler(
            [sig, slot] { sig->assertFrom(slot); });
    }

    dimms_.push_back(std::move(b));
    return *dimms_.back()->iface;
}

void
McnHostDriver::startup()
{
    if (!config_.alertInterrupt && !dimms_.empty()) {
        pollTimer_ = std::make_unique<os::HrTimer>(
            simulation(), name() + ".pollTimer", kernel_.cpus());
        pollTimer_->startPeriodic(config_.pollPeriod, [this] {
            // The HR-timer body must be tiny: schedule the tasklet.
            kernel_.softirq().schedule([this] { pollTasklet(); });
        });
    }
    // The per-DIMM health watchdog exists only under an armed fault
    // plan: silent runs stay event-identical to the seed baselines,
    // and an armed run is deterministic either way.
    if (sim::FaultPlan::active() && !dimms_.empty())
        eventQueue().scheduleIn([this] { watchdogTick(); },
                                config_.watchdogEpoch,
                                "mcn.hostWatchdog");
}

// ---------------------------------------------------------------------
// Per-DIMM health watchdog (armed fault plans only)
// ---------------------------------------------------------------------

void
McnHostDriver::watchdogTick()
{
    for (std::size_t i = 0; i < dimms_.size(); ++i)
        checkDimmHealth(i);
    eventQueue().scheduleIn([this] { watchdogTick(); },
                            config_.watchdogEpoch,
                            "mcn.hostWatchdog");
}

void
McnHostDriver::checkDimmHealth(std::size_t idx)
{
    Binding &b = *dimms_[idx];
    auto &sram = b.dimm->iface().sram();

    // Progress marker: the MCN side consuming its RX ring. A node
    // whose processor died stops dequeuing while the ring (which
    // lives in the still-powered buffer device) holds data.
    const std::uint64_t deq = sram.rx().messagesDequeued();
    const bool pending = !sram.rx().empty();
    const bool progressed = deq != b.lastDequeued;
    b.lastDequeued = deq;

    if (progressed || !pending) {
        if (b.health == Health::Degraded && progressed) {
            statRecoveries_ += 1;
            trace("MCNDriver", "dimm ", idx,
                  " responding again, readmitted");
            tlInstant("dimmReadmitted");
        }
        if (progressed || b.health != Health::Degraded) {
            b.health = Health::Healthy;
            b.stuckEpochs = 0;
        }
    } else if (b.health != Health::Degraded) {
        b.stuckEpochs += 1;
        if (b.stuckEpochs >= config_.watchdogEpochs) {
            b.health = Health::Degraded;
            statDegraded_ += 1;
            trace("MCNDriver", "dimm ", idx, " unresponsive for ",
                  b.stuckEpochs, " epochs, marking degraded");
            tlInstant("dimmDegraded");
        } else {
            b.health = Health::Suspect;
        }
    }

    // Degraded nodes get one probe frame per epoch: a revived node
    // drains it, the dequeue counter moves, and the next sweep
    // readmits the DIMM.
    if (b.health == Health::Degraded)
        b.probeCredit = true;

    // Lost-ALERT recovery on the host side: data pending in the
    // DIMM's TX ring with no drain running means the doorbell edge
    // was swallowed; re-trigger the drain.
    if (sram.txPoll() && !b.draining && !sram.tx().empty())
        drainDimm(idx);
}

void
McnHostDriver::notifyUnreachable(const net::Packet &pkt,
                                 std::size_t dead_idx)
{
    if (!unreachableNotifier_)
        return;
    constexpr std::size_t ethSize = net::EthernetHeader::size;
    if (pkt.size() < ethSize + net::Ipv4Header::size)
        return;
    const std::uint8_t *ip = pkt.cdata() + ethSize;
    const net::Ipv4Addr src{(std::uint32_t(ip[12]) << 24) |
                            (std::uint32_t(ip[13]) << 16) |
                            (std::uint32_t(ip[14]) << 8) | ip[15]};
    unreachableNotifier_(src, dimms_[dead_idx]->dimm->addr());
}

// ---------------------------------------------------------------------
// C3: polling agent
// ---------------------------------------------------------------------

void
McnHostDriver::pollTasklet()
{
    if (pollInFlight_)
        return;
    pollInFlight_ = true;
    pollStart_ = curTick();
    scanNext(0);
}

void
McnHostDriver::scanNext(std::size_t idx)
{
    if (idx >= dimms_.size()) {
        tlSpan("pollScan", pollStart_, curTick());
        pollInFlight_ = false;
        return;
    }
    Binding &b = *dimms_[idx];
    statPollScans_ += 1;

    // Read the tx-poll field: one uncached access over the memory
    // channel plus the driver's check cost.
    fieldAccess(b, mem::MemRequest::Kind::Read,
                [this, idx](sim::Tick) {
                    kernel_.cpus().execute(
                        kernel_.costs().mcnPollPerDimm,
                        [this, idx](sim::Tick) {
                            Binding &bb = *dimms_[idx];
                            if (bb.dimm->iface().sram().txPoll()) {
                                statPollHits_ += 1;
                                drainDimm(idx);
                            }
                            scanNext(idx + 1);
                        });
                });
}

void
McnHostDriver::fieldAccess(Binding &b, mem::MemRequest::Kind kind,
                           std::function<void(sim::Tick)> done)
{
    mem::MemRequest r;
    r.kind = kind;
    r.addr = b.windowBase; // the control block lives at the base
    r.size = 8;
    r.onComplete = std::move(done);
    kernel_.mem().controller(b.channel).access(std::move(r));
}

// ---------------------------------------------------------------------
// R1-R5: draining a DIMM's TX ring
// ---------------------------------------------------------------------

void
McnHostDriver::drainDimm(std::size_t idx)
{
    Binding &b = *dimms_[idx];
    if (b.draining)
        return;
    b.draining = true;
    if (channelDraining_[b.channel]) {
        drainQueue_[b.channel].push_back(idx);
        return;
    }
    startDrain(idx);
}

void
McnHostDriver::startDrain(std::size_t idx)
{
    Binding &b = *dimms_[idx];
    channelDraining_[b.channel] = true;
    b.drainStart = curTick();
    // R1: read tx-start and tx-end.
    fieldAccess(b, mem::MemRequest::Kind::Read,
                [this, idx](sim::Tick) { drainLoop(idx); });
}

void
McnHostDriver::drainFinished(std::size_t idx)
{
    Binding &b = *dimms_[idx];
    tlSpan("txDrain", b.drainStart, curTick());
    b.draining = false;
    channelDraining_[b.channel] = false;
    auto &q = drainQueue_[b.channel];
    if (!q.empty()) {
        std::size_t next = q.front();
        q.pop_front();
        startDrain(next);
    }
    // Anything deposited while we cleared the flag re-raises the
    // poll/alert on the MCN side, so nothing is lost.
    if (b.dimm->iface().sram().txPoll())
        drainDimm(idx);
}

void
McnHostDriver::drainLoop(std::size_t idx)
{
    Binding &b = *dimms_[idx];
    auto &ring = b.dimm->iface().sram().tx();

    if (ring.empty()) {
        // R5 done: reset tx-poll (one uncached write), then exit.
        b.dimm->iface().sram().clearTxPoll();
        fieldAccess(b, mem::MemRequest::Kind::Write,
                    [this, idx](sim::Tick) {
                        drainFinished(idx);
                    });
        return;
    }

    // R2/R3: the first cache line gives length + dst-mac; then the
    // message body is copied out of the SRAM window.
    auto msg = ring.dequeue();
    MCNSIM_ASSERT(msg, "non-empty TX ring without front message");
    b.dimm->iface().recordRingLevels();
    if (!msg->crcOk) {
        // In-SRAM corruption caught by the ring-entry CRC: the
        // message never reaches the forwarding engine; the sender's
        // TCP retransmits.
        statRingCrcDrops_ += 1;
        trace("MCNDriver", "drain dimm ", idx,
              ": ring CRC mismatch, dropping");
        drainLoop(idx);
        return;
    }
    std::uint64_t bytes = msg->bytes.size();
    trace("MCNDriver", "drain dimm ", idx, ": ", bytes, "B from TX ring");
    auto pkt = net::Packet::make(std::move(msg->bytes));
    pkt->trace = msg->trace;
    if (msg->path) [[unlikely]]
        pkt->path = std::make_unique<net::PathTrace>(*msg->path);

    const auto &costs = kernel_.costs();
    const sim::Tick t0 = curTick();
    auto after_copy = [this, idx, pkt, t0](sim::Tick now) {
        tlSpan("hostRxCopy", t0, now);
        pkt->trace.stamp(net::Stage::DriverRx, now);
        if (sim::FlowTelemetry::active()) [[unlikely]]
            pkt->pathHop(name().c_str(), now);
        forward(idx, pkt);
        drainLoop(idx);
    };

    if (b.dma && bytes > dmaCopybreak) {
        b.dma->transfer(bytes, after_copy);
    } else {
        // memcpy_from_mcn: cacheable reads + explicit invalidate;
        // CPU issues the loads, the channel moves the lines.
        kernel_.cpus().execute(
            costs.mcnDriverRx + costs.copy(bytes),
            [&b, bytes, after_copy](sim::Tick) {
                b.copy->copy(bytes, mem::CopyMode::CacheableRead,
                             after_copy);
            });
    }
}

// ---------------------------------------------------------------------
// T1-T3: host -> DIMM
// ---------------------------------------------------------------------

os::TxResult
McnHostDriver::xmitToDimm(std::size_t idx, net::PacketPtr pkt)
{
    Binding &b = *dimms_[idx];
    if (b.health == Health::Degraded) {
        if (!b.probeCredit) {
            // Swallow, don't Busy: a Busy return would park the
            // qdisc behind a dead node forever. Dropping lets TCP
            // see loss, back off and abort with a per-socket error,
            // while the unreachable notifier fails fast senders.
            statDegradedDrops_ += 1;
            notifyUnreachable(*pkt, idx);
            return os::TxResult::Ok;
        }
        b.probeCredit = false; // one probe frame per epoch
    }
    auto &ring = b.dimm->iface().sram().rx();
    std::size_t need = MessageRing::footprint(pkt->size());
    if (need + b.rxReserved > ring.freeBytes()) {
        statRxRingFull_ += 1;
        trace("MCNDriver", "xmit to dimm ", idx, ": RX ring full (",
              need, "B needed)");
        return os::TxResult::Busy; // NETDEV_TX_BUSY
    }
    b.rxReserved += need;
    trace("MCNDriver", "xmit to dimm ", idx, ": ", pkt->size(), "B");

    std::uint64_t bytes = pkt->size();
    const auto &costs = kernel_.costs();

    // The message lands in the ring when the modelled copy is done
    // (T3: update rx-end, fence, set rx-poll -> MCN IRQ).
    const sim::Tick t0 = curTick();
    auto finish = [this, idx, pkt, need, t0](sim::Tick now) {
        tlSpan("hostTxCopy", t0, now);
        pkt->trace.stamp(net::Stage::DriverTx, now);
        if (sim::FlowTelemetry::active()) [[unlikely]]
            pkt->pathHop(name().c_str(), now);
        Binding &bb = *dimms_[idx];
        bool ok = bb.dimm->iface().sram().rx().enqueue(
            pkt->cdata(), pkt->size(),
            std::make_shared<net::LatencyTrace>(pkt->trace),
            pkt->path ? std::make_shared<net::PathTrace>(*pkt->path)
                      : nullptr);
        MCNSIM_ASSERT(ok, "RX ring enqueue failed after reserve");
        if (faultTxCorrupt_.fires())
            bb.dimm->iface().sram().rx().corruptNewest();
        bb.rxReserved -= need;
        bb.dimm->iface().hostDepositedRx();
    };

    if (b.dma && bytes > dmaCopybreak) {
        b.dma->transfer(bytes, finish);
    } else {
        // memcpy_to_mcn: write-combined stores, interleave-aware
        // strides keep every line on this DIMM's channel.
        kernel_.cpus().execute(
            costs.mcnDriverTx + costs.copy(bytes),
            [&b, bytes, finish](sim::Tick) {
                b.copy->copy(bytes, mem::CopyMode::WriteCombined,
                             finish);
            });
    }
    return os::TxResult::Ok;
}

/** Lossless relay: retry a busy destination ring periodically
 *  (qdisc semantics; the source ring backpressures upstream). A
 *  ring that stays full past the retry budget means the consumer
 *  died -- give up and report the node unreachable rather than
 *  retrying forever. */
void
McnHostDriver::relayToDimm(std::size_t idx, net::PacketPtr pkt,
                           unsigned attempts)
{
    // 2000 x 5us = 10ms: far beyond any transient ring-full spell.
    constexpr unsigned maxRelayAttempts = 2000;
    if (xmitToDimm(idx, pkt) == os::TxResult::Busy) {
        if (attempts >= maxRelayAttempts) {
            statFDrop_ += 1;
            trace("MCNDriver", "relay to dimm ", idx,
                  ": ring stuck full, dropping");
            notifyUnreachable(*pkt, idx);
            return;
        }
        eventQueue().scheduleIn(
            [this, idx, pkt, attempts] {
                relayToDimm(idx, pkt, attempts + 1);
            },
            5 * sim::oneUs, "mcn.f3retry");
    }
}

// ---------------------------------------------------------------------
// C1: packet forwarding engine (F1-F4)
// ---------------------------------------------------------------------

void
McnHostDriver::forward(std::size_t from_idx, net::PacketPtr pkt)
{
    auto eth = net::EthernetHeader::peek(*pkt);

    // F2: broadcast -- deliver up AND replicate to every other MCN
    // node (and the uplink).
    if (eth.dst.isBroadcast()) {
        statF2_ += 1;
        statF1_ += 1;
        dimms_[from_idx]->iface->deliverUp(pkt->clone());
        for (std::size_t j = 0; j < dimms_.size(); ++j) {
            if (j == from_idx ||
                dimms_[j]->health == Health::Degraded)
                continue;
            xmitToDimm(j, pkt->clone());
        }
        if (uplink_)
            uplink_->xmit(pkt->clone());
        return;
    }

    // F1: destined to a host-side interface.
    for (auto &bp : dimms_) {
        if (eth.dst == bp->iface->mac()) {
            statF1_ += 1;
            dimms_[from_idx]->iface->deliverUp(std::move(pkt));
            return;
        }
    }

    // F3: destined to another MCN node's interface.
    for (std::size_t j = 0; j < dimms_.size(); ++j) {
        if (eth.dst == dimms_[j]->dimm->mac()) {
            if (dimms_[j]->health == Health::Degraded) {
                // Dead next hop: drop and tell the sender instead
                // of queuing behind a node that will never drain.
                statDegradedDrops_ += 1;
                notifyUnreachable(*pkt, j);
                return;
            }
            statF3_ += 1;
            kernel_.cpus().execute(
                kernel_.costs().ipForwardPerPacket,
                [this, j, pkt](sim::Tick) {
                    relayToDimm(j, pkt);
                });
            return;
        }
    }

    // F4: neither the host nor an MCN node -- uplink NIC.
    if (uplink_) {
        statF4_ += 1;
        trace("MCNDriver", "F4: forward ", pkt->size(),
              "B to uplink NIC");
        kernel_.cpus().execute(
            kernel_.costs().ipForwardPerPacket,
            [this, pkt](sim::Tick) { uplink_->xmit(pkt); });
        return;
    }
    statFDrop_ += 1;
}

} // namespace mcnsim::mcn
