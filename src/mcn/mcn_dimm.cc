/**
 * @file
 * McnDimm implementation.
 */

#include "mcn/mcn_dimm.hh"

#include "sim/fault.hh"
#include "sim/simulation.hh"

namespace mcnsim::mcn {

namespace {
/** IRQ line of the MCN interface inside the MCN processor. */
constexpr std::uint32_t mcnRxIrqLine = 42;
} // namespace

McnDimm::McnDimm(sim::Simulation &s, std::string name, int node_id,
                 const McnDimmParams &params)
    : sim::SimObject(s, std::move(name)), params_(params)
{
    kernel_ = std::make_unique<os::Kernel>(
        s, this->name() + ".kernel", node_id, params.kernel);
    iface_ = std::make_unique<McnInterface>(
        s, this->name() + ".iface", params.config.sramBytes,
        params.iface);
    stack_ = std::make_unique<net::NetStack>(
        s, this->name() + ".net", *kernel_);
    stack_->setChecksumBypass(params.config.checksumBypass);

    driver_ = std::make_unique<McnDriver>(
        s, this->name() + ".eth0",
        net::MacAddr::fromId(0x100000u +
                             static_cast<std::uint32_t>(node_id)),
        *kernel_, *iface_, params.config);

    // The interface IRQ goes through the MCN processor's interrupt
    // controller (charging interrupt-entry cost), which then runs
    // the driver's level-triggered drain.
    os::Kernel *krn = kernel_.get();
    iface_->setRxIrqHandler(
        [krn] { krn->irq().raise(mcnRxIrqLine); });
    McnDriver *drv = driver_.get();
    kernel_->irq().request(mcnRxIrqLine, [drv] { drv->rxIrq(); });
}

void
McnDimm::startup()
{
    if (!sim::FaultPlan::active())
        return;
    auto &plan = sim::FaultPlan::instance();
    for (const auto &hit : plan.scheduledFor(name() + ".crash")) {
        eventQueue().schedule(
            [this] {
                sim::reportScheduledFault(*this, "crash");
                crash();
            },
            hit.at, "fault.crash");
    }
    for (const auto &hit : plan.scheduledFor(name() + ".hang")) {
        const sim::Tick dur =
            hit.param ? hit.param : 500 * sim::oneUs;
        eventQueue().schedule(
            [this, dur] {
                sim::reportScheduledFault(*this, "hang");
                hang(dur);
            },
            hit.at, "fault.hang");
    }
}

void
McnDimm::crash()
{
    trace("MCN", "node ", nodeId(), " crashed");
    tlInstant("crash");
    driver_->setAlive(false);
}

void
McnDimm::hang(sim::Tick duration)
{
    crash();
    eventQueue().scheduleIn(
        [this] {
            trace("MCN", "node ", nodeId(), " revived");
            tlInstant("revive");
            driver_->setAlive(true);
        },
        duration, "fault.revive");
}

void
McnDimm::configureAddress(net::Ipv4Addr addr)
{
    addr_ = addr;
    stack_->addInterface(*driver_, addr, net::SubnetMask::any());
}

} // namespace mcnsim::mcn
