/**
 * @file
 * ALERT_N repurposed as a DIMM -> host interrupt (Sec. IV-B).
 *
 * ALERT_N is a single open-drain wire shared by all DIMMs on a
 * channel, so when it asserts the host MC must first identify which
 * DIMM pulled it low (a short scan), then relay an interrupt to a
 * core. That per-assertion identification cost -- and the fact that
 * the handler then only polls the one channel -- is exactly what
 * distinguishes mcn1 from mcn0's blanket HR-timer polling.
 */

#ifndef MCNSIM_MCN_ALERT_SIGNAL_HH
#define MCNSIM_MCN_ALERT_SIGNAL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_object.hh"

namespace mcnsim::mcn {

/** One channel's shared ALERT_N wire. */
class AlertSignal : public sim::SimObject
{
  public:
    /** Handler receives the index of the asserting DIMM. */
    using Handler = std::function<void(std::uint32_t dimm)>;

    AlertSignal(sim::Simulation &s, std::string name,
                sim::Tick identify_latency = 120 * sim::oneNs);

    void setHandler(Handler h) { handler_ = std::move(h); }

    /**
     * DIMM @p dimm pulls the wire low. While an assertion is being
     * serviced, further pulses from any DIMM are coalesced and
     * re-delivered after the current one (open-drain semantics).
     */
    void assertFrom(std::uint32_t dimm);

    std::uint64_t assertions() const
    {
        return static_cast<std::uint64_t>(statAsserts_.value());
    }
    std::uint64_t coalesced() const
    {
        return static_cast<std::uint64_t>(statCoalesced_.value());
    }

  private:
    void deliver();

    sim::Tick identifyLatency_;
    Handler handler_;
    std::vector<std::uint32_t> pending_;
    bool busy_ = false;

    sim::Scalar statAsserts_{"assertions", "ALERT_N assertions"};
    sim::Scalar statCoalesced_{"coalesced",
                               "assertions coalesced while busy"};
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_ALERT_SIGNAL_HH
