/**
 * @file
 * McnInterface implementation.
 */

#include "mcn/mcn_interface.hh"

#include "sim/simulation.hh"

namespace mcnsim::mcn {

McnInterface::McnInterface(sim::Simulation &s, std::string name,
                           std::size_t sram_bytes,
                           McnInterfaceParams params)
    : sim::SimObject(s, std::move(name)), sram_(sram_bytes),
      params_(params)
{
    sramPort_ = std::make_unique<mem::BandwidthArbiter>(
        s, this->name() + ".sramPort", params_.sramPortBps, 0.95);
    regStat(&statRxIrqs_);
    regStat(&statAlerts_);
    regStat(&statHostAccesses_);
}

void
McnInterface::mapHostWindow(mem::MemController &host_mc,
                            mem::Addr base)
{
    hostWindowBase_ = base;
    mem::MmioRegion r;
    r.base = base;
    r.size = sram_.totalBytes();
    r.readLatency = params_.sramReadLatency;
    r.writeLatency = params_.sramWriteLatency;
    r.onAccess = [this](const mem::MemRequest &, sim::Tick) {
        statHostAccesses_ += 1;
    };
    host_mc.addMmioRegion(r);
}

void
McnInterface::hostDepositedRx()
{
    sram_.setRxPoll();
    statRxIrqs_ += 1;
    tlInstant("rxIrq");
    recordRingLevels();
    if (rxIrq_)
        rxIrq_();
}

void
McnInterface::mcnDepositedTx()
{
    sram_.setTxPoll();
    recordRingLevels();
    if (alert_) {
        statAlerts_ += 1;
        tlInstant("txAlert");
        alert_();
    }
}

} // namespace mcnsim::mcn
