/**
 * @file
 * McnInterface implementation.
 */

#include "mcn/mcn_interface.hh"

#include "sim/simulation.hh"

namespace mcnsim::mcn {

McnInterface::McnInterface(sim::Simulation &s, std::string name,
                           std::size_t sram_bytes,
                           McnInterfaceParams params)
    : sim::SimObject(s, std::move(name)), sram_(sram_bytes),
      params_(params)
{
    sramPort_ = std::make_unique<mem::BandwidthArbiter>(
        s, this->name() + ".sramPort", params_.sramPortBps, 0.95);
    regStat(&statRxIrqs_);
    regStat(&statAlerts_);
    regStat(&statHostAccesses_);
    regStat(&statLost_);
    regStat(&statSpurious_);
    regStat(&statTxRingQ_);
    regStat(&statRxRingQ_);
}

void
McnInterface::startup()
{
    if (!sim::FaultPlan::active())
        return;
    // Scheduled spurious doorbells: ring the handler with nothing
    // deposited. The drivers must tolerate the empty-ring drain.
    auto &plan = sim::FaultPlan::instance();
    for (const auto &hit :
         plan.scheduledFor(name() + ".spurious-rx-irq")) {
        eventQueue().schedule(
            [this] {
                sim::reportScheduledFault(*this, "spurious-rx-irq");
                statSpurious_ += 1;
                if (rxIrq_)
                    rxIrq_();
            },
            hit.at, "fault.spuriousRxIrq");
    }
    for (const auto &hit :
         plan.scheduledFor(name() + ".spurious-alert")) {
        eventQueue().schedule(
            [this] {
                sim::reportScheduledFault(*this, "spurious-alert");
                statSpurious_ += 1;
                if (alert_)
                    alert_();
            },
            hit.at, "fault.spuriousAlert");
    }
}

void
McnInterface::mapHostWindow(mem::MemController &host_mc,
                            mem::Addr base)
{
    hostWindowBase_ = base;
    mem::MmioRegion r;
    r.base = base;
    r.size = sram_.totalBytes();
    r.readLatency = params_.sramReadLatency;
    r.writeLatency = params_.sramWriteLatency;
    r.onAccess = [this](const mem::MemRequest &, sim::Tick) {
        statHostAccesses_ += 1;
    };
    host_mc.addMmioRegion(r);
}

void
McnInterface::hostDepositedRx()
{
    sram_.setRxPoll();
    statRxIrqs_ += 1;
    tlInstant("rxIrq");
    recordRingLevels();
    // Lost doorbell: rx-poll is set but the IRQ edge is swallowed.
    // The MCN driver's watchdog re-detects the non-empty ring.
    if (faultRxIrqLost_.fires()) {
        statLost_ += 1;
        return;
    }
    if (rxIrq_)
        rxIrq_();
}

void
McnInterface::mcnDepositedTx()
{
    sram_.setTxPoll();
    recordRingLevels();
    if (alert_) {
        // Lost ALERT_N pulse: tx-poll stays set, so the host
        // watchdog (or the next successful pulse) recovers.
        if (faultAlertLost_.fires()) {
            statLost_ += 1;
            return;
        }
        statAlerts_ += 1;
        tlInstant("txAlert");
        alert_();
    }
}

} // namespace mcnsim::mcn
