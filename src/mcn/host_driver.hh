/**
 * @file
 * The host-side MCN driver (paper Fig. 5): the three components are
 *
 *  (C1) the packet forwarding engine implementing scenarios F1-F4
 *       (deliver up, broadcast, MCN-to-MCN relay, uplink NIC);
 *  (C2) the memory mapping unit: each MCN DIMM's SRAM window is an
 *       MMIO region on its channel's memory controller, and bulk
 *       copies use the interleave-aware memcpy models
 *       (write-combined stores toward the DIMM, cacheable reads +
 *       invalidate from it, or MCN-DMA at mcn5);
 *  (C3) the polling agent: an HR-timer + tasklet scan of every
 *       DIMM's tx-poll field (mcn0), or the ALERT_N-based per-DIMM
 *       interrupt (mcn1+).
 *
 * One McnHostInterface (a virtual Ethernet net_device) is created
 * per MCN DIMM, giving the host a point-to-point link per node.
 */

#ifndef MCNSIM_MCN_HOST_DRIVER_HH
#define MCNSIM_MCN_HOST_DRIVER_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/mcn_config.hh"
#include "mcn/alert_signal.hh"
#include "mcn/mcn_dimm.hh"
#include "mcn/mcn_dma.hh"
#include "mem/memcpy_model.hh"
#include "os/hrtimer.hh"
#include "os/kernel.hh"
#include "os/net_device.hh"
#include "sim/fault.hh"

namespace mcnsim::mcn {

class McnHostDriver;

/** One host-side virtual Ethernet interface (per MCN DIMM). */
class McnHostInterface : public os::NetDevice
{
  public:
    McnHostInterface(sim::Simulation &s, std::string name,
                     net::MacAddr mac, std::uint32_t mtu,
                     McnHostDriver &driver, std::size_t dimm_index);

    os::TxResult xmit(net::PacketPtr pkt) override;

    std::size_t dimmIndex() const { return dimmIndex_; }

  private:
    McnHostDriver &driver_;
    std::size_t dimmIndex_;
};

/** The host-side driver core. */
class McnHostDriver : public sim::SimObject
{
  public:
    McnHostDriver(sim::Simulation &s, std::string name,
                  os::Kernel &host_kernel, core::McnConfig config);

    /**
     * Bind @p dimm, installed on host channel @p channel: creates
     * the host-side interface, maps the SRAM window on that
     * channel's controller and wires ALERT_N when configured.
     * Returns the new interface (caller registers it with the host
     * stack and assigns addresses).
     */
    McnHostInterface &addDimm(McnDimm &dimm, std::uint32_t channel);

    /** Conventional NIC used for scenario F4 (may be null). */
    void setUplink(os::NetDevice *dev) { uplink_ = dev; }

    /**
     * Called when a frame for a degraded (unresponsive) MCN node is
     * dropped by the forwarding engine: @p src is the IP source of
     * the dropped frame, @p dead the degraded node's IP. The system
     * builder wires this to the host stack's ICMP destination-
     * unreachable path so senders fail fast instead of timing out.
     */
    void
    setUnreachableNotifier(
        std::function<void(net::Ipv4Addr src, net::Ipv4Addr dead)> f)
    {
        unreachableNotifier_ = std::move(f);
    }

    void startup() override;

    const core::McnConfig &config() const { return config_; }
    std::size_t dimmCount() const { return dimms_.size(); }
    McnHostInterface &hostInterface(std::size_t i)
    {
        return *dimms_[i]->iface;
    }
    McnDimm &dimm(std::size_t i) { return *dimms_[i]->dimm; }

    /** T1-T3 toward DIMM @p idx (called by the interfaces). */
    os::TxResult xmitToDimm(std::size_t idx, net::PacketPtr pkt);

    std::uint64_t forwardedMcnToMcn() const
    {
        return static_cast<std::uint64_t>(statF3_.value());
    }
    std::uint64_t deliveredToHost() const
    {
        return static_cast<std::uint64_t>(statF1_.value());
    }
    std::uint64_t pollScans() const
    {
        return static_cast<std::uint64_t>(statPollScans_.value());
    }
    std::uint64_t pollHits() const
    {
        return static_cast<std::uint64_t>(statPollHits_.value());
    }
    std::uint64_t dimmsDegraded() const
    {
        return static_cast<std::uint64_t>(statDegraded_.value());
    }
    std::uint64_t dimmsReadmitted() const
    {
        return static_cast<std::uint64_t>(statRecoveries_.value());
    }
    std::uint64_t degradedDrops() const
    {
        return static_cast<std::uint64_t>(statDegradedDrops_.value());
    }
    std::uint64_t ringCrcDrops() const
    {
        return static_cast<std::uint64_t>(statRingCrcDrops_.value());
    }

    /** Watchdog verdict on one DIMM (see watchdogTick()). */
    enum class Health { Healthy, Suspect, Degraded };

    /** Current watchdog verdict for DIMM @p idx. */
    Health dimmHealth(std::size_t idx) const
    {
        return dimms_[idx]->health;
    }

  private:
    struct Binding
    {
        McnDimm *dimm = nullptr;
        std::uint32_t channel = 0;
        std::uint32_t slot = 0; ///< position on its channel
        mem::Addr windowBase = 0;
        std::unique_ptr<McnHostInterface> iface;
        std::unique_ptr<mem::CopyEngine> copy;
        std::unique_ptr<McnDmaEngine> dma;
        bool draining = false;
        std::size_t rxReserved = 0; ///< in-flight copy bytes
        sim::Tick drainStart = 0;   ///< timeline: R1 tick of drain

        // Watchdog state (active only under an armed fault plan).
        Health health = Health::Healthy;
        std::uint64_t lastDequeued = 0; ///< RX-ring progress marker
        unsigned stuckEpochs = 0;       ///< epochs with no progress
        bool probeCredit = false; ///< degraded: one probe per epoch
    };

    /** One MMIO access to a control field of a DIMM's SRAM. */
    void fieldAccess(Binding &b, mem::MemRequest::Kind kind,
                     std::function<void(sim::Tick)> done);

    void pollTasklet();
    void scanNext(std::size_t idx);
    void drainDimm(std::size_t idx);
    void startDrain(std::size_t idx);
    void drainLoop(std::size_t idx);
    void drainFinished(std::size_t idx);
    void forward(std::size_t from_idx, net::PacketPtr pkt);
    void relayToDimm(std::size_t idx, net::PacketPtr pkt,
                     unsigned attempts = 0);
    void watchdogTick();
    void checkDimmHealth(std::size_t idx);
    void notifyUnreachable(const net::Packet &pkt,
                           std::size_t dead_idx);

    os::Kernel &kernel_;
    core::McnConfig config_;
    std::vector<std::unique_ptr<Binding>> dimms_;
    std::map<std::uint32_t, std::unique_ptr<AlertSignal>> alerts_;
    std::map<std::uint32_t, std::uint32_t> slotsPerChannel_;
    // The driver drains one DIMM per channel at a time: the ring
    // copies of one channel share that channel and the driver's
    // per-channel context, so concurrent drains on one channel are
    // not physical.
    std::map<std::uint32_t, bool> channelDraining_;
    std::map<std::uint32_t, std::deque<std::size_t>> drainQueue_;
    os::NetDevice *uplink_ = nullptr;
    std::unique_ptr<os::HrTimer> pollTimer_;
    bool pollInFlight_ = false;
    sim::Tick pollStart_ = 0; ///< timeline: tick the sweep began
    std::function<void(net::Ipv4Addr, net::Ipv4Addr)>
        unreachableNotifier_;

    /// Host->MCN copy lands corrupted in the RX ring.
    sim::FaultSite faultTxCorrupt_ = FAULT_POINT("tx-corrupt");

    sim::Scalar statF1_{"f1HostDeliveries",
                        "frames delivered to the host stack"};
    sim::Scalar statF2_{"f2Broadcasts", "broadcast frames fanned out"};
    sim::Scalar statF3_{"f3McnToMcn", "frames relayed MCN to MCN"};
    sim::Scalar statF4_{"f4Uplink", "frames sent to the uplink NIC"};
    sim::Scalar statFDrop_{"fDrops", "unroutable frames dropped"};
    sim::Scalar statPollScans_{"pollScans", "tx-poll fields read"};
    sim::Scalar statPollHits_{"pollHits", "polls finding data"};
    sim::Scalar statRxRingFull_{"rxRingFull",
                                "host->MCN ring-full busy returns"};
    sim::Scalar statDegraded_{"dimmsDegraded",
                              "DIMMs the watchdog marked degraded"};
    sim::Scalar statRecoveries_{"dimmsReadmitted",
                                "degraded DIMMs readmitted"};
    sim::Scalar statDegradedDrops_{
        "degradedDrops", "frames dropped toward degraded DIMMs"};
    sim::Scalar statRingCrcDrops_{
        "ringCrcDrops", "TX-ring messages failing the entry CRC"};
};

} // namespace mcnsim::mcn

#endif // MCNSIM_MCN_HOST_DRIVER_HH
