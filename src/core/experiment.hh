/**
 * @file
 * Experiment harness: synchronous wrappers used by the benches and
 * examples to run iperf, ping sweeps and MPI workloads on any
 * built system and to assemble the matching energy models.
 */

#ifndef MCNSIM_CORE_EXPERIMENT_HH
#define MCNSIM_CORE_EXPERIMENT_HH

#include <functional>
#include <vector>

#include "core/system_builder.hh"
#include "dist/iperf.hh"
#include "dist/ping.hh"
#include "dist/workload.hh"
#include "power/energy_model.hh"
#include "sim/simulation.hh"

namespace mcnsim::core {

/**
 * Run the simulation in slices until @p done returns true or
 * @p deadline passes (periodic device timers keep the event queue
 * non-empty, so a plain run() would never return).
 */
sim::Tick runUntil(sim::Simulation &s, std::function<bool()> done,
                   sim::Tick deadline,
                   sim::Tick slice = 100 * sim::oneUs);

/** Result of one iperf experiment. */
struct IperfReport
{
    double gbps = 0.0;
    std::uint64_t bytes = 0;
    int connections = 0;
};

/**
 * iperf: server on @p server_node, one client per entry of
 * @p client_nodes, streaming for @p duration of simulated time.
 */
IperfReport runIperf(sim::Simulation &s, System &sys,
                     std::size_t server_node,
                     const std::vector<std::size_t> &client_nodes,
                     sim::Tick duration);

/** Ping sweep from one node to another across payload sizes.
 *  @p timeout and @p retries bound each probe (see
 *  dist::pingSweep). */
std::vector<dist::PingPoint>
runPingSweep(sim::Simulation &s, System &sys, std::size_t from,
             std::size_t to, const std::vector<std::size_t> &sizes,
             int count = 5, sim::Tick timeout = 100 * sim::oneMs,
             unsigned retries = 0);

/** Result of one MPI workload run. */
struct MpiRunReport
{
    sim::Tick makespan = 0;
    std::uint64_t mpiBytes = 0;
    bool completed = false;
};

/**
 * Run @p spec with one rank per entry of @p rank_nodes (node
 * indices into @p sys). The spec should already be scaled to the
 * rank count.
 */
MpiRunReport runMpiWorkload(sim::Simulation &s, System &sys,
                            const dist::WorkloadSpec &spec,
                            const std::vector<std::size_t> &rank_nodes,
                            sim::Tick deadline = 30 * sim::oneSec,
                            std::uint16_t base_port = 7000);

/** Rank placement: fill every node's cores (cores ranks/node). */
std::vector<std::size_t> allCoresPlacement(System &sys);

/** Energy model covering an entire MCN server. */
power::EnergyModel energyModelFor(McnSystem &sys);

/** Energy model covering a cluster incl. NICs and switch ports. */
power::EnergyModel energyModelFor(ClusterSystem &sys);

} // namespace mcnsim::core

#endif // MCNSIM_CORE_EXPERIMENT_HH
