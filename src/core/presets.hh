/**
 * @file
 * Table II system-configuration presets: the host processor, the
 * MCN processor, and the baseline network parameters used across
 * the evaluation.
 */

#ifndef MCNSIM_CORE_PRESETS_HH
#define MCNSIM_CORE_PRESETS_HH

#include "mcn/mcn_dimm.hh"
#include "os/kernel.hh"
#include "sim/types.hh"

namespace mcnsim::core {

/** Host processor: 8 cores @ 3.4 GHz, DDR4-3200 (Table II). */
os::KernelParams hostKernelParams(std::uint32_t mem_channels = 2,
                                  std::uint32_t cores = 8);

/** MCN processor: 4 cores @ 2.45 GHz, LPDDR4 local channels. */
os::KernelParams mcnKernelParams();

/** MCN DIMM template built from the Table II MCN row. */
mcn::McnDimmParams mcnDimmParams(const McnConfig &config);

/** Baseline network: 10 GbE, 1 us link latency (Table II). */
struct BaselineNetParams
{
    double linkBps = 10e9;
    sim::Tick linkLatency = 1 * sim::oneUs;
    std::uint32_t mtu = 1500;
    bool nicTso = false;
    bool nicChecksumOffload = false;
};

/**
 * ConTutto proof-of-concept preset (Sec. VI-C): one MCN DIMM with
 * a very slow NIOS-II-class soft core (266 MHz, single core) and
 * DDR3-1066 DRAM, used by the feasibility-demo example.
 */
os::KernelParams niosKernelParams();

} // namespace mcnsim::core

#endif // MCNSIM_CORE_PRESETS_HH
