/**
 * @file
 * Table II presets.
 */

#include "core/presets.hh"

namespace mcnsim::core {

os::KernelParams
hostKernelParams(std::uint32_t mem_channels, std::uint32_t cores)
{
    os::KernelParams p;
    p.cores = cores;
    p.coreFreqHz = 3.4e9;
    p.memChannels = mem_channels;
    p.dramTiming = mem::DramTiming::ddr4_3200();
    return p;
}

os::KernelParams
mcnKernelParams()
{
    os::KernelParams p;
    p.cores = 4;
    p.coreFreqHz = 2.45e9;
    p.memChannels = 2;
    p.dramTiming = mem::DramTiming::lpddr4_1866();
    return p;
}

mcn::McnDimmParams
mcnDimmParams(const McnConfig &config)
{
    mcn::McnDimmParams p;
    p.kernel = mcnKernelParams();
    p.config = config;
    return p;
}

os::KernelParams
niosKernelParams()
{
    os::KernelParams p;
    p.cores = 1;
    p.coreFreqHz = 266e6;
    p.memChannels = 1;
    p.dramTiming = mem::DramTiming::ddr3_1066();
    return p;
}

} // namespace mcnsim::core
