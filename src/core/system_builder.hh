/**
 * @file
 * Fully wired systems, the library's main entry points:
 *
 *  - McnSystem: one host with N MCN DIMMs spread across its memory
 *    channels (the MCN-enabled server of Figs. 3/9/11);
 *  - ClusterSystem: N conventional nodes joined by 10 GbE links and
 *    a top-of-rack switch (the scale-out baseline of Fig. 10);
 *  - ScaleUpSystem: a single conventional node with many cores (the
 *    scale-up baseline of Fig. 11).
 *
 * Each system assigns addresses, populates neighbour tables, and
 * exposes a uniform node()/stackOf() view so workloads run
 * unchanged on any of them -- the application-transparency claim.
 */

#ifndef MCNSIM_CORE_SYSTEM_BUILDER_HH
#define MCNSIM_CORE_SYSTEM_BUILDER_HH

#include <memory>
#include <vector>

#include "core/mcn_config.hh"
#include "core/presets.hh"
#include "mcn/host_driver.hh"
#include "mcn/mcn_dimm.hh"
#include "net/net_stack.hh"
#include "netdev/ethernet_switch.hh"
#include "netdev/nic.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"

namespace mcnsim::core {

/**
 * A uniform handle on "a node": its kernel and network stack plus
 * the address other nodes reach it at.
 */
struct NodeRef
{
    os::Kernel *kernel = nullptr;
    net::NetStack *stack = nullptr;
    net::Ipv4Addr addr;
};

/** Common interface of all built systems. */
class System
{
  public:
    virtual ~System() = default;

    virtual std::size_t nodeCount() const = 0;
    virtual NodeRef node(std::size_t i) = 0;
};

/** Parameters for an MCN-enabled server. */
struct McnSystemParams
{
    std::size_t numDimms = 8;
    McnConfig config;
    os::KernelParams host = hostKernelParams();
    /** Template for every DIMM (kernel preset may be overridden,
     *  e.g. the NIOS-II proof-of-concept). */
    os::KernelParams dimmKernel = mcnKernelParams();
    /** Third address octet: nodes live in 10.0.<subnet>.x (used
     *  by multi-server deployments to keep servers distinct). */
    std::uint8_t subnet = 0;
    /** Name prefix so several servers can share one simulation. */
    std::string namePrefix = "";
};

/** One host + N MCN DIMMs. Node 0 is the host, 1..N the DIMMs. */
class McnSystem : public System
{
  public:
    McnSystem(sim::Simulation &s, const McnSystemParams &params);

    std::size_t nodeCount() const override
    {
        return 1 + dimms_.size();
    }
    NodeRef node(std::size_t i) override;

    os::Kernel &host() { return *hostKernel_; }
    net::NetStack &hostStack() { return *hostStack_; }
    mcn::McnHostDriver &driver() { return *driver_; }
    mcn::McnDimm &dimm(std::size_t i) { return *dimms_[i]; }
    std::size_t dimmCount() const { return dimms_.size(); }

    net::Ipv4Addr hostAddr() const { return hostAddr_; }
    net::Ipv4Addr dimmAddr(std::size_t i) const;

    const McnSystemParams &params() const { return params_; }

  private:
    McnSystemParams params_;
    std::unique_ptr<os::Kernel> hostKernel_;
    std::unique_ptr<net::NetStack> hostStack_;
    std::unique_ptr<mcn::McnHostDriver> driver_;
    std::vector<std::unique_ptr<mcn::McnDimm>> dimms_;
    net::Ipv4Addr hostAddr_;
};

/** Parameters for the conventional scale-out cluster. */
struct ClusterSystemParams
{
    std::size_t numNodes = 2;
    os::KernelParams node = hostKernelParams();
    BaselineNetParams net;
};

/** N conventional nodes behind a top-of-rack switch. */
class ClusterSystem : public System
{
  public:
    ClusterSystem(sim::Simulation &s,
                  const ClusterSystemParams &params);

    std::size_t nodeCount() const override { return nodes_.size(); }
    NodeRef node(std::size_t i) override;

    netdev::EthernetSwitch &torSwitch() { return *switch_; }
    netdev::Nic &nic(std::size_t i) { return *nodes_[i]->nic; }
    /** Node @p i's link to the ToR switch (fault injection). */
    netdev::EthernetLink &link(std::size_t i)
    {
        return *nodes_[i]->link;
    }
    net::Ipv4Addr addrOf(std::size_t i) const;

  private:
    struct Node
    {
        std::unique_ptr<os::Kernel> kernel;
        std::unique_ptr<net::NetStack> stack;
        std::unique_ptr<netdev::Nic> nic;
        std::unique_ptr<netdev::EthernetLink> link;
        net::Ipv4Addr addr;
    };

    ClusterSystemParams params_;
    std::unique_ptr<netdev::EthernetSwitch> switch_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

/** Multi-switch fabric shapes (FabricSystem). */
enum class FabricTopology {
    /** One leaf per rack, one uplink from each leaf to each spine. */
    LeafSpine,
    /** 2-level fat tree: ceil(nodesPerRack / spines) parallel
     *  uplinks from each leaf to each spine, i.e. one uplink per
     *  access port (full bisection) spread over the spines. */
    FatTree,
};

/** Parameters for a rack-scale multi-switch fabric. */
struct FabricSystemParams
{
    FabricTopology topology = FabricTopology::LeafSpine;
    std::size_t racks = 2;
    std::size_t nodesPerRack = 2;
    std::size_t spines = 2;
    os::KernelParams node = hostKernelParams();
    BaselineNetParams net;   ///< node-to-leaf access links
    BaselineNetParams trunk; ///< leaf-to-spine trunk links
    netdev::FabricParams fabric;
};

/**
 * Rack-scale cluster: racks x nodesPerRack conventional nodes, one
 * leaf switch per rack, @p spines spine switches, every switch in
 * fabric mode (ECMP + hello liveness, DESIGN.md §12). Node i =
 * rack (i / nodesPerRack), member (i % nodesPerRack). PDES: every
 * node and every switch gets its own shard; the access and trunk
 * link latencies are the lookahead edges.
 */
class FabricSystem : public System
{
  public:
    FabricSystem(sim::Simulation &s,
                 const FabricSystemParams &params);

    std::size_t nodeCount() const override
    {
        return params_.racks * params_.nodesPerRack;
    }
    NodeRef node(std::size_t i) override;

    netdev::EthernetSwitch &leaf(std::size_t r)
    {
        return *leaves_[r].sw;
    }
    netdev::EthernetSwitch &spine(std::size_t j)
    {
        return *spines_[j].sw;
    }
    std::size_t leafCount() const { return leaves_.size(); }
    std::size_t spineCount() const { return spines_.size(); }

    net::Ipv4Addr addrOf(std::size_t i) const;
    net::MacAddr macOf(std::size_t i) const;

    /** Parallel uplinks from each leaf to each spine. */
    std::size_t uplinksPerSpine() const { return upf_; }

    /** Leaf port range carrying uplinks:
     *  [nodesPerRack, nodesPerRack + spines * uplinksPerSpine). */
    std::size_t uplinkPortBase() const
    {
        return params_.nodesPerRack;
    }
    std::size_t uplinkPortCount() const
    {
        return params_.spines * upf_;
    }

    /** Longest node-to-node path, counted in PathTrace stamps:
     *  stack tx, source NIC, access link, leaf, trunk, spine,
     *  trunk, remote leaf, access link, destination NIC = 10 for
     *  cross-rack traffic (intra-rack is 6). A delivered packet
     *  with more stamps than this means a forwarding loop. */
    std::size_t diameterHops() const { return 10; }

    const FabricSystemParams &params() const { return params_; }

  private:
    struct Node
    {
        std::unique_ptr<os::Kernel> kernel;
        std::unique_ptr<net::NetStack> stack;
        std::unique_ptr<netdev::Nic> nic;
        std::unique_ptr<netdev::EthernetLink> link;
        net::Ipv4Addr addr;
        std::size_t shard = 0;
    };

    struct Switch
    {
        std::unique_ptr<netdev::EthernetSwitch> sw;
        std::size_t shard = 0;
    };

    void wireNotifier(netdev::EthernetSwitch &sw,
                      std::size_t sw_shard);

    FabricSystemParams params_;
    std::size_t upf_ = 1;
    std::vector<Switch> leaves_;
    std::vector<Switch> spines_;
    std::vector<std::unique_ptr<netdev::EthernetLink>> trunks_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

/** Parameters for a multi-server MCN deployment. */
struct McnMultiServerParams
{
    std::size_t numServers = 2;
    std::size_t dimmsPerServer = 2;
    McnConfig config;
    BaselineNetParams uplink; ///< host-to-host 10GbE fabric
};

/**
 * Several MCN-enabled servers whose hosts are joined by a
 * conventional 10GbE switch (Sec. III-B: traffic between MCN nodes
 * on different hosts crosses both memory channels and the NIC via
 * the hosts' forwarding engines + IP forwarding). Node indexing:
 * server s's host is node s*(1+D), its DIMMs follow.
 */
class McnMultiServer : public System
{
  public:
    McnMultiServer(sim::Simulation &s,
                   const McnMultiServerParams &params);

    std::size_t nodeCount() const override;
    NodeRef node(std::size_t i) override;

    McnSystem &server(std::size_t s) { return *servers_[s]; }
    std::size_t serverCount() const { return servers_.size(); }

    /** Global node index of server @p s's DIMM @p d. */
    std::size_t
    dimmNode(std::size_t s, std::size_t d) const
    {
        return s * (1 + params_.dimmsPerServer) + 1 + d;
    }

  private:
    McnMultiServerParams params_;
    std::vector<std::unique_ptr<McnSystem>> servers_;
    std::vector<std::unique_ptr<netdev::Nic>> nics_;
    std::vector<std::unique_ptr<netdev::EthernetLink>> links_;
    std::unique_ptr<netdev::EthernetSwitch> switch_;
};

/** A single fat node (Fig. 11's scale-up baseline). */
class ScaleUpSystem : public System
{
  public:
    ScaleUpSystem(sim::Simulation &s, std::uint32_t cores,
                  std::uint32_t mem_channels = 2);

    std::size_t nodeCount() const override { return 1; }
    NodeRef node(std::size_t i) override;

    os::Kernel &kernel() { return *kernel_; }
    net::NetStack &stack() { return *stack_; }

  private:
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<net::NetStack> stack_;
    net::Ipv4Addr addr_;
};

} // namespace mcnsim::core

#endif // MCNSIM_CORE_SYSTEM_BUILDER_HH
