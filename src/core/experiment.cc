/**
 * @file
 * Experiment harness implementation.
 */

#include "core/experiment.hh"

#include <algorithm>

#include "dist/mpi.hh"
#include "net/icmp.hh"

namespace mcnsim::core {

sim::Tick
runUntil(sim::Simulation &s, std::function<bool()> done,
         sim::Tick deadline, sim::Tick slice)
{
    while (!done() && s.curTick() < deadline)
        s.run(std::min(s.curTick() + slice, deadline));
    return s.curTick();
}

IperfReport
runIperf(sim::Simulation &s, System &sys, std::size_t server_node,
         const std::vector<std::size_t> &client_nodes,
         sim::Tick duration)
{
    auto stats = std::make_shared<dist::IperfStats>();
    auto server = sys.node(server_node);
    constexpr std::uint16_t port = 5201;

    // Workload coroutines spawn on their node's own event queue so
    // each runs on its node's shard in a sharded simulation (in an
    // unsharded one every node queue is the primary queue).
    sim::spawnDetached(server.kernel->eventQueue(),
                       dist::iperfServer(*server.stack, port,
                                         stats));

    sim::Tick until = s.curTick() + duration;
    for (std::size_t c : client_nodes) {
        auto client = sys.node(c);
        sim::spawnDetached(
            client.kernel->eventQueue(),
            dist::iperfClient(*client.stack,
                              {server.addr, port}, until));
    }

    // Run through the stream window plus drain time.
    runUntil(
        s, [&] { return false; }, until + 2 * sim::oneMs);

    IperfReport r;
    r.gbps = stats->gbps();
    r.bytes = stats->bytesReceived;
    r.connections = stats->connections;
    return r;
}

std::vector<dist::PingPoint>
runPingSweep(sim::Simulation &s, System &sys, std::size_t from,
             std::size_t to, const std::vector<std::size_t> &sizes,
             int count, sim::Tick timeout, unsigned retries)
{
    std::vector<dist::PingPoint> out;
    bool finished = false;
    auto task = [&]() -> sim::Task<void> {
        co_await dist::pingSweep(*sys.node(from).stack,
                                 sys.node(to).addr, sizes, count,
                                 out, timeout, retries);
        finished = true;
    };
    // Spawn on the pinging node's queue (= its shard); `finished`
    // is only read between run slices, on the coordinating thread.
    sim::spawnDetached(sys.node(from).kernel->eventQueue(), task());
    runUntil(
        s, [&] { return finished; },
        s.curTick() + 10 * sim::oneSec);
    return out;
}

MpiRunReport
runMpiWorkload(sim::Simulation &s, System &sys,
               const dist::WorkloadSpec &spec,
               const std::vector<std::size_t> &rank_nodes,
               sim::Tick deadline, std::uint16_t base_port)
{
    std::vector<NodeRef> nodes;
    nodes.reserve(rank_nodes.size());
    for (std::size_t n : rank_nodes)
        nodes.push_back(sys.node(n));

    dist::MpiWorld world(s, std::move(nodes), base_port);
    sim::Tick start = s.curTick();
    world.launch([spec](dist::MpiRank &r) {
        return dist::runWorkloadRank(r, spec);
    });
    world.runToCompletion(s, start + deadline);

    MpiRunReport rep;
    rep.completed = world.done();
    // Measure from the end of MPI_Init (mesh establishment), as
    // benchmark harnesses do.
    sim::Tick from =
        world.allReadyAt() ? world.allReadyAt() : start;
    rep.makespan = s.curTick() - from;
    rep.mpiBytes = world.bytesMoved();
    return rep;
}

std::vector<std::size_t>
allCoresPlacement(System &sys)
{
    std::vector<std::size_t> placement;
    for (std::size_t n = 0; n < sys.nodeCount(); ++n) {
        auto node = sys.node(n);
        for (std::uint32_t c = 0; c < node.kernel->cpus().coreCount();
             ++c)
            placement.push_back(n);
    }
    return placement;
}

power::EnergyModel
energyModelFor(McnSystem &sys)
{
    using power::McpatLite;
    power::EnergyModel m;
    m.addCores(sys.host().cpus(), McpatLite::hostCore());
    m.addMem(sys.host().mem(), McpatLite::ddr4(),
             8.0 * sys.host().mem().channelCount());
    m.addUncore(McpatLite::hostUncore());
    for (std::size_t i = 0; i < sys.dimmCount(); ++i) {
        auto &d = sys.dimm(i);
        m.addCores(d.kernel().cpus(), McpatLite::mcnCore());
        m.addMem(d.kernel().mem(), McpatLite::lpddr4(),
                 8.0); // 8 GB per MCN DIMM (Table II)
        m.addUncore(McpatLite::mcnBufferDevice());
    }
    return m;
}

power::EnergyModel
energyModelFor(ClusterSystem &sys)
{
    using power::McpatLite;
    power::EnergyModel m;
    for (std::size_t i = 0; i < sys.nodeCount(); ++i) {
        auto n = sys.node(i);
        m.addCores(n.kernel->cpus(), McpatLite::hostCore());
        m.addMem(n.kernel->mem(), McpatLite::ddr4(),
                 8.0 * n.kernel->mem().channelCount());
        m.addUncore(McpatLite::hostUncore());
        m.addNet(sys.nic(i), McpatLite::nic10g());
        // One ToR port per node.
        m.addSwitch(
            [nic = &sys.nic(i)] {
                return nic->txBytes() + nic->rxBytes();
            },
            McpatLite::switchPort());
    }
    return m;
}

} // namespace mcnsim::core
