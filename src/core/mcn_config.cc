/**
 * @file
 * Table I optimisation levels.
 */

#include "core/mcn_config.hh"

#include "sim/logging.hh"

namespace mcnsim::core {

McnConfig
McnConfig::level(int n)
{
    McnConfig c;
    if (n < 0 || n > 5)
        sim::fatal("McnConfig::level: valid levels are 0..5, got ",
                   n);
    if (n >= 1)
        c.alertInterrupt = true;
    if (n >= 2)
        c.checksumBypass = true;
    if (n >= 3)
        c.mtu = 9000;
    if (n >= 4)
        c.tso = true;
    if (n >= 5)
        c.dma = true;
    return c;
}

std::string
McnConfig::describe() const
{
    std::string s = "mcn{poll=";
    s += alertInterrupt ? "alert" : "hrtimer";
    s += ",csum=";
    s += checksumBypass ? "bypass" : "sw";
    s += ",mtu=" + std::to_string(mtu);
    s += tso ? ",tso" : "";
    s += dma ? ",dma" : "";
    s += "}";
    return s;
}

} // namespace mcnsim::core
