/**
 * @file
 * System builders: address assignment, neighbour tables, wiring.
 */

#include "core/system_builder.hh"

#include "net/icmp.hh"
#include "sim/logging.hh"

namespace mcnsim::core {

// ---------------------------------------------------------------------
// McnSystem
// ---------------------------------------------------------------------

McnSystem::McnSystem(sim::Simulation &s,
                     const McnSystemParams &params)
    : params_(params)
{
    const std::string pfx = params.namePrefix;
    hostKernel_ = std::make_unique<os::Kernel>(s, pfx + "host", 0,
                                               params.host);
    hostStack_ = std::make_unique<net::NetStack>(
        s, pfx + "host.net", *hostKernel_);
    hostStack_->setChecksumBypass(params.config.checksumBypass);
    driver_ = std::make_unique<mcn::McnHostDriver>(
        s, pfx + "host.mcndrv", *hostKernel_, params.config);

    hostAddr_ = net::Ipv4Addr(10, 0, params.subnet, 1);
    hostStack_->setNodeAddress(hostAddr_);

    // Create the DIMMs, spread round-robin over host channels
    // ("we evenly distribute MCN DIMMs on the host memory
    // channels", Sec. VI-B).
    std::uint32_t channels = hostKernel_->mem().channelCount();
    for (std::size_t i = 0; i < params.numDimms; ++i) {
        mcn::McnDimmParams dp;
        dp.kernel = params.dimmKernel;
        dp.config = params.config;
        auto dimm = std::make_unique<mcn::McnDimm>(
            s, pfx + "mcn" + std::to_string(i),
            static_cast<int>(i + 1), dp);
        dimm->configureAddress(dimmAddr(i));

        auto &host_if = driver_->addDimm(
            *dimm, static_cast<std::uint32_t>(i % channels));

        // Host-side: point-to-point /32 route keyed on the peer's
        // address (Sec. III-B network organization).
        hostStack_->addPointToPoint(host_if, dimmAddr(i));
        hostStack_->addNeighbor(dimmAddr(i), dimm->mac());

        dimms_.push_back(std::move(dimm));
    }

    // MCN-side neighbour tables: the host resolves to the
    // corresponding host-side interface (F1); other MCN nodes
    // resolve to their own MCN-side interface MAC (F3).
    for (std::size_t i = 0; i < dimms_.size(); ++i) {
        auto &st = dimms_[i]->stack();
        st.addNeighbor(hostAddr_,
                       driver_->hostInterface(i).mac());
        // Anything beyond this server (multi-server MCN) also goes
        // to the host, which forwards it (F1 + IP forwarding).
        st.setDefaultNeighbor(driver_->hostInterface(i).mac());
        for (std::size_t j = 0; j < dimms_.size(); ++j) {
            if (j != i)
                st.addNeighbor(dimmAddr(j), dimms_[j]->mac());
        }
    }

    // Dead-node reporting: when the forwarding engine drops a frame
    // for a degraded DIMM, the host's ICMP layer tells the sender
    // (destination unreachable) so pings and connecting sockets
    // fail fast instead of timing out.
    net::NetStack *hs = hostStack_.get();
    driver_->setUnreachableNotifier(
        [hs](net::Ipv4Addr src, net::Ipv4Addr dead) {
            hs->icmp().sendUnreachable(src, dead);
        });
}

net::Ipv4Addr
McnSystem::dimmAddr(std::size_t i) const
{
    return net::Ipv4Addr(10, 0, params_.subnet,
                         static_cast<std::uint8_t>(2 + i));
}

NodeRef
McnSystem::node(std::size_t i)
{
    NodeRef r;
    if (i == 0) {
        r.kernel = hostKernel_.get();
        r.stack = hostStack_.get();
        r.addr = hostAddr_;
    } else {
        r.kernel = &dimms_[i - 1]->kernel();
        r.stack = &dimms_[i - 1]->stack();
        r.addr = dimmAddr(i - 1);
    }
    return r;
}

// ---------------------------------------------------------------------
// ClusterSystem
// ---------------------------------------------------------------------

ClusterSystem::ClusterSystem(sim::Simulation &s,
                             const ClusterSystemParams &params)
    : params_(params)
{
    // The switch lives on shard 0; when sharding is enabled (see
    // DESIGN.md §9) every node gets its own shard and the node-to-
    // switch link latency becomes the conservative-lookahead edge.
    // Unsharded, newShard()/addShardEdge() degrade to no-ops and
    // this is the classic single-queue build.
    switch_ = std::make_unique<netdev::EthernetSwitch>(
        s, "tor", static_cast<std::uint32_t>(params.numNodes));

    for (std::size_t i = 0; i < params.numNodes; ++i) {
        const std::size_t shard = s.newShard();
        sim::Simulation::ShardScope scope(s, shard);
        auto n = std::make_unique<Node>();
        std::string nm = "node" + std::to_string(i);
        n->kernel = std::make_unique<os::Kernel>(
            s, nm, static_cast<int>(i), params.node);
        n->stack = std::make_unique<net::NetStack>(s, nm + ".net",
                                                   *n->kernel);
        n->nic = std::make_unique<netdev::Nic>(
            s, nm + ".nic",
            net::MacAddr::fromId(
                0x300000u + static_cast<std::uint32_t>(i)),
            *n->kernel);
        n->nic->setMtu(params.net.mtu);
        n->nic->features().tso = params.net.nicTso;
        n->nic->features().checksumOffload =
            params.net.nicChecksumOffload;

        n->link = std::make_unique<netdev::EthernetLink>(
            s, nm + ".link", params.net.linkBps,
            params.net.linkLatency);
        n->nic->attachLink(*n->link);
        switch_->attachLink(static_cast<std::uint32_t>(i),
                            *n->link);
        s.addShardEdge(0, shard, params.net.linkLatency);

        n->addr = net::Ipv4Addr(
            192, 168, 1, static_cast<std::uint8_t>(1 + i));
        // One /24-ish interface: match anything in 192.168.1.x.
        n->stack->addInterface(*n->nic, n->addr,
                               net::SubnetMask{0xffffff00});
        nodes_.push_back(std::move(n));
    }

    // Static neighbour tables (no ARP, see DESIGN.md).
    for (auto &a : nodes_)
        for (auto &b : nodes_)
            if (a != b)
                a->stack->addNeighbor(b->addr, b->nic->mac());
}

net::Ipv4Addr
ClusterSystem::addrOf(std::size_t i) const
{
    return nodes_[i]->addr;
}

NodeRef
ClusterSystem::node(std::size_t i)
{
    NodeRef r;
    r.kernel = nodes_[i]->kernel.get();
    r.stack = nodes_[i]->stack.get();
    r.addr = nodes_[i]->addr;
    return r;
}

// ---------------------------------------------------------------------
// FabricSystem
// ---------------------------------------------------------------------

namespace {

net::MacAddr
fabricMac(std::size_t rack, std::size_t member)
{
    return net::MacAddr::fromId(
        0x500000u + static_cast<std::uint32_t>(rack) * 256u +
        static_cast<std::uint32_t>(member));
}

} // namespace

FabricSystem::FabricSystem(sim::Simulation &s,
                           const FabricSystemParams &params)
    : params_(params)
{
    MCNSIM_ASSERT(params.racks > 0 && params.nodesPerRack > 0 &&
                      params.spines > 0,
                  "fabric needs racks, nodes and spines");
    upf_ = params.topology == FabricTopology::FatTree
               ? (params.nodesPerRack + params.spines - 1) /
                     params.spines
               : 1;

    // Every switch gets its own shard (ROADMAP item 1): the access
    // and trunk link latencies become the lookahead edges. The
    // construction order below is part of the determinism contract
    // -- shard ids and names are a pure function of the params.
    const std::uint32_t leaf_ports = static_cast<std::uint32_t>(
        params.nodesPerRack + params.spines * upf_);
    for (std::size_t r = 0; r < params.racks; ++r) {
        Switch lf;
        lf.shard = s.newShard();
        sim::Simulation::ShardScope scope(s, lf.shard);
        lf.sw = std::make_unique<netdev::EthernetSwitch>(
            s, "rack" + std::to_string(r) + ".leaf", leaf_ports);
        lf.sw->enableFabric(params.fabric);
        for (std::size_t u = 0; u < uplinkPortCount(); ++u)
            lf.sw->markTrunk(static_cast<std::uint32_t>(
                params.nodesPerRack + u));
        leaves_.push_back(std::move(lf));
    }

    const std::uint32_t spine_ports =
        static_cast<std::uint32_t>(params.racks * upf_);
    for (std::size_t j = 0; j < params.spines; ++j) {
        Switch sp;
        sp.shard = s.newShard();
        sim::Simulation::ShardScope scope(s, sp.shard);
        sp.sw = std::make_unique<netdev::EthernetSwitch>(
            s, "spine" + std::to_string(j), spine_ports);
        sp.sw->enableFabric(params.fabric);
        for (std::uint32_t p = 0; p < spine_ports; ++p)
            sp.sw->markTrunk(p);
        spines_.push_back(std::move(sp));
    }

    // Trunks: leaf r's uplink (j, k) <-> spine j's port (r, k).
    for (std::size_t r = 0; r < params.racks; ++r) {
        for (std::size_t j = 0; j < params.spines; ++j) {
            for (std::size_t k = 0; k < upf_; ++k) {
                sim::Simulation::ShardScope scope(s,
                                                 leaves_[r].shard);
                const std::size_t t = j * upf_ + k;
                auto link = std::make_unique<netdev::EthernetLink>(
                    s,
                    "rack" + std::to_string(r) + ".trunk" +
                        std::to_string(t),
                    params.trunk.linkBps, params.trunk.linkLatency);
                leaves_[r].sw->attachLink(
                    static_cast<std::uint32_t>(
                        params.nodesPerRack + t),
                    *link);
                spines_[j].sw->attachLink(
                    static_cast<std::uint32_t>(r * upf_ + k), *link,
                    /*b_side=*/true);
                s.addShardEdge(leaves_[r].shard, spines_[j].shard,
                               params.trunk.linkLatency);
                trunks_.push_back(std::move(link));
            }
        }
    }

    // Nodes: one shard each, hanging off their rack's leaf.
    for (std::size_t r = 0; r < params.racks; ++r) {
        for (std::size_t m = 0; m < params.nodesPerRack; ++m) {
            auto n = std::make_unique<Node>();
            n->shard = s.newShard();
            sim::Simulation::ShardScope scope(s, n->shard);
            const std::string nm = "rack" + std::to_string(r) +
                                   ".node" + std::to_string(m);
            n->kernel = std::make_unique<os::Kernel>(
                s, nm,
                static_cast<int>(r * params.nodesPerRack + m),
                params.node);
            n->stack = std::make_unique<net::NetStack>(
                s, nm + ".net", *n->kernel);
            n->nic = std::make_unique<netdev::Nic>(
                s, nm + ".nic", fabricMac(r, m), *n->kernel);
            n->nic->setMtu(params.net.mtu);
            n->nic->features().tso = params.net.nicTso;
            n->nic->features().checksumOffload =
                params.net.nicChecksumOffload;
            n->link = std::make_unique<netdev::EthernetLink>(
                s, nm + ".link", params.net.linkBps,
                params.net.linkLatency);
            n->nic->attachLink(*n->link);
            leaves_[r].sw->attachLink(
                static_cast<std::uint32_t>(m), *n->link);
            s.addShardEdge(leaves_[r].shard, n->shard,
                           params.net.linkLatency);
            n->addr = net::Ipv4Addr(
                10, 32, static_cast<std::uint8_t>(r),
                static_cast<std::uint8_t>(1 + m));
            n->stack->addInterface(*n->nic, n->addr,
                                   net::SubnetMask{0xffff0000});
            nodes_.push_back(std::move(n));
        }
    }

    // Static ECMP routes. Leaf: local members on their access
    // port, everything remote over the whole uplink group. Spine:
    // each rack's members over that rack's trunk group.
    std::vector<std::uint32_t> uplinks;
    for (std::size_t u = 0; u < uplinkPortCount(); ++u)
        uplinks.push_back(
            static_cast<std::uint32_t>(params.nodesPerRack + u));
    for (std::size_t r = 0; r < params.racks; ++r) {
        for (std::size_t r2 = 0; r2 < params.racks; ++r2) {
            for (std::size_t m = 0; m < params.nodesPerRack; ++m) {
                if (r2 == r)
                    leaves_[r].sw->addFabricRoute(
                        fabricMac(r2, m),
                        {static_cast<std::uint32_t>(m)});
                else
                    leaves_[r].sw->addFabricRoute(fabricMac(r2, m),
                                                  uplinks);
            }
        }
    }
    for (std::size_t j = 0; j < params.spines; ++j) {
        for (std::size_t r = 0; r < params.racks; ++r) {
            std::vector<std::uint32_t> group;
            for (std::size_t k = 0; k < upf_; ++k)
                group.push_back(
                    static_cast<std::uint32_t>(r * upf_ + k));
            for (std::size_t m = 0; m < params.nodesPerRack; ++m)
                spines_[j].sw->addFabricRoute(fabricMac(r, m),
                                              group);
        }
    }

    // Static neighbour tables (no ARP): one /16, so every node
    // resolves every other node's MAC directly.
    for (auto &a : nodes_)
        for (auto &b : nodes_)
            if (a != b)
                a->stack->addNeighbor(b->addr, b->nic->mac());

    // Partition detection: a switch with no live next hop toward a
    // destination tells the traffic source, which fails its pings
    // and sockets toward that destination fast (DESIGN.md §12).
    for (auto &lf : leaves_)
        wireNotifier(*lf.sw, lf.shard);
    for (auto &sp : spines_)
        wireNotifier(*sp.sw, sp.shard);
}

void
FabricSystem::wireNotifier(netdev::EthernetSwitch &sw,
                           std::size_t sw_shard)
{
    sw.setUnreachableNotifier([this, &sw, sw_shard](
                                  net::Ipv4Addr src,
                                  net::Ipv4Addr dead) {
        for (auto &n : nodes_) {
            if (!(n->addr == src))
                continue;
            net::NetStack *stack = n->stack.get();
            // Model the notice as one access-link hop back to the
            // source; the latency is a registered shard edge, so
            // the post always clears the lookahead horizon.
            sw.simulation().postCrossShard(
                sw_shard, n->shard,
                sw.curTick() + params_.net.linkLatency,
                sim::EventPriority::Default, "fabric.unreach",
                [stack, dead] {
                    stack->icmp().notifyUnreachable(dead);
                });
            return;
        }
    });
}

net::Ipv4Addr
FabricSystem::addrOf(std::size_t i) const
{
    return nodes_[i]->addr;
}

net::MacAddr
FabricSystem::macOf(std::size_t i) const
{
    return fabricMac(i / params_.nodesPerRack,
                     i % params_.nodesPerRack);
}

NodeRef
FabricSystem::node(std::size_t i)
{
    NodeRef r;
    r.kernel = nodes_[i]->kernel.get();
    r.stack = nodes_[i]->stack.get();
    r.addr = nodes_[i]->addr;
    return r;
}

// ---------------------------------------------------------------------
// McnMultiServer
// ---------------------------------------------------------------------

McnMultiServer::McnMultiServer(sim::Simulation &s,
                               const McnMultiServerParams &params)
    : params_(params)
{
    switch_ = std::make_unique<netdev::EthernetSwitch>(
        s, "fabric",
        static_cast<std::uint32_t>(params.numServers));

    // One shard per server (the dist-gem5 partitioning the paper's
    // own evaluation used: a server's host + DIMMs share a
    // synchronous memory channel, so they must co-schedule; only
    // the inter-server Ethernet has latency to hide). The fabric
    // switch stays on shard 0.
    std::vector<std::size_t> shards;
    for (std::size_t sv = 0; sv < params.numServers; ++sv) {
        shards.push_back(s.newShard());
        sim::Simulation::ShardScope scope(s, shards.back());
        McnSystemParams sp;
        sp.numDimms = params.dimmsPerServer;
        sp.config = params.config;
        sp.subnet = static_cast<std::uint8_t>(sv);
        sp.namePrefix = "srv" + std::to_string(sv) + ".";
        servers_.push_back(std::make_unique<McnSystem>(s, sp));
    }

    // Give each host a conventional NIC into the fabric and the
    // routes/neighbours to reach every other server's nodes.
    for (std::size_t sv = 0; sv < params.numServers; ++sv) {
        sim::Simulation::ShardScope scope(s, shards[sv]);
        auto &host = servers_[sv]->host();
        auto &stack = servers_[sv]->hostStack();
        auto nic = std::make_unique<netdev::Nic>(
            s, "srv" + std::to_string(sv) + ".nic",
            net::MacAddr::fromId(
                0x400000u + static_cast<std::uint32_t>(sv)),
            host);
        nic->setMtu(params.uplink.mtu);
        auto link = std::make_unique<netdev::EthernetLink>(
            s, "srv" + std::to_string(sv) + ".uplink",
            params.uplink.linkBps, params.uplink.linkLatency);
        nic->attachLink(*link);
        switch_->attachLink(static_cast<std::uint32_t>(sv), *link);
        s.addShardEdge(0, shards[sv], params.uplink.linkLatency);

        net::Ipv4Addr uplink_addr(
            192, 168, 0, static_cast<std::uint8_t>(1 + sv));
        int nic_if = stack.addInterface(
            *nic, uplink_addr, net::SubnetMask{0xffffff00});
        stack.setIpForwarding(true);
        servers_[sv]->driver().setUplink(nic.get());

        // Routes + gateway MACs toward every other server.
        for (std::size_t other = 0; other < params.numServers;
             ++other) {
            if (other == sv)
                continue;
            stack.addRoute(
                nic_if,
                net::Ipv4Addr(10, 0,
                              static_cast<std::uint8_t>(other), 0),
                net::SubnetMask{0xffffff00});
            net::MacAddr gw = net::MacAddr::fromId(
                0x400000u + static_cast<std::uint32_t>(other));
            stack.addNeighbor(
                net::Ipv4Addr(192, 168, 0,
                              static_cast<std::uint8_t>(1 + other)),
                gw);
            // Remote host + remote DIMM addresses resolve to the
            // remote host's NIC (it forwards internally).
            stack.addNeighbor(
                net::Ipv4Addr(10, 0,
                              static_cast<std::uint8_t>(other), 1),
                gw);
            for (std::size_t d = 0; d < params.dimmsPerServer;
                 ++d)
                stack.addNeighbor(
                    net::Ipv4Addr(
                        10, 0, static_cast<std::uint8_t>(other),
                        static_cast<std::uint8_t>(2 + d)),
                    gw);
        }
        nics_.push_back(std::move(nic));
        links_.push_back(std::move(link));
    }
}

std::size_t
McnMultiServer::nodeCount() const
{
    return params_.numServers * (1 + params_.dimmsPerServer);
}

NodeRef
McnMultiServer::node(std::size_t i)
{
    std::size_t per = 1 + params_.dimmsPerServer;
    return servers_[i / per]->node(i % per);
}

// ---------------------------------------------------------------------
// ScaleUpSystem
// ---------------------------------------------------------------------

ScaleUpSystem::ScaleUpSystem(sim::Simulation &s, std::uint32_t cores,
                             std::uint32_t mem_channels)
{
    kernel_ = std::make_unique<os::Kernel>(
        s, "fatnode", 0, hostKernelParams(mem_channels, cores));
    stack_ = std::make_unique<net::NetStack>(s, "fatnode.net",
                                             *kernel_);
    addr_ = net::Ipv4Addr(10, 1, 0, 1);
    stack_->setNodeAddress(addr_);
}

NodeRef
ScaleUpSystem::node(std::size_t i)
{
    MCNSIM_ASSERT(i == 0, "scale-up system has one node");
    NodeRef r;
    r.kernel = kernel_.get();
    r.stack = stack_.get();
    r.addr = addr_;
    return r;
}

} // namespace mcnsim::core
