/**
 * @file
 * MCN optimisation-level configuration (paper Table I):
 *
 *   mcn0  baseline MCN with HR-timer polling
 *   mcn1  mcn0 + MCN DIMM interrupt (ALERT_N repurposed)
 *   mcn2  mcn1 + IPv4/TCP checksum bypassing
 *   mcn3  mcn2 + MTU increased to 9KB
 *   mcn4  mcn3 + TSO
 *   mcn5  mcn4 + MCN-DMA engines
 */

#ifndef MCNSIM_CORE_MCN_CONFIG_HH
#define MCNSIM_CORE_MCN_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace mcnsim::core {

/** Feature switches for one MCN system instance. */
struct McnConfig
{
    /** mcn1: ALERT_N interrupt instead of periodic polling. */
    bool alertInterrupt = false;

    /** mcn2: skip checksum generation/verification. */
    bool checksumBypass = false;

    /** mcn3: interface MTU (1500 default, 9000 jumbo). */
    std::uint32_t mtu = 1500;

    /** mcn4: TCP segmentation offload on the MCN interfaces. */
    bool tso = false;

    /** mcn5: memory-to-memory MCN-DMA engines do the copies. */
    bool dma = false;

    /** HR-timer polling period of the host-side polling agent. */
    sim::Tick pollPeriod = 5 * sim::oneUs;

    /** SRAM communication buffer size per MCN DIMM. */
    std::size_t sramBytes = 96 * 1024;

    /**
     * Resilience watchdogs (armed only while a fault plan is armed,
     * so silent runs stay event-identical to the seed baselines):
     * the host driver sweeps every DIMM's ring progress each epoch
     * and marks a DIMM degraded after @p watchdogEpochs epochs
     * without progress; the MCN driver uses the same epoch to
     * recover lost RX doorbells.
     */
    sim::Tick watchdogEpoch = 200 * sim::oneUs;
    unsigned watchdogEpochs = 5;

    /** The paper's named levels: mcnConfigLevel(0..5). */
    static McnConfig level(int n);

    std::string describe() const;
};

} // namespace mcnsim::core

#endif // MCNSIM_CORE_MCN_CONFIG_HH
