/**
 * @file
 * EthernetSwitch implementation.
 */

#include "netdev/ethernet_switch.hh"

#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::netdev {

namespace {

std::uint64_t
macKey(const net::MacAddr &m)
{
    std::uint64_t k = 0;
    for (auto byte : m.b)
        k = (k << 8) | byte;
    return k;
}

} // namespace

EthernetSwitch::EthernetSwitch(sim::Simulation &s, std::string name,
                               std::uint32_t ports,
                               sim::Tick forwarding_latency,
                               std::uint64_t egress_queue_bytes)
    : sim::SimObject(s, std::move(name)),
      // Sized so eviction never fires for sane topologies (16 MACs
      // per port of slack); the committed benches stay bit-identical
      // to the unbounded-map table.
      fib_(std::size_t{ports} * 16),
      fwdLatency_(forwarding_latency), egressCap_(egress_queue_bytes)
{
    for (std::uint32_t i = 0; i < ports; ++i)
        ports_.push_back(std::make_unique<Port>(*this, i));
    regStat(&statForwarded_);
    regStat(&statFlooded_);
    regStat(&statDrops_);
    regStat(&statFaultDrops_);
    for (std::uint32_t i = 0; i < ports; ++i) {
        portBacklogQ_.push_back(std::make_unique<sim::QueueStat>(
            "port" + std::to_string(i) + ".egressBacklog",
            "egress queue bytes on port " + std::to_string(i) +
                " (flow telemetry)"));
        regStat(portBacklogQ_.back().get());
    }
}

void
EthernetSwitch::attachLink(std::uint32_t port, EthernetLink &link)
{
    MCNSIM_ASSERT(port < ports_.size(), "bad switch port");
    ports_[port]->link = &link;
    link.attachA(ports_[port].get());
}

void
EthernetSwitch::frameIn(std::uint32_t port, net::PacketPtr pkt)
{
    if (faultDrop_.fires()) {
        // Fabric-level loss (bad cable seating, CRC error at the
        // ingress MAC): the frame vanishes before MAC learning.
        statFaultDrops_ += 1;
        return;
    }
    auto eth = net::EthernetHeader::peek(*pkt);
    fib_.learn(macKey(eth.src), port);

    std::uint32_t out = eth.dst.isBroadcast()
                            ? MacFib::noPort
                            : fib_.lookup(macKey(eth.dst));
    if (out == MacFib::noPort) {
        // Flood to every other port.
        statFlooded_ += 1;
        trace("Switch", "flood ", pkt->size(), "B from port ",
              port);
        for (std::uint32_t p = 0; p < ports_.size(); ++p) {
            if (p == port || !ports_[p]->link)
                continue;
            egress(p, pkt->clone());
        }
        return;
    }
    if (out == port)
        return; // destination is behind the source port; drop
    egress(out, std::move(pkt));
}

void
EthernetSwitch::egress(std::uint32_t port, net::PacketPtr pkt)
{
    EthernetLink *link = ports_[port]->link;
    if (!link)
        return;
    std::uint64_t backlog = link->backlogBytes(ports_[port].get());
    if (backlog + pkt->size() > egressCap_) {
        statDrops_ += 1;
        trace("Switch", "drop ", pkt->size(),
              "B: egress queue full on port ", port);
        return;
    }
    statForwarded_ += 1;
    if (sim::FlowTelemetry::active()) [[unlikely]] {
        portBacklogQ_[port]->update(curTick(),
                                    backlog + pkt->size());
        pkt->pathHop(name().c_str(), curTick());
    }
    // The forwarding pipeline occupies [now, now + fwdLatency_].
    tlSpan("fwd", curTick(), curTick() + fwdLatency_);
    Port *p = ports_[port].get();
    eventQueue().scheduleIn(
        [link, p, pkt] { link->sendFrom(p, pkt); }, fwdLatency_,
        "switch.fwd");
}

} // namespace mcnsim::netdev
