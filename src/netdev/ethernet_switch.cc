/**
 * @file
 * EthernetSwitch implementation.
 */

#include "netdev/ethernet_switch.hh"

#include <algorithm>

#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::netdev {

namespace {

std::uint64_t
macKey(const net::MacAddr &m)
{
    std::uint64_t k = 0;
    for (auto byte : m.b)
        k = (k << 8) | byte;
    return k;
}

// IPv4 field offsets inside a frame (14 B Ethernet header + a
// 20-byte IPv4 header; the simulator always emits IHL=5).
constexpr std::size_t kOffProto = 23;
constexpr std::size_t kOffSrcIp = 26;
constexpr std::size_t kOffDstIp = 30;
constexpr std::size_t kOffPorts = 34; ///< TCP/UDP src+dst port

std::uint32_t
ipAt(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) |
           (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

} // namespace

EthernetSwitch::EthernetSwitch(sim::Simulation &s, std::string name,
                               std::uint32_t ports,
                               sim::Tick forwarding_latency,
                               std::uint64_t egress_queue_bytes)
    : sim::SimObject(s, std::move(name)),
      // Sized so eviction never fires for sane topologies (16 MACs
      // per port of slack); the committed benches stay bit-identical
      // to the unbounded-map table.
      fib_(std::size_t{ports} * 16),
      fwdLatency_(forwarding_latency), egressCap_(egress_queue_bytes)
{
    for (std::uint32_t i = 0; i < ports; ++i)
        ports_.push_back(std::make_unique<Port>(*this, i));
    regStat(&statForwarded_);
    regStat(&statFlooded_);
    regStat(&statDrops_);
    regStat(&statFaultDrops_);
    for (std::uint32_t i = 0; i < ports; ++i) {
        portBacklogQ_.push_back(std::make_unique<sim::QueueStat>(
            "port" + std::to_string(i) + ".egressBacklog",
            "egress queue bytes on port " + std::to_string(i) +
                " (flow telemetry)"));
        regStat(portBacklogQ_.back().get());
    }
}

EthernetSwitch::~EthernetSwitch() = default;

void
EthernetSwitch::attachLink(std::uint32_t port, EthernetLink &link,
                           bool b_side)
{
    MCNSIM_ASSERT(port < ports_.size(), "bad switch port");
    ports_[port]->link = &link;
    if (b_side)
        link.attachB(ports_[port].get());
    else
        link.attachA(ports_[port].get());
}

void
EthernetSwitch::frameIn(std::uint32_t port, net::PacketPtr pkt)
{
    if (faultDrop_.fires()) {
        // Fabric-level loss (bad cable seating, CRC error at the
        // ingress MAC): the frame vanishes before MAC learning.
        statFaultDrops_ += 1;
        return;
    }
    if (fabric_) {
        fabricFrameIn(port, std::move(pkt));
        return;
    }
    auto eth = net::EthernetHeader::peek(*pkt);
    fib_.learn(macKey(eth.src), port);

    std::uint32_t out = eth.dst.isBroadcast()
                            ? MacFib::noPort
                            : fib_.lookup(macKey(eth.dst));
    if (out == MacFib::noPort) {
        // Flood to every other port.
        statFlooded_ += 1;
        trace("Switch", "flood ", pkt->size(), "B from port ",
              port);
        for (std::uint32_t p = 0; p < ports_.size(); ++p) {
            if (p == port || !ports_[p]->link)
                continue;
            egress(p, pkt->clone());
        }
        return;
    }
    if (out == port)
        return; // destination is behind the source port; drop
    egress(out, std::move(pkt));
}

void
EthernetSwitch::egress(std::uint32_t port, net::PacketPtr pkt)
{
    EthernetLink *link = ports_[port]->link;
    if (!link)
        return;
    std::uint64_t backlog = link->backlogBytes(ports_[port].get());
    if (backlog + pkt->size() > egressCap_) {
        statDrops_ += 1;
        trace("Switch", "drop ", pkt->size(),
              "B: egress queue full on port ", port);
        return;
    }
    statForwarded_ += 1;
    if (sim::FlowTelemetry::active()) [[unlikely]] {
        portBacklogQ_[port]->update(curTick(),
                                    backlog + pkt->size());
        pkt->pathHop(name().c_str(), curTick());
    }
    // The forwarding pipeline occupies [now, now + fwdLatency_].
    tlSpan("fwd", curTick(), curTick() + fwdLatency_);
    Port *p = ports_[port].get();
    eventQueue().scheduleIn(
        [link, p, pkt] { link->sendFrom(p, pkt); }, fwdLatency_,
        "switch.fwd");
}

// ---------------------------------------------------------------------
// Fabric control plane (DESIGN.md §12)
// ---------------------------------------------------------------------

EthernetSwitch::SwitchPort::SwitchPort(sim::Simulation &s,
                                       EthernetSwitch &sw,
                                       std::uint32_t index)
    : sim::SimObject(s, sw.name() + ".port" + std::to_string(index)),
      sw_(sw), index_(index)
{}

void
EthernetSwitch::SwitchPort::startup()
{
    if (!sim::FaultPlan::active())
        return;
    auto &plan = sim::FaultPlan::instance();
    for (const auto &hit : plan.scheduledFor(name() + ".down")) {
        const sim::Tick dur =
            hit.param ? hit.param : 500 * sim::oneUs;
        eventQueue().schedule(
            [this, dur] {
                sim::reportScheduledFault(*this, "down");
                sw_.portDownNow(index_, dur);
            },
            hit.at, "fault.port-down");
    }
}

void
EthernetSwitch::enableFabric(const FabricParams &params)
{
    MCNSIM_ASSERT(!fabric_, "fabric mode enabled twice");
    fabric_ = std::make_unique<Fabric>();
    fabric_->params = params;
    fabric_->state.resize(ports_.size());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(ports_.size()); ++i)
        fabric_->portObjs.push_back(std::make_unique<SwitchPort>(
            simulation(), *this, i));
    regStat(&statHelloTx_);
    regStat(&statPortDown_);
    regStat(&statPortUp_);
    regStat(&statUnroutable_);
}

void
EthernetSwitch::markTrunk(std::uint32_t port)
{
    MCNSIM_ASSERT(fabric_ && port < fabric_->state.size(),
                  "markTrunk needs fabric mode and a valid port");
    fabric_->state[port].trunk = true;
}

void
EthernetSwitch::addFabricRoute(const net::MacAddr &dst,
                               std::vector<std::uint32_t> ports)
{
    MCNSIM_ASSERT(fabric_, "addFabricRoute needs fabric mode");
    fabric_->routes[macKey(dst)] = std::move(ports);
}

void
EthernetSwitch::setUnreachableNotifier(UnreachableNotifier fn)
{
    MCNSIM_ASSERT(fabric_, "notifier needs fabric mode");
    fabric_->notifier = std::move(fn);
}

bool
EthernetSwitch::portLiveAt(std::uint32_t port, sim::Tick now) const
{
    const PortState &ps = fabric_->state[port];
    if (now < ps.adminDownUntil)
        return false;
    if (!ps.trunk)
        return true;
    return now <= ps.lastHelloRx + fabric_->params.deadInterval;
}

bool
EthernetSwitch::portLive(std::uint32_t port) const
{
    MCNSIM_ASSERT(fabric_ && port < fabric_->state.size(),
                  "portLive needs fabric mode and a valid port");
    return portLiveAt(port, curTick());
}

std::vector<std::uint32_t>
EthernetSwitch::liveEcmpPorts(const net::MacAddr &dst) const
{
    std::vector<std::uint32_t> live;
    if (!fabric_)
        return live;
    auto it = fabric_->routes.find(macKey(dst));
    if (it == fabric_->routes.end())
        return live;
    const sim::Tick now = curTick();
    for (std::uint32_t p : it->second)
        if (portLiveAt(p, now))
            live.push_back(p);
    return live;
}

std::uint32_t
EthernetSwitch::flowHash(const net::Packet &pkt)
{
    const std::uint8_t *p = pkt.cdata();
    const std::size_t n = pkt.size();
    if (n < kOffDstIp + 4)
        return 0;
    auto eth = net::EthernetHeader::peek(pkt);
    if (eth.type != net::ethTypeIpv4)
        return 0;
    std::uint32_t h = 2166136261u;
    auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 16777619u;
    };
    const std::uint8_t proto = p[kOffProto];
    mix(proto);
    for (std::size_t i = kOffSrcIp; i < kOffSrcIp + 8; ++i)
        mix(p[i]); // src + dst address, contiguous
    if ((proto == net::protoTcp || proto == net::protoUdp) &&
        n >= kOffPorts + 4)
        for (std::size_t i = kOffPorts; i < kOffPorts + 4; ++i)
            mix(p[i]);
    return h;
}

void
EthernetSwitch::fabricFrameIn(std::uint32_t port, net::PacketPtr pkt)
{
    // Collect same-tick arrivals and route them in one end-of-tick
    // pass sorted by ingress port. The classic and sharded engines
    // interleave same-tick deliveries from *different* neighbours
    // differently (global insertion order vs mailbox merge order),
    // so acting on frames in raw delivery order would make the
    // ECMP-visible forwarding order an engine artifact.
    Fabric &f = *fabric_;
    f.inbox.emplace_back(port, std::move(pkt));
    if (!f.passScheduled) {
        f.passScheduled = true;
        eventQueue().schedule([this] { fabricIngressPass(); },
                              curTick(), "switch.ingress",
                              sim::EventPriority::Softirq);
    }
}

void
EthernetSwitch::fabricIngressPass()
{
    Fabric &f = *fabric_;
    f.passScheduled = false;
    auto batch = std::move(f.inbox);
    f.inbox.clear();
    // Stable: frames from the same port (one link's FIFO) keep
    // their relative order in every engine.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (auto &[port, pkt] : batch)
        fabricRoute(port, std::move(pkt));
}

void
EthernetSwitch::fabricRoute(std::uint32_t port, net::PacketPtr pkt)
{
    Fabric &f = *fabric_;
    const sim::Tick now = curTick();
    if (now < f.downUntil)
        return; // crashed/hung: the whole switch is dark
    if (now < f.state[port].adminDownUntil)
        return; // ingress port is down; hellos die here too
    auto eth = net::EthernetHeader::peek(*pkt);
    if (eth.type == net::ethTypeFabricHello) {
        f.state[port].lastHelloRx = now;
        return;
    }
    auto it = f.routes.find(macKey(eth.dst));
    if (it == f.routes.end()) {
        statUnroutable_ += 1;
        trace("Switch", "no route for ", eth.dst.str());
        return;
    }
    // Live-filter the group in fixed member order, then pick the
    // hash-th live member: flows spread over the healthy group and
    // rehash deterministically the instant a member dies or comes
    // back (bounded by the dead-interval detection window).
    std::array<std::uint32_t, 16> live; // ECMP groups are small
    std::size_t n_live = 0;
    for (std::uint32_t member : it->second)
        if (portLiveAt(member, now) && n_live < live.size())
            live[n_live++] = member;
    if (n_live == 0) {
        // True partition: no live next hop at all. Tell the source
        // so its sockets fail fast instead of spinning through the
        // full retransmission backoff.
        statUnroutable_ += 1;
        notifyUnreachable(*pkt);
        return;
    }
    // Hash before the move: argument initialisation is
    // indeterminately sequenced, so flowHash(*pkt) in the same call
    // could see an already-moved-from pointer.
    const std::uint32_t h = flowHash(*pkt);
    egress(live[h % n_live], std::move(pkt));
}

void
EthernetSwitch::notifyUnreachable(const net::Packet &pkt)
{
    Fabric &f = *fabric_;
    if (!f.notifier || pkt.size() < kOffDstIp + 4)
        return;
    auto eth = net::EthernetHeader::peek(pkt);
    if (eth.type != net::ethTypeIpv4)
        return;
    const std::uint32_t src = ipAt(pkt.cdata() + kOffSrcIp);
    const std::uint32_t dst = ipAt(pkt.cdata() + kOffDstIp);
    const sim::Tick now = curTick();
    auto [it, fresh] =
        f.lastNotify.try_emplace(std::make_pair(src, dst), now);
    if (!fresh) {
        if (now < it->second + f.params.deadInterval)
            return; // throttled
        it->second = now;
    }
    trace("Switch", "dst ", net::Ipv4Addr(dst).str(),
          " unreachable; notifying ", net::Ipv4Addr(src).str());
    f.notifier(net::Ipv4Addr(src), net::Ipv4Addr(dst));
}

void
EthernetSwitch::sendHello(std::uint32_t port)
{
    EthernetLink *link = ports_[port]->link;
    if (!link)
        return;
    auto pkt = net::Packet::make(
        {static_cast<std::uint8_t>(port), 0, 0, 0});
    net::EthernetHeader h;
    h.dst = net::MacAddr::broadcast();
    h.src = net::MacAddr{};
    h.type = net::ethTypeFabricHello;
    h.push(*pkt);
    statHelloTx_ += 1;
    link->sendControl(ports_[port].get(), std::move(pkt));
}

void
EthernetSwitch::helloTick()
{
    Fabric &f = *fabric_;
    const sim::Tick now = curTick();
    if (now >= f.downUntil) {
        for (std::uint32_t p = 0;
             p < static_cast<std::uint32_t>(f.state.size()); ++p) {
            PortState &ps = f.state[p];
            if (!ps.trunk)
                continue;
            // Rolling-flap site: inline p=/n= triggers on
            // "<switch>.port<N>.down" take the port down for the
            // spec's param (default 500 us) starting now.
            if (sim::FaultPlan::active() &&
                f.portObjs[p]->faultDown_.fires()) [[unlikely]] {
                const std::uint64_t prm =
                    f.portObjs[p]->faultDown_.param();
                portDownNow(p, prm ? prm : 500 * sim::oneUs);
            }
            // Probe every trunk that is not itself down -- dead
            // ones included, which is what readmits a recovered
            // neighbor within one interval.
            if (now >= ps.adminDownUntil)
                sendHello(p);
        }
        // Liveness sweep: edge-detect per trunk port. The lag is
        // measured from the latest tick the failure can have been
        // unobservable (the previous sweep, or the end of our own
        // crash window), so a healthy pump keeps it bounded by one
        // helloInterval -- the reconvergence SLO.
        const sim::Tick visible_since =
            std::max(f.prevSweepAt, f.downUntil);
        for (std::uint32_t p = 0;
             p < static_cast<std::uint32_t>(f.state.size()); ++p) {
            PortState &ps = f.state[p];
            if (!ps.trunk)
                continue;
            const bool live = portLiveAt(p, now);
            if (ps.knownLive && !live) {
                statPortDown_ += 1;
                worstDetectLag_ = std::max(
                    worstDetectLag_,
                    now - std::min(now, visible_since));
                trace("Switch", "port ", p, " dead");
                tlInstant("port-down");
            } else if (!ps.knownLive && live) {
                statPortUp_ += 1;
                trace("Switch", "port ", p, " back");
                tlInstant("port-up");
            }
            ps.knownLive = live;
        }
        f.prevSweepAt = now;
    }
    eventQueue().scheduleIn([this] { helloTick(); },
                            f.params.helloInterval, "fabric.hello");
}

void
EthernetSwitch::crashNow(sim::Tick duration)
{
    Fabric &f = *fabric_;
    f.downUntil = std::max(f.downUntil, curTick() + duration);
    // A crash loses all control-plane state: neighbors must be
    // re-learned from fresh hellos after the reboot.
    for (PortState &ps : f.state)
        ps.lastHelloRx = 0;
    trace("Switch", "crashed for ", duration, " ticks");
    tlInstant("crash");
}

void
EthernetSwitch::hangNow(sim::Tick duration)
{
    // A hang keeps state but processes nothing until it passes.
    fabric_->downUntil =
        std::max(fabric_->downUntil, curTick() + duration);
    trace("Switch", "hung for ", duration, " ticks");
    tlInstant("hang");
}

void
EthernetSwitch::portDownNow(std::uint32_t port, sim::Tick duration)
{
    PortState &ps = fabric_->state[port];
    ps.adminDownUntil =
        std::max(ps.adminDownUntil, curTick() + duration);
    trace("Switch", "port ", port, " forced down for ", duration,
          " ticks");
}

void
EthernetSwitch::startup()
{
    if (!fabric_)
        return;
    eventQueue().scheduleIn([this] { helloTick(); },
                            fabric_->params.helloInterval,
                            "fabric.hello");
    if (!sim::FaultPlan::active())
        return;
    auto &plan = sim::FaultPlan::instance();
    for (const auto &hit : plan.scheduledFor(name() + ".crash")) {
        const sim::Tick dur = hit.param ? hit.param : 1 * sim::oneMs;
        eventQueue().schedule(
            [this, dur] {
                sim::reportScheduledFault(*this, "crash");
                crashNow(dur);
            },
            hit.at, "fault.crash");
    }
    for (const auto &hit : plan.scheduledFor(name() + ".hang")) {
        const sim::Tick dur = hit.param ? hit.param : 1 * sim::oneMs;
        eventQueue().schedule(
            [this, dur] {
                sim::reportScheduledFault(*this, "hang");
                hangNow(dur);
            },
            hit.at, "fault.hang");
    }
}

} // namespace mcnsim::netdev
