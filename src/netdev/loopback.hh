/**
 * @file
 * A loopback NetDevice: frames transmitted are delivered back up
 * the same stack after a small fixed delay. Mostly used by tests
 * of the device framework; in-node traffic normally short-circuits
 * inside NetStack before reaching any device.
 */

#ifndef MCNSIM_NETDEV_LOOPBACK_HH
#define MCNSIM_NETDEV_LOOPBACK_HH

#include "os/net_device.hh"

namespace mcnsim::netdev {

/** Loopback device. */
class LoopbackDevice : public os::NetDevice
{
  public:
    LoopbackDevice(sim::Simulation &s, std::string name,
                   sim::Tick delay = 500);

    os::TxResult xmit(net::PacketPtr pkt) override;

  private:
    sim::Tick delay_;
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_LOOPBACK_HH
