/**
 * @file
 * Store-and-forward Ethernet switch with MAC learning, bounded
 * egress queues (tail drop) and a fixed forwarding latency: the
 * top-of-rack switch of the baseline scale-out cluster.
 */

#ifndef MCNSIM_NETDEV_ETHERNET_SWITCH_HH
#define MCNSIM_NETDEV_ETHERNET_SWITCH_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/ethernet.hh"
#include "netdev/ethernet_link.hh"
#include "netdev/mac_fib.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace mcnsim::netdev {

/** An N-port learning switch. */
class EthernetSwitch : public sim::SimObject
{
  public:
    EthernetSwitch(sim::Simulation &s, std::string name,
                   std::uint32_t ports,
                   sim::Tick forwarding_latency = 600 * sim::oneNs,
                   std::uint64_t egress_queue_bytes = 8ull * 1024 * 1024);

    /** Attach @p link to switch port @p port (this side is the
     *  switch; callers attach their device to the other side). */
    void attachLink(std::uint32_t port, EthernetLink &link);

    std::uint32_t portCount() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

    std::uint64_t drops() const
    {
        return static_cast<std::uint64_t>(statDrops_.value());
    }
    std::uint64_t forwarded() const
    {
        return static_cast<std::uint64_t>(statForwarded_.value());
    }

    /** Forwarding table (tests, diagnostics). */
    const MacFib &fib() const { return fib_; }

  private:
    /** Per-port endpoint shim delivering frames into the switch. */
    class Port : public EtherEndpoint
    {
      public:
        Port(EthernetSwitch &sw, std::uint32_t index)
            : sw_(sw), index_(index)
        {}

        void
        receiveFrame(net::PacketPtr pkt) override
        {
            sw_.frameIn(index_, std::move(pkt));
        }

        /** Port logic executes on the switch's shard. */
        sim::EventQueue *
        endpointQueue() override
        {
            return &sw_.eventQueue();
        }

        EthernetLink *link = nullptr;

      private:
        EthernetSwitch &sw_;
        std::uint32_t index_;
    };

    void frameIn(std::uint32_t port, net::PacketPtr pkt);
    void egress(std::uint32_t port, net::PacketPtr pkt);

    std::vector<std::unique_ptr<Port>> ports_;
    MacFib fib_;
    sim::Tick fwdLatency_;
    std::uint64_t egressCap_;

    /** Per-port egress backlog occupancy (flow telemetry): sampled
     *  at each admit, so congested ports show up in the
     *  hottest-queue report. */
    std::vector<std::unique_ptr<sim::QueueStat>> portBacklogQ_;

    sim::Scalar statForwarded_{"forwarded", "frames forwarded"};
    sim::Scalar statFlooded_{"flooded", "frames flooded"};
    sim::Scalar statDrops_{"drops", "frames tail-dropped"};
    sim::Scalar statFaultDrops_{"faultDrops",
                                "frames dropped by fault injection"};

    sim::FaultSite faultDrop_ = FAULT_POINT("drop");
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_ETHERNET_SWITCH_HH
