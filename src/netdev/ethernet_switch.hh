/**
 * @file
 * Store-and-forward Ethernet switch with MAC learning, bounded
 * egress queues (tail drop) and a fixed forwarding latency: the
 * top-of-rack switch of the baseline scale-out cluster.
 *
 * Fabric mode (DESIGN.md §12) layers a failure-aware control plane
 * on top: static ECMP route groups instead of MAC learning,
 * per-trunk-port liveness from deterministic hello/dead-interval
 * probes, scheduled crash/hang faults on the whole switch and
 * port-down faults on individual ports, and an
 * unreachable-destination notifier that tells traffic sources when
 * every next hop toward their destination is dead (a partition).
 * Fabric mode is strictly opt-in: a switch that never calls
 * enableFabric() behaves bit-identically to the learning switch.
 */

#ifndef MCNSIM_NETDEV_ETHERNET_SWITCH_HH
#define MCNSIM_NETDEV_ETHERNET_SWITCH_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/ethernet.hh"
#include "net/ipv4.hh"
#include "netdev/ethernet_link.hh"
#include "netdev/mac_fib.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace mcnsim::netdev {

/** Fabric control-plane knobs (enableFabric). */
struct FabricParams
{
    /** Hello probe period per trunk port; also the liveness-sweep
     *  period, so detection lag is bounded by one interval. */
    sim::Tick helloInterval = 50 * sim::oneUs;
    /** A trunk port with no hello for this long is dead. */
    sim::Tick deadInterval = 150 * sim::oneUs;
};

/** An N-port learning switch (fabric control plane optional). */
class EthernetSwitch : public sim::SimObject
{
  public:
    EthernetSwitch(sim::Simulation &s, std::string name,
                   std::uint32_t ports,
                   sim::Tick forwarding_latency = 600 * sim::oneNs,
                   std::uint64_t egress_queue_bytes = 8ull * 1024 * 1024);
    ~EthernetSwitch() override;

    /** Attach @p link to switch port @p port. The switch takes side
     *  A by default; pass @p b_side for switch-to-switch trunks
     *  whose A side is already taken by the other switch. */
    void attachLink(std::uint32_t port, EthernetLink &link,
                    bool b_side = false);

    std::uint32_t portCount() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

    std::uint64_t drops() const
    {
        return static_cast<std::uint64_t>(statDrops_.value());
    }
    std::uint64_t forwarded() const
    {
        return static_cast<std::uint64_t>(statForwarded_.value());
    }

    /** Forwarding table (tests, diagnostics). */
    const MacFib &fib() const { return fib_; }

    // --- Fabric control plane (DESIGN.md §12) ----------------------

    /** Destination-unreachable callback: (source ip, dead dst ip).
     *  Invoked -- throttled per (src, dst) pair to one notice per
     *  dead interval -- when a routed frame finds every candidate
     *  next hop dead. */
    using UnreachableNotifier =
        std::function<void(net::Ipv4Addr, net::Ipv4Addr)>;

    /**
     * Switch to fabric mode: static ECMP routes (addFabricRoute)
     * replace MAC learning/flooding, trunk ports (markTrunk) run
     * the hello/dead-interval liveness protocol, and the scheduled
     * crash/hang/port-down fault sites arm. Call during system
     * build, before the simulation runs.
     */
    void enableFabric(const FabricParams &params = {});
    bool fabricEnabled() const { return fabric_ != nullptr; }

    /** Declare @p port a switch-to-switch trunk: it sends hellos
     *  every helloInterval and is dead once silent for
     *  deadInterval. Access (host-facing) ports are always live
     *  unless a port-down fault holds them down. */
    void markTrunk(std::uint32_t port);

    /** Route @p dst to the ECMP group @p ports: the flow hash picks
     *  among the members that are currently live. */
    void addFabricRoute(const net::MacAddr &dst,
                        std::vector<std::uint32_t> ports);

    void setUnreachableNotifier(UnreachableNotifier fn);

    /** Liveness view of @p port right now (routing uses the same
     *  predicate, so a reroute is visible the instant the dead
     *  interval expires). */
    bool portLive(std::uint32_t port) const;

    /** Live members of @p dst's ECMP group, in port order. */
    std::vector<std::uint32_t>
    liveEcmpPorts(const net::MacAddr &dst) const;

    /**
     * Deterministic ECMP flow hash: FNV-1a over the IPv4 5-tuple
     * (src/dst address, protocol, src/dst port when TCP/UDP) read
     * straight from the frame bytes. Non-IPv4 frames hash to 0.
     */
    static std::uint32_t flowHash(const net::Packet &pkt);

    std::uint64_t portDownEvents() const
    {
        return static_cast<std::uint64_t>(statPortDown_.value());
    }
    std::uint64_t portUpEvents() const
    {
        return static_cast<std::uint64_t>(statPortUp_.value());
    }
    std::uint64_t unroutableDrops() const
    {
        return static_cast<std::uint64_t>(statUnroutable_.value());
    }

    /** Worst observed lag between a failure becoming observable and
     *  the liveness sweep acting on it; bounded by helloInterval
     *  when the control plane is healthy (the reconvergence SLO). */
    sim::Tick worstDetectLag() const { return worstDetectLag_; }

    /** Schedule hello pump + scheduled crash/hang/port-down hits. */
    void startup() override;

  private:
    /** Per-port endpoint shim delivering frames into the switch. */
    class Port : public EtherEndpoint
    {
      public:
        Port(EthernetSwitch &sw, std::uint32_t index)
            : sw_(sw), index_(index)
        {}

        void
        receiveFrame(net::PacketPtr pkt) override
        {
            sw_.frameIn(index_, std::move(pkt));
        }

        /** Port logic executes on the switch's shard. */
        sim::EventQueue *
        endpointQueue() override
        {
            return &sw_.eventQueue();
        }

        EthernetLink *link = nullptr;

      private:
        EthernetSwitch &sw_;
        std::uint32_t index_;
    };

    /**
     * Per-port SimObject carrying the "port-down" fault site, so
     * fault specs address individual ports through the same name
     * hierarchy as everything else ("rack0.leaf.port3.down").
     * Created only in fabric mode: plain switches keep their exact
     * pre-fabric object/stat registry.
     */
    class SwitchPort : public sim::SimObject
    {
      public:
        SwitchPort(sim::Simulation &s, EthernetSwitch &sw,
                   std::uint32_t index);

        /** Schedule the plan's "<name>.down" at= hits. */
        void startup() override;

      private:
        friend class EthernetSwitch;

        EthernetSwitch &sw_;
        std::uint32_t index_;
        sim::FaultSite faultDown_ = FAULT_POINT("down");
    };

    /** Per-port fabric state. */
    struct PortState
    {
        bool trunk = false;
        /** Port-down fault window: down while now < this. */
        sim::Tick adminDownUntil = 0;
        /** Last hello heard on this port (trunks only). 0 doubles
         *  as the startup grace: everything is live until the first
         *  dead interval expires. */
        sim::Tick lastHelloRx = 0;
        /** Liveness as of the last sweep (edge detection). */
        bool knownLive = true;
    };

    struct Fabric
    {
        FabricParams params;
        std::vector<PortState> state;
        std::vector<std::unique_ptr<SwitchPort>> portObjs;
        /** macKey(dst) -> ECMP port group (fixed member order). */
        std::map<std::uint64_t, std::vector<std::uint32_t>> routes;
        /** Crash/hang window: the whole switch is dark while
         *  now < downUntil. */
        sim::Tick downUntil = 0;
        /** Last liveness sweep that actually ran (lag accounting
         *  across crash windows). */
        sim::Tick prevSweepAt = 0;
        UnreachableNotifier notifier;
        /** (srcIp, dstIp) -> last notify tick (throttle). */
        std::map<std::pair<std::uint32_t, std::uint32_t>, sim::Tick>
            lastNotify;
        /** Same-tick arrivals, routed in one end-of-tick pass
         *  sorted by ingress port: the classic and sharded engines
         *  (and different mailbox merges) interleave same-tick
         *  deliveries from different neighbours differently, and
         *  routing must only ever see modeled order. */
        std::vector<std::pair<std::uint32_t, net::PacketPtr>> inbox;
        bool passScheduled = false;
    };

    void frameIn(std::uint32_t port, net::PacketPtr pkt);
    void fabricFrameIn(std::uint32_t port, net::PacketPtr pkt);
    void fabricIngressPass();
    void fabricRoute(std::uint32_t port, net::PacketPtr pkt);
    void egress(std::uint32_t port, net::PacketPtr pkt);

    bool portLiveAt(std::uint32_t port, sim::Tick now) const;
    void helloTick();
    void sendHello(std::uint32_t port);
    void crashNow(sim::Tick duration);
    void hangNow(sim::Tick duration);
    void portDownNow(std::uint32_t port, sim::Tick duration);
    void notifyUnreachable(const net::Packet &pkt);

    std::vector<std::unique_ptr<Port>> ports_;
    MacFib fib_;
    sim::Tick fwdLatency_;
    std::uint64_t egressCap_;

    /** Per-port egress backlog occupancy (flow telemetry): sampled
     *  at each admit, so congested ports show up in the
     *  hottest-queue report. */
    std::vector<std::unique_ptr<sim::QueueStat>> portBacklogQ_;

    std::unique_ptr<Fabric> fabric_;
    sim::Tick worstDetectLag_ = 0;

    sim::Scalar statForwarded_{"forwarded", "frames forwarded"};
    sim::Scalar statFlooded_{"flooded", "frames flooded"};
    sim::Scalar statDrops_{"drops", "frames tail-dropped"};
    sim::Scalar statFaultDrops_{"faultDrops",
                                "frames dropped by fault injection"};
    // Fabric-mode stats, registered by enableFabric() so plain
    // switches keep their exact pre-fabric stat registry.
    sim::Scalar statHelloTx_{"helloTx", "fabric hellos sent"};
    sim::Scalar statPortDown_{"portDownEvents",
                              "trunk ports seen going dead"};
    sim::Scalar statPortUp_{"portUpEvents",
                            "trunk ports seen coming back"};
    sim::Scalar statUnroutable_{"unroutableDrops",
                                "frames with no live next hop"};

    sim::FaultSite faultDrop_ = FAULT_POINT("drop");
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_ETHERNET_SWITCH_HH
