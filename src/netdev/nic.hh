/**
 * @file
 * A 10GbE-class NIC: TX/RX descriptor rings in host memory, DMA
 * engines that consume real memory-channel bandwidth, MSI interrupt
 * + NAPI polling on receive, and hardware TSO that performs the
 * paper's O1-O4 steps (split, replicate headers, fix length/seq/
 * checksum, transmit) on real bytes.
 *
 * This is the baseline system's network device (Fig. 2 of the
 * paper); the MCN driver replaces it with memory-channel rings.
 */

#ifndef MCNSIM_NETDEV_NIC_HH
#define MCNSIM_NETDEV_NIC_HH

#include <deque>
#include <vector>

#include "netdev/ethernet_link.hh"
#include "os/kernel.hh"
#include "os/net_device.hh"

namespace mcnsim::netdev {

/** NIC tuning parameters. */
struct NicParams
{
    std::size_t txRingEntries = 256;
    std::size_t rxRingEntries = 256;
    sim::Tick pcieLatency = 800 * sim::oneNs; ///< per DMA transfer
    double dmaBps = 16e9;                     ///< DMA engine bound
    int napiBudget = 64;                      ///< packets per poll
};

/** The NIC device. */
class Nic : public os::NetDevice, public EtherEndpoint
{
  public:
    Nic(sim::Simulation &s, std::string name, net::MacAddr mac,
        os::Kernel &kernel, NicParams params = {});

    /** Wire this NIC to its link (NIC side is endpoint B). */
    void attachLink(EthernetLink &link);

    // NetDevice
    os::TxResult xmit(net::PacketPtr pkt) override;

    // EtherEndpoint
    void receiveFrame(net::PacketPtr pkt) override;

    /** The NIC executes on its host node's shard. */
    sim::EventQueue *endpointQueue() override
    {
        return &eventQueue();
    }

    std::uint64_t rxDrops() const
    {
        return static_cast<std::uint64_t>(statRxDrops_.value());
    }
    std::uint64_t tsoSegments() const
    {
        return static_cast<std::uint64_t>(statTsoSegs_.value());
    }
    std::uint64_t interrupts() const
    {
        return static_cast<std::uint64_t>(statIrqs_.value());
    }

    /**
     * Split a TSO super-frame (Ethernet+IP+TCP with tsoMss set)
     * into MSS-sized wire frames, reproducing the paper's O1-O4.
     * Exposed for unit testing.
     */
    static std::vector<net::PacketPtr>
    segmentTso(const net::PacketPtr &pkt, bool fill_checksums);

  private:
    void dmaTxStart(net::PacketPtr pkt);
    void toWire(net::PacketPtr pkt);
    void napiSchedule();
    void napiPoll();

    os::Kernel &kernel_;
    NicParams params_;
    EthernetLink *link_ = nullptr;
    std::uint32_t irqLine_;

    std::size_t txInFlight_ = 0; ///< descriptors awaiting DMA
    std::deque<net::PacketPtr> rxCompleted_;
    std::size_t rxRingUsed_ = 0;
    bool napiActive_ = false;

    sim::Scalar statRxDrops_{"rxDrops", "frames dropped, ring full"};
    sim::Scalar statTsoSegs_{"tsoSegments",
                             "wire frames produced by TSO"};
    sim::Scalar statIrqs_{"interrupts", "MSI interrupts raised"};
    sim::Scalar statNapiPolls_{"napiPolls", "NAPI poll rounds"};
    sim::QueueStat statTxRingQ_{"txRing.occupancy",
                                "TX descriptors awaiting DMA "
                                "(flow telemetry)"};
    sim::QueueStat statRxRingQ_{"rxRing.occupancy",
                                "RX ring buffers in use "
                                "(flow telemetry)"};
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_NIC_HH
