/**
 * @file
 * Full-duplex point-to-point Ethernet link: per-direction
 * serialization at the line rate plus propagation latency. The
 * baseline cluster's NICs and switch hang off these.
 *
 * Sharding (DESIGN.md §9): a link whose two endpoints live on the
 * same event queue delivers exactly as the serial engine always has
 * (one "link.deliver" event). When the endpoints live on *different*
 * shards the link becomes the shard boundary: delivery crosses via
 * the Simulation::postCrossShard mailbox, per-direction counters
 * stay shard-local (folded into the registered stats by
 * syncStats()), and the propagation latency is what the builders
 * register as the shard edge bounding the conservative lookahead.
 * The legacy setLossRate()/setCorruptRate() knobs draw from the
 * shared simulation RNG and are single-shard test tools only; the
 * FaultPlan sites are the sharded-safe path (the ShardSet runs
 * windows serially while a plan is armed, keeping per-site RNG draw
 * order deterministic).
 */

#ifndef MCNSIM_NETDEV_ETHERNET_LINK_HH
#define MCNSIM_NETDEV_ETHERNET_LINK_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "net/packet.hh"
#include "sim/annotate.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace mcnsim::netdev {

/** Anything that can sit at the end of a link. */
class EtherEndpoint
{
  public:
    virtual ~EtherEndpoint() = default;

    /** A frame finished arriving from the attached link. */
    virtual void receiveFrame(net::PacketPtr pkt) = 0;

    /** Event queue this endpoint executes on, nullptr meaning "the
     *  link's own queue" (the unsharded default). Links compare the
     *  two ends' queues once at attach time to pick the same-shard
     *  or cross-shard delivery path. */
    virtual sim::EventQueue *endpointQueue() { return nullptr; }
};

/** A full-duplex link between two endpoints. */
class EthernetLink : public sim::SimObject
{
  public:
    EthernetLink(sim::Simulation &s, std::string name,
                 double bandwidth_bps, sim::Tick latency);

    void attachA(EtherEndpoint *ep);
    void attachB(EtherEndpoint *ep);

    /**
     * Transmit @p pkt from endpoint @p src toward the other end.
     * The link serialises frames FIFO per direction; delivery
     * happens serialization + latency later.
     */
    void sendFrom(EtherEndpoint *src, net::PacketPtr pkt);

    /**
     * Strict-priority control-frame path (802.1p-style): the frame
     * bypasses the data FIFO and backlog accounting and arrives one
     * frame-serialization plus the propagation latency from now, so
     * fabric liveness probes cannot be starved behind a congested
     * egress queue. Control frames still cross the deliver() fault
     * cascade: a downed or lossy link loses them like any other
     * frame, which is exactly what the dead-interval detector needs
     * to observe.
     */
    void sendControl(EtherEndpoint *src, net::PacketPtr pkt);

    /** Bytes queued-or-in-flight in @p src's direction. */
    std::uint64_t backlogBytes(const EtherEndpoint *src) const;

    double bandwidthBps() const { return bandwidthBps_; }
    sim::Tick latency() const { return latency_; }

    // --- Fault injection -------------------------------------------
    /** Drop each frame with probability @p p (transient loss). */
    void setLossRate(double p) { lossRate_ = p; }

    /**
     * Flip one payload byte with probability @p p per frame: the
     * BER the paper contrasts against ECC-protected memory
     * channels (Sec. IV-A). Corruption targets bytes beyond the
     * L2/L3/L4 headers so connections stay parseable.
     */
    void setCorruptRate(double p) { corruptRate_ = p; }

    std::uint64_t framesDropped() const
    {
        return static_cast<std::uint64_t>(statDropped_.value()) +
               ab_.rxDropped + ba_.rxDropped - syncedDropped_;
    }
    std::uint64_t framesCorrupted() const
    {
        return static_cast<std::uint64_t>(statCorrupted_.value()) +
               ab_.rxCorrupted + ba_.rxCorrupted - syncedCorrupted_;
    }

    /** Fold the shard-local split-path counters into the registered
     *  Scalars (no-op on the classic same-queue path). */
    void syncStats() override;

    /** True when the two ends live on different event queues. */
    bool crossShard() const { return split_; }

    // --- Burst coalescing ------------------------------------------
    /**
     * Same-queue deliveries normally coalesce behind one pump event
     * per direction: pending frames wait in a burst deque and the
     * pump re-arms itself at the next arrival tick, so the event
     * heap holds one entry per busy link direction instead of one
     * per in-flight frame (an 8 MB switch egress backlog is ~5400
     * frames). Arrival ticks and per-link ordering are exactly the
     * per-frame path's. The singleton path is kept for the
     * byte-identity regression tests.
     */
    void setBurstCoalescing(bool on) { burst_ = on; }
    bool burstCoalescing() const { return burst_; }

    /** Default for new links (tests flip it to compare paths). */
    static void setBurstCoalescingDefault(bool on)
    {
        burstDefault_ = on;
    }

    /** Frames delivered by pump events (introspection). */
    std::uint64_t burstDelivered() const { return burstDelivered_; }

    /** Cache scheduled "<name>.down" outage windows from the armed
     *  FaultPlan (spec: `at=` start, `param=` duration). */
    void startup() override;

    /** True while a scheduled link outage window covers @p now. */
    bool
    downAt(sim::Tick now) const
    {
        if (downWindows_.empty()) [[likely]]
            return false;
        return downAtSlow(now);
    }

  private:
    struct Direction
    {
        sim::Tick busyUntil = 0;
        /** Same-queue path: decremented by the delivery event.
         *  Split path: reconciled lazily against the sender's clock
         *  (mutable: reconciliation happens in const reads). */
        mutable std::uint64_t inFlightBytes = 0;
        /** Split path: (arrival tick, bytes) of frames on the wire.
         *  Touched only by the sending endpoint's shard. */
        mutable std::deque<std::pair<sim::Tick, std::uint64_t>>
            inFlight;
        // Split-path stat counters, single-writer by construction:
        // tx* belong to the sending shard, rx* to the receiving
        // shard. syncStats() folds them into the Scalars between
        // windows.
        std::uint64_t txFrames = 0;
        std::uint64_t txBytes = 0;
        std::uint64_t rxDropped = 0;
        std::uint64_t rxCorrupted = 0;
        std::uint64_t rxDuplicated = 0;
        std::uint64_t rxReordered = 0;

        /** Same-queue burst path: frames awaiting delivery. Arrival
         *  ticks are strictly increasing (busyUntil advances by the
         *  serialization time, >= 1 tick, per frame), so the front
         *  is always the next due. `order` is the within-tick slot
         *  reserved at sendFrom() time (EventQueue::reserveOrder),
         *  which is what keeps pump deliveries bit-identical to the
         *  schedule-per-frame path against other same-tick events. */
        struct BurstEntry
        {
            sim::Tick arrive;
            std::uint64_t bytes;
            net::PacketPtr pkt;
            std::uint64_t order;
        };
        std::deque<BurstEntry> burstQ;
        bool pumpArmed = false;
    };

    /** Deliver every due frame in @p src-side direction, then re-arm
     *  the pump at the next arrival tick. */
    void pump(bool from_a);
    void armPump(bool from_a);

    /** Arrival-side delivery: legacy loss/corrupt knobs plus the
     *  FaultPlan drop/corrupt/dup/reorder sites. Runs on @p q (the
     *  receiver's queue); @p dir is the direction of travel. */
    void deliver(EtherEndpoint *dst_ep, net::PacketPtr pkt,
                 sim::EventQueue &q, Direction &dir, bool split);

    /** Retire wire entries that have arrived by @p now. */
    static void reconcile(const Direction &dir, sim::Tick now);

    bool downAtSlow(sim::Tick now) const;

    Direction &dirFor(const EtherEndpoint *src);
    const Direction &dirFor(const EtherEndpoint *src) const;

    EtherEndpoint *a_ = nullptr;
    EtherEndpoint *b_ = nullptr;
    sim::EventQueue *aQueue_ = nullptr;
    sim::EventQueue *bQueue_ = nullptr;
    bool split_ = false;
    double bandwidthBps_;
    sim::Tick latency_;
    double lossRate_ = 0.0;
    double corruptRate_ = 0.0;
    bool burst_ = true;
    MCNSIM_SHARD_SAFE("construction-time default: written only by "
                      "tests/CLI before a system is built, read "
                      "once per link constructor; never mutated "
                      "while an event loop runs");
    static inline bool burstDefault_ = true;
    std::uint64_t burstDelivered_ = 0;
    /** Scheduled outage windows [start, end), cached at startup()
     *  from the plan's "<name>.down" hits. Empty in clean runs, so
     *  the deliver() check is one branch. */
    std::vector<std::pair<sim::Tick, sim::Tick>> downWindows_;
    Direction ab_, ba_;
    std::uint64_t syncedFrames_ = 0;
    std::uint64_t syncedBytes_ = 0;
    std::uint64_t syncedDropped_ = 0;
    std::uint64_t syncedCorrupted_ = 0;
    std::uint64_t syncedDuplicated_ = 0;
    std::uint64_t syncedReordered_ = 0;

    sim::Scalar statFrames_{"frames", "frames carried"};
    sim::Scalar statBytes_{"bytes", "bytes carried"};
    sim::Scalar statDropped_{"dropped", "frames dropped (faults)"};
    sim::Scalar statCorrupted_{"corrupted",
                               "frames corrupted (faults)"};
    sim::Scalar statDuplicated_{"duplicated",
                                "frames duplicated (faults)"};
    sim::Scalar statReordered_{"reordered",
                               "frames delayed out of order "
                               "(faults)"};

    sim::FaultSite faultDrop_ = FAULT_POINT("drop");
    sim::FaultSite faultCorrupt_ = FAULT_POINT("corrupt");
    sim::FaultSite faultDup_ = FAULT_POINT("dup");
    sim::FaultSite faultReorder_ = FAULT_POINT("reorder");
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_ETHERNET_LINK_HH
