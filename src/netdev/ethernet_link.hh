/**
 * @file
 * Full-duplex point-to-point Ethernet link: per-direction
 * serialization at the line rate plus propagation latency. The
 * baseline cluster's NICs and switch hang off these.
 */

#ifndef MCNSIM_NETDEV_ETHERNET_LINK_HH
#define MCNSIM_NETDEV_ETHERNET_LINK_HH

#include <cstdint>
#include <deque>

#include "net/packet.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace mcnsim::netdev {

/** Anything that can sit at the end of a link. */
class EtherEndpoint
{
  public:
    virtual ~EtherEndpoint() = default;

    /** A frame finished arriving from the attached link. */
    virtual void receiveFrame(net::PacketPtr pkt) = 0;
};

/** A full-duplex link between two endpoints. */
class EthernetLink : public sim::SimObject
{
  public:
    EthernetLink(sim::Simulation &s, std::string name,
                 double bandwidth_bps, sim::Tick latency);

    void attachA(EtherEndpoint *ep) { a_ = ep; }
    void attachB(EtherEndpoint *ep) { b_ = ep; }

    /**
     * Transmit @p pkt from endpoint @p src toward the other end.
     * The link serialises frames FIFO per direction; delivery
     * happens serialization + latency later.
     */
    void sendFrom(EtherEndpoint *src, net::PacketPtr pkt);

    /** Bytes queued-or-in-flight in @p src's direction. */
    std::uint64_t backlogBytes(const EtherEndpoint *src) const;

    double bandwidthBps() const { return bandwidthBps_; }
    sim::Tick latency() const { return latency_; }

    // --- Fault injection -------------------------------------------
    /** Drop each frame with probability @p p (transient loss). */
    void setLossRate(double p) { lossRate_ = p; }

    /**
     * Flip one payload byte with probability @p p per frame: the
     * BER the paper contrasts against ECC-protected memory
     * channels (Sec. IV-A). Corruption targets bytes beyond the
     * L2/L3/L4 headers so connections stay parseable.
     */
    void setCorruptRate(double p) { corruptRate_ = p; }

    std::uint64_t framesDropped() const
    {
        return static_cast<std::uint64_t>(statDropped_.value());
    }
    std::uint64_t framesCorrupted() const
    {
        return static_cast<std::uint64_t>(statCorrupted_.value());
    }

  private:
    /** Arrival-side delivery: legacy loss/corrupt knobs plus the
     *  FaultPlan drop/corrupt/dup/reorder sites. */
    void deliver(EtherEndpoint *dst_ep, net::PacketPtr pkt);

    struct Direction
    {
        sim::Tick busyUntil = 0;
        std::uint64_t inFlightBytes = 0;
    };

    Direction &dirFor(const EtherEndpoint *src);
    const Direction &dirFor(const EtherEndpoint *src) const;

    EtherEndpoint *a_ = nullptr;
    EtherEndpoint *b_ = nullptr;
    double bandwidthBps_;
    sim::Tick latency_;
    double lossRate_ = 0.0;
    double corruptRate_ = 0.0;
    Direction ab_, ba_;

    sim::Scalar statFrames_{"frames", "frames carried"};
    sim::Scalar statBytes_{"bytes", "bytes carried"};
    sim::Scalar statDropped_{"dropped", "frames dropped (faults)"};
    sim::Scalar statCorrupted_{"corrupted",
                               "frames corrupted (faults)"};
    sim::Scalar statDuplicated_{"duplicated",
                                "frames duplicated (faults)"};
    sim::Scalar statReordered_{"reordered",
                               "frames delayed out of order "
                               "(faults)"};

    sim::FaultSite faultDrop_ = FAULT_POINT("drop");
    sim::FaultSite faultCorrupt_ = FAULT_POINT("corrupt");
    sim::FaultSite faultDup_ = FAULT_POINT("dup");
    sim::FaultSite faultReorder_ = FAULT_POINT("reorder");
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_ETHERNET_LINK_HH
