/**
 * @file
 * NIC implementation.
 */

#include "netdev/nic.hh"

#include <algorithm>

#include "net/checksum.hh"
#include "net/tcp.hh"
#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::netdev {

Nic::Nic(sim::Simulation &s, std::string name, net::MacAddr mac,
         os::Kernel &kernel, NicParams params)
    : os::NetDevice(s, std::move(name), mac, 1500),
      kernel_(kernel), params_(params),
      irqLine_(kernel.irq().allocateLine())
{
    regStat(&statRxDrops_);
    regStat(&statTsoSegs_);
    regStat(&statIrqs_);
    regStat(&statNapiPolls_);
    regStat(&statTxRingQ_);
    regStat(&statRxRingQ_);

    kernel_.irq().request(irqLine_, [this] { napiSchedule(); });
}

void
Nic::attachLink(EthernetLink &link)
{
    link_ = &link;
    link.attachB(this);
}

// ---------------------------------------------------------------------
// Transmit
// ---------------------------------------------------------------------

os::TxResult
Nic::xmit(net::PacketPtr pkt)
{
    if (txInFlight_ >= params_.txRingEntries) {
        statTxBusy_ += 1;
        trace("NIC", "xmit: TX ring full (", txInFlight_,
              " in flight)");
        return os::TxResult::Busy;
    }
    txInFlight_++;
    if (sim::FlowTelemetry::active()) [[unlikely]]
        statTxRingQ_.update(curTick(), txInFlight_);
    trace("NIC", "xmit ", pkt->size(), "B, ring doorbell");

    // Driver: write the descriptor, ring the doorbell.
    const auto &costs = kernel_.costs();
    kernel_.cpus().leastLoaded().execute(
        costs.nicDriverTx, [this, pkt](sim::Tick now) {
            pkt->trace.stamp(net::Stage::DriverTx, now);
            if (sim::FlowTelemetry::active()) [[unlikely]]
                pkt->pathHop(name().c_str(), now);
            dmaTxStart(pkt);
        });
    return os::TxResult::Ok;
}

void
Nic::dmaTxStart(net::PacketPtr pkt)
{
    // The NIC fetches the frame from host DRAM over PCIe; the DMA
    // read consumes real memory-channel bandwidth (interleaved).
    std::uint64_t bytes = pkt->size();
    kernel_.mem().bulkInterleaved(
        bytes,
        [this, pkt](sim::Tick) {
            eventQueue().scheduleIn(
                [this, pkt] {
                    pkt->trace.stamp(net::Stage::DmaTx, curTick());
                    toWire(pkt);
                },
                params_.pcieLatency, "nic.pcie");
        },
        params_.dmaBps);
}

void
Nic::toWire(net::PacketPtr pkt)
{
    txInFlight_--;
    if (sim::FlowTelemetry::active()) [[unlikely]]
        statTxRingQ_.update(curTick(), txInFlight_);
    // Doorbell -> wire, straight off the packet's latency stamps.
    if (sim::Timeline::active()) [[unlikely]] {
        sim::Tick t0 = pkt->trace.at(net::Stage::DriverTx);
        if (t0 != net::LatencyTrace::unreached)
            tlSpan("nicTx", t0, curTick());
    }
    countTx(*pkt);
    if (!link_)
        return;

    if (pkt->tsoMss > 0) {
        // O1-O4: hardware segmentation.
        auto segs = segmentTso(pkt, features().checksumOffload ||
                                        true);
        statTsoSegs_ += static_cast<double>(segs.size());
        for (auto &s : segs)
            link_->sendFrom(this, std::move(s));
    } else {
        link_->sendFrom(this, std::move(pkt));
    }
}

std::vector<net::PacketPtr>
Nic::segmentTso(const net::PacketPtr &pkt, bool fill_checksums)
{
    using namespace net;

    std::vector<PacketPtr> out;
    std::uint32_t mss = pkt->tsoMss;
    if (mss == 0) {
        out.push_back(pkt);
        return out;
    }

    // Parse the super-frame. Work on a clone so the original
    // remains intact for the caller.
    auto big = pkt->clone();
    EthernetHeader eth = EthernetHeader::pull(*big);
    auto ip = Ipv4Header::pull(*big, /*verify=*/false);
    MCNSIM_ASSERT(ip, "TSO frame without IP header");
    // The TCP checksum may be absent (bypass mode); never verify.
    auto tcp = TcpHeader::pull(*big, ip->src, ip->dst,
                               /*verify=*/false);
    MCNSIM_ASSERT(tcp, "TSO frame without TCP header");
    bool had_checksum = tcp->checksum != 0;

    const std::uint8_t *payload = big->cdata();
    std::size_t total = big->size();

    std::size_t off = 0;
    std::uint16_t ip_id = ip->id;
    while (off < total) {
        std::size_t chunk = std::min<std::size_t>(mss, total - off);
        auto seg = Packet::make(std::vector<std::uint8_t>(
            payload + off, payload + off + chunk));
        seg->trace = pkt->trace;
        if (pkt->path) [[unlikely]]
            seg->path = std::make_unique<net::PathTrace>(*pkt->path);
        seg->srcNode = pkt->srcNode;
        seg->dstNode = pkt->dstNode;

        TcpHeader th = *tcp;
        th.seq = tcp->seq + static_cast<std::uint32_t>(off);
        bool last = off + chunk >= total;
        if (!last)
            th.flags = static_cast<std::uint8_t>(th.flags &
                                                 ~tcpPsh);
        th.push(*seg, ip->src, ip->dst,
                fill_checksums && had_checksum);

        Ipv4Header ih = *ip;
        ih.id = ip_id++;
        ih.totalLength = static_cast<std::uint16_t>(
            seg->size() + Ipv4Header::size);
        ih.push(*seg, fill_checksums && had_checksum);

        eth.push(*seg);
        out.push_back(std::move(seg));
        off += chunk;
    }
    return out;
}

// ---------------------------------------------------------------------
// Receive
// ---------------------------------------------------------------------

void
Nic::receiveFrame(net::PacketPtr pkt)
{
    if (rxRingUsed_ >= params_.rxRingEntries) {
        statRxDrops_ += 1;
        trace("NIC", "rx drop: ring full (", pkt->size(), "B)");
        return;
    }
    rxRingUsed_++;
    tlCounter("rxRingUsed", static_cast<double>(rxRingUsed_));
    if (sim::FlowTelemetry::active()) [[unlikely]]
        statRxRingQ_.update(curTick(), rxRingUsed_);
    trace("NIC", "rx frame ", pkt->size(), "B -> DMA to host");

    // DMA the frame into the next RX ring buffer in host DRAM.
    std::uint64_t bytes = pkt->size();
    kernel_.mem().bulkInterleaved(
        bytes,
        [this, pkt](sim::Tick) {
            eventQueue().scheduleIn(
                [this, pkt] {
                    pkt->trace.stamp(net::Stage::DmaRx, curTick());
                    rxCompleted_.push_back(pkt);
                    if (!napiActive_) {
                        napiActive_ = true;
                        statIrqs_ += 1;
                        tlInstant("rxIrq");
                        kernel_.irq().raise(irqLine_);
                    }
                },
                params_.pcieLatency, "nic.pcieRx");
        },
        params_.dmaBps);
}

void
Nic::napiSchedule()
{
    kernel_.softirq().schedule([this] { napiPoll(); });
}

void
Nic::napiPoll()
{
    statNapiPolls_ += 1;
    std::size_t n = std::min<std::size_t>(
        rxCompleted_.size(),
        static_cast<std::size_t>(params_.napiBudget));
    if (n == 0) {
        napiActive_ = false; // re-enable interrupts
        return;
    }

    std::vector<net::PacketPtr> batch(
        rxCompleted_.begin(),
        rxCompleted_.begin() + static_cast<std::ptrdiff_t>(n));
    rxCompleted_.erase(rxCompleted_.begin(),
                       rxCompleted_.begin() +
                           static_cast<std::ptrdiff_t>(n));

    const auto &costs = kernel_.costs();
    sim::Cycles cycles =
        static_cast<sim::Cycles>(n) * costs.nicDriverRxPerPacket;
    kernel_.cpus().leastLoaded().execute(
        cycles, [this, batch = std::move(batch)](sim::Tick now) {
            for (const auto &p : batch) {
                // Host-DRAM landing -> stack delivery, per packet.
                if (sim::Timeline::active()) [[unlikely]] {
                    sim::Tick t0 = p->trace.at(net::Stage::DmaRx);
                    if (t0 != net::LatencyTrace::unreached)
                        tlSpan("nicRx", t0, now);
                }
                p->trace.stamp(net::Stage::DriverRx, now);
                if (sim::FlowTelemetry::active()) [[unlikely]]
                    p->pathHop(name().c_str(), now);
                rxRingUsed_--;
                deliverUp(p);
            }
            tlCounter("rxRingUsed",
                      static_cast<double>(rxRingUsed_));
            if (sim::FlowTelemetry::active()) [[unlikely]]
                statRxRingQ_.update(curTick(), rxRingUsed_);
            if (!rxCompleted_.empty()) {
                napiSchedule(); // keep polling
            } else {
                napiActive_ = false;
            }
        });
}

} // namespace mcnsim::netdev
