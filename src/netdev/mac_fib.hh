/**
 * @file
 * MacFib: hashed MAC -> port forwarding table for the Ethernet
 * switch, with an inline one-entry last-flow cache.
 *
 * The switch used to keep its MAC table in a std::map: every frame
 * paid an O(log n) red-black-tree walk for the source learn plus
 * another for the destination lookup, and ROADMAP's fat-tree /
 * leaf-spine plans multiply both the frame rate and the table size.
 * This table is open-addressed with linear probing over a
 * power-of-two slot array:
 *
 *  - learn() and lookup() probe at most `probeWindow` slots; a learn
 *    that finds its window full *deterministically* evicts the entry
 *    in the window's last slot (real switches age entries out; ours
 *    must do it reproducibly, so the victim is a pure function of
 *    the insertion sequence). Slots are never emptied -- entries are
 *    only replaced -- so probe chains stay intact and a lookup may
 *    stop at the first never-used slot.
 *  - The last successful destination lookup is cached inline
 *    (steady-state traffic is long flows: the same dst MAC arrives
 *    back-to-back); learn() keeps the cache coherent when it moves
 *    or evicts the cached key.
 *
 * Capacity is sized by the switch so that eviction never fires for
 * sane topologies (the committed benches are pinned bit-identical
 * to the unbounded-map era); it exists so a MAC-flood scenario
 * degrades to flooding instead of growing without bound.
 */

#ifndef MCNSIM_NETDEV_MAC_FIB_HH
#define MCNSIM_NETDEV_MAC_FIB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcnsim::netdev {

/** Open-addressed MAC -> port table with deterministic eviction. */
class MacFib
{
  public:
    static constexpr std::uint32_t noPort = 0xffffffffu;
    /** Linear-probe window; a full window forces an eviction. */
    static constexpr std::size_t probeWindow = 8;

    /** @param capacity_hint expected MAC population; the slot count
     *  is the next power of two >= max(64, 2 * hint). */
    explicit MacFib(std::size_t capacity_hint)
    {
        std::size_t want = capacity_hint * 2;
        std::size_t cap = 64;
        while (cap < want)
            cap *= 2;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /** Record @p key behind @p port (insert, move, or evict). */
    void
    learn(std::uint64_t key, std::uint32_t port)
    {
        std::size_t idx = home(key);
        for (std::size_t i = 0; i < probeWindow; ++i) {
            Slot &s = slots_[(idx + i) & mask_];
            if (s.used && s.key == key) {
                s.port = port;
                if (cacheKey_ == key)
                    cachePort_ = port;
                return;
            }
            if (!s.used) {
                s.used = true;
                s.key = key;
                s.port = port;
                size_++;
                return;
            }
        }
        // Window full: replace its last slot, deterministically.
        Slot &victim = slots_[(idx + probeWindow - 1) & mask_];
        if (cacheKey_ == victim.key)
            cacheKey_ = invalidKey;
        victim.key = key;
        victim.port = port;
        evictions_++;
    }

    /** Port behind @p key, or noPort when unknown. */
    std::uint32_t
    lookup(std::uint64_t key) const
    {
        if (key == cacheKey_) {
            cacheHits_++;
            return cachePort_;
        }
        std::size_t idx = home(key);
        for (std::size_t i = 0; i < probeWindow; ++i) {
            const Slot &s = slots_[(idx + i) & mask_];
            if (!s.used)
                return noPort; // slots are never emptied
            if (s.key == key) {
                cacheKey_ = key;
                cachePort_ = s.port;
                return s.port;
            }
        }
        return noPort;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t cacheHits() const { return cacheHits_; }

  private:
    /** A real MAC key fits in 48 bits, so this can't collide. */
    static constexpr std::uint64_t invalidKey = ~0ull;

    struct Slot
    {
        std::uint64_t key = 0;
        std::uint32_t port = 0;
        bool used = false;
    };

    /** Fibonacci hash: deterministic across platforms, spreads the
     *  vendor-prefix-heavy MAC keyspace over the table. */
    std::size_t
    home(std::uint64_t key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ull) >> 32) &
               mask_;
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::uint64_t evictions_ = 0;

    mutable std::uint64_t cacheKey_ = invalidKey;
    mutable std::uint32_t cachePort_ = noPort;
    mutable std::uint64_t cacheHits_ = 0;
};

} // namespace mcnsim::netdev

#endif // MCNSIM_NETDEV_MAC_FIB_HH
