/**
 * @file
 * EthernetLink implementation.
 */

#include "netdev/ethernet_link.hh"

#include <algorithm>

#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::netdev {

EthernetLink::EthernetLink(sim::Simulation &s, std::string name,
                           double bandwidth_bps, sim::Tick latency)
    : sim::SimObject(s, std::move(name)),
      burst_(burstDefault_),
      bandwidthBps_(bandwidth_bps), latency_(latency)
{
    if (bandwidth_bps <= 0.0)
        sim::fatal(this->name(), ": bandwidth must be > 0");
    regStat(&statFrames_);
    regStat(&statBytes_);
    regStat(&statDropped_);
    regStat(&statCorrupted_);
    regStat(&statDuplicated_);
    regStat(&statReordered_);
}

void
EthernetLink::attachA(EtherEndpoint *ep)
{
    a_ = ep;
    sim::EventQueue *q = ep ? ep->endpointQueue() : nullptr;
    aQueue_ = q ? q : &eventQueue();
    split_ = aQueue_ && bQueue_ && aQueue_ != bQueue_;
}

void
EthernetLink::attachB(EtherEndpoint *ep)
{
    b_ = ep;
    sim::EventQueue *q = ep ? ep->endpointQueue() : nullptr;
    bQueue_ = q ? q : &eventQueue();
    split_ = aQueue_ && bQueue_ && aQueue_ != bQueue_;
}

EthernetLink::Direction &
EthernetLink::dirFor(const EtherEndpoint *src)
{
    return src == a_ ? ab_ : ba_;
}

const EthernetLink::Direction &
EthernetLink::dirFor(const EtherEndpoint *src) const
{
    return src == a_ ? ab_ : ba_;
}

void
EthernetLink::reconcile(const Direction &dir, sim::Tick now)
{
    while (!dir.inFlight.empty() &&
           dir.inFlight.front().first <= now) {
        dir.inFlightBytes -= dir.inFlight.front().second;
        dir.inFlight.pop_front();
    }
}

std::uint64_t
EthernetLink::backlogBytes(const EtherEndpoint *src) const
{
    const Direction &dir = dirFor(src);
    if (split_) [[unlikely]]
        reconcile(dir,
                  (src == a_ ? aQueue_ : bQueue_)->curTick());
    return dir.inFlightBytes;
}

void
EthernetLink::syncStats()
{
    if (!split_)
        return;
    auto fold = [](sim::Scalar &s, std::uint64_t total,
                   std::uint64_t &synced) {
        s += static_cast<double>(total - synced);
        synced = total;
    };
    fold(statFrames_, ab_.txFrames + ba_.txFrames, syncedFrames_);
    fold(statBytes_, ab_.txBytes + ba_.txBytes, syncedBytes_);
    fold(statDropped_, ab_.rxDropped + ba_.rxDropped,
         syncedDropped_);
    fold(statCorrupted_, ab_.rxCorrupted + ba_.rxCorrupted,
         syncedCorrupted_);
    fold(statDuplicated_, ab_.rxDuplicated + ba_.rxDuplicated,
         syncedDuplicated_);
    fold(statReordered_, ab_.rxReordered + ba_.rxReordered,
         syncedReordered_);
}

void
EthernetLink::sendFrom(EtherEndpoint *src, net::PacketPtr pkt)
{
    MCNSIM_ASSERT(src == a_ || src == b_, "unattached sender");
    EtherEndpoint *dst_ep = src == a_ ? b_ : a_;
    MCNSIM_ASSERT(dst_ep, "link has a dangling end");

    Direction &dir = dirFor(src);
    sim::EventQueue &srcQ = src == a_ ? *aQueue_ : *bQueue_;
    std::uint64_t bytes = pkt->size();

    // FIFO serialization at the line rate. The sender's clock is
    // authoritative: on the classic path it equals the link's own
    // queue; on the split path it is the sending shard's clock.
    double ser_secs = static_cast<double>(bytes) * 8.0 /
                      bandwidthBps_;
    sim::Tick ser = std::max<sim::Tick>(
        1, sim::secondsToTicks(ser_secs));
    sim::Tick start = std::max(srcQ.curTick(), dir.busyUntil);
    dir.busyUntil = start + ser;
    sim::Tick arrive = dir.busyUntil + latency_;

    if (!split_) {
        // Same-queue path: eager Scalars, then either the burst
        // pump (one heap entry per busy direction) or the legacy
        // one-event-per-frame delivery. Arrival ticks and per-link
        // ordering are identical either way.
        statFrames_ += 1;
        statBytes_ += static_cast<double>(bytes);
        dir.inFlightBytes += bytes;
        if (burst_) {
            dir.burstQ.push_back(
                Direction::BurstEntry{arrive, bytes,
                                      std::move(pkt),
                                      srcQ.reserveOrder()});
            armPump(src == a_);
            return;
        }
        srcQ.schedule(
            [this, dst_ep, pkt, bytes, src] {
                Direction &d = dirFor(src);
                d.inFlightBytes -= bytes;
                deliver(dst_ep, pkt, *aQueue_, d, false);
            },
            arrive, "link.deliver");
        return;
    }

    // Cross-shard path: every mutation stays on the sender's shard
    // (tx counters, the wire deque); delivery crosses through the
    // deterministic mailbox. The propagation latency is >= the
    // registered shard-edge latency, so `arrive` always clears the
    // lookahead horizon.
    dir.txFrames += 1;
    dir.txBytes += bytes;
    reconcile(dir, srcQ.curTick());
    dir.inFlightBytes += bytes;
    dir.inFlight.emplace_back(arrive, bytes);
    sim::EventQueue &dstQ = src == a_ ? *bQueue_ : *aQueue_;
    simulation().postCrossShard(
        srcQ.shardIndex(), dstQ.shardIndex(), arrive,
        sim::EventPriority::Default, "link.deliver",
        [this, dst_ep, pkt, src] {
            sim::EventQueue &q = src == a_ ? *bQueue_ : *aQueue_;
            deliver(dst_ep, pkt, q, dirFor(src), true);
        });
}

void
EthernetLink::startup()
{
    if (!sim::FaultPlan::active())
        return;
    auto &plan = sim::FaultPlan::instance();
    for (const auto &hit : plan.scheduledFor(name() + ".down")) {
        const sim::Tick dur =
            hit.param ? hit.param : 500 * sim::oneUs;
        downWindows_.emplace_back(hit.at, hit.at + dur);
        // The window itself is checked passively in deliver(); this
        // event only reports the fire so chaos accounting sees it.
        eventQueue().schedule(
            [this] { sim::reportScheduledFault(*this, "down"); },
            hit.at, "fault.down");
    }
}

bool
EthernetLink::downAtSlow(sim::Tick now) const
{
    for (const auto &[from, until] : downWindows_)
        if (now >= from && now < until)
            return true;
    return false;
}

void
EthernetLink::sendControl(EtherEndpoint *src, net::PacketPtr pkt)
{
    MCNSIM_ASSERT(src == a_ || src == b_, "unattached sender");
    EtherEndpoint *dst_ep = src == a_ ? b_ : a_;
    MCNSIM_ASSERT(dst_ep, "link has a dangling end");

    Direction &dir = dirFor(src);
    sim::EventQueue &srcQ = src == a_ ? *aQueue_ : *bQueue_;
    std::uint64_t bytes = pkt->size();
    double ser_secs = static_cast<double>(bytes) * 8.0 /
                      bandwidthBps_;
    sim::Tick ser = std::max<sim::Tick>(
        1, sim::secondsToTicks(ser_secs));
    // Strict priority: one frame's serialization plus propagation,
    // independent of the data FIFO's busyUntil/backlog state.
    sim::Tick arrive = srcQ.curTick() + ser + latency_;

    if (!split_) {
        statFrames_ += 1;
        statBytes_ += static_cast<double>(bytes);
        srcQ.schedule(
            [this, dst_ep, pkt, src] {
                deliver(dst_ep, pkt, *aQueue_, dirFor(src), false);
            },
            arrive, "link.ctrl");
        return;
    }
    dir.txFrames += 1;
    dir.txBytes += bytes;
    sim::EventQueue &dstQ = src == a_ ? *bQueue_ : *aQueue_;
    simulation().postCrossShard(
        srcQ.shardIndex(), dstQ.shardIndex(), arrive,
        sim::EventPriority::Default, "link.ctrl",
        [this, dst_ep, pkt, src] {
            sim::EventQueue &q = src == a_ ? *bQueue_ : *aQueue_;
            deliver(dst_ep, pkt, q, dirFor(src), true);
        });
}

void
EthernetLink::armPump(bool from_a)
{
    Direction &d = from_a ? ab_ : ba_;
    if (d.pumpArmed || d.burstQ.empty())
        return;
    d.pumpArmed = true;
    // Classic path only: both ends share one queue. The pump event
    // occupies the front frame's reserved within-tick slot, so it
    // fires exactly where that frame's own delivery event would
    // have -- same tick, same order against unrelated events.
    eventQueue().scheduleOrdered([this, from_a] { pump(from_a); },
                                 d.burstQ.front().arrive,
                                 d.burstQ.front().order,
                                 "link.deliver");
}

void
EthernetLink::pump(bool from_a)
{
    Direction &d = from_a ? ab_ : ba_;
    EtherEndpoint *dst_ep = from_a ? b_ : a_;
    sim::EventQueue &q = eventQueue();
    d.pumpArmed = false;
    sim::Tick now = q.curTick();
    // Deliver the due burst in FIFO order. Per-direction arrivals
    // are strictly increasing, so this is normally one frame; the
    // loop is the burst-vector contract (everything due fires now,
    // in order) and costs nothing when the burst is a singleton.
    while (!d.burstQ.empty() && d.burstQ.front().arrive <= now) {
        Direction::BurstEntry e = std::move(d.burstQ.front());
        d.burstQ.pop_front();
        d.inFlightBytes -= e.bytes;
        burstDelivered_ += 1;
        deliver(dst_ep, std::move(e.pkt), q, d, false);
    }
    armPump(from_a);
}

void
EthernetLink::deliver(EtherEndpoint *dst_ep, net::PacketPtr pkt,
                      sim::EventQueue &q, Direction &dir, bool split)
{
    // Fault injection: transient loss and bit errors, the
    // physical-link hazards the paper contrasts with the
    // ECC/CRC-protected memory channel (Sec. IV-A). The legacy
    // rate knobs draw from the simulation RNG (single-shard test
    // tools; see the file comment); the FaultPlan sites use
    // per-site streams so an armed-but-silent plan cannot perturb
    // modeled timing. On the split path the stat increment lands in
    // the receiver shard's plain counter instead of the Scalar.
    if (downAt(q.curTick())) [[unlikely]] {
        // Scheduled outage window: the cable is unplugged, so
        // everything in flight -- data and fabric hellos alike --
        // is lost until the window closes.
        if (split)
            dir.rxDropped += 1;
        else
            statDropped_ += 1;
        return;
    }
    if (lossRate_ > 0.0 && simulation().rng().chance(lossRate_)) {
        if (split)
            dir.rxDropped += 1;
        else
            statDropped_ += 1;
        return;
    }
    if (faultDrop_.fires()) {
        if (split)
            dir.rxDropped += 1;
        else
            statDropped_ += 1;
        return;
    }
    const bool legacy_corrupt =
        corruptRate_ > 0.0 &&
        simulation().rng().chance(corruptRate_) &&
        pkt->size() > 60;
    if (legacy_corrupt ||
        (pkt->size() > 60 && faultCorrupt_.fires())) {
        // Flip one payload byte past the L2-L4 headers so the
        // frame stays parseable; checksums (when enabled) must
        // catch this.
        sim::Rng &rng = legacy_corrupt ? simulation().rng()
                                       : faultCorrupt_.rng();
        std::size_t idx = rng.uniformInt(54, pkt->size() - 1);
        pkt->data()[idx] ^= 0x40;
        if (split)
            dir.rxCorrupted += 1;
        else
            statCorrupted_ += 1;
    }
    if (faultReorder_.fires()) {
        // Bounded reorder: hold this frame back so frames behind
        // it overtake; redeliver after the spec's param (default
        // 5 us) without re-rolling the fault dice.
        if (split)
            dir.rxReordered += 1;
        else
            statReordered_ += 1;
        sim::Tick delay = faultReorder_.param()
                              ? faultReorder_.param()
                              : 5 * sim::oneUs;
        q.scheduleIn(
            [this, dst_ep, pkt, &q] {
                pkt->trace.stamp(net::Stage::Phy, q.curTick());
                if (sim::FlowTelemetry::active()) [[unlikely]]
                    pkt->pathHop(name().c_str(), q.curTick());
                dst_ep->receiveFrame(pkt);
            },
            delay, "link.reorder");
        return;
    }
    if (faultDup_.fires()) {
        if (split)
            dir.rxDuplicated += 1;
        else
            statDuplicated_ += 1;
        pkt->trace.stamp(net::Stage::Phy, q.curTick());
        dst_ep->receiveFrame(pkt->clone());
    }
    pkt->trace.stamp(net::Stage::Phy, q.curTick());
    if (sim::FlowTelemetry::active()) [[unlikely]]
        pkt->pathHop(name().c_str(), q.curTick());
    dst_ep->receiveFrame(pkt);
}

} // namespace mcnsim::netdev
