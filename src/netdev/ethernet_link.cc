/**
 * @file
 * EthernetLink implementation.
 */

#include "netdev/ethernet_link.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::netdev {

EthernetLink::EthernetLink(sim::Simulation &s, std::string name,
                           double bandwidth_bps, sim::Tick latency)
    : sim::SimObject(s, std::move(name)),
      bandwidthBps_(bandwidth_bps), latency_(latency)
{
    if (bandwidth_bps <= 0.0)
        sim::fatal(this->name(), ": bandwidth must be > 0");
    regStat(&statFrames_);
    regStat(&statBytes_);
    regStat(&statDropped_);
    regStat(&statCorrupted_);
    regStat(&statDuplicated_);
    regStat(&statReordered_);
}

EthernetLink::Direction &
EthernetLink::dirFor(const EtherEndpoint *src)
{
    return src == a_ ? ab_ : ba_;
}

const EthernetLink::Direction &
EthernetLink::dirFor(const EtherEndpoint *src) const
{
    return src == a_ ? ab_ : ba_;
}

std::uint64_t
EthernetLink::backlogBytes(const EtherEndpoint *src) const
{
    return dirFor(src).inFlightBytes;
}

void
EthernetLink::sendFrom(EtherEndpoint *src, net::PacketPtr pkt)
{
    MCNSIM_ASSERT(src == a_ || src == b_, "unattached sender");
    EtherEndpoint *dst_ep = src == a_ ? b_ : a_;
    MCNSIM_ASSERT(dst_ep, "link has a dangling end");

    Direction &dir = dirFor(src);
    std::uint64_t bytes = pkt->size();
    statFrames_ += 1;
    statBytes_ += static_cast<double>(bytes);

    // FIFO serialization at the line rate.
    double ser_secs = static_cast<double>(bytes) * 8.0 /
                      bandwidthBps_;
    sim::Tick ser = std::max<sim::Tick>(
        1, sim::secondsToTicks(ser_secs));
    sim::Tick start = std::max(curTick(), dir.busyUntil);
    dir.busyUntil = start + ser;
    dir.inFlightBytes += bytes;

    sim::Tick arrive = dir.busyUntil + latency_;
    eventQueue().schedule(
        [this, dst_ep, pkt, bytes, src] {
            dirFor(src).inFlightBytes -= bytes;
            deliver(dst_ep, pkt);
        },
        arrive, "link.deliver");
}

void
EthernetLink::deliver(EtherEndpoint *dst_ep, net::PacketPtr pkt)
{
    // Fault injection: transient loss and bit errors, the
    // physical-link hazards the paper contrasts with the
    // ECC/CRC-protected memory channel (Sec. IV-A). The legacy
    // rate knobs draw from the simulation RNG; the FaultPlan
    // sites use per-site streams so an armed-but-silent plan
    // cannot perturb modeled timing.
    if (lossRate_ > 0.0 && simulation().rng().chance(lossRate_)) {
        statDropped_ += 1;
        return;
    }
    if (faultDrop_.fires()) {
        statDropped_ += 1;
        return;
    }
    const bool legacy_corrupt =
        corruptRate_ > 0.0 &&
        simulation().rng().chance(corruptRate_) &&
        pkt->size() > 60;
    if (legacy_corrupt ||
        (pkt->size() > 60 && faultCorrupt_.fires())) {
        // Flip one payload byte past the L2-L4 headers so the
        // frame stays parseable; checksums (when enabled) must
        // catch this.
        sim::Rng &rng = legacy_corrupt ? simulation().rng()
                                       : faultCorrupt_.rng();
        std::size_t idx = rng.uniformInt(54, pkt->size() - 1);
        pkt->data()[idx] ^= 0x40;
        statCorrupted_ += 1;
    }
    if (faultReorder_.fires()) {
        // Bounded reorder: hold this frame back so frames behind
        // it overtake; redeliver after the spec's param (default
        // 5 us) without re-rolling the fault dice.
        statReordered_ += 1;
        sim::Tick delay = faultReorder_.param()
                              ? faultReorder_.param()
                              : 5 * sim::oneUs;
        eventQueue().scheduleIn(
            [this, dst_ep, pkt] {
                pkt->trace.stamp(net::Stage::Phy, curTick());
                dst_ep->receiveFrame(pkt);
            },
            delay, "link.reorder");
        return;
    }
    if (faultDup_.fires()) {
        statDuplicated_ += 1;
        pkt->trace.stamp(net::Stage::Phy, curTick());
        dst_ep->receiveFrame(pkt->clone());
    }
    pkt->trace.stamp(net::Stage::Phy, curTick());
    dst_ep->receiveFrame(pkt);
}

} // namespace mcnsim::netdev
