/**
 * @file
 * LoopbackDevice implementation.
 */

#include "netdev/loopback.hh"

#include "sim/simulation.hh"

namespace mcnsim::netdev {

LoopbackDevice::LoopbackDevice(sim::Simulation &s, std::string name,
                               sim::Tick delay)
    : os::NetDevice(s, std::move(name), net::MacAddr::fromId(0),
                    65535),
      delay_(delay)
{}

os::TxResult
LoopbackDevice::xmit(net::PacketPtr pkt)
{
    countTx(*pkt);
    eventQueue().scheduleIn(
        [this, pkt] { deliverUp(pkt); }, delay_, "loop.deliver");
    return os::TxResult::Ok;
}

} // namespace mcnsim::netdev
