/**
 * @file
 * CpuCluster implementation.
 */

#include "cpu/cpu_cluster.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::cpu {

CpuCluster::CpuCluster(sim::Simulation &s, std::string name,
                       std::uint32_t cores, double freq_hz,
                       CostModel costs)
    : sim::SimObject(s, std::move(name)),
      clock_(this->name() + ".clk", freq_hz), costs_(costs)
{
    if (cores == 0)
        sim::fatal(this->name(), ": need at least one core");
    for (std::uint32_t i = 0; i < cores; ++i)
        cores_.push_back(std::make_unique<Core>(
            s, this->name() + ".core" + std::to_string(i), clock_));
}

Core &
CpuCluster::leastLoaded()
{
    Core *best = cores_[0].get();
    sim::Tick best_at = best->backlogClearsAt();
    for (auto &c : cores_) {
        sim::Tick at = c->backlogClearsAt();
        if (at < best_at) {
            best = c.get();
            best_at = at;
        }
    }
    return *best;
}

sim::Tick
CpuCluster::totalBusyTicks() const
{
    sim::Tick sum = 0;
    for (const auto &c : cores_)
        sum += c->busyTicks();
    return sum;
}

} // namespace mcnsim::cpu
