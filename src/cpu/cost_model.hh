/**
 * @file
 * Software cost model: how many core cycles each kernel/driver/stack
 * operation charges. These constants stand in for the instruction
 * streams a full-system simulator would execute; they are the
 * calibration surface of the whole reproduction and live in one
 * place on purpose. Defaults are calibrated so that the baseline
 * 10 GbE system and the MCN configurations land in the paper's
 * Table III / Fig. 8 ranges (see core/presets.cc and
 * EXPERIMENTS.md for the calibration notes).
 */

#ifndef MCNSIM_CPU_COST_MODEL_HH
#define MCNSIM_CPU_COST_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace mcnsim::cpu {

using sim::Cycles;

/** Per-operation cycle charges for simulated software. */
struct CostModel
{
    // --- System call / scheduling ---------------------------------
    Cycles syscallEntry = 600;      ///< user->kernel crossing
    Cycles contextSwitch = 1500;
    Cycles interruptEntry = 1000;   ///< HW IRQ entry + dispatch
    Cycles softirqSchedule = 250;   ///< raise + later dispatch
    Cycles taskletRun = 200;        ///< tasklet framework overhead
    Cycles hrtimerFire = 500;       ///< timer interrupt + handler

    // --- TCP/IP stack (per packet / per byte) ----------------------
    Cycles tcpTxPerPacket = 2200;   ///< segment build + IP + queue
    Cycles tcpRxPerPacket = 2600;   ///< demux + ack/seq processing
    Cycles udpTxPerPacket = 1200;
    Cycles udpRxPerPacket = 1400;
    Cycles icmpPerPacket = 900;
    Cycles ipForwardPerPacket = 1100; ///< routing + header rewrite
    double checksumPerByte = 0.5;   ///< software checksum
    double copyPerByte = 0.0625;    ///< cached memcpy: 16 B/cycle
    Cycles skbAlloc = 450;          ///< sk_buff alloc + init

    // --- Driver paths ----------------------------------------------
    Cycles nicDriverTx = 900;       ///< descriptor + doorbell
    Cycles nicDriverRxPerPacket = 1100; ///< ring clean + skb push
    // Calibrated to the paper's Table III: the MCN driver's
    // per-message costs exceed the NIC driver's because the CPU
    // manages the SRAM rings with uncached pointer accesses
    // (Driver-TX ~1.1 us at 3.4 GHz, Driver-RX ~2.3 us + per-byte).
    Cycles mcnDriverTx = 3700;      ///< T1-T3 pointer ops + fence
    Cycles mcnDriverRx = 4000;      ///< R1-R5 ring clean + skb push
    Cycles mcnPollPerDimm = 350;    ///< read tx-poll field + check
    Cycles dmaSetup = 500;          ///< program a DMA descriptor

    // --- Helpers ----------------------------------------------------
    Cycles
    checksum(std::uint64_t bytes) const
    {
        return static_cast<Cycles>(checksumPerByte *
                                   static_cast<double>(bytes));
    }

    Cycles
    copy(std::uint64_t bytes) const
    {
        return static_cast<Cycles>(copyPerByte *
                                   static_cast<double>(bytes)) + 1;
    }
};

} // namespace mcnsim::cpu

#endif // MCNSIM_CPU_COST_MODEL_HH
