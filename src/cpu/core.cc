/**
 * @file
 * Core implementation.
 */

#include "cpu/core.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace mcnsim::cpu {

Core::Core(sim::Simulation &s, std::string name,
           const sim::ClockDomain &clock)
    : sim::SimObject(s, std::move(name)), clock_(clock)
{
    regStat(&statSlots_);
    regStat(&statBusy_);
    regStat(&statIrqSlots_);
}

void
Core::execute(Cycles cycles, std::function<void(Tick)> done, bool irq)
{
    Slot slot{cycles, std::move(done)};
    queuedTicks_ += clock_.cyclesToTicks(cycles);
    if (irq) {
        statIrqSlots_ += 1;
        queue_.push_front(std::move(slot));
    } else {
        queue_.push_back(std::move(slot));
    }
    if (!running_)
        startNext();
}

sim::Task<void>
Core::run(Cycles cycles)
{
    struct Awaiter
    {
        Core &core;
        Cycles cycles;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.execute(cycles, [h](Tick) { h.resume(); });
        }

        void await_resume() {}
    };
    co_await Awaiter{*this, cycles};
}

Tick
Core::backlogClearsAt() const
{
    Tick at = running_ ? currentEndsAt_ : curTick();
    return at + queuedTicks_;
}

double
Core::utilisation(Tick since) const
{
    Tick window = curTick() - since;
    if (window == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(busyTicks_) /
                             static_cast<double>(window));
}

void
Core::startNext()
{
    if (queue_.empty())
        return;
    Slot slot = std::move(queue_.front());
    queue_.pop_front();

    running_ = true;
    statSlots_ += 1;
    Tick duration = clock_.cyclesToTicks(slot.cycles);
    queuedTicks_ -= duration;
    busyTicks_ += duration;
    statBusy_ += static_cast<double>(duration);
    currentEndsAt_ = curTick() + duration;

    eventQueue().schedule(
        [this, done = std::move(slot.done)] {
            Tick now = curTick();
            running_ = false;
            if (done)
                done(now);
            // The callback may have issued new work that is already
            // running; only pull the next queued slot if still idle.
            if (!running_ && !queue_.empty())
                startNext();
        },
        currentEndsAt_, "core.slot");
}

} // namespace mcnsim::cpu
