/**
 * @file
 * Core: a CPU core as a non-preemptive FIFO execution resource.
 *
 * mcnsim does not interpret instructions; software work (a TCP
 * send path, a driver poll, an application compute phase) is charged
 * to a core as a cycle count. The core serialises charges, tracks
 * busy time for utilisation/energy accounting, and wakes the
 * requester when its slot completes. Interrupt-priority work is
 * queued ahead of ordinary work but does not preempt the slot in
 * progress, which is a fair model at the microsecond scales the
 * paper's latency numbers live at.
 */

#ifndef MCNSIM_CPU_CORE_HH
#define MCNSIM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/clock_domain.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace mcnsim::cpu {

using sim::Cycles;
using sim::Tick;

/** One CPU core. */
class Core : public sim::SimObject
{
  public:
    Core(sim::Simulation &s, std::string name,
         const sim::ClockDomain &clock);

    /**
     * Charge @p cycles of work; @p done fires with the completion
     * tick. @p irq work jumps the queue (but not the current slot).
     */
    void execute(Cycles cycles, std::function<void(Tick)> done,
                 bool irq = false);

    /** Coroutine-friendly charge: resumes when the slot completes. */
    sim::Task<void> run(Cycles cycles);

    /** Charge work specified as a duration at this core's clock. */
    void
    executeFor(Tick duration, std::function<void(Tick)> done,
               bool irq = false)
    {
        execute(clock_.ticksToCycles(duration), std::move(done), irq);
    }

    /** Tick at which all queued work completes. */
    Tick backlogClearsAt() const;

    /** True when the core has no queued or running work. */
    bool idle() const { return !running_ && queue_.empty(); }

    /** Total ticks the core has spent busy (for energy). */
    Tick busyTicks() const { return busyTicks_; }

    /** Busy fraction over the window since @p since. */
    double utilisation(Tick since) const;

    const sim::ClockDomain &clock() const { return clock_; }

  private:
    struct Slot
    {
        Cycles cycles;
        std::function<void(Tick)> done;
    };

    void startNext();
    void finishCurrent();

    const sim::ClockDomain &clock_;
    std::deque<Slot> queue_;
    bool running_ = false;
    Tick currentEndsAt_ = 0;
    Tick busyTicks_ = 0;
    /// Sum of cyclesToTicks() over queue_: backlogClearsAt() is on
    /// the per-segment CPU-charge path (CpuCluster::leastLoaded scans
    /// every core), so it must not walk the slot deque.
    Tick queuedTicks_ = 0;

    sim::Scalar statSlots_{"slots", "work slots executed"};
    sim::Scalar statBusy_{"busyTicks", "ticks spent busy"};
    sim::Scalar statIrqSlots_{"irqSlots", "interrupt-priority slots"};
};

} // namespace mcnsim::cpu

#endif // MCNSIM_CPU_CORE_HH
