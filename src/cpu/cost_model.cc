/**
 * @file
 * CostModel is header-only today; this TU anchors the module and
 * keeps a home for future out-of-line calibration tables.
 */

#include "cpu/cost_model.hh"
