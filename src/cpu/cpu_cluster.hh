/**
 * @file
 * CpuCluster: a node's set of cores sharing one clock domain, with
 * simple least-loaded dispatch for unpinned work (standing in for
 * the OS scheduler + IRQ balancing).
 */

#ifndef MCNSIM_CPU_CPU_CLUSTER_HH
#define MCNSIM_CPU_CPU_CLUSTER_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "cpu/cost_model.hh"
#include "sim/clock_domain.hh"
#include "sim/sim_object.hh"

namespace mcnsim::cpu {

/** A homogeneous group of cores. */
class CpuCluster : public sim::SimObject
{
  public:
    CpuCluster(sim::Simulation &s, std::string name,
               std::uint32_t cores, double freq_hz,
               CostModel costs = {});

    std::uint32_t coreCount() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    Core &core(std::uint32_t i) { return *cores_[i]; }

    /** The core whose backlog clears soonest. */
    Core &leastLoaded();

    /** Charge unpinned work on the least-loaded core. */
    void
    execute(Cycles cycles, std::function<void(sim::Tick)> done,
            bool irq = false)
    {
        leastLoaded().execute(cycles, std::move(done), irq);
    }

    const CostModel &costs() const { return costs_; }
    CostModel &costs() { return costs_; }

    const sim::ClockDomain &clock() const { return clock_; }

    /** Sum of per-core busy ticks (for energy accounting). */
    sim::Tick totalBusyTicks() const;

  private:
    sim::ClockDomain clock_;
    CostModel costs_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace mcnsim::cpu

#endif // MCNSIM_CPU_CPU_CLUSTER_HH
