/**
 * @file
 * Socket-layer conveniences: address pairs and the connect/listen
 * helpers the distributed-computing layer builds on.
 */

#ifndef MCNSIM_NET_SOCKET_HH
#define MCNSIM_NET_SOCKET_HH

#include <cstdint>
#include <string>

#include "net/ipv4.hh"
#include "net/tcp.hh"
#include "sim/task.hh"

namespace mcnsim::net {

/** An (address, port) pair. */
struct SockAddr
{
    Ipv4Addr addr;
    std::uint16_t port = 0;

    std::string str() const;
};

/**
 * Connect a new TCP socket on @p stack to @p dst, retrying the
 * handshake a few times (SYNs can be dropped under switch-queue
 * overflow). Returns nullptr on failure.
 */
sim::Task<TcpSocketPtr> tcpConnect(NetStack &stack, SockAddr dst,
                                   int attempts = 4);

/** Create a listening socket on @p port. */
TcpSocketPtr tcpListen(NetStack &stack, std::uint16_t port);

} // namespace mcnsim::net

#endif // MCNSIM_NET_SOCKET_HH
