/**
 * @file
 * ICMP echo (ping): the measurement tool behind the paper's
 * Fig. 8(b)/(c) round-trip latency curves.
 */

#ifndef MCNSIM_NET_ICMP_HH
#define MCNSIM_NET_ICMP_HH

#include <cstdint>
#include <map>
#include <optional>

#include "net/ipv4.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"

namespace mcnsim::net {

class NetStack;

/** ICMP message types used here. */
enum : std::uint8_t {
    icmpEchoReply = 0,
    icmpDestUnreachable = 3,
    icmpEchoRequest = 8,
};

/** The 8-byte ICMP echo header. */
struct IcmpHeader
{
    static constexpr std::size_t size = 8;

    std::uint8_t type = icmpEchoRequest;
    std::uint8_t code = 0;
    std::uint16_t id = 0;
    std::uint16_t seqNo = 0;

    void push(Packet &pkt, bool compute_checksum) const;
    static std::optional<IcmpHeader> pull(Packet &pkt,
                                          bool verify_checksum);
};

/** Per-node ICMP layer: answers echo requests, matches replies. */
class IcmpLayer : public sim::SimObject
{
  public:
    IcmpLayer(sim::Simulation &s, std::string name, NetStack &stack);

    void rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt,
            bool verify_checksum = true);

    /**
     * Send one echo request with @p payload_bytes of data and
     * resume with the round-trip time, or sim::maxTick on timeout.
     * Each of the @p retries re-sends waits @p timeout again; a
     * destination-unreachable reply fails fast without retrying.
     */
    sim::Task<sim::Tick> ping(Ipv4Addr dst,
                              std::size_t payload_bytes,
                              sim::Tick timeout = 100 * sim::oneMs,
                              unsigned retries = 0);

    /**
     * Emit a destination-unreachable toward @p to, reporting that
     * @p about cannot be reached (a router/forwarding engine
     * noticing a dead next hop). The receiving node fails pending
     * pings and SYN-sent TCP connections toward @p about.
     */
    void sendUnreachable(Ipv4Addr to, Ipv4Addr about);

    /**
     * Locally-delivered unreachable notice (no wire round trip): a
     * fabric switch on this node's path found every next hop toward
     * @p about dead (a partition). Fails pending pings toward
     * @p about and aborts established TCP connections with it
     * (TcpLayer::peerPartitioned) so applications fail fast instead
     * of waiting out retransmission timeouts.
     */
    void notifyUnreachable(Ipv4Addr about);

    std::uint64_t echoRequestsSeen() const
    {
        return static_cast<std::uint64_t>(statEchoReq_.value());
    }
    std::uint64_t unreachablesSeen() const
    {
        return static_cast<std::uint64_t>(statUnreachRx_.value());
    }
    std::uint64_t partitionNotices() const
    {
        return static_cast<std::uint64_t>(
            statUnreachLocal_.value());
    }

  private:
    struct PendingPing
    {
        sim::Tick sentAt = 0;
        sim::Tick rtt = 0;
        Ipv4Addr dst;
        bool done = false;
        bool unreachable = false;
    };

    /** Fail pending pings toward @p about (shared by the wire and
     *  local unreachable paths). */
    void failPingsToward(Ipv4Addr about);

    NetStack &stack_;
    std::uint16_t nextId_ = 1;
    std::map<std::uint16_t, PendingPing> pending_;
    sim::Condition replyCv_;

    sim::Scalar statEchoReq_{"echoRequests", "echo requests seen"};
    sim::Scalar statEchoRep_{"echoReplies", "echo replies seen"};
    sim::Scalar statUnreachRx_{"unreachablesIn",
                               "destination-unreachables received"};
    sim::Scalar statUnreachTx_{"unreachablesOut",
                               "destination-unreachables sent"};
    sim::Scalar statUnreachLocal_{
        "unreachablesLocal",
        "local partition notices from fabric switches"};
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_ICMP_HH
